//! Property-based tests over the learning stack: metrics, serialization
//! stability, and optimizer behaviour on random problems.

use proptest::prelude::*;
use std::collections::BTreeSet;

use pythia::core::metrics::{f1_score, ObjPage};
use pythia::db::catalog::ObjectId;
use pythia::nn::tape::{bce_with_logits, ParamSet, Tape};
use pythia::nn::{Adam, Tensor};

fn page_set(pages: &[u8]) -> BTreeSet<ObjPage> {
    pages.iter().map(|&p| (ObjectId(0), p as u32)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// F1 is symmetric, bounded, and 1 iff the sets are equal.
    #[test]
    fn f1_properties(a in prop::collection::vec(0u8..40, 0..30), b in prop::collection::vec(0u8..40, 0..30)) {
        let sa = page_set(&a);
        let sb = page_set(&b);
        let m_ab = f1_score(&sa, &sb);
        let m_ba = f1_score(&sb, &sa);
        prop_assert!((0.0..=1.0).contains(&m_ab.f1));
        prop_assert!((m_ab.f1 - m_ba.f1).abs() < 1e-12, "F1 symmetric");
        prop_assert_eq!(m_ab.f1 == 1.0, sa == sb);
        // Precision/recall bounds.
        prop_assert!((0.0..=1.0).contains(&m_ab.precision));
        prop_assert!((0.0..=1.0).contains(&m_ab.recall));
        // F1 is the harmonic mean: bounded by min and max of its components.
        if !sa.is_empty() && !sb.is_empty() {
            let lo = m_ab.precision.min(m_ab.recall);
            let hi = m_ab.precision.max(m_ab.recall);
            prop_assert!(m_ab.f1 >= lo - 1e-12 && m_ab.f1 <= hi + 1e-12);
        }
    }

    /// BCE-with-logits is non-negative and zero only in the saturated limit;
    /// its gradient always points toward the target.
    #[test]
    fn bce_gradient_sign(z in -5.0f32..5.0, t in prop::bool::ANY) {
        let target = if t { 1.0f32 } else { 0.0 };
        let mut tape = Tape::new();
        let logit = tape.leaf(Tensor::full(1, 1, z));
        let loss = bce_with_logits(&mut tape, logit, Tensor::full(1, 1, target), 1.0);
        prop_assert!(tape.value(loss).get(0, 0) >= 0.0);
        let grads = tape.backward(loss);
        let g = grads.get(logit).get(0, 0);
        // Gradient sign: positive target wants the logit to grow (negative
        // gradient), zero target wants it to shrink.
        if target == 1.0 {
            prop_assert!(g <= 0.0, "grad {g} for positive target");
        } else {
            prop_assert!(g >= 0.0, "grad {g} for negative target");
        }
    }

    /// Adam monotonically drives a separable random multi-label problem's
    /// loss down over training.
    #[test]
    fn adam_reduces_loss(targets in prop::collection::vec(prop::bool::ANY, 1..8), seed in 0u64..1000) {
        let _ = seed;
        let n = targets.len();
        let tvec: Vec<f32> = targets.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();
        let tgt = Tensor::from_vec(1, n, tvec);
        let mut params = ParamSet::new();
        let w = params.add("w", Tensor::zeros(1, n));
        let mut adam = Adam::new(&params, 0.05);
        let loss_at = |params: &ParamSet| {
            let mut tape = Tape::new();
            let vars = params.inject(&mut tape);
            let loss = bce_with_logits(&mut tape, vars[w.0], tgt.clone(), 1.0);
            tape.value(loss).get(0, 0)
        };
        let start = loss_at(&params);
        for _ in 0..50 {
            let mut tape = Tape::new();
            let vars = params.inject(&mut tape);
            let loss = bce_with_logits(&mut tape, vars[w.0], tgt.clone(), 1.0);
            let grads = tape.backward(loss);
            adam.step(&mut params, &vars, &grads);
        }
        let end = loss_at(&params);
        prop_assert!(end < start, "loss did not decrease: {start} -> {end}");
    }

    /// Tensor matmul is associative with the identity and distributes over
    /// addition (within float tolerance).
    #[test]
    fn tensor_algebra(
        a in prop::collection::vec(-2.0f32..2.0, 12),
        b in prop::collection::vec(-2.0f32..2.0, 12),
        c in prop::collection::vec(-2.0f32..2.0, 12),
    ) {
        let a = Tensor::from_vec(3, 4, a);
        let b = Tensor::from_vec(4, 3, b);
        let c = Tensor::from_vec(4, 3, c);
        // A(B + C) == AB + AC.
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(left.max_abs_diff(&right) < 1e-4);
        // (A B)^T == B^T A^T.
        let t1 = a.matmul(&b).transpose();
        let t2 = b.transpose().matmul(&a.transpose());
        prop_assert!(t1.max_abs_diff(&t2) < 1e-4);
    }
}
