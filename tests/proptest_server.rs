//! Property tests for the admission-controlled serving loop: with
//! concurrency limit 1, FIFO admission and a fixed inference charge, serving
//! a request stream must be **bit-identical** — per-query start/end
//! instants, final clock and every buffer counter — to replaying the same
//! queries serially through `Runtime::run` on one warm stack, across random
//! traces, arrival patterns and stack sizings. The pin holds for BOTH
//! admission modes: the wave-barrier loop and the admit-on-completion
//! continuous scheduler degenerate to the same serial schedule at C=1.

use std::sync::OnceLock;

use proptest::prelude::*;

use pythia::core::server::{
    AdmissionMode, InferenceCharge, PrefetchServer, QueuePolicy, ServerConfig, ServerRequest,
};
use pythia::db::catalog::{Database, ObjectId};
use pythia::db::plan::PlanNode;
use pythia::db::runtime::{QueryRun, RunConfig, Runtime};
use pythia::db::trace::{AccessKind, Trace, TraceEvent};
use pythia::db::types::Schema;
use pythia::sim::{FileId, PageId, SimDuration, SimTime};

/// One shared database: the serving loop only uses it for file lengths (no
/// predictor is attached), so a single small fixture serves every case.
fn db() -> &'static Database {
    static DB: OnceLock<Database> = OnceLock::new();
    DB.get_or_init(|| {
        let mut db = Database::new();
        let t = db.create_table("t", Schema::ints(&["a"]));
        for i in 0..2000i64 {
            db.insert(t, Database::row(&[i]));
        }
        db
    })
}

fn plan() -> PlanNode {
    PlanNode::SeqScan {
        table: pythia::db::catalog::TableId(0),
        pred: None,
    }
}

/// Build a trace from `(selector, page, cpu)` triples: selector picks the
/// access kind (sequential runs vs strided heap fetches), `cpu` inserts
/// think-time between reads.
fn build_trace(spec: &[(u8, u16, u8)]) -> Trace {
    let mut events = Vec::with_capacity(spec.len() * 2);
    for &(sel, page, cpu) in spec {
        let kind = if sel % 2 == 0 {
            AccessKind::HeapFetch
        } else {
            AccessKind::SeqScan
        };
        events.push(TraceEvent::Read {
            obj: ObjectId(0),
            page: PageId::new(FileId(0), page as u32),
            kind,
        });
        if cpu > 0 {
            events.push(TraceEvent::Cpu { units: cpu as u32 });
        }
    }
    Trace { events }
}

fn trace_strategy() -> impl Strategy<Value = Vec<(u8, u16, u8)>> {
    prop::collection::vec((any::<u8>(), 0u16..3000, 0u8..4), 1..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn c1_fifo_server_is_bit_identical_to_serial_runs(
        specs in prop::collection::vec(trace_strategy(), 1..5),
        arrivals in prop::collection::vec(0u64..2_000_000, 5),
        pool_frames in prop::sample::select(vec![64usize, 256, 1024]),
        os_cache_pages in prop::sample::select(vec![512usize, 4096]),
        charge_us in 0u64..5_000,
    ) {
        let db = db();
        let traces: Vec<Trace> = specs.iter().map(|s| build_trace(s)).collect();
        let run_cfg = RunConfig { pool_frames, os_cache_pages, ..Default::default() };
        let plan = plan();

        let requests: Vec<ServerRequest<'_>> = traces
            .iter()
            .zip(&arrivals)
            .map(|(trace, &us)| ServerRequest::new(&plan, trace, SimDuration::from_micros(us)))
            .collect();

        for admission in [AdmissionMode::Wave, AdmissionMode::Continuous] {
            let cfg = ServerConfig {
                concurrency: 1,
                admission,
                policy: QueuePolicy::Fifo,
                // No predictor is attached, so nothing is ever charged — but
                // the config must not leak into the timings either way.
                charge: InferenceCharge::Fixed(SimDuration::from_micros(charge_us)),
                prefetch_budget: None,
            };
            let mut server = PrefetchServer::new(db, &run_cfg, cfg);
            let report = server.serve(&requests);

            // Serial comparator: same queries, one warm stack, arrival order
            // (ties broken by request index — the server's queue order).
            let mut order: Vec<usize> = (0..requests.len()).collect();
            order.sort_by_key(|&i| (requests[i].arrival, i));
            let mut rt = Runtime::new(&run_cfg, db.file_lengths());
            for &i in &order {
                rt.advance_to(SimTime::ZERO + requests[i].arrival);
                let res = rt.run(&[QueryRun::default_run(&traces[i])]);
                prop_assert_eq!(
                    report.queries[i].start, res.timings[0].start,
                    "start of query {} ({:?})", i, admission
                );
                prop_assert_eq!(
                    report.queries[i].end, res.timings[0].end,
                    "end of query {} ({:?})", i, admission
                );
                prop_assert_eq!(report.queries[i].inference, SimDuration::ZERO);
            }
            prop_assert_eq!(report.stats, rt.stats());
            prop_assert_eq!(server.runtime().now(), rt.now());
            prop_assert_eq!(
                report.waves.len(), requests.len(),
                "one admission event per query at C=1 ({:?})", admission
            );
            for w in &report.waves {
                prop_assert_eq!(w.occupancy, 1);
            }
        }
    }

    /// `ServeReport` wave metrics stay internally consistent under the
    /// overlap queue policy across random traces, arrival streams and
    /// concurrency limits: occupancy is bounded by the admission limit and
    /// the recorded queue depth, every query is admitted exactly once, wave
    /// dispatch times are monotone, the per-wave buffer counters merge back
    /// to the report-level totals, and the summary helpers agree with the
    /// raw per-wave data.
    #[test]
    fn overlap_policy_wave_metrics_are_consistent(
        specs in prop::collection::vec(trace_strategy(), 1..7),
        arrivals in prop::collection::vec(0u64..1_500_000, 7),
        concurrency in 1usize..4,
        pool_frames in prop::sample::select(vec![64usize, 512]),
        charge_us in 0u64..3_000,
    ) {
        let db = db();
        let traces: Vec<Trace> = specs.iter().map(|s| build_trace(s)).collect();
        let n = traces.len();
        let run_cfg = RunConfig { pool_frames, ..Default::default() };
        let plan = plan();
        let requests: Vec<ServerRequest<'_>> = traces
            .iter()
            .zip(&arrivals)
            .map(|(trace, &us)| ServerRequest::new(&plan, trace, SimDuration::from_micros(us)))
            .collect();
        let cfg = ServerConfig {
            concurrency,
            admission: AdmissionMode::Wave,
            policy: QueuePolicy::Overlap,
            charge: InferenceCharge::Fixed(SimDuration::from_micros(charge_us)),
            prefetch_budget: None,
        };
        let mut server = PrefetchServer::new(db, &run_cfg, cfg);
        let report = server.serve(&requests);

        prop_assert_eq!(report.queries.len(), n);
        prop_assert!(!report.waves.is_empty());

        // Wave-level invariants.
        let mut admitted_total = 0usize;
        let mut merged = pythia::buffer::BufferStats::default();
        let mut prev_dispatch = SimTime::ZERO;
        for (i, w) in report.waves.iter().enumerate() {
            prop_assert!(w.occupancy >= 1, "wave {} admitted nothing", i);
            prop_assert!(w.occupancy <= concurrency, "wave {} over the limit", i);
            prop_assert!(
                w.occupancy <= w.queue_depth,
                "wave {}: occupancy {} > queue depth {}", i, w.occupancy, w.queue_depth
            );
            prop_assert!(w.queue_depth <= n);
            prop_assert!(w.admitted_at >= prev_dispatch, "wave {} dispatched out of order", i);
            prev_dispatch = w.admitted_at;
            admitted_total += w.occupancy;
            merged.merge(&w.stats);
        }
        prop_assert_eq!(admitted_total, n, "every query admitted exactly once");
        prop_assert_eq!(merged, report.stats, "per-wave stats must partition the totals");

        // Query-level invariants tie back to the wave that served each query.
        for (i, q) in report.queries.iter().enumerate() {
            prop_assert!(q.wave < report.waves.len());
            prop_assert_eq!(q.admitted, report.waves[q.wave].admitted_at, "query {}", i);
            prop_assert!(q.arrival <= q.admitted, "query {} admitted before arriving", i);
            prop_assert!(q.admitted <= q.start);
            prop_assert!(q.start <= q.end);
        }

        // Summary helpers agree with the raw per-wave data.
        let max_depth = report.waves.iter().map(|w| w.queue_depth).max().unwrap();
        prop_assert_eq!(report.max_queue_depth(), max_depth);
        let mean_occ = n as f64 / report.waves.len() as f64;
        prop_assert!((report.mean_occupancy() - mean_occ).abs() < 1e-9);
    }

    /// Continuous-admission metrics invariants across random traces,
    /// arrivals, policies and concurrency limits: exactly one admission
    /// event per query, occupancy within `1..=concurrency`, monotone
    /// admission instants, causally ordered per-query timelines, and
    /// per-admission buffer counters that partition the report totals.
    #[test]
    fn continuous_admission_metrics_are_consistent(
        specs in prop::collection::vec(trace_strategy(), 1..7),
        arrivals in prop::collection::vec(0u64..1_500_000, 7),
        concurrency in 1usize..4,
        overlap_policy in any::<bool>(),
        pool_frames in prop::sample::select(vec![64usize, 512]),
        charge_us in 0u64..3_000,
    ) {
        let db = db();
        let traces: Vec<Trace> = specs.iter().map(|s| build_trace(s)).collect();
        let n = traces.len();
        let run_cfg = RunConfig { pool_frames, ..Default::default() };
        let plan = plan();
        let requests: Vec<ServerRequest<'_>> = traces
            .iter()
            .zip(&arrivals)
            .map(|(trace, &us)| ServerRequest::new(&plan, trace, SimDuration::from_micros(us)))
            .collect();
        let cfg = ServerConfig {
            concurrency,
            admission: AdmissionMode::Continuous,
            policy: if overlap_policy { QueuePolicy::Overlap } else { QueuePolicy::Fifo },
            charge: InferenceCharge::Fixed(SimDuration::from_micros(charge_us)),
            prefetch_budget: None,
        };
        let mut server = PrefetchServer::new(db, &run_cfg, cfg);
        let report = server.serve(&requests);

        prop_assert_eq!(report.queries.len(), n);
        // Continuous admission dispatches queries one at a time: exactly one
        // admission event per query.
        prop_assert_eq!(report.waves.len(), n);

        let mut merged = pythia::buffer::BufferStats::default();
        let mut prev_dispatch = SimTime::ZERO;
        for (i, w) in report.waves.iter().enumerate() {
            prop_assert!(w.occupancy >= 1, "admission {} with empty slots only", i);
            prop_assert!(w.occupancy <= concurrency, "admission {} over the limit", i);
            prop_assert!(w.queue_depth >= 1, "admission {} from an empty queue", i);
            prop_assert!(w.queue_depth <= n);
            prop_assert!(w.admitted_at >= prev_dispatch, "admission {} out of order", i);
            prev_dispatch = w.admitted_at;
            merged.merge(&w.stats);
        }
        prop_assert_eq!(merged, report.stats, "per-admission stats must partition the totals");

        for (i, q) in report.queries.iter().enumerate() {
            prop_assert!(q.wave < report.waves.len());
            prop_assert_eq!(q.admitted, report.waves[q.wave].admitted_at, "query {}", i);
            prop_assert!(q.arrival <= q.admitted, "query {} admitted before arriving", i);
            prop_assert!(q.admitted <= q.start);
            prop_assert!(q.start <= q.end);
        }

        // The concurrency cap holds in *virtual time*, not just in the
        // per-admission occupancy bookkeeping: a query holds its slot over
        // [admitted, end), and slot counts only rise at admission instants,
        // so checking each admission instant covers the maximum. (This is
        // the invariant a completion whose final event straddles an arrival
        // used to break: the arrival was admitted inside the still-occupied
        // interval.)
        for (i, qi) in report.queries.iter().enumerate() {
            let held = report
                .queries
                .iter()
                .filter(|qj| qj.admitted <= qi.admitted && qi.admitted < qj.end)
                .count();
            prop_assert!(
                held <= concurrency,
                "query {}: {} slots held at its admission instant (cap {})",
                i, held, concurrency
            );
        }

        let max_depth = report.waves.iter().map(|w| w.queue_depth).max().unwrap();
        prop_assert_eq!(report.max_queue_depth(), max_depth);
    }
}
