//! Property tests for the admission-controlled serving loop: with
//! concurrency limit 1, FIFO admission and a fixed inference charge, serving
//! a request stream must be **bit-identical** — per-query start/end
//! instants, final clock and every buffer counter — to replaying the same
//! queries serially through `Runtime::run` on one warm stack, across random
//! traces, arrival patterns and stack sizings. The pin holds for BOTH
//! admission modes: the wave-barrier loop and the admit-on-completion
//! continuous scheduler degenerate to the same serial schedule at C=1.

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;

use pythia::core::predictor::TrainedWorkload;
use pythia::core::registry::TenantFleet;
use pythia::core::server::{
    AdmissionMode, InferenceCharge, PrefetchServer, QueuePolicy, ServerConfig, ServerRequest,
};
use pythia::core::{train_workload, PythiaConfig};
use pythia::db::catalog::{Database, ObjectId};
use pythia::db::expr::Pred;
use pythia::db::plan::PlanNode;
use pythia::db::runtime::{QueryRun, RunConfig, Runtime};
use pythia::db::trace::{AccessKind, Trace, TraceEvent};
use pythia::db::types::Schema;
use pythia::obs::Recorder;
use pythia::sim::{FileId, PageId, SimDuration, SimTime};

/// One shared database: the serving loop only uses it for file lengths (no
/// predictor is attached), so a single small fixture serves every case.
fn db() -> &'static Database {
    static DB: OnceLock<Database> = OnceLock::new();
    DB.get_or_init(|| {
        let mut db = Database::new();
        let t = db.create_table("t", Schema::ints(&["a"]));
        for i in 0..2000i64 {
            db.insert(t, Database::row(&[i]));
        }
        db
    })
}

fn plan() -> PlanNode {
    PlanNode::SeqScan {
        table: pythia::db::catalog::TableId(0),
        pred: None,
    }
}

/// Build a trace from `(selector, page, cpu)` triples: selector picks the
/// access kind (sequential runs vs strided heap fetches), `cpu` inserts
/// think-time between reads.
fn build_trace(spec: &[(u8, u16, u8)]) -> Trace {
    let mut events = Vec::with_capacity(spec.len() * 2);
    for &(sel, page, cpu) in spec {
        let kind = if sel % 2 == 0 {
            AccessKind::HeapFetch
        } else {
            AccessKind::SeqScan
        };
        events.push(TraceEvent::Read {
            obj: ObjectId(0),
            page: PageId::new(FileId(0), page as u32),
            kind,
        });
        if cpu > 0 {
            events.push(TraceEvent::Cpu { units: cpu as u32 });
        }
    }
    Trace { events }
}

fn trace_strategy() -> impl Strategy<Value = Vec<(u8, u16, u8)>> {
    prop::collection::vec((any::<u8>(), 0u16..3000, 0u8..4), 1..60)
}

/// A trained star-join fixture for the registry-routed pins: real plans with
/// real traces so inference actually runs (and is charged) during serving.
/// Trained once — proptest cases reuse it.
struct TrainedFixture {
    db: Database,
    plans: Vec<PlanNode>,
    traces: Vec<Trace>,
    tw: TrainedWorkload,
}

fn trained() -> &'static TrainedFixture {
    static FX: OnceLock<TrainedFixture> = OnceLock::new();
    FX.get_or_init(|| {
        let mut db = Database::new();
        let fact = db.create_table("fact", Schema::ints(&["id", "day", "k"]));
        let dim = db.create_table("dim", Schema::ints(&["d_id", "v"]));
        for i in 0..600i64 {
            db.insert(fact, Database::row(&[i, i % 50, i % 30]));
            db.insert(dim, Database::row(&[i % 30, i % 5]));
        }
        let idx = db.create_index("dim_pk", dim, 0);
        let plans: Vec<PlanNode> = (0..8)
            .map(|i| PlanNode::IndexNLJoin {
                outer: Box::new(PlanNode::SeqScan {
                    table: fact,
                    pred: Some(Pred::Between {
                        col: 1,
                        lo: i * 6,
                        hi: i * 6 + 8,
                    }),
                }),
                outer_key: 2,
                inner: dim,
                inner_index: idx,
                inner_pred: None,
            })
            .collect();
        let traces: Vec<Trace> = plans
            .iter()
            .map(|p| pythia::db::exec::execute(p, &db).1)
            .collect();
        let cfg = PythiaConfig {
            epochs: 2,
            ..PythiaConfig::fast()
        };
        let tw = train_workload(&db, "fx", &plans, &traces, None, &cfg);
        TrainedFixture {
            db,
            plans,
            traces,
            tw,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn c1_fifo_server_is_bit_identical_to_serial_runs(
        specs in prop::collection::vec(trace_strategy(), 1..5),
        arrivals in prop::collection::vec(0u64..2_000_000, 5),
        pool_frames in prop::sample::select(vec![64usize, 256, 1024]),
        os_cache_pages in prop::sample::select(vec![512usize, 4096]),
        charge_us in 0u64..5_000,
    ) {
        let db = db();
        let traces: Vec<Trace> = specs.iter().map(|s| build_trace(s)).collect();
        let run_cfg = RunConfig { pool_frames, os_cache_pages, ..Default::default() };
        let plan = plan();

        let requests: Vec<ServerRequest<'_>> = traces
            .iter()
            .zip(&arrivals)
            .map(|(trace, &us)| ServerRequest::new(&plan, trace, SimDuration::from_micros(us)))
            .collect();

        for admission in [AdmissionMode::Wave, AdmissionMode::Continuous] {
            let cfg = ServerConfig {
                concurrency: 1,
                admission,
                policy: QueuePolicy::Fifo,
                // No predictor is attached, so nothing is ever charged — but
                // the config must not leak into the timings either way.
                charge: InferenceCharge::Fixed(SimDuration::from_micros(charge_us)),
                prefetch_budget: None,
                tenant_quota: None,
            };
            let mut server = PrefetchServer::new(db, &run_cfg, cfg);
            let report = server.serve(&requests);

            // Serial comparator: same queries, one warm stack, arrival order
            // (ties broken by request index — the server's queue order).
            let mut order: Vec<usize> = (0..requests.len()).collect();
            order.sort_by_key(|&i| (requests[i].arrival, i));
            let mut rt = Runtime::new(&run_cfg, db.file_lengths());
            for &i in &order {
                rt.advance_to(SimTime::ZERO + requests[i].arrival);
                let res = rt.run(&[QueryRun::default_run(&traces[i])]);
                prop_assert_eq!(
                    report.queries[i].start, res.timings[0].start,
                    "start of query {} ({:?})", i, admission
                );
                prop_assert_eq!(
                    report.queries[i].end, res.timings[0].end,
                    "end of query {} ({:?})", i, admission
                );
                prop_assert_eq!(report.queries[i].inference, SimDuration::ZERO);
            }
            prop_assert_eq!(report.stats, rt.stats());
            prop_assert_eq!(server.runtime().now(), rt.now());
            prop_assert_eq!(
                report.waves.len(), requests.len(),
                "one admission event per query at C=1 ({:?})", admission
            );
            for w in &report.waves {
                prop_assert_eq!(w.occupancy, 1);
            }
        }
    }

    /// `ServeReport` wave metrics stay internally consistent under the
    /// overlap queue policy across random traces, arrival streams and
    /// concurrency limits: occupancy is bounded by the admission limit and
    /// the recorded queue depth, every query is admitted exactly once, wave
    /// dispatch times are monotone, the per-wave buffer counters merge back
    /// to the report-level totals, and the summary helpers agree with the
    /// raw per-wave data.
    #[test]
    fn overlap_policy_wave_metrics_are_consistent(
        specs in prop::collection::vec(trace_strategy(), 1..7),
        arrivals in prop::collection::vec(0u64..1_500_000, 7),
        concurrency in 1usize..4,
        pool_frames in prop::sample::select(vec![64usize, 512]),
        charge_us in 0u64..3_000,
    ) {
        let db = db();
        let traces: Vec<Trace> = specs.iter().map(|s| build_trace(s)).collect();
        let n = traces.len();
        let run_cfg = RunConfig { pool_frames, ..Default::default() };
        let plan = plan();
        let requests: Vec<ServerRequest<'_>> = traces
            .iter()
            .zip(&arrivals)
            .map(|(trace, &us)| ServerRequest::new(&plan, trace, SimDuration::from_micros(us)))
            .collect();
        let cfg = ServerConfig {
            concurrency,
            admission: AdmissionMode::Wave,
            policy: QueuePolicy::Overlap,
            charge: InferenceCharge::Fixed(SimDuration::from_micros(charge_us)),
            prefetch_budget: None,
            tenant_quota: None,
        };
        let mut server = PrefetchServer::new(db, &run_cfg, cfg);
        let report = server.serve(&requests);

        prop_assert_eq!(report.queries.len(), n);
        prop_assert!(!report.waves.is_empty());

        // Wave-level invariants.
        let mut admitted_total = 0usize;
        let mut merged = pythia::buffer::BufferStats::default();
        let mut prev_dispatch = SimTime::ZERO;
        for (i, w) in report.waves.iter().enumerate() {
            prop_assert!(w.occupancy >= 1, "wave {} admitted nothing", i);
            prop_assert!(w.occupancy <= concurrency, "wave {} over the limit", i);
            prop_assert!(
                w.occupancy <= w.queue_depth,
                "wave {}: occupancy {} > queue depth {}", i, w.occupancy, w.queue_depth
            );
            prop_assert!(w.queue_depth <= n);
            prop_assert!(w.admitted_at >= prev_dispatch, "wave {} dispatched out of order", i);
            prev_dispatch = w.admitted_at;
            admitted_total += w.occupancy;
            merged.merge(&w.stats);
        }
        prop_assert_eq!(admitted_total, n, "every query admitted exactly once");
        prop_assert_eq!(merged, report.stats, "per-wave stats must partition the totals");

        // Query-level invariants tie back to the wave that served each query.
        for (i, q) in report.queries.iter().enumerate() {
            prop_assert!(q.wave < report.waves.len());
            prop_assert_eq!(q.admitted, report.waves[q.wave].admitted_at, "query {}", i);
            prop_assert!(q.arrival <= q.admitted, "query {} admitted before arriving", i);
            prop_assert!(q.admitted <= q.start);
            prop_assert!(q.start <= q.end);
        }

        // Summary helpers agree with the raw per-wave data.
        let max_depth = report.waves.iter().map(|w| w.queue_depth).max().unwrap();
        prop_assert_eq!(report.max_queue_depth(), max_depth);
        let mean_occ = n as f64 / report.waves.len() as f64;
        prop_assert!((report.mean_occupancy() - mean_occ).abs() < 1e-9);
    }

    /// Continuous-admission metrics invariants across random traces,
    /// arrivals, policies and concurrency limits: exactly one admission
    /// event per query, occupancy within `1..=concurrency`, monotone
    /// admission instants, causally ordered per-query timelines, and
    /// per-admission buffer counters that partition the report totals.
    #[test]
    fn continuous_admission_metrics_are_consistent(
        specs in prop::collection::vec(trace_strategy(), 1..7),
        arrivals in prop::collection::vec(0u64..1_500_000, 7),
        concurrency in 1usize..4,
        overlap_policy in any::<bool>(),
        pool_frames in prop::sample::select(vec![64usize, 512]),
        charge_us in 0u64..3_000,
    ) {
        let db = db();
        let traces: Vec<Trace> = specs.iter().map(|s| build_trace(s)).collect();
        let n = traces.len();
        let run_cfg = RunConfig { pool_frames, ..Default::default() };
        let plan = plan();
        let requests: Vec<ServerRequest<'_>> = traces
            .iter()
            .zip(&arrivals)
            .map(|(trace, &us)| ServerRequest::new(&plan, trace, SimDuration::from_micros(us)))
            .collect();
        let cfg = ServerConfig {
            concurrency,
            admission: AdmissionMode::Continuous,
            policy: if overlap_policy { QueuePolicy::Overlap } else { QueuePolicy::Fifo },
            charge: InferenceCharge::Fixed(SimDuration::from_micros(charge_us)),
            prefetch_budget: None,
            tenant_quota: None,
        };
        let mut server = PrefetchServer::new(db, &run_cfg, cfg);
        let report = server.serve(&requests);

        prop_assert_eq!(report.queries.len(), n);
        // Continuous admission dispatches queries one at a time: exactly one
        // admission event per query.
        prop_assert_eq!(report.waves.len(), n);

        let mut merged = pythia::buffer::BufferStats::default();
        let mut prev_dispatch = SimTime::ZERO;
        for (i, w) in report.waves.iter().enumerate() {
            prop_assert!(w.occupancy >= 1, "admission {} with empty slots only", i);
            prop_assert!(w.occupancy <= concurrency, "admission {} over the limit", i);
            prop_assert!(w.queue_depth >= 1, "admission {} from an empty queue", i);
            prop_assert!(w.queue_depth <= n);
            prop_assert!(w.admitted_at >= prev_dispatch, "admission {} out of order", i);
            prev_dispatch = w.admitted_at;
            merged.merge(&w.stats);
        }
        prop_assert_eq!(merged, report.stats, "per-admission stats must partition the totals");

        for (i, q) in report.queries.iter().enumerate() {
            prop_assert!(q.wave < report.waves.len());
            prop_assert_eq!(q.admitted, report.waves[q.wave].admitted_at, "query {}", i);
            prop_assert!(q.arrival <= q.admitted, "query {} admitted before arriving", i);
            prop_assert!(q.admitted <= q.start);
            prop_assert!(q.start <= q.end);
        }

        // The concurrency cap holds in *virtual time*, not just in the
        // per-admission occupancy bookkeeping: a query holds its slot over
        // [admitted, end), and slot counts only rise at admission instants,
        // so checking each admission instant covers the maximum. (This is
        // the invariant a completion whose final event straddles an arrival
        // used to break: the arrival was admitted inside the still-occupied
        // interval.)
        for (i, qi) in report.queries.iter().enumerate() {
            let held = report
                .queries
                .iter()
                .filter(|qj| qj.admitted <= qi.admitted && qi.admitted < qj.end)
                .count();
            prop_assert!(
                held <= concurrency,
                "query {}: {} slots held at its admission instant (cap {})",
                i, held, concurrency
            );
        }

        let max_depth = report.waves.iter().map(|w| w.queue_depth).max().unwrap();
        prop_assert_eq!(report.max_queue_depth(), max_depth);
    }

    /// Request tracing is a pure observation layer: serving with an enabled
    /// recorder — which emits per-request span trees and flow links, and
    /// mirrors every event into the always-on flight ring — leaves the
    /// schedule bit-identical to an untraced serve. The per-request latency
    /// breakdowns partition each query's end-to-end latency exactly, the
    /// `request.*` spans reconcile with the report, and the flight ring
    /// retains precisely the tail of the full event stream at any capacity.
    #[test]
    fn request_tracing_is_pure_observation_and_flight_ring_is_a_tail(
        specs in prop::collection::vec(trace_strategy(), 1..6),
        arrivals in prop::collection::vec(0u64..1_500_000, 6),
        concurrency in 1usize..4,
        continuous in any::<bool>(),
        flight_cap in prop::sample::select(vec![4usize, 32, 4096]),
        charge_us in 0u64..3_000,
    ) {
        let db = db();
        let traces: Vec<Trace> = specs.iter().map(|s| build_trace(s)).collect();
        let run_cfg = RunConfig { pool_frames: 128, ..Default::default() };
        let plan = plan();
        let requests: Vec<ServerRequest<'_>> = traces
            .iter()
            .zip(&arrivals)
            .map(|(trace, &us)| ServerRequest::new(&plan, trace, SimDuration::from_micros(us)))
            .collect();
        let cfg = ServerConfig {
            concurrency,
            admission: if continuous { AdmissionMode::Continuous } else { AdmissionMode::Wave },
            policy: QueuePolicy::Overlap,
            charge: InferenceCharge::Fixed(SimDuration::from_micros(charge_us)),
            prefetch_budget: None,
            tenant_quota: None,
        };

        let mut untraced = PrefetchServer::new(db, &run_cfg, cfg);
        let base = untraced.serve(&requests);

        let mut traced = PrefetchServer::new(db, &run_cfg, cfg);
        let mut recorder = Recorder::enabled();
        recorder.set_flight_capacity(flight_cap);
        traced.set_recorder(recorder);
        let report = traced.serve(&requests);
        let rec = traced.take_recorder();

        // Bit identity: tracing must not perturb virtual time.
        prop_assert_eq!(base.queries.len(), report.queries.len());
        for (i, (a, b)) in base.queries.iter().zip(&report.queries).enumerate() {
            prop_assert_eq!(a.arrival, b.arrival, "query {}", i);
            prop_assert_eq!(a.admitted, b.admitted, "query {}", i);
            prop_assert_eq!(a.start, b.start, "query {}", i);
            prop_assert_eq!(a.end, b.end, "query {}", i);
            prop_assert_eq!(a.inference, b.inference, "query {}", i);
        }
        prop_assert_eq!(base.stats, report.stats);
        prop_assert_eq!(untraced.runtime().now(), traced.runtime().now());

        // Breakdowns partition each query's end-to-end latency, and the
        // span tree drawn from them reconciles with the report: every query
        // gets its four `request.*` spans, tagged with its ordinal id, whose
        // bounds are exactly the report's arrival/admitted/start/end times.
        let n = report.queries.len();
        for name in ["request.queue", "request.admission", "request.infer", "request.replay"] {
            prop_assert_eq!(rec.event_count(name), n, "one {} span per query", name);
        }
        for (i, q) in report.queries.iter().enumerate() {
            prop_assert_eq!(q.request, i as u64 + 1, "serve assigns ordinal ids");
            let b = q.breakdown();
            prop_assert_eq!(b.queue_us, q.admission_wait().as_micros());
            prop_assert_eq!(
                b.queue_us + b.admission_us + b.replay_us,
                q.latency().as_micros(),
                "breakdown must partition the end-to-end latency of query {}", i
            );
            let tagged = |name: &str| {
                rec.events()
                    .iter()
                    .find(|e| e.name == name && e.args.contains(&("request", q.request)))
                    .cloned()
            };
            let queue = tagged("request.queue").expect("queue span");
            prop_assert_eq!(queue.ts_us, q.arrival.as_micros());
            prop_assert_eq!(queue.ts_us + queue.dur_us.unwrap(), q.admitted.as_micros());
            let replay = tagged("request.replay").expect("replay span");
            prop_assert_eq!(replay.ts_us, q.start.as_micros());
            prop_assert_eq!(replay.ts_us + replay.dur_us.unwrap(), q.end.as_micros());
        }

        // Flight ring == tail of the full same-run event stream: the ring
        // drops only the oldest events, never reorders or rewrites.
        let events = rec.events();
        let ring = rec.flight().snapshot();
        let tail_from = events.len().saturating_sub(flight_cap);
        prop_assert_eq!(ring.len(), events.len().min(flight_cap));
        prop_assert_eq!(ring.as_slice(), &events[tail_from..]);
    }

    /// The C=1/FIFO/Fixed bit-identity pin also holds when queries route
    /// through the model registry (single tenant): resolving the model via a
    /// `TenantFleet` snapshot instead of a fixed borrow changes nothing about
    /// the schedule — per-query timings, inference charges, buffer counters
    /// and the final clock are bit-identical, in both admission modes.
    #[test]
    fn registry_routed_c1_fifo_is_bit_identical_to_fixed_predictor(
        picks in prop::collection::vec(0usize..8, 1..6),
        arrivals in prop::collection::vec(0u64..1_000_000, 6),
        charge_us in 0u64..2_000,
    ) {
        let fx = trained();
        let run_cfg = RunConfig::default();
        let requests: Vec<ServerRequest<'_>> = picks
            .iter()
            .zip(&arrivals)
            .map(|(&p, &us)| {
                ServerRequest::new(&fx.plans[p], &fx.traces[p], SimDuration::from_micros(us))
            })
            .collect();

        for admission in [AdmissionMode::Wave, AdmissionMode::Continuous] {
            let cfg = ServerConfig {
                concurrency: 1,
                admission,
                policy: QueuePolicy::Fifo,
                charge: InferenceCharge::Fixed(SimDuration::from_micros(charge_us)),
                prefetch_budget: None,
                tenant_quota: None,
            };

            let mut fixed = PrefetchServer::new(&fx.db, &run_cfg, cfg).with_predictor(&fx.tw);
            let fixed_rep = fixed.serve(&requests);

            let fleet = Arc::new(TenantFleet::new("t0"));
            fleet.publish(fx.tw.duplicate());
            let mut routed = PrefetchServer::new(&fx.db, &run_cfg, cfg).with_registry(fleet);
            let routed_rep = routed.serve(&requests);

            for (i, (a, b)) in fixed_rep.queries.iter().zip(&routed_rep.queries).enumerate() {
                prop_assert_eq!(a.start, b.start, "start of query {} ({:?})", i, admission);
                prop_assert_eq!(a.end, b.end, "end of query {} ({:?})", i, admission);
                prop_assert_eq!(
                    a.inference, b.inference,
                    "inference charge of query {} ({:?})", i, admission
                );
            }
            prop_assert_eq!(&fixed_rep.stats, &routed_rep.stats, "{:?}", admission);
            prop_assert_eq!(fixed.runtime().now(), routed.runtime().now());
            prop_assert_eq!(fixed_rep.waves.len(), routed_rep.waves.len());
        }
    }

    /// Tentpole pin: a mid-stream hot-swap to a bit-identical model is
    /// bit-identical to not swapping at all, and the per-tenant
    /// `ServeReport` views partition the global totals — queries, admission
    /// events, latencies, inference charges and buffer counters each sum
    /// back to the report-level numbers.
    #[test]
    fn hot_swap_is_bit_identical_and_tenant_stats_partition(
        picks in prop::collection::vec(0usize..8, 2..7),
        arrivals in prop::collection::vec(0u64..1_000_000, 7),
        tenants in prop::collection::vec(0u32..3, 7),
        concurrency in 1usize..4,
        swap_at in 1usize..4,
        charge_us in 0u64..2_000,
    ) {
        let fx = trained();
        let run_cfg = RunConfig::default();
        let n = picks.len();
        let requests: Vec<ServerRequest<'_>> = picks
            .iter()
            .zip(&arrivals)
            .zip(&tenants)
            .map(|((&p, &us), &tenant)| {
                ServerRequest::new(&fx.plans[p], &fx.traces[p], SimDuration::from_micros(us))
                    .with_tenant(tenant)
            })
            .collect();
        let cfg = ServerConfig {
            concurrency,
            admission: AdmissionMode::Continuous,
            policy: QueuePolicy::Fifo,
            charge: InferenceCharge::Fixed(SimDuration::from_micros(charge_us)),
            prefetch_budget: None,
            tenant_quota: None,
        };

        // Baseline: registry-routed serving, no swap.
        let fleet = Arc::new(TenantFleet::new("a"));
        fleet.publish(fx.tw.duplicate());
        let mut base = PrefetchServer::new(&fx.db, &run_cfg, cfg).with_registry(fleet);
        let base_rep = base.serve(&requests);

        // Swap run: publish a bit-identical duplicate at the `swap_at`-th
        // admission (if the stream is long enough to reach it).
        let fleet2 = Arc::new(TenantFleet::new("a"));
        fleet2.publish(fx.tw.duplicate());
        let swapper = Arc::clone(&fleet2);
        let spare = fx.tw.duplicate();
        let mut swapped = PrefetchServer::new(&fx.db, &run_cfg, cfg)
            .with_registry(Arc::clone(&fleet2));
        swapped.set_admission_hook(move |k| {
            if k == swap_at {
                swapper.publish(spare.duplicate());
            }
        });
        let swap_rep = swapped.serve(&requests);
        if swap_at < n {
            prop_assert_eq!(
                fleet2.current("fx").expect("published").version, 2,
                "the swap must actually have happened mid-stream"
            );
        }

        for (i, (a, b)) in base_rep.queries.iter().zip(&swap_rep.queries).enumerate() {
            prop_assert_eq!(a.start, b.start, "start of query {}", i);
            prop_assert_eq!(a.end, b.end, "end of query {}", i);
            prop_assert_eq!(a.inference, b.inference, "inference charge of query {}", i);
            prop_assert_eq!(a.tenant, b.tenant, "tenant tag of query {}", i);
        }
        prop_assert_eq!(&base_rep.stats, &swap_rep.stats);
        prop_assert_eq!(base.runtime().now(), swapped.runtime().now());

        // Per-tenant views partition the global report.
        let by = swap_rep.by_tenant();
        let mut queries = 0usize;
        let mut admissions = 0usize;
        let mut latency = SimDuration::ZERO;
        let mut wait = SimDuration::ZERO;
        let mut inference = SimDuration::ZERO;
        let mut merged = pythia::buffer::BufferStats::default();
        for rep in by.values() {
            queries += rep.queries;
            admissions += rep.admissions;
            latency = latency + rep.total_latency;
            wait = wait + rep.total_admission_wait;
            inference = inference + rep.inference;
            merged.merge(&rep.stats);
        }
        prop_assert_eq!(queries, n, "tenant query counts partition the stream");
        prop_assert_eq!(admissions, swap_rep.waves.len(), "admission events partition");
        prop_assert_eq!(&merged, &swap_rep.stats, "tenant buffer stats partition the totals");

        let mut want_latency = SimDuration::ZERO;
        let mut want_wait = SimDuration::ZERO;
        let mut want_inference = SimDuration::ZERO;
        for q in &swap_rep.queries {
            want_latency = want_latency + (q.end - q.arrival);
            want_wait = want_wait + (q.admitted - q.arrival);
            want_inference = want_inference + q.inference;
        }
        prop_assert_eq!(latency, want_latency, "tenant latencies sum to the stream total");
        prop_assert_eq!(wait, want_wait, "tenant admission waits sum to the stream total");
        prop_assert_eq!(inference, want_inference, "tenant inference charges sum");

        // Every tagged tenant is present; untagged tenants report zeros.
        for &t in &tenants[..n] {
            prop_assert!(by.contains_key(&t));
        }
        let absent = swap_rep.tenant_report(99);
        prop_assert_eq!(absent.queries, 0);
        prop_assert_eq!(absent.mean_latency(), SimDuration::ZERO);
    }
}
