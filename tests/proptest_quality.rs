//! Property tests for the streaming quality tracker: the O(1) rolling
//! window must agree **exactly** (integer sums, hence bit-equal f64 rates)
//! with a batch recomputation over the same tail of outcomes, and the
//! per-tenant / per-template lifetime slices must partition the global
//! totals — with zero-query tenants reporting finite zeros, never NaN.

use proptest::prelude::*;

use pythia::obs::quality::{
    batch_totals, QualityConfig, QualityOutcome, QualityTotals, QualityTracker,
};
use pythia::obs::Recorder;

/// Templates the partition cases spread their outcomes across
/// (`observe` takes `&'static str`, matching replay span names).
const TEMPLATES: [&str; 3] = ["replay.t18", "replay.t91", "replay.imdb1a"];

/// Strategy for one admission outcome. `prefetch_issued` is derived as
/// `useful + wasted + slack` so the counts stay mutually consistent (issued
/// covers every classified prefetch plus some still in flight).
fn outcome_strategy() -> impl Strategy<Value = QualityOutcome> {
    (
        0u64..50,
        0u64..20,
        0u64..20,
        0u64..10,
        0u64..6,
        0u64..4,
        0u64..10_000,
    )
        .prop_map(
            |(hits, os_copies, disk_reads, useful, wasted, slack, wait_us)| QualityOutcome {
                hits,
                os_copies,
                disk_reads,
                prefetch_issued: useful + wasted + slack,
                prefetch_useful: useful,
                prefetch_wasted: wasted,
                wait_us,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Feeding a stream through `observe` leaves the rolling window equal to
    /// a batch recomputation over the last `window` outcomes — counts and
    /// every derived rate (hit rate, precision, recall, F1, mean wait) are
    /// exactly equal, across random streams and window sizes.
    #[test]
    fn rolling_window_equals_batch_over_the_tail(
        outcomes in prop::collection::vec(outcome_strategy(), 1..40),
        window in 1usize..12,
    ) {
        let cfg = QualityConfig { window, ..QualityConfig::default() };
        let mut tracker = QualityTracker::new(cfg);
        let mut rec = Recorder::disabled();
        for (i, o) in outcomes.iter().enumerate() {
            tracker.observe(3, TEMPLATES[0], *o, i as u64 * 100, &mut rec);

            // The window at every step, not just the end: the tail is the
            // last `window` outcomes fed so far.
            let tail = &outcomes[(i + 1).saturating_sub(window)..=i];
            let want = batch_totals(tail);
            let got = tracker.window(3, TEMPLATES[0]).expect("slot exists after a feed");
            prop_assert_eq!(got, want, "window != batch tail after outcome {}", i);
            prop_assert_eq!(got.hit_rate(), want.hit_rate());
            prop_assert_eq!(got.prefetch_precision(), want.prefetch_precision());
            prop_assert_eq!(got.prefetch_recall(), want.prefetch_recall());
            prop_assert_eq!(got.prefetch_f1(), want.prefetch_f1());
            prop_assert_eq!(got.mean_wait_us(), want.mean_wait_us());
            prop_assert!(got.hit_rate().is_finite());
            prop_assert!(got.prefetch_f1().is_finite());
        }

        // Lifetime totals cover the whole stream regardless of the window.
        let life = tracker.lifetime(3, TEMPLATES[0]).expect("slot exists");
        prop_assert_eq!(life, batch_totals(&outcomes));
    }

    /// Per-tenant lifetime slices partition the global totals, per-template
    /// slices partition each tenant's, and a tenant that never served a
    /// query reports finite zeros from every rate accessor (never NaN) and
    /// no window at all.
    #[test]
    fn tenant_slices_partition_global_and_idle_tenants_are_nan_free(
        outcomes in prop::collection::vec(outcome_strategy(), 1..50),
        tenants in prop::collection::vec(0u32..3, 50),
        picks in prop::collection::vec(0usize..3, 50),
    ) {
        let mut tracker = QualityTracker::default();
        let mut rec = Recorder::disabled();
        for (i, o) in outcomes.iter().enumerate() {
            tracker.observe(tenants[i], TEMPLATES[picks[i]], *o, i as u64 * 100, &mut rec);
        }

        let global = tracker.global_lifetime();
        prop_assert_eq!(global.outcomes, outcomes.len() as u64);

        let mut across_tenants = QualityTotals::default();
        for t in tracker.tenant_ids() {
            let tenant_total = tracker.tenant_lifetime(t);
            across_tenants.merge(&tenant_total);

            // Template slices partition this tenant's totals.
            let mut across_templates = QualityTotals::default();
            for tpl in TEMPLATES {
                if let Some(slice) = tracker.lifetime(t, tpl) {
                    prop_assert!(slice.outcomes > 0, "empty slot materialized");
                    across_templates.merge(&slice);
                }
            }
            prop_assert_eq!(
                across_templates, tenant_total,
                "template slices must partition tenant {}", t
            );
        }
        prop_assert_eq!(across_tenants, global, "tenant slices must partition the global totals");

        // A tenant that never served anything: zeroed totals, finite rates.
        prop_assert!(!tracker.tenant_ids().contains(&9));
        let idle = tracker.tenant_lifetime(9);
        prop_assert_eq!(idle, QualityTotals::default());
        prop_assert_eq!(idle.hit_rate(), 0.0);
        prop_assert_eq!(idle.prefetch_precision(), 0.0);
        prop_assert_eq!(idle.prefetch_recall(), 0.0);
        prop_assert_eq!(idle.prefetch_f1(), 0.0);
        prop_assert_eq!(idle.mean_wait_us(), 0);
        prop_assert!(tracker.window(9, TEMPLATES[0]).is_none());
        prop_assert_eq!(tracker.alerts(9), 0);
        prop_assert_eq!(tracker.mix_divergence(9), 0.0);
    }
}
