//! Cross-crate invariants of the timed replay stack: accounting consistency,
//! determinism, and the ordering relations between prefetch variants.

use pythia::baselines::{oracle_prefetch, OracleScope};
use pythia::db::runtime::{QueryRun, RunConfig, Runtime};
use pythia::db::trace::Trace;
use pythia::sim::SimDuration;
use pythia::workloads::templates::{sample_workload, Template};
use pythia::workloads::{build_benchmark, BenchmarkDb, GeneratorConfig};

fn setup() -> (BenchmarkDb, Vec<Trace>) {
    let bench = build_benchmark(&GeneratorConfig {
        scale: 0.08,
        seed: 31,
    });
    let queries = sample_workload(&bench, Template::T18, 4, 13);
    let traces = queries
        .iter()
        .map(|q| pythia::db::exec::execute(&q.plan, &bench.db).1)
        .collect();
    (bench, traces)
}

#[test]
fn stats_account_for_every_read() {
    let (bench, traces) = setup();
    let cfg = RunConfig::default();
    for trace in &traces {
        let mut rt = Runtime::new(&cfg, bench.db.file_lengths());
        let res = rt.run(&[QueryRun::default_run(trace)]);
        assert_eq!(
            res.stats.total_reads() as usize,
            trace.read_count(),
            "every trace read must be classified exactly once"
        );
    }
}

#[test]
fn replay_is_deterministic_across_fresh_stacks() {
    let (bench, traces) = setup();
    let cfg = RunConfig::default();
    for trace in &traces {
        let run = |_: ()| {
            let mut rt = Runtime::new(&cfg, bench.db.file_lengths());
            let res = rt.run(&[QueryRun::default_run(trace)]);
            (res.timings[0].elapsed(), res.stats)
        };
        assert_eq!(run(()), run(()));
    }
}

#[test]
fn oracle_prefetch_never_slower() {
    let (bench, traces) = setup();
    let cfg = RunConfig::default();
    for trace in &traces {
        let mut rt = Runtime::new(&cfg, bench.db.file_lengths());
        let base = rt.run(&[QueryRun::default_run(trace)]).timings[0].elapsed();
        let pf = oracle_prefetch(trace, OracleScope::All);
        let mut rt = Runtime::new(&cfg, bench.db.file_lengths());
        let with = rt
            .run(&[QueryRun::with_prefetch(trace, pf, SimDuration::ZERO)])
            .timings[0]
            .elapsed();
        assert!(
            with <= base,
            "oracle prefetch must not slow a query down: {with} vs {base}"
        );
    }
}

#[test]
fn scoped_oracles_bracket_the_full_oracle() {
    // Prefetching everything is at least as good as prefetching only one
    // class of reads.
    let (bench, traces) = setup();
    let cfg = RunConfig::default();
    let time = |trace: &Trace, scope: Option<OracleScope>| {
        let mut rt = Runtime::new(&cfg, bench.db.file_lengths());
        let run = match scope {
            None => QueryRun::default_run(trace),
            Some(s) => QueryRun::with_prefetch(trace, oracle_prefetch(trace, s), SimDuration::ZERO),
        };
        rt.run(&[run]).timings[0].elapsed()
    };
    for trace in &traces {
        let all = time(trace, Some(OracleScope::All));
        let seq = time(trace, Some(OracleScope::SequentialOnly));
        let nonseq = time(trace, Some(OracleScope::NonSequentialOnly));
        let dflt = time(trace, None);
        assert!(all <= seq + SimDuration::from_micros(1000));
        assert!(all <= nonseq + SimDuration::from_micros(1000));
        assert!(nonseq <= dflt);
        assert!(seq <= dflt);
    }
}

#[test]
fn concurrent_makespan_bounded_by_serial_sum() {
    let (bench, traces) = setup();
    let cfg = RunConfig::default();
    // Serial cold times.
    let serial: u64 = traces
        .iter()
        .map(|t| {
            let mut rt = Runtime::new(&cfg, bench.db.file_lengths());
            rt.run(&[QueryRun::default_run(t)]).timings[0]
                .elapsed()
                .as_micros()
        })
        .sum();
    // All four at once sharing the stack.
    let mut rt = Runtime::new(&cfg, bench.db.file_lengths());
    let runs: Vec<QueryRun<'_>> = traces.iter().map(QueryRun::default_run).collect();
    let makespan = rt.run(&runs).makespan().as_micros();
    assert!(
        makespan <= serial,
        "sharing the buffer pool cannot be worse than serial cold runs: {makespan} vs {serial}"
    );
}

#[test]
fn warm_rerun_is_cheaper_and_reset_restores_cold() {
    let (bench, traces) = setup();
    let cfg = RunConfig::default();
    let trace = &traces[0];
    let mut rt = Runtime::new(&cfg, bench.db.file_lengths());
    let cold = rt.run(&[QueryRun::default_run(trace)]).timings[0].elapsed();
    let warm = rt.run(&[QueryRun::default_run(trace)]).timings[0].elapsed();
    assert!(warm < cold, "warm {warm} vs cold {cold}");
    rt.reset();
    let cold2 = rt.run(&[QueryRun::default_run(trace)]).timings[0].elapsed();
    assert_eq!(cold, cold2);
}
