//! End-to-end integration: benchmark generator → executor traces → Pythia
//! training → inference → prefetched replay, across all workspace crates.

use pythia::core::metrics::f1_score;
use pythia::core::predictor::ground_truth;
use pythia::core::PythiaConfig;
use pythia::db::plan::PlanNode;
use pythia::db::runtime::{QueryRun, RunConfig, Runtime};
use pythia::sim::SimDuration;
use pythia::workloads::templates::{sample_workload, Template};
use pythia::workloads::{build_benchmark, BenchmarkDb, GeneratorConfig};
use pythia::PythiaSystem;

fn small_bench() -> BenchmarkDb {
    build_benchmark(&GeneratorConfig {
        scale: 0.1,
        seed: 99,
    })
}

fn quick_cfg() -> PythiaConfig {
    PythiaConfig {
        epochs: 25,
        batch_size: 16,
        lr: 3e-3,
        pos_weight: 2.0,
        ..PythiaConfig::fast()
    }
}

#[test]
fn pipeline_learns_and_speeds_up_t91() {
    let bench = small_bench();
    let n = 60;
    let queries = sample_workload(&bench, Template::T91, n, 17);
    let traces: Vec<_> = queries
        .iter()
        .map(|q| pythia::db::exec::execute(&q.plan, &bench.db).1)
        .collect();
    let (test_q, train_q) = queries.split_at(6);
    let (test_t, train_t) = traces.split_at(6);

    let pool_frames = (bench.db.disk.total_pages() as usize / 8).max(256);
    let mut system = PythiaSystem::new(quick_cfg(), pool_frames * 3 / 4);
    let train_plans: Vec<_> = train_q.iter().map(|q| q.plan.clone()).collect();
    system.learn_workload(&bench.db, "t91", &train_plans, train_t, None);
    assert_eq!(system.workload_count(), 1);

    let tw = &system.workloads()[0];
    let modeled = tw.modeled_objects();
    assert!(modeled.len() >= 4, "T91 probes several dims: {modeled:?}");

    let run_cfg = RunConfig {
        pool_frames,
        ..RunConfig::default()
    };
    let mut f1s = Vec::new();
    let mut speedups = Vec::new();
    for (q, trace) in test_q.iter().zip(test_t) {
        let eng = system
            .engage(&bench.db, &q.plan)
            .expect("in-distribution query engages");
        let m = f1_score(
            &tw.infer(&bench.db, &q.plan).as_set(),
            &ground_truth(trace, &modeled),
        );
        f1s.push(m.f1);

        let mut rt = Runtime::new(&run_cfg, bench.db.file_lengths());
        let base = rt.run(&[QueryRun::default_run(trace)]).timings[0].elapsed();
        rt.reset();
        let with = rt
            .run(&[QueryRun::with_prefetch(trace, eng.prefetch, eng.inference)])
            .timings[0]
            .elapsed();
        speedups.push(base.as_micros() as f64 / with.as_micros() as f64);
    }
    let mean_f1 = f1s.iter().sum::<f64>() / f1s.len() as f64;
    let mean_sp = speedups.iter().sum::<f64>() / speedups.len() as f64;
    assert!(
        mean_f1 > 0.35,
        "held-out F1 too low: {mean_f1:.3} ({f1s:?})"
    );
    assert!(
        mean_sp > 1.2,
        "Pythia should speed up T91: {mean_sp:.2} ({speedups:?})"
    );
}

#[test]
fn out_of_distribution_query_falls_back() {
    let bench = small_bench();
    let queries = sample_workload(&bench, Template::T91, 20, 17);
    let traces: Vec<_> = queries
        .iter()
        .map(|q| pythia::db::exec::execute(&q.plan, &bench.db).1)
        .collect();
    let cfg = PythiaConfig {
        epochs: 2,
        ..PythiaConfig::fast()
    };
    let mut system = PythiaSystem::new(cfg, 512);
    let plans: Vec<_> = queries.iter().map(|q| q.plan.clone()).collect();
    system.learn_workload(&bench.db, "t91", &plans, &traces, None);

    // A full scan of an unrelated table must not engage Pythia.
    let foreign = PlanNode::SeqScan {
        table: bench.title,
        pred: None,
    };
    assert!(system.engage(&bench.db, &foreign).is_none());
    // An IMDB template query also does not match the T91 workload.
    let imdb = sample_workload(&bench, Template::Imdb1a, 1, 3).remove(0);
    assert!(system.engage(&bench.db, &imdb.plan).is_none());
}

#[test]
fn wrong_predictions_cause_no_meaningful_regression() {
    // Paper: "even if PYTHIA does not predict any page correctly, we can
    // expect the regression to be within the margin of error".
    let bench = small_bench();
    let q = sample_workload(&bench, Template::T18, 1, 5).remove(0);
    let (_, trace) = pythia::db::exec::execute(&q.plan, &bench.db);

    let run_cfg = RunConfig::default();
    let mut rt = Runtime::new(&run_cfg, bench.db.file_lengths());
    let base = rt.run(&[QueryRun::default_run(&trace)]).timings[0].elapsed();

    // Prefetch garbage: pages of a file the query never touches.
    let junk_file = bench
        .db
        .object_file(bench.db.table_info(bench.title).object);
    let junk: Vec<_> = (0..200)
        .map(|p| pythia::sim::PageId::new(junk_file, p))
        .collect();
    let mut rt = Runtime::new(&run_cfg, bench.db.file_lengths());
    let with = rt
        .run(&[QueryRun::with_prefetch(&trace, junk, SimDuration::ZERO)])
        .timings[0]
        .elapsed();
    let ratio = with.as_micros() as f64 / base.as_micros() as f64;
    assert!(ratio < 1.05, "wrong prefetch regressed by {ratio:.3}");
}

#[test]
fn multiple_workloads_route_correctly() {
    let bench = small_bench();
    let cfg = PythiaConfig {
        epochs: 2,
        ..PythiaConfig::fast()
    };
    let mut system = PythiaSystem::new(cfg, 512);
    for (name, template) in [("t18", Template::T18), ("imdb", Template::Imdb1a)] {
        let queries = sample_workload(&bench, template, 16, 4);
        let traces: Vec<_> = queries
            .iter()
            .map(|q| pythia::db::exec::execute(&q.plan, &bench.db).1)
            .collect();
        let plans: Vec<_> = queries.iter().map(|q| q.plan.clone()).collect();
        let restrict = template.prefetch_objects(&bench);
        system.learn_workload(&bench.db, name, &plans, &traces, restrict.as_deref());
    }
    assert_eq!(system.workload_count(), 2);

    let t18 = sample_workload(&bench, Template::T18, 1, 77).remove(0);
    assert_eq!(system.engage(&bench.db, &t18.plan).unwrap().workload, "t18");
    let imdb = sample_workload(&bench, Template::Imdb1a, 1, 77).remove(0);
    assert_eq!(
        system.engage(&bench.db, &imdb.plan).unwrap().workload,
        "imdb"
    );
}
