//! End-to-end checks of the observability layer (`pythia-obs`) against the
//! serving stack:
//!
//! * trace counters and instant events reconcile **exactly** with the
//!   `BufferStats` the runtime reports (hits / OS copies / disk reads /
//!   prefetch issued),
//! * per-query `query.replay*` span ends reconcile exactly with the
//!   runtime's and server's reported end times (the server test names its
//!   spans per template, e.g. `query.replay.T18`),
//! * two same-seed runs produce **byte-identical** virtual-time traces,
//! * the emitted Chrome trace JSON is schema-valid (the exact shape
//!   Perfetto's legacy JSON importer accepts), and
//! * the metrics snapshot JSON parses with the documented structure.

use pythia::core::server::{
    AdmissionMode, InferenceCharge, PrefetchServer, QueuePolicy, ServerConfig, ServerRequest,
};
use pythia::db::catalog::{Database, ObjectId};
use pythia::db::plan::PlanNode;
use pythia::db::runtime::{QueryRun, RunConfig, Runtime};
use pythia::db::trace::{AccessKind, Trace, TraceEvent};
use pythia::db::types::Schema;
use pythia::obs::Recorder;
use pythia::sim::{FileId, PageId, SimDuration};
use pythia::workloads::templates::Template;

fn fixture_db() -> Database {
    let mut db = Database::new();
    let t = db.create_table("t", Schema::ints(&["a"]));
    for i in 0..2000i64 {
        db.insert(t, Database::row(&[i]));
    }
    db
}

fn seq_trace(start: u32, n: u32) -> Trace {
    let events = (start..start + n)
        .map(|p| TraceEvent::Read {
            obj: ObjectId(0),
            page: PageId::new(FileId(0), p),
            kind: AccessKind::SeqScan,
        })
        .collect();
    Trace { events }
}

/// Replay a small batch — one query with an explicit prefetch plan, one
/// without — on a traced runtime and return the result plus the recorder.
fn traced_run(db: &Database) -> (pythia::db::runtime::RunResult, Recorder) {
    let cfg = RunConfig {
        pool_frames: 64,
        os_cache_pages: 96,
        ..Default::default()
    };
    let mut rt = Runtime::new(&cfg, db.file_lengths());
    rt.set_recorder(Recorder::enabled());
    let t0 = seq_trace(0, 24);
    let t1 = seq_trace(12, 24);
    let prefetch: Vec<PageId> = (0..24).map(|p| PageId::new(FileId(0), p)).collect();
    let res = rt.run(&[
        QueryRun::with_prefetch(&t0, prefetch, SimDuration::from_micros(80)),
        QueryRun::default_run(&t1),
    ]);
    (res, rt.take_recorder())
}

#[test]
fn trace_counters_reconcile_exactly_with_buffer_stats() {
    let db = fixture_db();
    let (res, rec) = traced_run(&db);
    let s = res.stats;
    assert!(s.total_reads() == 48, "fixture should replay 48 reads");
    assert!(s.prefetch_issued > 0, "fixture should actually prefetch");

    // Counters at the exact BufferStats increment sites.
    assert_eq!(rec.counter("reads.hit"), s.hits);
    assert_eq!(rec.counter("reads.os_copy"), s.os_copies);
    assert_eq!(rec.counter("reads.disk"), s.disk_reads);
    assert_eq!(rec.counter("prefetch.issued"), s.prefetch_issued);
    assert_eq!(rec.counter("reads.prefetch_wait"), s.prefetch_waits);
    assert_eq!(
        rec.counter("prefetch.already_resident"),
        s.prefetch_already_resident
    );
    assert_eq!(rec.counter("prefetch.useful"), s.prefetch_useful);
    assert_eq!(rec.counter("buffer.evictions"), s.evictions);
    assert_eq!(rec.counter("queries.replayed"), 2);

    // One instant per classified read, one I/O span per issued prefetch.
    assert_eq!(rec.event_count("read.hit") as u64, s.hits);
    assert_eq!(rec.event_count("read.os_copy") as u64, s.os_copies);
    assert_eq!(rec.event_count("read.disk") as u64, s.disk_reads);
    assert_eq!(rec.event_count("prefetch.io") as u64, s.prefetch_issued);
}

#[test]
fn replay_span_ends_reconcile_exactly_with_timings() {
    let db = fixture_db();
    let (res, rec) = traced_run(&db);
    let mut span_ends: Vec<u64> = rec
        .events()
        .iter()
        .filter(|e| e.name == "query.replay")
        .map(|e| e.ts_us + e.dur_us.expect("replay is a complete span"))
        .collect();
    span_ends.sort_unstable();
    let mut timing_ends: Vec<u64> = res.timings.iter().map(|t| t.end.as_micros()).collect();
    timing_ends.sort_unstable();
    assert_eq!(span_ends, timing_ends);
}

#[test]
fn traced_server_reconciles_and_virtual_trace_is_deterministic() {
    let db = fixture_db();
    let serve = || {
        let run_cfg = RunConfig {
            pool_frames: 64,
            os_cache_pages: 96,
            ..Default::default()
        };
        let cfg = ServerConfig {
            concurrency: 2,
            // Wave mode: this test pins the wave-barrier trace vocabulary
            // (the `server.waves` counter below); the continuous-admission
            // vocabulary is reconciled in pythia-experiments' traced test.
            admission: AdmissionMode::Wave,
            policy: QueuePolicy::Overlap,
            charge: InferenceCharge::Fixed(SimDuration::from_micros(40)),
            prefetch_budget: Some(16),
            tenant_quota: None,
        };
        let traces: Vec<Trace> = (0..6).map(|q| seq_trace(q * 13, 20)).collect();
        let requests: Vec<ServerRequest<'_>> = traces
            .iter()
            .enumerate()
            .map(|(i, trace)| ServerRequest {
                plan: &PlanNode::SeqScan {
                    table: pythia::db::catalog::TableId(0),
                    pred: None,
                },
                trace,
                arrival: SimDuration::from_micros(150 * i as u64),
                // Alternate templates so the trace groups repeated shapes.
                span_name: [Template::T18, Template::T91][i % 2].replay_span(),
                tenant: 0,
                request: 0,
            })
            .collect();
        let mut server = PrefetchServer::new(&db, &run_cfg, cfg);
        server.set_recorder(Recorder::enabled());
        let report = server.serve(&requests);
        (report, server.take_recorder())
    };
    let (report, rec) = serve();

    // Counter reconciliation at the server level.
    assert_eq!(rec.counter("reads.hit"), report.stats.hits);
    assert_eq!(rec.counter("reads.os_copy"), report.stats.os_copies);
    assert_eq!(rec.counter("reads.disk"), report.stats.disk_reads);
    assert_eq!(rec.counter("prefetch.issued"), report.stats.prefetch_issued);
    assert_eq!(rec.counter("server.waves"), report.waves.len() as u64);
    assert_eq!(rec.counter("server.arrivals"), report.queries.len() as u64);

    // Per-query replay span ends == ServeReport end times. Spans carry
    // template-derived names, so match on the shared prefix.
    let replay_spans: Vec<_> = rec
        .events()
        .iter()
        .filter(|e| e.name.starts_with("query.replay."))
        .collect();
    for t in [Template::T18, Template::T91] {
        assert_eq!(
            replay_spans
                .iter()
                .filter(|e| e.name == t.replay_span())
                .count(),
            3,
            "three queries per template in the fixture"
        );
    }
    let mut span_ends: Vec<u64> = replay_spans
        .iter()
        .map(|e| e.ts_us + e.dur_us.unwrap())
        .collect();
    span_ends.sort_unstable();
    let mut report_ends: Vec<u64> = report.queries.iter().map(|q| q.end.as_micros()).collect();
    report_ends.sort_unstable();
    assert_eq!(span_ends, report_ends);

    // Same stack, same seed → byte-identical virtual-clock traces.
    let (_, rec2) = serve();
    assert_eq!(rec.virtual_trace_json(), rec2.virtual_trace_json());
}

#[test]
fn served_trace_carries_flow_linked_request_spans() {
    let db = fixture_db();
    let run_cfg = RunConfig {
        pool_frames: 64,
        os_cache_pages: 96,
        ..Default::default()
    };
    let cfg = ServerConfig {
        concurrency: 2,
        admission: AdmissionMode::Continuous,
        policy: QueuePolicy::Fifo,
        charge: InferenceCharge::Fixed(SimDuration::from_micros(40)),
        prefetch_budget: Some(16),
        tenant_quota: None,
    };
    let traces: Vec<Trace> = (0..4).map(|q| seq_trace(q * 11, 16)).collect();
    let requests: Vec<ServerRequest<'_>> = traces
        .iter()
        .enumerate()
        .map(|(i, trace)| ServerRequest {
            plan: &PlanNode::SeqScan {
                table: pythia::db::catalog::TableId(0),
                pred: None,
            },
            trace,
            arrival: SimDuration::from_micros(100 * i as u64),
            span_name: Template::T18.replay_span(),
            tenant: 0,
            request: 0,
        })
        .collect();
    let mut server = PrefetchServer::new(&db, &run_cfg, cfg);
    server.set_recorder(Recorder::enabled());
    let report = server.serve(&requests);
    let rec = server.take_recorder();

    // Zero ids are replaced with per-serve ordinals.
    for (i, q) in report.queries.iter().enumerate() {
        assert_eq!(q.request, i as u64 + 1, "serve assigns ordinal request ids");
    }

    // The request span tree: one queue/admission/infer/replay span per query.
    for name in [
        "request.queue",
        "request.admission",
        "request.infer",
        "request.replay",
    ] {
        assert_eq!(rec.event_count(name), 4, "one {name} span per query");
    }

    // request.replay ends reconcile with the report's per-query end times.
    let mut span_ends: Vec<u64> = rec
        .events()
        .iter()
        .filter(|e| e.name == "request.replay")
        .map(|e| e.ts_us + e.dur_us.expect("request.replay is a complete span"))
        .collect();
    span_ends.sort_unstable();
    let mut report_ends: Vec<u64> = report.queries.iter().map(|q| q.end.as_micros()).collect();
    report_ends.sort_unstable();
    assert_eq!(span_ends, report_ends);

    // Chrome export links each request track to the server track with one
    // flow start + one flow finish carrying the request id.
    let json = rec.chrome_trace_json();
    let v: serde_json::Value = serde_json::from_str(&json).expect("trace must be valid JSON");
    let mut starts = std::collections::BTreeSet::new();
    let mut finishes = std::collections::BTreeSet::new();
    for e in v.as_array().expect("trace is a JSON array") {
        match e["ph"].as_str().expect("ph is a string") {
            "s" => {
                starts.insert(e["id"].as_u64().expect("flow start id"));
            }
            "f" => {
                assert_eq!(e["bp"].as_str(), Some("e"), "flow finish binds enclosing");
                finishes.insert(e["id"].as_u64().expect("flow finish id"));
            }
            _ => {}
        }
    }
    let want: std::collections::BTreeSet<u64> = (1..=4).collect();
    assert_eq!(starts, want, "one flow start per request id");
    assert_eq!(finishes, want, "one flow finish per request id");
}

#[test]
fn chrome_trace_json_is_schema_valid() {
    let db = fixture_db();
    let (_, rec) = traced_run(&db);
    let json = rec.chrome_trace_json();
    let v: serde_json::Value = serde_json::from_str(&json).expect("trace must be valid JSON");
    let events = v.as_array().expect("trace is a JSON array");
    assert!(!events.is_empty());

    let mut phases = std::collections::BTreeSet::new();
    for e in events {
        let obj = e.as_object().expect("every event is an object");
        let ph = obj["ph"].as_str().expect("ph is a string");
        phases.insert(ph.to_owned());
        let pid = obj["pid"].as_u64().expect("pid is an integer");
        assert!(pid == 1 || pid == 2, "unknown trace process {pid}");
        assert!(obj["tid"].is_u64(), "tid is an integer");
        match ph {
            "M" => {
                let name = obj["name"].as_str().unwrap();
                assert!(
                    name == "process_name" || name == "thread_name",
                    "unexpected metadata record {name}"
                );
                assert!(obj["args"]["name"].is_string());
            }
            "X" => {
                assert!(obj["ts"].is_u64());
                assert!(obj["dur"].is_u64());
                assert!(obj["cat"].is_string());
                assert!(obj["name"].is_string());
            }
            "i" => {
                assert!(obj["ts"].is_u64());
                assert_eq!(obj["s"].as_str(), Some("t"), "instants are thread-scoped");
                assert!(obj["name"].is_string());
            }
            "s" | "f" => {
                // Flow events (request linking): numeric id instead of
                // dur/s; finishes bind to the enclosing slice.
                assert!(obj["ts"].is_u64());
                assert!(obj["id"].is_u64(), "flow events carry a numeric id");
                assert!(obj["name"].is_string());
                if ph == "f" {
                    assert_eq!(obj["bp"].as_str(), Some("e"), "flow finish binds enclosing");
                }
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    for required in ["M", "X", "i"] {
        assert!(phases.contains(required), "trace never emitted {required}");
    }
}

#[test]
fn metrics_snapshot_json_parses_with_documented_shape() {
    let db = fixture_db();
    let (_, rec) = traced_run(&db);
    let v: serde_json::Value =
        serde_json::from_str(&rec.snapshot().to_json()).expect("snapshot must be valid JSON");
    let counters = v["counters"].as_object().expect("counters object");
    assert!(counters.contains_key("reads.hit"));
    assert!(counters.values().all(serde_json::Value::is_u64));
    let hists = v["histograms_us"].as_object().expect("histograms object");
    assert!(hists.contains_key("read.service_us"));
    for (name, h) in hists {
        for field in ["count", "sum", "min", "max", "p50", "p90", "p95", "p99"] {
            assert!(h[field].is_u64(), "histogram {name} missing {field}");
        }
    }
}

#[test]
fn disabled_recorder_emits_nothing() {
    let db = fixture_db();
    let cfg = RunConfig::default();
    let mut rt = Runtime::new(&cfg, db.file_lengths());
    let t0 = seq_trace(0, 16);
    let _ = rt.run(&[QueryRun::default_run(&t0)]);
    let rec = rt.take_recorder();
    assert!(!rec.is_enabled());
    assert!(rec.events().is_empty());
    assert_eq!(rec.chrome_trace_json(), "[\n]\n");
}
