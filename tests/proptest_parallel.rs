//! Property test for the parallel model fleet: training, inference and
//! refinement on the worker pool must be **bit-identical** to a single-thread
//! run, for both the separate-models default and the combined table+index
//! ablation mode, across random seeds and thread counts.
//!
//! Identity is checked on the full serialized `TrainedWorkload` (every model
//! weight, the vocabulary and the binner) and on the per-plan predictions.

use proptest::prelude::*;

use pythia::core::config::PythiaConfig;
use pythia::core::predictor::train_workload;
use pythia::db::catalog::Database;
use pythia::db::exec::execute;
use pythia::db::expr::{CmpOp, Pred};
use pythia::db::plan::PlanNode;
use pythia::db::trace::Trace;
use pythia::db::types::Schema;
use pythia::nn::pool::set_thread_override;

/// Restores the pool to its environment-configured width even when a
/// `prop_assert!` failure unwinds mid-test.
struct RestoreThreads;
impl Drop for RestoreThreads {
    fn drop(&mut self) {
        set_thread_override(0);
    }
}

/// A small star workload: fact(600) probing dim(150) through an index, with
/// the dim key clustered by date so the labels are learnable.
fn tiny_star() -> (Database, Vec<PlanNode>, Vec<Trace>) {
    let mut db = Database::new();
    let fact = db.create_table("fact", Schema::ints(&["id", "date", "dkey"]));
    let dim = db.create_table("dim", Schema::ints(&["d_id", "attr"]));
    for i in 0..600i64 {
        let date = i / 2; // 300 dates
        let dkey = (date * 150 / 300 + i % 3).min(149);
        db.insert(fact, Database::row(&[i, date, dkey]));
    }
    for d in 0..150i64 {
        db.insert(dim, Database::row(&[d, d % 9]));
    }
    let idx = db.create_index("dim_pk", dim, 0);

    let mut plans = Vec::new();
    let mut traces = Vec::new();
    for q in 0..12i64 {
        let lo = (q * 37) % 200;
        let plan = PlanNode::IndexNLJoin {
            outer: Box::new(PlanNode::SeqScan {
                table: fact,
                pred: Some(Pred::Between {
                    col: 1,
                    lo,
                    hi: lo + 40,
                }),
            }),
            outer_key: 2,
            inner: dim,
            inner_index: idx,
            inner_pred: Some(Pred::Cmp {
                col: 1,
                op: CmpOp::Ge,
                lit: 0,
            }),
        };
        let (_, trace) = execute(&plan, &db);
        plans.push(plan);
        traces.push(trace);
    }
    (db, plans, traces)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn parallel_fleet_is_bit_identical_to_serial(
        seed in 0u64..1000,
        combined in prop::bool::ANY,
        n_threads in 2usize..6,
    ) {
        let _guard = RestoreThreads;
        let (db, plans, traces) = tiny_star();
        let cfg = PythiaConfig {
            epochs: 2,
            batch_size: 4,
            lr: 5e-3,
            seed,
            combined_index_base: combined,
            ..PythiaConfig::fast()
        };
        let (train_p, train_t) = (&plans[..9], &traces[..9]);
        let (extra_p, extra_t) = (&plans[9..], &traces[9..]);

        set_thread_override(1);
        let mut tw_serial = train_workload(&db, "tiny", train_p, train_t, None, &cfg);
        set_thread_override(n_threads);
        let mut tw_pooled = train_workload(&db, "tiny", train_p, train_t, None, &cfg);

        prop_assert_eq!(
            serde_json::to_string(&tw_serial).unwrap(),
            serde_json::to_string(&tw_pooled).unwrap(),
            "pooled training diverged from serial (seed {}, combined {}, {} threads)",
            seed, combined, n_threads
        );
        for p in &plans {
            set_thread_override(1);
            let a = tw_serial.infer(&db, p);
            set_thread_override(n_threads);
            let b = tw_pooled.infer(&db, p);
            prop_assert_eq!(a.pages, b.pages, "pooled inference diverged");
        }

        // Refinement fans out over the same pool; it must stay bit-identical.
        set_thread_override(1);
        tw_serial.refine(&db, extra_p, extra_t);
        set_thread_override(n_threads);
        tw_pooled.refine(&db, extra_p, extra_t);
        prop_assert_eq!(
            serde_json::to_string(&tw_serial).unwrap(),
            serde_json::to_string(&tw_pooled).unwrap(),
            "pooled refinement diverged from serial"
        );
    }

    /// Batched inference must be bit-identical to the serial one-query-at-a-
    /// time path for any batch size and thread count — checked on a model
    /// that went through a full serde roundtrip (the deployed shape: loaded
    /// weights, empty plan-encoding cache), in both model designs.
    #[test]
    fn batched_inference_is_bit_identical_to_serial(
        seed in 0u64..1000,
        combined in prop::bool::ANY,
    ) {
        let _guard = RestoreThreads;
        let (db, plans, traces) = tiny_star();
        let cfg = PythiaConfig {
            epochs: 2,
            batch_size: 4,
            lr: 5e-3,
            seed,
            combined_index_base: combined,
            ..PythiaConfig::fast()
        };
        let tw = train_workload(&db, "tiny", &plans[..9], &traces[..9], None, &cfg);
        let tw: pythia::core::predictor::TrainedWorkload =
            serde_json::from_str(&serde_json::to_string(&tw).unwrap()).unwrap();

        // Serial single-thread reference: one forward pass per plan.
        set_thread_override(1);
        let serial: Vec<_> = plans.iter().map(|p| tw.infer(&db, p)).collect();

        for &threads in &[1usize, 4] {
            for &batch in &[1usize, 3, 17] {
                set_thread_override(threads);
                let batch_plans: Vec<&PlanNode> = plans.iter().cycle().take(batch).collect();
                let preds = tw.infer_batch(&db, &batch_plans);
                prop_assert_eq!(preds.len(), batch);
                for (q, pred) in preds.iter().enumerate() {
                    prop_assert_eq!(
                        &pred.pages,
                        &serial[q % plans.len()].pages,
                        "batch size {} / {} threads: query {} diverged",
                        batch, threads, q
                    );
                }
            }
        }
    }
}
