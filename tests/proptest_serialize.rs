//! Property tests over plan serialization, vocabulary handling and the
//! prefetch-aware scheduler.

use proptest::prelude::*;

use pythia::core::scheduler::{consecutive_overlap, schedule_by_overlap};
use pythia::core::{serialize_plan, ValueBinner, Vocab};
use pythia::db::catalog::Database;
use pythia::db::expr::{CmpOp, Pred};
use pythia::db::plan::PlanNode;
use pythia::db::types::Schema;
use pythia::sim::{FileId, PageId};

fn tiny_db() -> (Database, pythia::db::catalog::TableId) {
    let mut db = Database::new();
    let t = db.create_table("t", Schema::ints(&["a", "b"]));
    for i in 0..500 {
        db.insert(t, Database::row(&[i, i % 9]));
    }
    (db, t)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Serialization is a pure function of the plan: same plan, same tokens —
    /// even across independently rebuilt binners.
    #[test]
    fn serialization_is_deterministic(lo in 0i64..400, width in 0i64..100, op_idx in 0usize..4) {
        let (db, t) = tiny_db();
        let ops = [CmpOp::Eq, CmpOp::Lt, CmpOp::Ge, CmpOp::Ne];
        let plan = PlanNode::SeqScan {
            table: t,
            pred: Some(Pred::And(vec![
                Pred::Between { col: 0, lo, hi: lo + width },
                Pred::Cmp { col: 1, op: ops[op_idx], lit: 4 },
            ])),
        };
        let b1 = ValueBinner::from_database(&db);
        let b2 = ValueBinner::from_database(&db);
        prop_assert_eq!(serialize_plan(&db, &b1, &plan), serialize_plan(&db, &b2, &plan));
    }

    /// Every serialized token of an in-domain plan is encodable after
    /// training-time interning plus the standard value-token set (no [UNK]
    /// for parameter values).
    #[test]
    fn value_tokens_never_unk(lo in 0i64..499) {
        let (db, t) = tiny_db();
        let binner = ValueBinner::from_database(&db);
        let mut vocab = Vocab::new();
        for tok in pythia::core::serialize::standard_value_tokens() {
            vocab.intern(&tok);
        }
        // Train-time query interns the structural tokens.
        let train = PlanNode::SeqScan {
            table: t,
            pred: Some(Pred::Cmp { col: 0, op: CmpOp::Ge, lit: 0 }),
        };
        vocab.encode_interning(&serialize_plan(&db, &binner, &train));
        // A test query with an arbitrary unseen literal encodes fully.
        let test = PlanNode::SeqScan {
            table: t,
            pred: Some(Pred::Cmp { col: 0, op: CmpOp::Ge, lit: lo }),
        };
        let ids = vocab.encode(&serialize_plan(&db, &binner, &test));
        prop_assert!(ids.iter().all(|&i| i != Vocab::UNK), "UNK leaked: {ids:?}");
    }

    /// Vocab: interning then encoding yields identical ids.
    #[test]
    fn vocab_encode_roundtrip(tokens in prop::collection::vec("[a-z]{1,6}", 1..30)) {
        let toks: Vec<String> = tokens;
        let mut v = Vocab::new();
        let a = v.encode_interning(&toks);
        let b = v.encode(&toks);
        prop_assert_eq!(a, b);
    }

    /// The scheduler always returns a permutation, never drops or duplicates
    /// queries, and starts from a largest prediction.
    #[test]
    fn scheduler_is_a_permutation(
        preds in prop::collection::vec(prop::collection::vec(0u32..64, 0..20), 1..12),
    ) {
        let lists: Vec<Vec<PageId>> = preds
            .iter()
            .map(|ps| {
                let mut set: Vec<u32> = ps.clone();
                set.sort_unstable();
                set.dedup();
                set.into_iter().map(|p| PageId::new(FileId(0), p)).collect()
            })
            .collect();
        let order = schedule_by_overlap(&lists);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..lists.len()).collect::<Vec<_>>());
        // Seed = a maximal prediction.
        let max_len = lists.iter().map(Vec::len).max().unwrap();
        prop_assert_eq!(lists[order[0]].len(), max_len);
        // Overlap score is finite and non-negative.
        let score = consecutive_overlap(&lists, &order);
        prop_assert!(score >= 0.0 && score.is_finite());
    }
}
