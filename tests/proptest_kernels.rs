//! Property tests for the GEMM microkernels: the dispatched SIMD path must
//! be **bit-identical** to the forced-scalar fallback for all three variants
//! (`matmul`, `matmul_at_b`, `matmul_a_bt`) and the fused `matmul_bias`,
//! across random shapes — including 1×N, N×1 and non-multiple-of-lane-width
//! dimensions — values (with occasional exact zeros and non-finite
//! operands), and thread counts.
//!
//! Identity is checked on the raw `f32` bit patterns, not `==`, so NaN
//! payloads and signed zeros count too.

use proptest::prelude::*;

use pythia::nn::kernels::{set_simd_override, SimdOverride};
use pythia::nn::pool::set_thread_override;
use pythia::nn::Tensor;

/// Restores the dispatch ladder and pool width even when a `prop_assert!`
/// failure unwinds mid-test.
struct RestoreDispatch;
impl Drop for RestoreDispatch {
    fn drop(&mut self) {
        set_simd_override(SimdOverride::Env);
        set_thread_override(0);
    }
}

fn bits(t: &Tensor) -> Vec<u32> {
    let mut v = Vec::with_capacity(t.rows() * t.cols());
    for r in 0..t.rows() {
        v.extend(t.row(r).iter().map(|x| x.to_bits()));
    }
    v
}

/// A value pool that exercises the interesting kernel cases: exact zeros
/// (the old skip bug), denormal-ish magnitudes, and non-finite operands.
fn value(cell: u32) -> f32 {
    match cell % 19 {
        0 => 0.0,
        1 => -0.0,
        2 => f32::INFINITY,
        3 => f32::NAN,
        _ => (cell % 2001) as f32 / 500.0 - 2.0,
    }
}

fn tensor_from(rows: usize, cols: usize, seed: u32) -> Tensor {
    Tensor::from_fn(rows, cols, |r, c| {
        value(
            seed.wrapping_mul(2654435761)
                .wrapping_add((r * cols + c) as u32)
                .wrapping_mul(2246822519),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Dispatched == forced-scalar, bit for bit, for every GEMM variant.
    #[test]
    fn dispatched_is_bit_identical_to_scalar(
        m in prop_oneof![Just(1usize), 1usize..70],
        k in prop_oneof![Just(1usize), 1usize..300],
        n in prop_oneof![Just(1usize), 1usize..70, 250usize..270],
        seed in 0u32..10_000,
        threads in prop_oneof![Just(1usize), Just(4)],
    ) {
        let _guard = RestoreDispatch;
        set_thread_override(threads);

        let a = tensor_from(m, k, seed);
        let b = tensor_from(k, n, seed ^ 0x9E37);
        let b2 = tensor_from(m, n, seed ^ 0x79B9);   // at_b's B is [m, n]
        let bt = tensor_from(n, k, seed ^ 0x85EB);   // a_bt's B is [n, k]
        let bias = tensor_from(1, n, seed ^ 0xC2B2);

        set_simd_override(SimdOverride::ForceScalar);
        let mm_s = bits(&a.matmul(&b));
        let atb_s = bits(&a.matmul_at_b(&b2));
        let abt_s = bits(&a.matmul_a_bt(&bt));
        let lin_s = bits(&a.matmul_bias(&b, &bias));

        set_simd_override(SimdOverride::ForceDetect);
        prop_assert_eq!(bits(&a.matmul(&b)), mm_s, "matmul {}x{}x{}", m, k, n);
        prop_assert_eq!(bits(&a.matmul_at_b(&b2)), atb_s, "at_b {}x{}x{}", m, k, n);
        prop_assert_eq!(bits(&a.matmul_a_bt(&bt)), abt_s, "a_bt {}x{}x{}", m, k, n);
        prop_assert_eq!(bits(&a.matmul_bias(&b, &bias)), lin_s, "linear {}x{}x{}", m, k, n);
    }

    /// The env-default dispatch (whatever `PYTHIA_SIMD` says in this test
    /// process) also matches forced-scalar — pins the whole ladder, not just
    /// the two explicit overrides.
    #[test]
    fn env_dispatch_matches_scalar(
        m in 1usize..40,
        k in 1usize..200,
        n in 1usize..40,
        seed in 0u32..10_000,
    ) {
        let _guard = RestoreDispatch;
        let a = tensor_from(m, k, seed);
        let b = tensor_from(k, n, seed ^ 0x27D4);

        set_simd_override(SimdOverride::ForceScalar);
        let want = bits(&a.matmul(&b));
        set_simd_override(SimdOverride::Env);
        prop_assert_eq!(bits(&a.matmul(&b)), want);
    }
}
