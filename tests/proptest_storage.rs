//! Property-based tests over the storage substrate: B+Tree vs an ordered-map
//! model, slotted pages, heap files, and buffer-pool invariants under random
//! operation sequences.

use proptest::prelude::*;

use pythia::buffer::{BufferPool, PolicyKind};
use pythia::db::btree::BTree;
use pythia::db::heap::{HeapFile, RecordId};
use pythia::db::types::Datum;
use pythia::sim::{FileId, PageId, SimDisk, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The B+Tree agrees with a sorted-vector model on every range query,
    /// including duplicate-heavy key sets.
    #[test]
    fn btree_matches_model(
        keys in prop::collection::vec(-50i64..50, 0..400),
        ranges in prop::collection::vec((-60i64..60, 0i64..40), 1..8),
    ) {
        let mut disk = SimDisk::new();
        let entries: Vec<(i64, RecordId)> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, RecordId { page_no: i as u32, slot: 0 }))
            .collect();
        let tree = BTree::bulk_build(&mut disk, entries.clone());

        let mut model = entries;
        model.sort_unstable_by_key(|(k, rid)| (*k, rid.page_no));

        for (lo, width) in ranges {
            let hi = lo + width;
            let got = tree.range(&disk, lo, hi, &mut |_, _| {});
            let expect: Vec<(i64, RecordId)> = model
                .iter()
                .filter(|(k, _)| *k >= lo && *k <= hi)
                .cloned()
                .collect();
            prop_assert_eq!(got, expect, "range [{}, {}]", lo, hi);
        }
    }

    /// Every key searched individually returns exactly its duplicates.
    #[test]
    fn btree_point_lookups(keys in prop::collection::vec(0i64..30, 1..300)) {
        let mut disk = SimDisk::new();
        let entries: Vec<(i64, RecordId)> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, RecordId { page_no: i as u32, slot: 0 }))
            .collect();
        let tree = BTree::bulk_build(&mut disk, entries);
        for k in 0..30 {
            let expect = keys.iter().filter(|&&x| x == k).count();
            let got = tree.search(&disk, k, &mut |_, _| {}).len();
            prop_assert_eq!(got, expect, "key {}", k);
        }
    }

    /// Heap files return every inserted tuple unchanged, in order, through
    /// both scan and point fetch.
    #[test]
    fn heap_roundtrip(rows in prop::collection::vec(prop::collection::vec(-1000i64..1000, 1..6), 1..200)) {
        let mut disk = SimDisk::new();
        let mut heap = HeapFile::create(&mut disk);
        let rids: Vec<RecordId> = rows
            .iter()
            .map(|r| {
                let row: Vec<Datum> = r.iter().map(|&v| Datum::Int(v)).collect();
                heap.insert(&mut disk, &row)
            })
            .collect();
        // Point fetches.
        for (rid, r) in rids.iter().zip(&rows) {
            let row = heap.read_tuple(&disk, *rid);
            let expect: Vec<Datum> = r.iter().map(|&v| Datum::Int(v)).collect();
            prop_assert_eq!(row, expect);
        }
        // Scan order matches insertion order.
        let scanned: Vec<i64> = heap.scan(&disk).map(|(_, t)| t[0].as_int().unwrap()).collect();
        let expect: Vec<i64> = rows.iter().map(|r| r[0]).collect();
        prop_assert_eq!(scanned, expect);
    }

    /// Buffer pool safety invariants under arbitrary load/pin/unpin/touch
    /// sequences: capacity respected, residency consistent with the page
    /// table, pinned pages never evicted.
    #[test]
    fn buffer_pool_invariants(
        ops in prop::collection::vec((0u8..4, 0u32..64), 1..300),
        policy_idx in 0usize..3,
    ) {
        let policy = PolicyKind::ALL[policy_idx];
        let mut pool = BufferPool::new(8, policy);
        let mut pinned: Vec<(PageId, u32)> = Vec::new(); // (page, pins held)
        for (op, page_no) in ops {
            let pid = PageId::new(FileId(0), page_no);
            match op {
                0 => {
                    // Load if absent (may fail when everything is pinned).
                    if pool.lookup(pid).is_none() {
                        let _ = pool.load(pid, false, SimTime::ZERO);
                    }
                }
                1 => {
                    // Pin if resident.
                    if let Some(fid) = pool.lookup(pid) {
                        pool.pin(fid);
                        pinned.push((pid, 1));
                    }
                }
                2 => {
                    // Unpin one of our pins.
                    if let Some(pos) = pinned.iter().position(|(p, _)| *p == pid) {
                        let fid = pool.lookup(pid).expect("pinned page resident");
                        pool.unpin(fid);
                        pinned.remove(pos);
                    }
                }
                _ => {
                    if let Some(fid) = pool.lookup(pid) {
                        pool.touch(fid);
                    }
                }
            }
            // Invariants after every operation:
            prop_assert!(pool.resident_count() <= pool.capacity());
            for (p, _) in &pinned {
                prop_assert!(pool.lookup(*p).is_some(), "pinned page {p} was evicted");
            }
            // Page table and frames agree.
            for rp in pool.resident_pages() {
                let fid = pool.lookup(rp).expect("page table entry");
                prop_assert_eq!(pool.frame(fid).page, Some(rp));
            }
        }
    }

    /// The trace post-processing (Algorithm 1): output sets are sorted,
    /// deduplicated and contain exactly the non-sequential distinct pages.
    #[test]
    fn trace_postprocessing_properties(
        reads in prop::collection::vec((0u32..4, 0u32..50, prop::bool::ANY), 0..300),
    ) {
        use pythia::db::catalog::ObjectId;
        use pythia::db::trace::{AccessKind, Trace, TraceEvent};
        let trace = Trace {
            events: reads
                .iter()
                .map(|&(obj, page, seq)| TraceEvent::Read {
                    obj: ObjectId(obj),
                    page: PageId::new(FileId(obj), page),
                    kind: if seq { AccessKind::SeqScan } else { AccessKind::HeapFetch },
                })
                .collect(),
        };
        let sets = trace.non_sequential_sets();
        for (obj, pages) in &sets {
            // Sorted, deduplicated.
            prop_assert!(pages.windows(2).all(|w| w[0] < w[1]));
            // Every page actually appears as a non-sequential read.
            for &p in pages {
                prop_assert!(reads.iter().any(|&(o, pg, seq)| ObjectId(o) == *obj && pg == p && !seq));
            }
        }
        // Count matches a set-based model.
        let model: std::collections::HashSet<(u32, u32)> = reads
            .iter()
            .filter(|(_, _, seq)| !seq)
            .map(|&(o, p, _)| (o, p))
            .collect();
        prop_assert_eq!(trace.distinct_non_sequential(), model.len());
    }
}
