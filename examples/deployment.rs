//! Deployment features: model persistence, the thread-safe serving layer,
//! and incremental retraining (paper §5.3 / §7 extensions).
//!
//! ```bash
//! cargo run --release --example deployment
//! ```
//!
//! 1. Train Pythia on a workload and save the models to JSON.
//! 2. Start a [`pythia::service::PythiaService`], load the models from disk,
//!    and serve engage-or-fallback decisions from multiple threads while a
//!    background trainer installs a second workload.
//! 3. Fold newly observed queries into existing models with
//!    `TrainedWorkload::refine` instead of retraining from scratch.

use std::sync::Arc;

use pythia::core::metrics::f1_score;
use pythia::core::predictor::{ground_truth, TrainedWorkload};
use pythia::core::PythiaConfig;
use pythia::service::{PythiaService, TrainRequest};
use pythia::workloads::templates::{sample_workload, Template};
use pythia::workloads::{build_benchmark, GeneratorConfig};

fn main() {
    let bench = build_benchmark(&GeneratorConfig {
        scale: 0.15,
        seed: 23,
    });
    let cfg = PythiaConfig {
        epochs: 25,
        batch_size: 32,
        lr: 3e-3,
        pos_weight: 2.0,
        ..PythiaConfig::fast()
    };

    // ---- 1. Train + persist ----
    let queries = sample_workload(&bench, Template::T91, 80, 4);
    let traces: Vec<_> = queries
        .iter()
        .map(|q| pythia::db::exec::execute(&q.plan, &bench.db).1)
        .collect();
    let plans: Vec<_> = queries[8..].iter().map(|q| q.plan.clone()).collect();
    let tw = pythia::core::train_workload(&bench.db, "t91", &plans, &traces[8..], None, &cfg);
    let path = std::env::temp_dir().join("pythia_t91.json");
    tw.save_json(&path).expect("save");
    println!(
        "trained '{}' ({} object models, {:.1} MB) and saved to {}",
        tw.name,
        tw.modeled_objects().len(),
        tw.size_bytes() as f64 / 1e6,
        path.display()
    );

    // ---- 2. Serve from disk + background training of a second workload ----
    let db = Arc::new(bench.db);
    let service = Arc::new(PythiaService::new(Arc::clone(&db), cfg.clone(), 512));
    let version = service
        .install_trained(TrainedWorkload::load_json(&path).expect("load"))
        .expect("catalog-compatible");
    let _ = std::fs::remove_file(&path);
    println!(
        "service loaded persisted models; workloads = {}, fleet version = {version}",
        service.workload_count()
    );

    // Rebuild a cheap second workload request and train it in the background
    // while readers keep engaging.
    let bench2 = build_benchmark(&GeneratorConfig {
        scale: 0.15,
        seed: 23,
    });
    let q2 = sample_workload(&bench2, Template::Imdb1a, 30, 8);
    let t2: Vec<_> = q2
        .iter()
        .map(|q| pythia::db::exec::execute(&q.plan, &db).1)
        .collect();
    let (tx, trainer) = service.spawn_trainer();
    tx.send(TrainRequest {
        name: "imdb-1a".into(),
        plans: q2.iter().map(|q| q.plan.clone()).collect(),
        traces: t2,
        restrict_objects: Template::Imdb1a.prefetch_objects(&bench2),
    })
    .unwrap();
    drop(tx);

    let readers: Vec<_> = (0..2)
        .map(|r| {
            let s = Arc::clone(&service);
            let probe: Vec<_> = queries[..8].iter().map(|q| q.plan.clone()).collect();
            std::thread::spawn(move || {
                let mut engaged = 0;
                for p in &probe {
                    if s.engage(p).is_some() {
                        engaged += 1;
                    }
                }
                println!(
                    "reader {r}: engaged {engaged}/{} queries during training",
                    probe.len()
                );
            })
        })
        .collect();
    for r in readers {
        r.join().unwrap();
    }
    trainer.join().unwrap();
    println!(
        "background trainer done; workloads = {}",
        service.workload_count()
    );

    // ---- 3. Incremental refinement ----
    // Train on a small initial workload, then fold in newly observed queries
    // with `refine` instead of retraining from scratch ("every new query run
    // can be used as a new training data point", paper §5.3).
    let held_out: Vec<usize> = (0..8).collect();
    let tw = pythia::core::train_workload(
        &bench2.db,
        "t91-drift",
        &plans[..30], // a deliberately small initial workload
        &traces[8..38],
        None,
        &cfg,
    );
    let mut tw = tw;
    let modeled = tw.modeled_objects();
    let f1_of = |tw: &TrainedWorkload| {
        let f1s: Vec<f64> = held_out
            .iter()
            .map(|&i| {
                let pred = tw.infer(&db, &queries[i].plan);
                f1_score(&pred.as_set(), &ground_truth(&traces[i], &modeled)).f1
            })
            .collect();
        f1s.iter().sum::<f64>() / f1s.len() as f64
    };
    let before = f1_of(&tw);
    tw.refine(&db, &plans[30..], &traces[38..]);
    let after = f1_of(&tw);
    println!("incremental refinement with new queries: held-out F1 {before:.3} -> {after:.3}");
}
