//! The paper's real-world workload: IMDB/CEB template 1a.
//!
//! ```bash
//! cargo run --release --example imdb_cast_info
//! ```
//!
//! `title` is scanned with a production-year filter and drives index probes
//! into the large `cast_info` table. As in the paper, Pythia only builds
//! models for (and only prefetches) `cast_info` — and when the prediction is
//! larger than the buffer budget, it performs *limited prefetching*, keeping
//! only a prefix of the predicted pages.

use pythia::core::metrics::f1_score;
use pythia::core::predictor::ground_truth;
use pythia::core::PythiaConfig;
use pythia::db::runtime::{QueryRun, RunConfig, Runtime};
use pythia::workloads::templates::{sample_workload, Template};
use pythia::workloads::{build_benchmark, GeneratorConfig};
use pythia::PythiaSystem;

fn main() {
    let bench = build_benchmark(&GeneratorConfig {
        scale: 0.25,
        seed: 11,
    });
    let cast_pages = bench
        .db
        .object_pages(bench.db.table_info(bench.cast_info).object);
    println!(
        "IMDB-like data: {} titles, {} cast_info rows over {} pages",
        bench.n_titles, bench.n_cast, cast_pages
    );

    let n = 160;
    let queries = sample_workload(&bench, Template::Imdb1a, n, 3);
    let traces: Vec<_> = queries
        .iter()
        .map(|q| pythia::db::exec::execute(&q.plan, &bench.db).1)
        .collect();
    let (test_q, train_q) = queries.split_at(10);
    let (test_t, train_t) = traces.split_at(10);

    // Deliberately small buffer: cast_info alone overflows it, so limited
    // prefetching kicks in (paper §5.1, IMDB workload).
    let pool_frames = (cast_pages as usize / 4).max(128);
    let budget = pool_frames * 3 / 4;
    println!("buffer pool: {pool_frames} frames; prefetch budget: {budget} pages");

    let cfg = PythiaConfig {
        epochs: 40,
        batch_size: 32,
        lr: 3e-3,
        pos_weight: 2.0,
        ..PythiaConfig::fast()
    };
    let mut pythia = PythiaSystem::new(cfg, budget);
    let train_plans: Vec<_> = train_q.iter().map(|q| q.plan.clone()).collect();
    // Only cast_info (heap + its movie_id index) gets models.
    let restrict = Template::Imdb1a.prefetch_objects(&bench).unwrap();
    pythia.learn_workload(&bench.db, "imdb-1a", &train_plans, train_t, Some(&restrict));

    let tw = &pythia.workloads()[0];
    println!(
        "models cover {} objects (cast_info heap + index), {:.1} MB",
        tw.modeled_objects().len(),
        tw.size_bytes() as f64 / 1e6
    );

    let run_cfg = RunConfig {
        pool_frames,
        ..RunConfig::default()
    };
    let modeled = tw.modeled_objects();
    let mut capped = 0;
    for (i, (q, trace)) in test_q.iter().zip(test_t).enumerate() {
        let eng = pythia.engage(&bench.db, &q.plan).expect("in-distribution");
        let predicted_total = tw.infer(&bench.db, &q.plan).len();
        if eng.prefetch.len() < predicted_total {
            capped += 1;
        }
        let m = f1_score(
            &tw.infer(&bench.db, &q.plan).as_set(),
            &ground_truth(trace, &modeled),
        );

        let mut rt = Runtime::new(&run_cfg, bench.db.file_lengths());
        let dflt = rt.run(&[QueryRun::default_run(trace)]).timings[0].elapsed();
        rt.reset();
        let pyth = rt
            .run(&[QueryRun::with_prefetch(
                trace,
                eng.prefetch.clone(),
                eng.inference,
            )])
            .timings[0]
            .elapsed();
        println!(
            "q{i}: F1={:.3}  predicted={predicted_total} prefetched={} (budget-capped: {})  DFLT={dflt} pythia={pyth}  speedup {:.2}x",
            m.f1,
            eng.prefetch.len(),
            eng.prefetch.len() < predicted_total,
            dflt.as_micros() as f64 / pyth.as_micros() as f64,
        );
    }
    println!("\n{capped}/10 test queries hit the prefetch budget (limited prefetching)");
}
