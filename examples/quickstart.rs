//! Quickstart: train Pythia on a tiny hand-built star schema and watch it
//! prefetch for an unseen query.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the whole pipeline on a database small enough to read the output:
//! build tables + index, run a training workload (collecting page-access
//! traces), train the per-object models, and then — for an *unseen* query —
//! compare default execution against execution with Pythia's prefetch.

use pythia::core::metrics::f1_score;
use pythia::core::predictor::ground_truth;
use pythia::core::PythiaConfig;
use pythia::db::catalog::Database;
use pythia::db::exec::execute;
use pythia::db::expr::Pred;
use pythia::db::plan::PlanNode;
use pythia::db::runtime::{QueryRun, RunConfig, Runtime};
use pythia::db::types::Schema;
use pythia::PythiaSystem;

fn main() {
    // ---- 1. Build a small star: orders(fact) -> customers(dim, indexed).
    let mut db = Database::new();
    let orders = db.create_table("orders", Schema::ints(&["o_id", "o_day", "o_cust"]));
    let customers = db.create_table("customers", Schema::ints(&["c_id", "c_segment"]));

    let n_days = 1000i64;
    let n_cust = 20_000i64;
    for i in 0..8_000i64 {
        let day = i / 8;
        // Customers arrive over time: day ranges map to customer-page ranges.
        let cust = (day * n_cust / n_days + (i * 7919) % 4000).min(n_cust - 1);
        db.insert(orders, Database::row(&[i, day, cust]));
    }
    for c in 0..n_cust {
        db.insert(customers, Database::row(&[c, c % 5]));
    }
    let cust_idx = db.create_index("customers_pk", customers, 0);
    println!(
        "database: {} pages ({} orders pages, {} customers pages)",
        db.disk.total_pages(),
        db.table_info(orders).heap.page_count(&db.disk),
        db.table_info(customers).heap.page_count(&db.disk),
    );

    // ---- 2. A parameterized query template: orders in a day range, joined
    //         to their customers through the index.
    let template = |lo: i64, hi: i64| PlanNode::IndexNLJoin {
        outer: Box::new(PlanNode::SeqScan {
            table: orders,
            pred: Some(Pred::Between { col: 1, lo, hi }),
        }),
        outer_key: 2,
        inner: customers,
        inner_index: cust_idx,
        inner_pred: None,
    };

    // ---- 3. Training workload: 40 instances, traces collected by running
    //         them (the paper's trace-construction step).
    let mut plans = Vec::new();
    let mut traces = Vec::new();
    for q in 0..40i64 {
        let lo = (q * 23) % 880;
        let plan = template(lo, lo + 120);
        let (_rows, trace) = execute(&plan, &db);
        plans.push(plan);
        traces.push(trace);
    }
    println!("collected {} training traces", traces.len());

    // ---- 4. Train Pythia (Algorithm 1).
    let cfg = PythiaConfig {
        epochs: 40,
        batch_size: 8,
        lr: 5e-3,
        ..PythiaConfig::fast()
    };
    let mut pythia = PythiaSystem::new(cfg, 512);
    pythia.learn_workload(&db, "orders-by-day", &plans, &traces, None);
    println!(
        "trained {} workload(s); model size {:.2} MB",
        pythia.workload_count(),
        pythia.workloads()[0].size_bytes() as f64 / 1e6
    );

    // ---- 5. An unseen query from the same workload.
    let unseen = template(411, 531);
    let (_rows, unseen_trace) = execute(&unseen, &db);

    let engagement = pythia
        .engage(&db, &unseen)
        .expect("query matches the workload");
    println!(
        "engaged workload '{}': predicted {} pages, inference {}",
        engagement.workload,
        engagement.prefetch.len(),
        engagement.inference
    );

    // Prediction quality.
    let tw = &pythia.workloads()[0];
    let truth = ground_truth(&unseen_trace, &tw.modeled_objects());
    let pred = tw.infer(&db, &unseen);
    let m = f1_score(&pred.as_set(), &truth);
    println!(
        "prediction: precision={:.3} recall={:.3} F1={:.3} ({} predicted / {} actual)",
        m.precision, m.recall, m.f1, m.predicted, m.actual
    );

    // ---- 6. Replay: default vs Pythia-prefetched execution (cold cache).
    let run_cfg = RunConfig {
        pool_frames: 512,
        ..RunConfig::default()
    };
    let mut rt = Runtime::new(&run_cfg, db.file_lengths());
    let base = rt.run(&[QueryRun::default_run(&unseen_trace)]).timings[0].elapsed();
    rt.reset();
    let with = rt
        .run(&[QueryRun::with_prefetch(
            &unseen_trace,
            engagement.prefetch,
            engagement.inference,
        )])
        .timings[0]
        .elapsed();
    println!("default execution: {base}");
    println!("with Pythia      : {with}");
    println!(
        "speedup          : {:.2}x",
        base.as_micros() as f64 / with.as_micros() as f64
    );

    // ---- 7. A query Pythia has never seen the shape of: it stays out.
    let foreign = PlanNode::SeqScan {
        table: customers,
        pred: None,
    };
    assert!(pythia.engage(&db, &foreign).is_none());
    println!("out-of-distribution query: Pythia falls back to default execution");
}
