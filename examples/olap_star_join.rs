//! The paper's main scenario: DSB-like OLAP star joins (Template 18).
//!
//! ```bash
//! cargo run --release --example olap_star_join
//! ```
//!
//! Builds the DSB-like warehouse, samples a Template-18 workload (a
//! sequentially scanned `store_sales` fact driving index probes into
//! `customer`, `customer_demographics`, `household_demographics` and `item`),
//! trains Pythia, and compares per-query speedups against the ORCL oracle
//! and the NN nearest-neighbour baselines on held-out queries.

use pythia::baselines::{oracle_prefetch, NearestNeighbor, OracleScope};
use pythia::core::metrics::f1_score;
use pythia::core::predictor::ground_truth;
use pythia::core::PythiaConfig;
use pythia::db::runtime::{QueryRun, RunConfig, Runtime};
use pythia::sim::SimDuration;
use pythia::workloads::templates::{sample_workload, Template};
use pythia::workloads::{build_benchmark, GeneratorConfig};
use pythia::PythiaSystem;

fn main() {
    // ---- warehouse + workload ----
    let bench = build_benchmark(&GeneratorConfig {
        scale: 0.25,
        seed: 7,
    });
    println!(
        "warehouse built: {} pages across {} objects",
        bench.db.disk.total_pages(),
        bench.db.object_count()
    );

    let n = 160;
    let queries = sample_workload(&bench, Template::T18, n, 42);
    println!("sampled {n} instances of {}", Template::T18);
    println!("example plan:\n{}", queries[0].plan.explain(&bench.db));

    let traces: Vec<_> = queries
        .iter()
        .map(|q| pythia::db::exec::execute(&q.plan, &bench.db).1)
        .collect();

    // 10% unseen test queries.
    let n_test = n / 10;
    let (test_q, train_q) = queries.split_at(n_test);
    let (test_t, train_t) = traces.split_at(n_test);

    // ---- train ----
    let cfg = PythiaConfig {
        epochs: 40,
        batch_size: 32,
        lr: 3e-3,
        pos_weight: 2.0,
        ..PythiaConfig::fast()
    };
    let pool_frames = (bench.db.disk.total_pages() as usize / 8).max(256);
    let mut pythia = PythiaSystem::new(cfg, pool_frames * 3 / 4);
    let train_plans: Vec<_> = train_q.iter().map(|q| q.plan.clone()).collect();
    pythia.learn_workload(&bench.db, "dsb-t18", &train_plans, train_t, None);
    let tw = &pythia.workloads()[0];
    println!(
        "trained models for {} objects ({:.1} MB total)",
        tw.modeled_objects().len(),
        tw.size_bytes() as f64 / 1e6
    );

    // ---- evaluate held-out queries ----
    let nn = NearestNeighbor::new(train_t);
    let run_cfg = RunConfig {
        pool_frames,
        ..RunConfig::default()
    };
    let modeled = tw.modeled_objects();

    println!(
        "\n{:<6} {:>6} {:>10} {:>10} {:>10} {:>10}",
        "query", "F1", "DFLT", "pythia", "ORCL", "NN"
    );
    let mut speedups = Vec::new();
    for (i, (q, trace)) in test_q.iter().zip(test_t).enumerate() {
        let eng = pythia.engage(&bench.db, &q.plan).expect("in-distribution");
        let m = f1_score(
            &tw.infer(&bench.db, &q.plan).as_set(),
            &ground_truth(trace, &modeled),
        );

        let time = |prefetch: Option<Vec<_>>, inf: SimDuration| {
            let mut rt = Runtime::new(&run_cfg, bench.db.file_lengths());
            let run = match prefetch {
                None => QueryRun::default_run(trace),
                Some(p) => QueryRun::with_prefetch(trace, p, inf),
            };
            rt.run(&[run]).timings[0].elapsed()
        };
        let dflt = time(None, SimDuration::ZERO);
        let pyth = time(Some(eng.prefetch), eng.inference);
        let orcl = time(
            Some(oracle_prefetch(trace, OracleScope::All)),
            SimDuration::ZERO,
        );
        let (nn_pages, _, _) = nn.prefetch_for(trace);
        let nnt = time(Some(nn_pages), SimDuration::ZERO);

        let sp = dflt.as_micros() as f64 / pyth.as_micros() as f64;
        speedups.push(sp);
        println!(
            "{:<6} {:>6.3} {:>10} {:>10} {:>10} {:>10}   (pythia speedup {:.2}x)",
            format!("q{i}"),
            m.f1,
            dflt.to_string(),
            pyth.to_string(),
            orcl.to_string(),
            nnt.to_string(),
            sp
        );
    }
    let mean = speedups.iter().sum::<f64>() / speedups.len() as f64;
    println!("\nmean Pythia speedup over DFLT: {mean:.2}x");
}
