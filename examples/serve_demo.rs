//! A live prefetch-serving endpoint you can hit with `curl` or netcat.
//!
//! ```bash
//! cargo run --release --example serve_demo -- --addr 127.0.0.1:7878 --tenants 2
//! # then, from another shell:
//! curl http://127.0.0.1:7878/healthz
//! curl http://127.0.0.1:7878/query/0          # tenant 0 (legacy route)
//! curl http://127.0.0.1:7878/t/1/query/0      # tenant 1
//! curl http://127.0.0.1:7878/t/1/stats        # tenant-scoped counters
//! curl http://127.0.0.1:7878/t/1/health       # live quality/drift snapshot
//! curl http://127.0.0.1:7878/stats
//! curl http://127.0.0.1:7878/shutdown
//! ```
//!
//! Builds one small DSB-like benchmark database **per tenant** (different
//! generator seeds) with a catalog of Template-18 queries, then puts the
//! zero-dependency TCP [`Frontend`] in front of a continuous-admission
//! [`PrefetchServer`] fleet — one server per tenant, each over its own
//! database. `GET /t/<tenant>/query/<idx>` becomes an arrival event routed
//! to that tenant's server; queued requests are drained in opportunistic
//! batches, admitted the moment a replay slot frees (no wave barrier), and
//! answered with the query's virtual-time outcome as JSON. Requests beyond
//! the queue depth target are load-shed with `503 Retry-After`.
//!
//! Flags:
//!
//! * `--addr <host:port>` — listen address (default `127.0.0.1:0`, i.e. an
//!   ephemeral port; the bound address is printed on startup).
//! * `--shed-depth <n>` — queue depth target above which requests are shed
//!   (default 32).
//! * `--tenants <n>` — number of tenant databases to serve (default 1).
//! * `--train` — train a Pythia predictor per tenant and publish it through
//!   the hot-swappable model registry (slower startup; admitted queries then
//!   replay with learned prefetching).
//! * `--metrics-addr <host:port>` — listen address for the metrics/debug
//!   endpoint (default `127.0.0.1:0`). Serves `/metrics`, `/metrics.json`,
//!   `/debug/slow` (top-K slowest requests with latency breakdowns) and
//!   `/debug/flight` (the latest anomaly-triggered postmortem trace dump).
//! * `--slow-ms <n>` — virtual-time latency (milliseconds) above which a
//!   completion counts as a slow request and triggers a flight-recorder
//!   dump (default 0 = disabled).
//! * `--flight-out <path>` — write the latest flight dump (Chrome-trace
//!   JSON) to `path` on shutdown.
//! * `--force-drift <tenant>` — raise one operator-drill drift alert on
//!   that tenant after its first served batch; exercises the full
//!   drift-alert + postmortem-dump path deterministically (the CI anomaly
//!   smoke).
//!
//! Anomaly triggers that snapshot the always-on flight recorder into
//! `/debug/flight`: drift alerts (real or drilled), slow requests over
//! `--slow-ms`, and shed bursts (8+ newly shed requests between drains).
//!
//! `/shutdown` drains the queue and exits cleanly — that is how the CI
//! smoke test stops the demo.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use pythia::core::frontend::outcome_json;
use pythia::core::registry::ModelRegistry;
use pythia::core::{
    train_workload, AdmissionMode, Arrival, Frontend, FrontendConfig, InferenceCharge,
    PrefetchServer, PythiaConfig, QueuePolicy, ServerConfig, ServerRequest,
};
use pythia::db::runtime::RunConfig;
use pythia::obs::flight::SharedFlight;
use pythia::obs::quality::QualityTracker;
use pythia::obs::request::SharedSlowLog;
use pythia::obs::serve::{DebugEndpoints, MetricsServer, SharedSnapshot};
use pythia::obs::Recorder;
use pythia::sim::SimDuration;
use pythia::workloads::templates::{sample_workload, Template};
use pythia::workloads::{build_benchmark, GeneratorConfig};

/// Value of a `--<name> <value>` (or `--<name>=<value>`) flag, if present.
fn flag_value(name: &str) -> Option<String> {
    let long = format!("--{name}");
    let prefixed = format!("--{name}=");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == long {
            return args.next();
        }
        if let Some(p) = a.strip_prefix(&prefixed) {
            return Some(p.to_owned());
        }
    }
    None
}

fn main() {
    let addr = flag_value("addr").unwrap_or_else(|| "127.0.0.1:0".to_owned());
    let shed_depth: usize = flag_value("shed-depth")
        .map(|v| v.parse().expect("--shed-depth takes an integer"))
        .unwrap_or(32);
    let tenants: usize = flag_value("tenants")
        .map(|v| v.parse().expect("--tenants takes an integer"))
        .unwrap_or(1)
        .max(1);
    let train = std::env::args().any(|a| a == "--train");
    let metrics_addr = flag_value("metrics-addr").unwrap_or_else(|| "127.0.0.1:0".to_owned());
    let slow_ms: u64 = flag_value("slow-ms")
        .map(|v| v.parse().expect("--slow-ms takes an integer"))
        .unwrap_or(0);
    let flight_out = flag_value("flight-out");
    let force_drift: Option<u32> =
        flag_value("force-drift").map(|v| v.parse().expect("--force-drift takes a tenant index"));

    eprintln!("[serve_demo] building {tenants} tenant database(s) + query catalogs...");
    let benches: Vec<_> = (0..tenants)
        .map(|t| {
            build_benchmark(&GeneratorConfig {
                scale: 0.05,
                seed: 7 + t as u64,
            })
        })
        .collect();
    let catalogs: Vec<_> = benches
        .iter()
        .map(|b| {
            let queries = sample_workload(b, Template::T18, 12, 42);
            let traces: Vec<_> = queries
                .iter()
                .map(|q| pythia::db::exec::execute(&q.plan, &b.db).1)
                .collect();
            (queries, traces)
        })
        .collect();
    let catalog_len = catalogs[0].0.len();

    // Optionally train Pythia per tenant and publish through the model
    // registry (versioned, hot-swappable mid-serving); without --train the
    // demo serves the DFLT baseline (instant startup, which is what the CI
    // smoke test wants).
    let registry = ModelRegistry::new();
    if train {
        for (t, (b, (queries, traces))) in benches.iter().zip(&catalogs).enumerate() {
            eprintln!("[serve_demo] training tenant {t}'s predictor (--train)...");
            let plans: Vec<_> = queries.iter().map(|q| q.plan.clone()).collect();
            let tw = train_workload(
                &b.db,
                "demo-t18",
                &plans,
                traces,
                None,
                &PythiaConfig::fast(),
            );
            let v = registry.tenant(&format!("tenant{t}")).publish(tw);
            eprintln!("[serve_demo] tenant {t} fleet at version {v}");
        }
    }

    let fe = Frontend::start(
        &addr,
        FrontendConfig {
            shed_depth,
            tenants,
            ..FrontendConfig::new(catalog_len)
        },
    )
    .unwrap_or_else(|e| panic!("binding {addr}: {e}"));
    println!("serve_demo listening on http://{}", fe.addr());
    println!(
        "  catalog: {} Template-18 queries x {} tenant(s); predictor: {}",
        catalog_len,
        tenants,
        if train { "trained" } else { "none (DFLT)" }
    );
    println!("  try: curl http://{}/query/0", fe.addr());
    println!("  try: curl http://{}/t/0/health", fe.addr());
    if tenants > 1 {
        println!("  try: curl http://{}/t/1/query/0", fe.addr());
        println!("  try: curl http://{}/t/1/stats", fe.addr());
    }
    println!("  stop: curl http://{}/shutdown", fe.addr());

    // Live metrics plus the postmortem debug surface. The flight recorder
    // and slow log are shared by the whole tenant fleet: any server's
    // anomaly trigger publishes the dump `/debug/flight` serves, and every
    // batch feeds the top-K slow log behind `/debug/slow`.
    let snap = SharedSnapshot::new();
    let flight = SharedFlight::new();
    let slow_log = SharedSlowLog::new();
    let metrics = MetricsServer::start_with_debug(
        &metrics_addr,
        snap.clone(),
        DebugEndpoints {
            flight: flight.clone(),
            slow: slow_log.clone(),
        },
    )
    .unwrap_or_else(|e| panic!("binding metrics {metrics_addr}: {e}"));
    println!("serve_demo metrics on http://{}/metrics", metrics.addr());
    println!(
        "  debug: http://{0}/debug/slow and http://{0}/debug/flight",
        metrics.addr()
    );

    // One quality tracker shared by the whole fleet (it is keyed by tenant
    // internally) feeds the per-tenant /t/<tenant>/health route: rolling
    // quality windows, drift detectors, the fleet's live model version, and
    // this front's own per-tenant counters.
    let quality = Arc::new(Mutex::new(QualityTracker::default()));
    let fleets: Vec<_> = (0..tenants)
        .map(|t| registry.tenant(&format!("tenant{t}")))
        .collect();
    {
        let quality = Arc::clone(&quality);
        fe.set_health_provider(Arc::new(move |tenant, stats| {
            let version = fleets
                .get(tenant as usize)
                .and_then(|f| f.any())
                .map(|v| v.version);
            let tracker = match quality.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            Some(tracker.health_json(
                tenant,
                version,
                Some((stats.accepted, stats.shed, stats.rejected)),
            ))
        }));
    }

    let cfg = ServerConfig {
        concurrency: 2,
        admission: AdmissionMode::Continuous,
        policy: QueuePolicy::Fifo,
        charge: InferenceCharge::Fixed(SimDuration::from_micros(150)),
        prefetch_budget: None,
        tenant_quota: None,
    };
    let mut srvs: Vec<PrefetchServer<'_>> = benches
        .iter()
        .enumerate()
        .map(|(t, b)| {
            let mut s = PrefetchServer::new(&b.db, &RunConfig::default(), cfg)
                .with_quality(Arc::clone(&quality));
            if train {
                s = s.with_registry(registry.tenant(&format!("tenant{t}")));
            }
            // Every tenant's recorder can publish postmortem dumps; tenant
            // 0's additionally feeds the /metrics snapshot (one snapshot
            // cell — per-tenant quality lives at /t/<tenant>/health).
            let mut rec = Recorder::enabled();
            rec.set_flight_publisher(flight.clone());
            if t == 0 {
                rec.set_publisher(snap.clone());
            }
            s.set_recorder(rec);
            if slow_ms > 0 {
                s.set_slow_threshold(Some(SimDuration::from_millis(slow_ms)));
            }
            s
        })
        .collect();

    // Shed bursts are an anomaly trigger: 8+ newly shed requests between
    // drains snapshot the flight recorder for postmortem inspection.
    const SHED_BURST: u64 = 8;
    let mut last_shed = 0u64;
    let mut drift_fired = false;
    loop {
        let batch = fe.drain_batch(Duration::from_millis(50));
        let shed = fe.stats().shed;
        if shed.saturating_sub(last_shed) >= SHED_BURST {
            let now_us = srvs[0].runtime().now().as_micros();
            srvs[0].recorder_mut().trigger_flight("shed.burst", now_us);
            eprintln!(
                "[serve_demo] shed burst: {} newly shed requests, flight dump captured",
                shed - last_shed
            );
        }
        last_shed = shed;
        if batch.is_empty() {
            if fe.shutdown_requested() && fe.depth() == 0 {
                break;
            }
            continue;
        }
        // Route each arrival to its tenant's server; each tenant's slice of
        // the batch is served against that tenant's own database.
        let mut groups: Vec<Vec<Arrival>> = (0..tenants).map(|_| Vec::new()).collect();
        for a in batch {
            groups[a.tenant as usize].push(a);
        }
        for (t, group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let (queries, traces) = &catalogs[t];
            let reqs: Vec<ServerRequest<'_>> = group
                .iter()
                .map(|a| ServerRequest {
                    // Template-derived span so the quality tracker slots
                    // outcomes under the template, not an anonymous replay.
                    span_name: Template::T18.replay_span(),
                    ..ServerRequest::new(
                        &queries[a.query].plan,
                        &traces[a.query],
                        SimDuration::ZERO,
                    )
                    .with_tenant(a.tenant)
                })
                .collect();
            let rep = srvs[t].serve(&reqs);
            eprintln!(
                "[serve_demo] tenant {t}: served batch of {}: makespan {}, throughput {:.1} q/s",
                rep.queries.len(),
                rep.makespan(),
                rep.throughput_qps()
            );
            // Feed the /debug/slow top-K log with every request's
            // queue/admission/inference/replay breakdown.
            for b in rep.breakdowns() {
                slow_log.offer(b);
            }
            if force_drift == Some(t as u32) && !drift_fired {
                drift_fired = true;
                let now_us = srvs[t].runtime().now().as_micros();
                let mut tracker = match quality.lock() {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
                let alert = tracker.force_alert(t as u32, now_us, srvs[t].recorder_mut());
                drop(tracker);
                eprintln!(
                    "[serve_demo] forced drift drill on tenant {t}: kind {}, flight dump captured",
                    alert.kind.name()
                );
            }
            for (a, q) in group.into_iter().zip(&rep.queries) {
                a.responder.ok_json(&outcome_json(a.query, q));
            }
        }
    }

    if let Some(path) = flight_out {
        match flight.get() {
            Some(d) => {
                std::fs::write(&path, &d.trace_json)
                    .unwrap_or_else(|e| panic!("writing {path}: {e}"));
                println!("flight dump ({}) written to {path}", d.reason);
            }
            None => eprintln!(
                "[serve_demo] no flight dump captured (no anomaly trigger fired); {path} not written"
            ),
        }
    }
    let stats = fe.stats();
    println!(
        "serve_demo done: accepted {} shed {} rejected {}",
        stats.accepted, stats.shed, stats.rejected
    );
    metrics.shutdown();
    fe.shutdown();
}
