//! A live prefetch-serving endpoint you can hit with `curl` or netcat.
//!
//! ```bash
//! cargo run --release --example serve_demo -- --addr 127.0.0.1:7878
//! # then, from another shell:
//! curl http://127.0.0.1:7878/healthz
//! curl http://127.0.0.1:7878/query/0
//! curl http://127.0.0.1:7878/stats
//! curl http://127.0.0.1:7878/shutdown
//! ```
//!
//! Builds a small DSB-like benchmark database and a catalog of Template-18
//! queries, then puts the zero-dependency TCP [`Frontend`] in front of a
//! continuous-admission [`PrefetchServer`]: each `GET /query/<idx>` becomes
//! an arrival event, queued requests are drained in opportunistic batches,
//! admitted the moment a replay slot frees (no wave barrier), and answered
//! with the query's virtual-time outcome as JSON. Requests beyond the queue
//! depth target are load-shed with `503 Retry-After`.
//!
//! Flags:
//!
//! * `--addr <host:port>` — listen address (default `127.0.0.1:0`, i.e. an
//!   ephemeral port; the bound address is printed on startup).
//! * `--shed-depth <n>` — queue depth target above which requests are shed
//!   (default 32).
//! * `--train` — train a Pythia predictor on the catalog first (slower
//!   startup; admitted queries then replay with learned prefetching).
//!
//! `/shutdown` drains the queue and exits cleanly — that is how the CI
//! smoke test stops the demo.

use std::time::Duration;

use pythia::core::frontend::outcome_json;
use pythia::core::{
    AdmissionMode, Frontend, FrontendConfig, InferenceCharge, PrefetchServer, PythiaConfig,
    QueuePolicy, ServerConfig, ServerRequest,
};
use pythia::db::runtime::RunConfig;
use pythia::sim::SimDuration;
use pythia::workloads::templates::{sample_workload, Template};
use pythia::workloads::{build_benchmark, GeneratorConfig};
use pythia::PythiaSystem;

/// Value of a `--<name> <value>` (or `--<name>=<value>`) flag, if present.
fn flag_value(name: &str) -> Option<String> {
    let long = format!("--{name}");
    let prefixed = format!("--{name}=");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == long {
            return args.next();
        }
        if let Some(p) = a.strip_prefix(&prefixed) {
            return Some(p.to_owned());
        }
    }
    None
}

fn main() {
    let addr = flag_value("addr").unwrap_or_else(|| "127.0.0.1:0".to_owned());
    let shed_depth: usize = flag_value("shed-depth")
        .map(|v| v.parse().expect("--shed-depth takes an integer"))
        .unwrap_or(32);
    let train = std::env::args().any(|a| a == "--train");

    eprintln!("[serve_demo] building benchmark database + query catalog...");
    let bench = build_benchmark(&GeneratorConfig {
        scale: 0.05,
        seed: 7,
    });
    let queries = sample_workload(&bench, Template::T18, 12, 42);
    let traces: Vec<_> = queries
        .iter()
        .map(|q| pythia::db::exec::execute(&q.plan, &bench.db).1)
        .collect();

    // Optionally train Pythia on the catalog so served queries replay with
    // learned prefetching; without --train the demo serves the DFLT baseline
    // (instant startup, which is what the CI smoke test wants).
    let system = train.then(|| {
        eprintln!("[serve_demo] training predictor on the catalog (--train)...");
        let budget = (bench.db.disk.total_pages() as usize / 8).max(256) * 3 / 4;
        let mut sys = PythiaSystem::new(PythiaConfig::fast(), budget);
        let plans: Vec<_> = queries.iter().map(|q| q.plan.clone()).collect();
        sys.learn_workload(&bench.db, "demo-t18", &plans, &traces, None);
        sys
    });

    let fe = Frontend::start(
        &addr,
        FrontendConfig {
            shed_depth,
            ..FrontendConfig::new(queries.len())
        },
    )
    .unwrap_or_else(|e| panic!("binding {addr}: {e}"));
    println!("serve_demo listening on http://{}", fe.addr());
    println!(
        "  catalog: {} Template-18 queries; predictor: {}",
        queries.len(),
        if train { "trained" } else { "none (DFLT)" }
    );
    println!("  try: curl http://{}/query/0", fe.addr());
    println!("  stop: curl http://{}/shutdown", fe.addr());

    let cfg = ServerConfig {
        concurrency: 2,
        admission: AdmissionMode::Continuous,
        policy: QueuePolicy::Fifo,
        charge: InferenceCharge::Fixed(SimDuration::from_micros(150)),
        prefetch_budget: None,
    };
    let mut srv = PrefetchServer::new(&bench.db, &RunConfig::default(), cfg);
    if let Some(sys) = system.as_ref() {
        srv = srv.with_predictor(&sys.workloads()[0]);
    }

    loop {
        let batch = fe.drain_batch(Duration::from_millis(50));
        if batch.is_empty() {
            if fe.shutdown_requested() && fe.depth() == 0 {
                break;
            }
            continue;
        }
        let reqs: Vec<ServerRequest<'_>> = batch
            .iter()
            .map(|a| {
                ServerRequest::new(&queries[a.query].plan, &traces[a.query], SimDuration::ZERO)
            })
            .collect();
        let rep = srv.serve(&reqs);
        eprintln!(
            "[serve_demo] served batch of {}: makespan {}, throughput {:.1} q/s",
            rep.queries.len(),
            rep.makespan(),
            rep.throughput_qps()
        );
        for (a, q) in batch.into_iter().zip(&rep.queries) {
            a.responder.ok_json(&outcome_json(a.query, q));
        }
    }

    let stats = fe.stats();
    println!(
        "serve_demo done: accepted {} shed {} rejected {}",
        stats.accepted, stats.shed, stats.rejected
    );
    fe.shutdown();
}
