//! Multiple concurrent queries sharing one buffer pool (paper §5.4).
//!
//! ```bash
//! cargo run --release --example concurrent_queries
//! ```
//!
//! Trains Pythia on a Template-18 workload, then launches batches of
//! concurrent test queries against a shared replay stack — with and without
//! Pythia — and reports makespans and buffer statistics. Queries from the
//! same template help each other (one query's prefetched pages are another's
//! buffer hits), exactly the effect the paper measures in Figure 13b.

use pythia::core::PythiaConfig;
use pythia::db::runtime::{QueryRun, RunConfig, Runtime};
use pythia::sim::SimDuration;
use pythia::workloads::templates::{sample_workload, Template};
use pythia::workloads::{build_benchmark, GeneratorConfig};
use pythia::PythiaSystem;

fn main() {
    let bench = build_benchmark(&GeneratorConfig {
        scale: 0.2,
        seed: 5,
    });
    let n = 120;
    let queries = sample_workload(&bench, Template::T18, n, 21);
    let traces: Vec<_> = queries
        .iter()
        .map(|q| pythia::db::exec::execute(&q.plan, &bench.db).1)
        .collect();
    let (test_q, train_q) = queries.split_at(8);
    let (test_t, train_t) = traces.split_at(8);

    let pool_frames = (bench.db.disk.total_pages() as usize / 8).max(256);
    let cfg = PythiaConfig {
        epochs: 40,
        batch_size: 32,
        lr: 3e-3,
        pos_weight: 2.0,
        ..PythiaConfig::fast()
    };
    let mut pythia = PythiaSystem::new(cfg, pool_frames * 3 / 4);
    let train_plans: Vec<_> = train_q.iter().map(|q| q.plan.clone()).collect();
    pythia.learn_workload(&bench.db, "dsb-t18", &train_plans, train_t, None);
    println!(
        "trained on {} queries; evaluating concurrent batches\n",
        train_q.len()
    );

    let run_cfg = RunConfig {
        pool_frames,
        ..RunConfig::default()
    };
    println!(
        "{:<12} {:>14} {:>14} {:>9} {:>10} {:>10}",
        "concurrency", "DFLT makespan", "pythia makespan", "speedup", "hit rate", "pf useful"
    );
    for &k in &[1usize, 2, 4, 8] {
        // DFLT batch.
        let mut rt = Runtime::new(&run_cfg, bench.db.file_lengths());
        let runs: Vec<QueryRun<'_>> = (0..k)
            .map(|i| QueryRun::default_run(&test_t[i % test_t.len()]))
            .collect();
        let dflt = rt.run(&runs);

        // Pythia batch: each query gets its own prediction + AIO prefetcher.
        let mut rt = Runtime::new(&run_cfg, bench.db.file_lengths());
        let engagements: Vec<_> = (0..k)
            .map(|i| {
                pythia
                    .engage(&bench.db, &test_q[i % test_q.len()].plan)
                    .expect("match")
            })
            .collect();
        let runs: Vec<QueryRun<'_>> = (0..k)
            .map(|i| QueryRun {
                trace: &test_t[i % test_t.len()],
                prefetch: Some(engagements[i].prefetch.clone()),
                arrival: SimDuration::ZERO,
                inference_latency: engagements[i].inference,
                span_name: pythia::db::runtime::DEFAULT_REPLAY_SPAN,
            })
            .collect();
        let pyth = rt.run(&runs);

        println!(
            "{:<12} {:>14} {:>14} {:>8.2}x {:>9.1}% {:>10}",
            k,
            dflt.makespan().to_string(),
            pyth.makespan().to_string(),
            dflt.makespan().as_micros() as f64 / pyth.makespan().as_micros() as f64,
            pyth.stats.hit_rate() * 100.0,
            pyth.stats.prefetch_useful,
        );
    }
}
