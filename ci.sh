#!/usr/bin/env bash
# Tier-1 gate for the workspace: formatting, lints, release build, tests.
#
#   ./ci.sh            # run everything
#   ./ci.sh --fast     # skip the release build (fmt + clippy + tests)
#
# Every step must pass; clippy warnings are errors.
set -euo pipefail
cd "$(dirname "$0")"

fast=0
if [[ "${1:-}" == "--fast" ]]; then
  fast=1
fi

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "$fast" -eq 0 ]]; then
  echo "==> cargo build --release"
  cargo build --release
fi

echo "==> cargo test -q"
cargo test -q

# Run the suite again with SIMD dispatch forced off so the scalar fallback
# arm of every GEMM kernel is exercised end to end (the proptests also pin
# dispatched == scalar bit-identity, but this covers whole-stack behaviour
# under the fallback).
echo "==> PYTHIA_SIMD=off cargo test -q"
PYTHIA_SIMD=off cargo test -q

if [[ "$fast" -eq 0 ]]; then
  echo "==> traced mini serving runs (trace-diff regression gate)"
  mkdir -p results
  cargo run --release -q -p pythia-experiments --bin serving -- \
    --mini --trace-out results/serving_trace.json \
    --metrics-out results/metrics_snapshot.json \
    --admission-out results/admission_snapshot.json \
    --drift-out results/drift_snapshot.json
  cargo run --release -q -p pythia-experiments --bin serving -- \
    --mini --trace-out results/serving_trace_rerun.json

  # Drift gate: the stationary-mix control must report zero drift alerts
  # (no false positives), and the template-mix rotation must have fired at
  # least one (`first_alert_observation` stays 0 only when none ever fired).
  if ! grep -q '"stationary": {"queries": 32, "observations": 32, "alerts": 0' \
      results/drift_snapshot.json; then
    echo "!!> stationary drift control raised alerts (false positive):" >&2
    cat results/drift_snapshot.json >&2
    exit 1
  fi
  if grep -q '"first_alert_observation": 0,' results/drift_snapshot.json; then
    echo "!!> template-mix rotation never raised a drift alert:" >&2
    cat results/drift_snapshot.json >&2
    exit 1
  fi

  # An empty or non-JSON trace (a silently broken recorder) fails outright.
  cargo run --release -q -p pythia-experiments --bin trace_diff -- \
    --validate results/serving_trace.json
  cargo run --release -q -p pythia-experiments --bin trace_diff -- \
    --validate results/serving_trace_rerun.json

  # Same seed + fixed inference charge => the two runs' virtual-clock traces
  # must be structurally AND byte-for-byte identical. Any drift is a
  # determinism regression in the serving stack.
  cargo run --release -q -p pythia-experiments --bin trace_diff -- \
    results/serving_trace.json results/serving_trace_rerun.json

  # Structural compare against the checked-in golden summary, with the
  # allowlist marking intentional drift (regenerate the golden with
  # `trace_diff --summary` after reviewing a deliberate change, or delete it
  # and rerun ci.sh to re-bless).
  cargo run --release -q -p pythia-experiments --bin trace_diff -- \
    --summary results/serving_trace.json > results/serving_trace_summary.txt
  if [[ -f tests/golden/serving_trace_summary.txt ]]; then
    cargo run --release -q -p pythia-experiments --bin trace_diff -- \
      tests/golden/serving_trace_summary.txt results/serving_trace.json \
      --allow-file tests/golden/trace_allowlist.txt
  else
    # A missing golden is never silent: bless the fresh summary into the
    # golden directory and shout until it gets committed. (The summary is a
    # run artifact, so it cannot be hand-authored — this is the only way to
    # create it.) Under CI ($CI set) the blessed file would never reach the
    # repo, silently turning the trace-diff gate into a no-op on every
    # subsequent run — so auto-blessing there is a hard failure instead.
    cp results/serving_trace_summary.txt tests/golden/serving_trace_summary.txt
    echo "!!> no golden serving-trace summary was checked in." >&2
    echo "!!> auto-blessed results/serving_trace_summary.txt into tests/golden/." >&2
    echo "!!> COMMIT tests/golden/serving_trace_summary.txt to pin the serving trace." >&2
    if [[ -n "${CI:-}" ]]; then
      echo "!!> refusing to continue under CI with an unpinned serving trace." >&2
      echo "!!> bless the golden locally (run ci.sh, commit the file) first." >&2
      exit 1
    fi
  fi

  echo "==> serve_demo socket smoke test (two tenants + postmortem surface)"
  cargo build --release -q --example serve_demo
  rm -f results/serve_demo.log results/flight_dump.json
  # --slow-ms 1 marks virtually every replay slow (virtual latencies are
  # tens-to-hundreds of ms), --force-drift 1 injects one drill drift alert
  # after tenant 1's first admission — both trigger flight-recorder dumps,
  # which /debug/flight serves live and --flight-out persists on shutdown.
  ./target/release/examples/serve_demo --addr 127.0.0.1:0 --tenants 2 \
    --metrics-addr 127.0.0.1:0 --slow-ms 1 --force-drift 1 \
    --flight-out results/flight_dump.json \
    > results/serve_demo.log 2>&1 &
  demo_pid=$!
  demo_addr=""
  metrics_addr=""
  for _ in $(seq 1 100); do
    demo_addr=$(sed -n 's|^serve_demo listening on http://||p' \
      results/serve_demo.log | head -n1)
    metrics_addr=$(sed -n 's|^serve_demo metrics on http://||p' \
      results/serve_demo.log | head -n1 | sed 's|/metrics$||')
    [[ -n "$demo_addr" && -n "$metrics_addr" ]] && break
    sleep 0.1
  done
  if [[ -z "$demo_addr" || -z "$metrics_addr" ]]; then
    echo "!!> serve_demo never printed its listen + metrics addresses" >&2
    cat results/serve_demo.log >&2
    kill "$demo_pid" 2>/dev/null || true
    exit 1
  fi
  demo_host=${demo_addr%:*}
  demo_port=${demo_addr##*:}
  metrics_host=${metrics_addr%:*}
  metrics_port=${metrics_addr##*:}
  demo_get() {
    exec 3<>"/dev/tcp/$demo_host/$demo_port"
    printf 'GET %s HTTP/1.1\r\nHost: ci\r\nConnection: close\r\n\r\n' "$1" >&3
    cat <&3
    exec 3>&- 3<&-
  }
  metrics_get() {
    exec 3<>"/dev/tcp/$metrics_host/$metrics_port"
    printf 'GET %s HTTP/1.1\r\nHost: ci\r\nConnection: close\r\n\r\n' "$1" >&3
    cat <&3
    exec 3>&- 3<&-
  }
  demo_resp=$(demo_get /query/0)
  if ! grep -q 'HTTP/1.1 200 OK' <<<"$demo_resp" \
    || ! grep -q '"latency_us"' <<<"$demo_resp"; then
    echo "!!> malformed serve_demo response:" >&2
    echo "$demo_resp" >&2
    kill "$demo_pid" 2>/dev/null || true
    exit 1
  fi
  # Tenant 1 is served from its own database via the /t/<tenant>/ routes,
  # and its scoped stats count exactly its own traffic.
  demo_t1=$(demo_get /t/1/query/0)
  if ! grep -q 'HTTP/1.1 200 OK' <<<"$demo_t1" \
    || ! grep -q '"latency_us"' <<<"$demo_t1"; then
    echo "!!> malformed serve_demo tenant-1 response:" >&2
    echo "$demo_t1" >&2
    kill "$demo_pid" 2>/dev/null || true
    exit 1
  fi
  demo_t1_stats=$(demo_get /t/1/stats)
  if ! grep -q '"accepted":1' <<<"$demo_t1_stats"; then
    echo "!!> tenant-1 scoped stats did not count its one query:" >&2
    echo "$demo_t1_stats" >&2
    kill "$demo_pid" 2>/dev/null || true
    exit 1
  fi
  # The tenant-scoped health route serves the live quality/drift snapshot;
  # after tenant 1's query above, its tracker slice must hold an outcome.
  demo_health=$(demo_get /t/1/health)
  if ! grep -q 'HTTP/1.1 200 OK' <<<"$demo_health" \
    || ! grep -q '"observations"' <<<"$demo_health" \
    || ! grep -q '"drift"' <<<"$demo_health"; then
    echo "!!> malformed serve_demo tenant-1 health snapshot:" >&2
    echo "$demo_health" >&2
    kill "$demo_pid" 2>/dev/null || true
    exit 1
  fi
  # Request tracing surfaces: the per-query JSON line carries the minted
  # request id and the queue/admission/infer/replay latency breakdown...
  if ! grep -q '"request":' <<<"$demo_t1" \
    || ! grep -q '"queue_us"' <<<"$demo_t1" \
    || ! grep -q '"replay_us"' <<<"$demo_t1"; then
    echo "!!> serve_demo response is missing the request-tracing fields:" >&2
    echo "$demo_t1" >&2
    kill "$demo_pid" 2>/dev/null || true
    exit 1
  fi
  # ...and /debug/slow holds the top-K breakdowns folded from every batch.
  demo_slow=$(metrics_get /debug/slow)
  if ! grep -q 'HTTP/1.1 200 OK' <<<"$demo_slow" \
    || ! grep -q '"requests":\[{"request":' <<<"$demo_slow"; then
    echo "!!> /debug/slow did not report the served requests:" >&2
    echo "$demo_slow" >&2
    kill "$demo_pid" 2>/dev/null || true
    exit 1
  fi
  # The anomaly triggers above (slow requests + the forced drift drill)
  # must leave a postmortem flight dump behind /debug/flight: a Chrome
  # trace with flow-linked request.* spans from the always-on ring.
  demo_flight=$(metrics_get /debug/flight)
  if ! grep -q 'HTTP/1.1 200 OK' <<<"$demo_flight" \
    || ! grep -q '"request\.' <<<"$demo_flight" \
    || ! grep -q '"ph":"s"' <<<"$demo_flight"; then
    echo "!!> /debug/flight has no dump with flow-linked request spans:" >&2
    echo "$demo_flight" >&2
    kill "$demo_pid" 2>/dev/null || true
    exit 1
  fi
  demo_get /shutdown > /dev/null
  wait "$demo_pid"
  # --flight-out persists the final dump; it must be a loadable trace.
  if [[ ! -s results/flight_dump.json ]]; then
    echo "!!> serve_demo did not write results/flight_dump.json" >&2
    cat results/serve_demo.log >&2
    exit 1
  fi
  cargo run --release -q -p pythia-experiments --bin trace_diff -- \
    --validate results/flight_dump.json
  echo "    serve_demo answered both tenants, served /debug/slow + /debug/flight, and wrote a loadable flight dump"
fi

echo "==> ci.sh: all gates passed"
