#!/usr/bin/env bash
# Tier-1 gate for the workspace: formatting, lints, release build, tests.
#
#   ./ci.sh            # run everything
#   ./ci.sh --fast     # skip the release build (fmt + clippy + tests)
#
# Every step must pass; clippy warnings are errors.
set -euo pipefail
cd "$(dirname "$0")"

fast=0
if [[ "${1:-}" == "--fast" ]]; then
  fast=1
fi

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "$fast" -eq 0 ]]; then
  echo "==> cargo build --release"
  cargo build --release
fi

echo "==> cargo test -q"
cargo test -q

if [[ "$fast" -eq 0 ]]; then
  echo "==> traced mini serving run (Perfetto trace -> results/serving_trace.json)"
  mkdir -p results
  cargo run --release -q -p pythia-experiments --bin serving -- \
    --mini --trace-out results/serving_trace.json
  # The trace-event schema itself is asserted in tests/trace_obs.rs; here we
  # only sanity-check that the run produced a non-empty JSON array.
  head -c 2 results/serving_trace.json | grep -q '\[' \
    || { echo "serving_trace.json is not a JSON array" >&2; exit 1; }
fi

echo "==> ci.sh: all gates passed"
