#!/usr/bin/env bash
# Tier-1 gate for the workspace: formatting, lints, release build, tests.
#
#   ./ci.sh            # run everything
#   ./ci.sh --fast     # skip the release build (fmt + clippy + tests)
#
# Every step must pass; clippy warnings are errors.
set -euo pipefail
cd "$(dirname "$0")"

fast=0
if [[ "${1:-}" == "--fast" ]]; then
  fast=1
fi

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "$fast" -eq 0 ]]; then
  echo "==> cargo build --release"
  cargo build --release
fi

echo "==> cargo test -q"
cargo test -q

echo "==> ci.sh: all gates passed"
