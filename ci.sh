#!/usr/bin/env bash
# Tier-1 gate for the workspace: formatting, lints, release build, tests.
#
#   ./ci.sh            # run everything
#   ./ci.sh --fast     # skip the release build (fmt + clippy + tests)
#
# Every step must pass; clippy warnings are errors.
set -euo pipefail
cd "$(dirname "$0")"

fast=0
if [[ "${1:-}" == "--fast" ]]; then
  fast=1
fi

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "$fast" -eq 0 ]]; then
  echo "==> cargo build --release"
  cargo build --release
fi

echo "==> cargo test -q"
cargo test -q

# Run the suite again with SIMD dispatch forced off so the scalar fallback
# arm of every GEMM kernel is exercised end to end (the proptests also pin
# dispatched == scalar bit-identity, but this covers whole-stack behaviour
# under the fallback).
echo "==> PYTHIA_SIMD=off cargo test -q"
PYTHIA_SIMD=off cargo test -q

if [[ "$fast" -eq 0 ]]; then
  echo "==> traced mini serving runs (trace-diff regression gate)"
  mkdir -p results
  cargo run --release -q -p pythia-experiments --bin serving -- \
    --mini --trace-out results/serving_trace.json \
    --metrics-out results/metrics_snapshot.json
  cargo run --release -q -p pythia-experiments --bin serving -- \
    --mini --trace-out results/serving_trace_rerun.json

  # An empty or non-JSON trace (a silently broken recorder) fails outright.
  cargo run --release -q -p pythia-experiments --bin trace_diff -- \
    --validate results/serving_trace.json
  cargo run --release -q -p pythia-experiments --bin trace_diff -- \
    --validate results/serving_trace_rerun.json

  # Same seed + fixed inference charge => the two runs' virtual-clock traces
  # must be structurally AND byte-for-byte identical. Any drift is a
  # determinism regression in the serving stack.
  cargo run --release -q -p pythia-experiments --bin trace_diff -- \
    results/serving_trace.json results/serving_trace_rerun.json

  # Structural compare against the checked-in golden summary, with the
  # allowlist marking intentional drift (regenerate the golden with
  # `trace_diff --summary` after reviewing a deliberate change).
  cargo run --release -q -p pythia-experiments --bin trace_diff -- \
    --summary results/serving_trace.json > results/serving_trace_summary.txt
  if [[ -f tests/golden/serving_trace_summary.txt ]]; then
    cargo run --release -q -p pythia-experiments --bin trace_diff -- \
      tests/golden/serving_trace_summary.txt results/serving_trace.json \
      --allow-file tests/golden/trace_allowlist.txt
  else
    echo "    (no golden summary checked in; copy" \
      "results/serving_trace_summary.txt to tests/golden/ to enable)"
  fi
fi

echo "==> ci.sh: all gates passed"
