//! A concurrent serving layer around Pythia: many threads run queries (and
//! need engage-or-fallback decisions with low latency) while a background
//! trainer periodically installs refreshed models — the deployment shape the
//! paper sketches in §5.1 ("we can periodically re-train the models with
//! updated training data").
//!
//! * Readers call [`PythiaService::engage`] against a versioned
//!   [`TenantFleet`]: each lookup clones an `Arc` snapshot under a brief read
//!   lock, so inference never blocks on training.
//! * Training requests go through a `crossbeam` channel to a dedicated
//!   trainer thread; finished workloads are published atomically, bumping the
//!   fleet version.

use std::sync::Arc;

use crossbeam::channel::{unbounded, Sender};

use pythia_core::predictor::TrainedWorkload;
use pythia_core::prefetch::{cap_to_budget, prefetch_list};
use pythia_core::registry::TenantFleet;
use pythia_core::{train_workload, PythiaConfig};
use pythia_db::catalog::{Database, ObjectId};
use pythia_db::plan::PlanNode;
use pythia_db::trace::Trace;
use pythia_sim::SimDuration;

use crate::Engagement;

/// A request for the background trainer.
pub struct TrainRequest {
    pub name: String,
    pub plans: Vec<PlanNode>,
    pub traces: Vec<Trace>,
    pub restrict_objects: Option<Vec<ObjectId>>,
}

/// Thread-safe Pythia deployment: a versioned model fleet + background
/// training. The service owns one [`TenantFleet`] (the process-wide
/// [`pythia_core::ModelRegistry`] holds one fleet per database when several
/// tenants share a process; a single-database service needs only its own).
pub struct PythiaService {
    db: Arc<Database>,
    fleet: Arc<TenantFleet>,
    cfg: PythiaConfig,
    prefetch_budget: usize,
}

impl PythiaService {
    /// A service over a (static, read-only) database.
    pub fn new(db: Arc<Database>, cfg: PythiaConfig, prefetch_budget: usize) -> Self {
        PythiaService {
            db,
            fleet: Arc::new(TenantFleet::new("default")),
            cfg,
            prefetch_budget,
        }
    }

    /// The model fleet backing this service — share it with a
    /// [`pythia_core::PrefetchServer`] via `with_registry` so hot-swapped
    /// models reach the serving loop too.
    pub fn fleet(&self) -> Arc<TenantFleet> {
        Arc::clone(&self.fleet)
    }

    /// Number of installed workloads.
    pub fn workload_count(&self) -> usize {
        self.fleet.len()
    }

    /// Train synchronously and install (blocking convenience path). Returns
    /// the published fleet version.
    pub fn install_workload(&self, req: TrainRequest) -> u64 {
        let tw = train_workload(
            &self.db,
            &req.name,
            &req.plans,
            &req.traces,
            req.restrict_objects.as_deref(),
            &self.cfg,
        );
        self.fleet.publish(tw)
    }

    /// Publish an already-trained workload, after checking it against this
    /// service's catalog — a model persisted against a different schema is
    /// refused rather than silently mispredicting. Returns the fleet version.
    pub fn install_trained(&self, tw: TrainedWorkload) -> Result<u64, String> {
        tw.check_compat(&self.db)?;
        Ok(self.fleet.publish(tw))
    }

    /// The engage-or-fallback decision (Algorithm 3), safe to call from any
    /// thread; the model snapshot is pinned for the whole inference even if a
    /// publish lands mid-flight.
    pub fn engage(&self, plan: &PlanNode) -> Option<Engagement> {
        let vw = self.fleet.match_plan(&self.db, plan)?;
        let t0 = std::time::Instant::now();
        let prediction = vw.workload.infer(&self.db, plan);
        let list = prefetch_list(&self.db, &prediction);
        let inference = SimDuration::from_micros(t0.elapsed().as_micros() as u64);
        Some(Engagement {
            workload: vw.workload.name.clone(),
            prefetch: cap_to_budget(list, self.prefetch_budget),
            inference,
        })
    }

    /// Spawn the background trainer. Send [`TrainRequest`]s through the
    /// returned channel; each finished workload is installed atomically.
    /// Dropping the sender shuts the trainer down; `join` the handle to wait
    /// for in-flight training.
    pub fn spawn_trainer(
        self: &Arc<Self>,
    ) -> (Sender<TrainRequest>, std::thread::JoinHandle<usize>) {
        let (tx, rx) = unbounded::<TrainRequest>();
        let service = Arc::clone(self);
        let handle = std::thread::spawn(move || {
            let mut installed = 0;
            while let Ok(req) = rx.recv() {
                service.install_workload(req);
                installed += 1;
            }
            installed
        });
        (tx, handle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pythia_db::exec::execute;
    use pythia_db::expr::Pred;
    use pythia_db::types::Schema;

    fn tiny_db() -> (
        Arc<Database>,
        pythia_db::catalog::TableId,
        pythia_db::catalog::TableId,
        ObjectId,
    ) {
        let mut db = Database::new();
        let fact = db.create_table("fact", Schema::ints(&["id", "day", "k"]));
        let dim = db.create_table("dim", Schema::ints(&["d_id", "v"]));
        for i in 0..800i64 {
            db.insert(fact, Database::row(&[i, i % 100, i % 40]));
            db.insert(dim, Database::row(&[i % 40, i % 7]));
        }
        let idx = db.create_index("dim_pk", dim, 0);
        (Arc::new(db), fact, dim, idx)
    }

    fn plan(
        fact: pythia_db::catalog::TableId,
        dim: pythia_db::catalog::TableId,
        idx: ObjectId,
        lo: i64,
    ) -> PlanNode {
        PlanNode::IndexNLJoin {
            outer: Box::new(PlanNode::SeqScan {
                table: fact,
                pred: Some(Pred::Between {
                    col: 1,
                    lo,
                    hi: lo + 10,
                }),
            }),
            outer_key: 2,
            inner: dim,
            inner_index: idx,
            inner_pred: None,
        }
    }

    fn request(
        db: &Database,
        fact: pythia_db::catalog::TableId,
        dim: pythia_db::catalog::TableId,
        idx: ObjectId,
    ) -> TrainRequest {
        let plans: Vec<PlanNode> = (0..8).map(|i| plan(fact, dim, idx, i * 9)).collect();
        let traces = plans.iter().map(|p| execute(p, db).1).collect();
        TrainRequest {
            name: "w".into(),
            plans,
            traces,
            restrict_objects: None,
        }
    }

    fn cfg() -> PythiaConfig {
        PythiaConfig {
            epochs: 3,
            ..PythiaConfig::fast()
        }
    }

    #[test]
    fn background_trainer_installs_and_serves() {
        let (db, fact, dim, idx) = tiny_db();
        let service = Arc::new(PythiaService::new(Arc::clone(&db), cfg(), 256));
        assert_eq!(service.workload_count(), 0);
        assert!(
            service.engage(&plan(fact, dim, idx, 3)).is_none(),
            "nothing installed yet"
        );

        let (tx, handle) = service.spawn_trainer();
        tx.send(request(&db, fact, dim, idx)).unwrap();
        drop(tx);
        assert_eq!(handle.join().unwrap(), 1);

        assert_eq!(service.workload_count(), 1);
        assert_eq!(
            service.fleet().current("w").expect("published").version,
            1,
            "first publish is version 1"
        );
        let eng = service
            .engage(&plan(fact, dim, idx, 3))
            .expect("now engages");
        assert_eq!(eng.workload, "w");
    }

    #[test]
    fn concurrent_readers_during_training() {
        let (db, fact, dim, idx) = tiny_db();
        let service = Arc::new(PythiaService::new(Arc::clone(&db), cfg(), 256));
        service.install_workload(request(&db, fact, dim, idx));

        // Readers hammer engage() while the trainer installs a second
        // workload; nothing deadlocks and reads always succeed.
        let (tx, handle) = service.spawn_trainer();
        let mut req = request(&db, fact, dim, idx);
        req.name = "w2".into();
        tx.send(req).unwrap();
        drop(tx);

        let readers: Vec<_> = (0..3)
            .map(|r| {
                let s = Arc::clone(&service);
                std::thread::spawn(move || {
                    let mut engaged = 0;
                    for i in 0..20 {
                        if s.engage(&plan(fact, dim, idx, (r * 20 + i) % 80)).is_some() {
                            engaged += 1;
                        }
                    }
                    engaged
                })
            })
            .collect();
        for r in readers {
            assert_eq!(r.join().unwrap(), 20, "every engage succeeds");
        }
        handle.join().unwrap();
        assert_eq!(service.workload_count(), 2);
    }

    #[test]
    fn install_trained_from_disk() {
        let (db, fact, dim, idx) = tiny_db();
        let req = request(&db, fact, dim, idx);
        let tw = train_workload(&db, "disk", &req.plans, &req.traces, None, &cfg());
        let path = std::env::temp_dir().join("pythia_service_model.json");
        tw.save_json(&path).unwrap();

        let service = PythiaService::new(Arc::clone(&db), cfg(), 256);
        let v = service
            .install_trained(TrainedWorkload::load_json(&path).unwrap())
            .expect("same catalog");
        let _ = std::fs::remove_file(&path);
        assert_eq!(v, 1);
        assert!(service.engage(&plan(fact, dim, idx, 5)).is_some());

        // A model persisted against a different catalog is refused loudly.
        let mut other = Database::new();
        other.create_table("fact", Schema::ints(&["id", "day", "k"]));
        let service2 = PythiaService::new(Arc::new(other), cfg(), 256);
        let stale = train_workload(&db, "stale", &req.plans, &req.traces, None, &cfg());
        assert!(
            service2.install_trained(stale).is_err(),
            "mismatched catalog must be refused"
        );
    }
}
