//! # Pythia — a neural model for data prefetching
//!
//! A from-scratch Rust reproduction of *"Pythia: A Neural Model for Data
//! Prefetching"* (EDBT 2025): a learned predictor that, given a query's
//! execution plan, predicts the set of **non-sequential** pages the query
//! will read and asynchronously prefetches them into the buffer pool.
//!
//! The workspace layers (each re-exported here):
//!
//! * [`sim`] — deterministic virtual-time I/O simulation (disk, OS page
//!   cache with readahead, async I/O workers).
//! * [`buffer`] — the buffer manager: Clock/LRU/MRU replacement, pinning,
//!   and the AIO-style prefetch engine with a bounded readahead window.
//! * [`db`] — a mini-RDBMS: heap files, B+Tree indexes, a Volcano executor
//!   that records page-access traces, and the timed replay runtime (the
//!   Postgres-integration analogue).
//! * [`nn`] — a tape-autograd neural network library (transformer encoder,
//!   Adam, BCE-with-logits).
//! * [`core`] — Pythia itself: plan serialization, per-object multi-label
//!   classifiers, workload matching, prefetch scheduling.
//! * [`baselines`] — DFLT / ORCL / nearest-neighbour / sequence-transformer
//!   baselines.
//! * [`workloads`] — DSB-like and IMDB/CEB-like benchmark generators.
//! * [`obs`] — zero-dependency structured tracing and metrics: counters,
//!   log₂ histograms and virtual-clock span/instant events, exported as
//!   Perfetto-loadable Chrome trace JSON (see `DESIGN.md` §Observability).
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs`; the shape is:
//!
//! ```text
//! build database  ->  run training queries (collect traces)
//!                 ->  PythiaSystem::learn_workload(...)
//!                 ->  for each new query: engage(plan)
//!                       Some(prefetch) -> replay with AIO prefetching
//!                       None           -> default execution (fallback)
//! ```

pub mod service;

pub use pythia_baselines as baselines;
pub use pythia_buffer as buffer;
pub use pythia_core as core;
pub use pythia_db as db;
pub use pythia_nn as nn;
pub use pythia_obs as obs;
pub use pythia_sim as sim;
pub use pythia_workloads as workloads;

use pythia_core::predictor::TrainedWorkload;
use pythia_core::prefetch::{cap_to_budget, prefetch_list};
use pythia_core::{train_workload, PythiaConfig, WorkloadRegistry};
use pythia_db::catalog::{Database, ObjectId};
use pythia_db::plan::PlanNode;
use pythia_db::trace::Trace;
use pythia_sim::{PageId, SimDuration};

/// A prefetch decision for one query (Algorithm 3).
#[derive(Debug, Clone)]
pub struct Engagement {
    /// Which trained workload claimed the query.
    pub workload: String,
    /// Pages to prefetch, in file storage order, budget-capped.
    pub prefetch: Vec<PageId>,
    /// Measured model-inference latency to charge against the query.
    pub inference: SimDuration,
}

/// The deployed system: trained workload models plus the engage-or-fallback
/// decision logic of the paper's Postgres integration (§4).
pub struct PythiaSystem {
    registry: WorkloadRegistry,
    cfg: PythiaConfig,
    /// Prefetch budget in pages (limited prefetching; typically ~3/4 of the
    /// buffer pool).
    pub prefetch_budget: usize,
}

impl PythiaSystem {
    /// A system with no trained workloads yet.
    pub fn new(cfg: PythiaConfig, prefetch_budget: usize) -> Self {
        PythiaSystem {
            registry: WorkloadRegistry::new(),
            cfg,
            prefetch_budget,
        }
    }

    /// Train models for a workload (Algorithm 1) and register them.
    /// `restrict_objects` limits which objects get models (e.g. only
    /// `cast_info` for the IMDB workload), as in the paper.
    pub fn learn_workload(
        &mut self,
        db: &Database,
        name: &str,
        plans: &[PlanNode],
        traces: &[Trace],
        restrict_objects: Option<&[ObjectId]>,
    ) {
        let tw = train_workload(db, name, plans, traces, restrict_objects, &self.cfg);
        self.registry.register(tw);
    }

    /// Number of trained workloads.
    pub fn workload_count(&self) -> usize {
        self.registry.len()
    }

    /// Trained workloads (for inspection).
    pub fn workloads(&self) -> &[TrainedWorkload] {
        self.registry.workloads()
    }

    /// The engage-or-fallback decision (Algorithm 3): `Some` with a prefetch
    /// plan when the query matches a trained workload, `None` when Pythia
    /// should stay out of the way and let default execution proceed.
    pub fn engage(&self, db: &Database, plan: &PlanNode) -> Option<Engagement> {
        let tw = self.registry.match_plan(db, plan)?;
        let t0 = std::time::Instant::now();
        let prediction = tw.infer(db, plan);
        let list = prefetch_list(db, &prediction);
        let inference = SimDuration::from_micros(t0.elapsed().as_micros() as u64);
        Some(Engagement {
            workload: tw.name.clone(),
            prefetch: cap_to_budget(list, self.prefetch_budget),
            inference,
        })
    }
}
