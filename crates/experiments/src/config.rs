//! Experiment-suite configuration.

use pythia_core::PythiaConfig;
use pythia_db::runtime::RunConfig;

/// Everything an experiment needs to know about sizes and seeds.
#[derive(Debug, Clone)]
pub struct ExpConfig {
    /// Database scale factor (1.0 = the "SF100 analog").
    pub scale: f64,
    /// Query instances per workload (paper: 1000).
    pub n_queries: usize,
    /// Fraction of queries held out as unseen test queries (paper: 5%).
    pub test_frac: f64,
    /// Pythia model hyperparameters.
    pub pythia: PythiaConfig,
    /// Replay-stack configuration (buffer pool, cost model, AIO window).
    pub run: RunConfig,
    /// Master seed.
    pub seed: u64,
    /// Whether this is the quick configuration.
    pub quick: bool,
}

impl ExpConfig {
    /// The quick configuration: minutes on a laptop, paper-shaped results.
    pub fn quick() -> Self {
        ExpConfig {
            scale: 0.3,
            n_queries: 200,
            test_frac: 0.08,
            pythia: PythiaConfig {
                epochs: 40,
                batch_size: 32,
                lr: 3e-3,
                pos_weight: 2.0,
                ..PythiaConfig::fast()
            },
            run: RunConfig::default(),
            seed: 0xEDB7,
            quick: true,
        }
    }

    /// The full configuration: paper model dimensions and 1000 queries per
    /// workload. Hours of CPU time.
    pub fn full() -> Self {
        ExpConfig {
            scale: 1.0,
            n_queries: 1000,
            test_frac: 0.05,
            pythia: PythiaConfig {
                epochs: 20,
                pos_weight: 2.0,
                ..PythiaConfig::default()
            },
            run: RunConfig::default(),
            seed: 0xEDB7,
            quick: false,
        }
    }

    /// `PYTHIA_FULL=1` selects [`Self::full`], anything else [`Self::quick`].
    pub fn from_env() -> Self {
        match std::env::var("PYTHIA_FULL") {
            Ok(v) if v == "1" || v.eq_ignore_ascii_case("true") => ExpConfig::full(),
            _ => ExpConfig::quick(),
        }
    }

    /// Number of held-out test queries.
    pub fn n_test(&self) -> usize {
        ((self.n_queries as f64 * self.test_frac).round() as usize).clamp(4, self.n_queries / 2)
    }

    /// Size the replay stack relative to the database: buffer pool ≈ 8% of
    /// total pages (the paper's 1 GiB on 100 GB with some headroom for the
    /// scaled-down page counts), OS cache ≈ 35%.
    pub fn sized_run(&self, total_pages: u64) -> RunConfig {
        let pool = ((total_pages as f64 * 0.12) as usize).max(256);
        RunConfig {
            pool_frames: pool,
            os_cache_pages: ((total_pages as f64 * 0.35) as usize).max(1024),
            readahead_window: self.run.readahead_window.min(pool / 2).max(16),
            ..self.run.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_and_full_are_valid() {
        let q = ExpConfig::quick();
        let f = ExpConfig::full();
        q.pythia.validate().unwrap();
        f.pythia.validate().unwrap();
        assert!(q.n_queries < f.n_queries);
        assert!(q.n_test() >= 4);
        assert_eq!(f.n_test(), 50);
    }

    #[test]
    fn sized_run_scales_with_db() {
        let c = ExpConfig::quick();
        let small = c.sized_run(4_000);
        let big = c.sized_run(40_000);
        assert!(big.pool_frames > small.pool_frames);
        assert!(small.readahead_window <= small.pool_frames);
    }
}
