//! Figures 7 & 8: impact of test-query ↔ workload similarity.
//!
//! Each test query gets a scalar similarity — its mean Jaccard similarity
//! (over accessed blocks) to every training query — and test queries are
//! bucketed into bottom-25% / middle-50% / top-25%. F1 (Fig. 7) and speedup
//! (Fig. 8) are reported per bucket: Pythia does better on queries similar
//! to the workload it trained on.

use pythia_baselines::NearestNeighbor;
use pythia_core::metrics::f1_score;
use pythia_core::predictor::ground_truth;
use pythia_workloads::templates::Template;

use crate::harness::{mean, quartile_buckets, Env, BUCKET_NAMES};
use crate::output::{f2, f3, Table};

/// Both figures' tables.
pub struct Fig0708 {
    pub f1: Table,
    pub speedup: Table,
}

/// Run Figures 7 and 8.
pub fn run(env: &Env) -> Fig0708 {
    let mut f1_table = Table::new(
        "Figure 7: F1 by test-query/workload similarity bucket",
        &[
            "workload",
            BUCKET_NAMES[0],
            BUCKET_NAMES[1],
            BUCKET_NAMES[2],
        ],
    );
    let mut sp_table = Table::new(
        "Figure 8: Speedup by test-query/workload similarity bucket",
        &[
            "workload",
            BUCKET_NAMES[0],
            BUCKET_NAMES[1],
            BUCKET_NAMES[2],
        ],
    );

    for template in Template::ALL {
        let w = env.prepare(template);
        let tw = env.trained_default(template);
        let modeled = tw.modeled_objects();
        let nn = NearestNeighbor::new(&w.train_traces());

        // One batched forward sweep over all held-out test queries.
        let plans = w.test_plans();
        let preds = tw.infer_batch(&env.bench.db, &plans);
        let prefetches = env.pythia_prefetch_batch(&env.run_cfg, &tw, &plans);
        let mut sims = Vec::new();
        let mut f1s = Vec::new();
        let mut sps = Vec::new();
        for (q, (_, trace)) in w.test_queries().enumerate() {
            sims.push(nn.mean_similarity(trace));
            let truth = ground_truth(trace, &modeled);
            f1s.push(f1_score(&preds[q].as_set(), &truth).f1);
            let (pf, inference) = prefetches[q].clone();
            sps.push(env.speedup(&env.run_cfg, trace, pf, inference));
        }
        let buckets = quartile_buckets(&sims);
        let collect = |vals: &[f64], b: usize| -> Vec<f64> {
            vals.iter()
                .zip(&buckets)
                .filter(|(_, &bb)| bb == b)
                .map(|(v, _)| *v)
                .collect()
        };
        f1_table.row(vec![
            template.name().to_owned(),
            f3(mean(&collect(&f1s, 0))),
            f3(mean(&collect(&f1s, 1))),
            f3(mean(&collect(&f1s, 2))),
        ]);
        sp_table.row(vec![
            template.name().to_owned(),
            f2(mean(&collect(&sps, 0))),
            f2(mean(&collect(&sps, 1))),
            f2(mean(&collect(&sps, 2))),
        ]);
    }
    Fig0708 {
        f1: f1_table,
        speedup: sp_table,
    }
}
