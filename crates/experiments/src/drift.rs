//! Drift-injection sweep: serve scenario streams from
//! [`pythia_workloads::drift`] through a quality-tracked continuous-admission
//! server and report what the streaming detectors saw — the before/after
//! artifact CI gates on (`--drift-out`).
//!
//! Two runs share one mini detector configuration (smaller mix windows than
//! the serving default, so the sweep stays CI-sized without changing the
//! detector logic):
//!
//! * **stationary** — a fixed cyclic rotation over all four templates. The
//!   cycle length divides both mix windows, so divergence is identically
//!   zero once they fill; the artifact's `"alerts": 0` here is the
//!   no-false-positive gate.
//! * **rotation** — the same tenant's mix flips to a disjoint template set
//!   at a known shift point. The artifact records how many post-shift
//!   observations the first `drift.alert` took (bounded by the recent mix
//!   window's rollover).

use std::sync::{Arc, Mutex};

use pythia_core::server::{
    AdmissionMode, InferenceCharge, PrefetchServer, QueuePolicy, ServerConfig, ServerRequest,
};
use pythia_obs::quality::{QualityConfig, QualityTracker};
use pythia_obs::Recorder;
use pythia_sim::SimDuration;
use pythia_workloads::drift::{mix_rotation, stationary_mix};
use pythia_workloads::stats::collect_traces;
use pythia_workloads::templates::QueryInstance;

use crate::harness::Env;

/// Recent-mix window for the mini runs (serving default: 8).
const MIX_RECENT: usize = 4;
/// Baseline-mix window for the mini runs (serving default: 32).
const MIX_BASELINE: usize = 16;
/// Stationary control length: windows full (20) plus a stationary tail.
const STATIONARY_QUERIES: usize = 32;
/// Rotation stream length and shift point: enough pre-shift traffic to fill
/// recent + baseline (20), then a post-shift tail longer than the detection
/// bound (2 × `MIX_RECENT`).
const ROTATION_QUERIES: usize = 36;
const ROTATION_SHIFT_AT: usize = 24;

fn mini_quality_config() -> QualityConfig {
    QualityConfig {
        mix_recent: MIX_RECENT,
        mix_baseline: MIX_BASELINE,
        ..QualityConfig::default()
    }
}

/// What one scenario stream produced: detector state plus the trace-side
/// observation count at the first alert (1-based; `None` if none fired).
struct ScenarioRun {
    observations: u64,
    alerts: u64,
    first_alert_observation: Option<u64>,
    mix_divergence: f64,
}

/// Serve `stream` serially (concurrency 1, continuous admission, DFLT — no
/// predictor) with a quality tracker attached, so observation order equals
/// stream order and each admission interval covers exactly one query.
fn run_scenario(env: &Env, stream: &[QueryInstance]) -> ScenarioRun {
    let traces = collect_traces(&env.bench, stream);
    let requests: Vec<ServerRequest<'_>> = stream
        .iter()
        .zip(&traces)
        .enumerate()
        .map(|(i, (q, trace))| ServerRequest {
            plan: &q.plan,
            trace,
            arrival: SimDuration::from_micros(i as u64 * 1_000),
            span_name: q.template.replay_span(),
            tenant: 0,
            request: 0,
        })
        .collect();
    let cfg = ServerConfig {
        concurrency: 1,
        admission: AdmissionMode::Continuous,
        policy: QueuePolicy::Fifo,
        charge: InferenceCharge::Fixed(SimDuration::ZERO),
        prefetch_budget: None,
        tenant_quota: None,
    };
    let tracker = Arc::new(Mutex::new(QualityTracker::new(mini_quality_config())));
    let mut server =
        PrefetchServer::new(&env.bench.db, &env.run_cfg, cfg).with_quality(Arc::clone(&tracker));
    server.set_recorder(Recorder::enabled());
    let rep = server.serve(&requests);
    assert_eq!(rep.queries.len(), stream.len());

    // Observation index of the first alert, from the trace: quality.observe
    // instants land in observation order, each alert right after its own.
    let rec = server.recorder();
    let mut seen = 0u64;
    let mut first_alert = None;
    for e in rec.events() {
        match e.name {
            "quality.observe" => seen += 1,
            "drift.alert" if first_alert.is_none() => first_alert = Some(seen),
            _ => {}
        }
    }
    let q = tracker.lock().expect("tracker poisoned");
    ScenarioRun {
        observations: q.tenant_lifetime(0).outcomes,
        alerts: q.total_alerts(),
        first_alert_observation: first_alert,
        mix_divergence: q.mix_divergence(0),
    }
}

/// Run both scenarios and render the JSON artifact (`--drift-out`).
pub fn drift_snapshot(env: &Env) -> String {
    let seed = env.cfg.seed ^ 0xD21F;
    let stationary = run_scenario(env, &stationary_mix(&env.bench, STATIONARY_QUERIES, seed));
    let rotation = run_scenario(
        env,
        &mix_rotation(&env.bench, ROTATION_QUERIES, ROTATION_SHIFT_AT, seed ^ 1),
    );
    let first = rotation.first_alert_observation.unwrap_or(0);
    let after_shift = first.saturating_sub(ROTATION_SHIFT_AT as u64);
    format!(
        "{{\n  \"config\": {{\"mix_recent\": {MIX_RECENT}, \"mix_baseline\": {MIX_BASELINE}, \
         \"mix_threshold_e6\": {}}},\n  \
         \"stationary\": {{\"queries\": {STATIONARY_QUERIES}, \"observations\": {}, \
         \"alerts\": {}, \"mix_divergence_e6\": {}}},\n  \
         \"rotation\": {{\"queries\": {ROTATION_QUERIES}, \"shift_at\": {ROTATION_SHIFT_AT}, \
         \"observations\": {}, \"alerts\": {}, \"first_alert_observation\": {}, \
         \"observations_after_shift_at_first_alert\": {}, \"mix_divergence_e6\": {}}}\n}}\n",
        pythia_obs::quality::rate_e6(mini_quality_config().mix_threshold),
        stationary.observations,
        stationary.alerts,
        pythia_obs::quality::rate_e6(stationary.mix_divergence),
        rotation.observations,
        rotation.alerts,
        first,
        after_shift,
        pythia_obs::quality::rate_e6(rotation.mix_divergence),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExpConfig;

    fn mini_env() -> Env {
        Env::new(ExpConfig {
            scale: 0.05,
            n_queries: 12,
            test_frac: 0.25,
            ..ExpConfig::quick()
        })
    }

    #[test]
    fn stationary_stream_raises_no_alerts() {
        let env = mini_env();
        let run = run_scenario(
            &env,
            &stationary_mix(&env.bench, STATIONARY_QUERIES, env.cfg.seed ^ 0xD21F),
        );
        assert_eq!(run.observations, STATIONARY_QUERIES as u64);
        assert_eq!(run.alerts, 0, "stationary cyclic mix must stay silent");
        assert_eq!(run.mix_divergence, 0.0, "aligned windows diverge by zero");
    }

    #[test]
    fn rotation_alerts_within_the_recent_window_rollover() {
        let env = mini_env();
        let run = run_scenario(
            &env,
            &mix_rotation(
                &env.bench,
                ROTATION_QUERIES,
                ROTATION_SHIFT_AT,
                env.cfg.seed ^ 0xD21E,
            ),
        );
        assert!(run.alerts >= 1, "mix rotation must raise a drift alert");
        let first = run.first_alert_observation.expect("an alert fired");
        assert!(
            first > ROTATION_SHIFT_AT as u64,
            "no alert before the shift (first at observation {first})"
        );
        assert!(
            first <= (ROTATION_SHIFT_AT + 2 * MIX_RECENT) as u64,
            "detection bound: within 2x the recent mix window, got {first}"
        );
    }

    #[test]
    fn drift_snapshot_is_deterministic_and_gateable() {
        let env = mini_env();
        let json = drift_snapshot(&env);
        assert!(
            json.contains("\"stationary\": {\"queries\": 32, \"observations\": 32, \"alerts\": 0"),
            "{json}"
        );
        assert!(json.contains("\"first_alert_observation\""), "{json}");
        assert_eq!(json, drift_snapshot(&env), "same env, same artifact");
    }
}
