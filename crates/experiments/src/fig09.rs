//! Figure 9: Pythia vs sequence-transformer predictors.
//!
//! The paper trains Longformer variants on template 91 (the smallest traces)
//! and finds comparable prediction quality but ~23× the training time and
//! ~8500× the inference time, because sequence models emit one block per
//! inference step. This experiment reproduces the comparison with our
//! from-scratch autoregressive block transformer in the same four variants
//! (raw/dedup × context 32/64).

use std::collections::BTreeSet;

use pythia_baselines::{SeqModel, SeqModelConfig};
use pythia_core::metrics::{f1_score, Distribution};
use pythia_core::predictor::ground_truth;
use pythia_sim::PageId;
use pythia_workloads::templates::Template;

use crate::harness::{mean, Env};
use crate::output::{f2, f3, Table};

fn pageid_truth(trace: &pythia_db::trace::Trace) -> BTreeSet<PageId> {
    use pythia_db::trace::TraceEvent;
    trace
        .events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Read { page, kind, .. } if !kind.is_sequential() => Some(*page),
            _ => None,
        })
        .collect()
}

/// Run Figure 9 on template 91.
pub fn run(env: &Env) -> Table {
    let mut table = Table::new(
        "Figure 9: Pythia vs sequence transformers (Template 91)",
        &[
            "model",
            "median F1 / next-block acc",
            "train seconds",
            "train ratio vs pythia",
            "inference steps per query",
        ],
    );

    // Keep the sequence baseline affordable: a subset of the workload.
    let n = env.cfg.n_queries.min(if env.cfg.quick { 40 } else { 200 });
    let w = env.prepare_n(Template::T91, n);

    // --- Pythia ---
    let t0 = std::time::Instant::now();
    let tw = env.train(&w);
    let pythia_train_s = t0.elapsed().as_secs_f64();
    let modeled = tw.modeled_objects();
    let preds = tw.infer_batch(&env.bench.db, &w.test_plans());
    let mut f1s = Vec::new();
    for (pred, (_, trace)) in preds.iter().zip(w.test_queries()) {
        f1s.push(f1_score(&pred.as_set(), &ground_truth(trace, &modeled)).f1);
    }
    let pd = Distribution::of(&f1s);
    table.row(vec![
        "Pythia (one-shot set prediction)".into(),
        f3(pd.median),
        f2(pythia_train_s),
        "1.00".into(),
        "1".into(),
    ]);

    // --- sequence variants ---
    let train_traces = w.train_traces();
    let variants = [
        ("seq raw ctx=32", false, 32usize),
        ("seq raw ctx=64", false, 64),
        ("seq dedup ctx=32", true, 32),
        ("seq dedup ctx=64", true, 64),
    ];
    for (name, dedup, ctx) in variants {
        let cfg = SeqModelConfig {
            context: ctx,
            dedup,
            epochs: if env.cfg.quick { 5 } else { 8 },
            max_windows: if env.cfg.quick { 4_000 } else { 12_000 },
            ..Default::default()
        };
        let m = SeqModel::train(&cfg, &train_traces);
        // Teacher-forced next-block accuracy (sampled) as the quality proxy,
        // plus the inference-step count a full rollout would need.
        let mut accs = Vec::new();
        let mut steps = Vec::new();
        for (_, trace) in w.test_queries().take(4) {
            accs.push(m.teacher_forced_accuracy(trace, 25));
            steps.push(pageid_truth(trace).len() as f64);
        }
        table.row(vec![
            name.into(),
            f3(mean(&accs)),
            f2(m.train_seconds),
            f2(m.train_seconds / pythia_train_s.max(1e-9)),
            format!("{:.0}", mean(&steps)),
        ]);
    }
    table
}
