//! Extension experiments — the paper's §7 future-work directions, built and
//! measured here:
//!
//! * **Prefetch-aware query scheduling** ("schedule queries to maximize the
//!   overlapping reads"): a queued batch is reordered by
//!   [`pythia_core::scheduler::schedule_by_overlap`] over Pythia's
//!   *predictions* (no execution needed), then run warm-sequentially.
//! * **Prefetcher/replacement coordination** ("improve the coordination
//!   between the prefetcher of Pythia and the buffer manager"):
//!   [`pythia_buffer::PolicyKind::PrefetchAwareClock`] protects prefetched
//!   pages until first use; measured under concurrent queries with a small
//!   buffer, where plain Clock lets demand reads wash out another query's
//!   prefetches.

use pythia_buffer::PolicyKind;
use pythia_db::runtime::{QueryRun, RunConfig};
use pythia_workloads::templates::Template;

use crate::harness::Env;
use crate::output::{f2, Table};

/// Extension 1: prefetch-aware scheduling of a queued batch.
pub fn run_scheduler(env: &Env) -> Table {
    let mut t = Table::new(
        "Extension (paper §7): prefetch-aware query scheduling — warm-sequential total latency",
        &["batch", "FIFO total", "scheduled total", "improvement"],
    );
    let w = env.prepare(Template::T18);
    let tw = env.trained_default(Template::T18);

    for (bi, chunk) in w.test_idx.chunks(6).take(3).enumerate() {
        if chunk.len() < 3 {
            continue;
        }
        // Predict (cheap, no execution) and schedule on predictions alone.
        // The queued batch is exactly the batched-inference shape: one
        // forward sweep predicts for the whole queue.
        let plans: Vec<_> = chunk.iter().map(|&qi| &w.queries[qi].plan).collect();
        let engagements = env.pythia_prefetch_batch(&env.run_cfg, &tw, &plans);
        let predictions: Vec<_> = engagements.iter().map(|(p, _)| p.clone()).collect();
        let order = pythia_core::scheduler::schedule_by_overlap(&predictions);

        let total_for = |order: &[usize]| {
            let mut rt = env.runtime();
            let mut total = pythia_sim::SimDuration::ZERO;
            for &pos in order {
                let qi = chunk[pos];
                let (pf, inf) = &engagements[pos];
                let res = rt.run(&[QueryRun::with_prefetch(&w.traces[qi], pf.clone(), *inf)]);
                total += res.timings[0].elapsed();
            }
            total
        };
        let fifo_order: Vec<usize> = (0..chunk.len()).collect();
        let fifo = total_for(&fifo_order);
        let sched = total_for(&order);
        t.row(vec![
            format!("batch {} ({} queries)", bi + 1, chunk.len()),
            fifo.to_string(),
            sched.to_string(),
            format!(
                "{:.1}%",
                (1.0 - sched.as_micros() as f64 / fifo.as_micros() as f64) * 100.0
            ),
        ]);
    }
    t
}

/// Extension 2: prefetch-aware replacement under concurrent pressure.
pub fn run_replacement(env: &Env) -> Table {
    let mut t = Table::new(
        "Extension (paper §7): prefetch-aware replacement — concurrent T18 queries, small buffer",
        &["policy", "makespan speedup vs DFLT", "prefetch precision"],
    );
    let w = env.prepare(Template::T18);
    let tw = env.trained_default(Template::T18);
    let queries: Vec<usize> = w.test_idx.iter().copied().take(4).collect();

    for policy in [PolicyKind::Clock, PolicyKind::PrefetchAwareClock] {
        let run_cfg = RunConfig {
            policy,
            pool_frames: (env.run_cfg.pool_frames / 3).max(96),
            readahead_window: (env.run_cfg.pool_frames / 12).max(16),
            ..env.run_cfg.clone()
        };
        let plans: Vec<_> = queries.iter().map(|&qi| &w.queries[qi].plan).collect();
        let prefetches = env.pythia_prefetch_batch(&run_cfg, &tw, &plans);
        let makespan_of = |prefetch: bool| {
            let mut rt = env.runtime_with(&run_cfg);
            let runs: Vec<QueryRun<'_>> = queries
                .iter()
                .enumerate()
                .map(|(k, &qi)| {
                    if prefetch {
                        let (pf, inf) = prefetches[k].clone();
                        QueryRun::with_prefetch(&w.traces[qi], pf, inf)
                    } else {
                        QueryRun::default_run(&w.traces[qi])
                    }
                })
                .collect();
            let res = rt.run(&runs);
            (res.makespan(), res.stats)
        };
        let (dflt, _) = makespan_of(false);
        let (pyth, stats) = makespan_of(true);
        t.row(vec![
            policy.to_string(),
            f2(dflt.as_micros() as f64 / pyth.as_micros().max(1) as f64),
            f2(stats.prefetch_precision()),
        ]);
    }
    t
}
