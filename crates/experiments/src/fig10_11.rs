//! Figures 10 & 11: impact of the number of distinct non-sequential reads.
//!
//! Test queries are bucketed by how many distinct non-sequential pages they
//! read (bottom 25% / mid 50% / top 25%). Pythia's F1 and speedup are
//! reported per bucket: queries doing more non-sequential I/O are both easier
//! to predict (stronger signal) and benefit more from prefetching.

use pythia_core::metrics::f1_score;
use pythia_core::predictor::ground_truth;
use pythia_workloads::templates::Template;

use crate::harness::{mean, quartile_buckets, Env, BUCKET_NAMES};
use crate::output::{f2, f3, Table};

/// Both figures' tables.
pub struct Fig1011 {
    pub f1: Table,
    pub speedup: Table,
}

/// Run Figures 10 and 11.
pub fn run(env: &Env) -> Fig1011 {
    let mut f1_table = Table::new(
        "Figure 10: F1 by number of distinct non-sequential reads",
        &[
            "workload",
            BUCKET_NAMES[0],
            BUCKET_NAMES[1],
            BUCKET_NAMES[2],
        ],
    );
    let mut sp_table = Table::new(
        "Figure 11: Speedup by number of distinct non-sequential reads",
        &[
            "workload",
            BUCKET_NAMES[0],
            BUCKET_NAMES[1],
            BUCKET_NAMES[2],
        ],
    );

    for template in Template::ALL {
        let w = env.prepare(template);
        let tw = env.trained_default(template);
        let modeled = tw.modeled_objects();

        // One batched forward sweep over all held-out test queries.
        let plans = w.test_plans();
        let preds = tw.infer_batch(&env.bench.db, &plans);
        let prefetches = env.pythia_prefetch_batch(&env.run_cfg, &tw, &plans);
        let mut nonseq_counts = Vec::new();
        let mut f1s = Vec::new();
        let mut sps = Vec::new();
        for (q, (_, trace)) in w.test_queries().enumerate() {
            nonseq_counts.push(trace.distinct_non_sequential() as f64);
            let truth = ground_truth(trace, &modeled);
            f1s.push(f1_score(&preds[q].as_set(), &truth).f1);
            let (pf, inference) = prefetches[q].clone();
            sps.push(env.speedup(&env.run_cfg, trace, pf, inference));
        }
        let buckets = quartile_buckets(&nonseq_counts);
        let collect = |vals: &[f64], b: usize| -> Vec<f64> {
            vals.iter()
                .zip(&buckets)
                .filter(|(_, &bb)| bb == b)
                .map(|(v, _)| *v)
                .collect()
        };
        f1_table.row(vec![
            template.name().to_owned(),
            f3(mean(&collect(&f1s, 0))),
            f3(mean(&collect(&f1s, 1))),
            f3(mean(&collect(&f1s, 2))),
        ]);
        sp_table.row(vec![
            template.name().to_owned(),
            f2(mean(&collect(&sps, 0))),
            f2(mean(&collect(&sps, 1))),
            f2(mean(&collect(&sps, 2))),
        ]);
    }
    Fig1011 {
        f1: f1_table,
        speedup: sp_table,
    }
}
