//! Structural comparison of virtual-clock traces — the CI regression gate.
//!
//! ```text
//! trace_diff --validate FILE          # parse + require virtual events
//! trace_diff --summary FILE           # print the golden-able summary
//! trace_diff A B [--allow NAME]...    # compare; exit 1 on drift
//!           [--allow-file PATH]
//! ```
//!
//! `A`/`B` are Chrome trace JSON files from a traced run, or checked-in
//! golden summaries previously produced by `--summary` (detected by the
//! `# trace_diff summary v1` header). Wall-clock events never participate
//! ([`pythia_obs::diff::summarize`] keeps only the virtual process), so the
//! comparison is deterministic across hosts. Allowlist entries (exact names
//! or `prefix*`) mark intentional drift, e.g. a deliberate span rename.
//!
//! Exit codes: 0 = identical (or valid), 1 = drift / invalid trace,
//! 2 = usage error.

use pythia_obs::diff::{self, TraceSummary};

fn usage() -> ! {
    eprintln!(
        "usage: trace_diff --validate FILE\n\
         \x20      trace_diff --summary FILE\n\
         \x20      trace_diff A B [--allow NAME]... [--allow-file PATH]"
    );
    std::process::exit(2)
}

/// Load a trace JSON file or a rendered golden summary.
fn load(path: &str) -> Result<TraceSummary, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    if text.starts_with("# trace_diff summary v1") {
        TraceSummary::parse_rendered(&text)
    } else {
        diff::validate(&text)
    }
}

fn load_or_die(path: &str) -> TraceSummary {
    load(path).unwrap_or_else(|e| {
        eprintln!("trace_diff: {path}: {e}");
        std::process::exit(1)
    })
}

fn allow_file_entries(path: &str) -> Vec<String> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("trace_diff: reading allowlist {path}: {e}");
        std::process::exit(1)
    });
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_owned)
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--validate") => {
            let [_, file] = args.as_slice() else { usage() };
            let s = load_or_die(file);
            eprintln!(
                "trace_diff: {file}: OK ({} virtual events, {} names, {} tracks)",
                s.virtual_events,
                s.per_name.len(),
                s.tracks.len()
            );
        }
        Some("--summary") => {
            let [_, file] = args.as_slice() else { usage() };
            print!("{}", load_or_die(file).render());
        }
        Some(_) => {
            let mut positional = Vec::new();
            let mut allow = Vec::new();
            let mut it = args.iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--allow" => allow.push(it.next().unwrap_or_else(|| usage()).clone()),
                    "--allow-file" => {
                        allow.extend(allow_file_entries(it.next().unwrap_or_else(|| usage())))
                    }
                    flag if flag.starts_with("--") => usage(),
                    _ => positional.push(a.clone()),
                }
            }
            let [a, b] = positional.as_slice() else {
                usage()
            };
            let sa = load_or_die(a);
            let sb = load_or_die(b);
            let drift = diff::diff(&sa, &sb, &allow);
            if drift.is_empty() {
                eprintln!(
                    "trace_diff: {a} and {b} are structurally identical \
                     ({} virtual events)",
                    sa.virtual_events
                );
            } else {
                eprintln!("trace_diff: {a} vs {b}: {} drift(s)", drift.len());
                for msg in &drift {
                    eprintln!("  {msg}");
                }
                std::process::exit(1);
            }
        }
        None => usage(),
    }
}
