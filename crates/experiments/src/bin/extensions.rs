//! Run the paper's §7 future-work extensions: prefetch-aware scheduling and
//! prefetch-aware buffer replacement.
use pythia_experiments::{extensions, Env, ExpConfig};

fn main() {
    let env = Env::new(ExpConfig::from_env());
    extensions::run_scheduler(&env).emit("ext_scheduler");
    extensions::run_replacement(&env).emit("ext_replacement");
}
