//! Reproduce Table 1.
use pythia_experiments::{table1, Env, ExpConfig};

fn main() {
    let env = Env::new(ExpConfig::from_env());
    table1::run(&env).emit("table1");
}
