//! Run the serving-loop experiment (Figure 13d through admission control)
//! and print one full serving report for illustration.
use pythia_core::server::QueuePolicy;
use pythia_experiments::{serving, Env, ExpConfig};
use pythia_workloads::templates::Template;

fn main() {
    let env = Env::new(ExpConfig::from_env());
    serving::run(&env).emit("serving");

    let tw = env.trained_default(Template::T18);
    let rep = serving::serve_poisson(
        &env,
        Template::T18,
        Some(tw.as_ref()),
        QueuePolicy::Overlap,
        0.75,
        env.cfg.seed ^ 0x5E4B,
    );
    println!("{}", rep.report());
}
