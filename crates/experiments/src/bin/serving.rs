//! Run the serving-loop experiment (Figure 13d through admission control)
//! and print one full serving report for illustration.
//!
//! Flags:
//!
//! * `--trace-out <path>` — trace the illustrative run and write a
//!   Perfetto-loadable Chrome trace of the whole serving stack (admission
//!   waves, query replays, buffer events, prefetch I/O, NN tasks, training
//!   epochs) to the given path.
//! * `--metrics-addr <host:port>` — with `--trace-out`, serve the live
//!   metrics snapshot at `http://<addr>/metrics` (Prometheus text; the
//!   endpoint stays up until the process exits).
//! * `--metrics-out <path>` — with `--trace-out`, write the final metrics
//!   snapshot JSON to the given path (CI uploads it as an artifact).
//! * `--admission-out <path>` — write the wave-vs-continuous admission
//!   comparison (skewed request mix, simultaneous arrivals) as JSON to the
//!   given path; CI uploads it alongside the trace artifacts.
//! * `--drift-out <path>` — run the drift-injection sweep (stationary
//!   control vs template-mix rotation through the quality-tracked serving
//!   loop) and write the before/after detector artifact as JSON; CI gates on
//!   the stationary run reporting zero alerts.
//! * `--mini` — CI-sized configuration (tiny database, 12 queries) and skip
//!   the overlap sweep; combined with `--trace-out` this is the tier-1
//!   traced mini-serving run.
use pythia_core::server::{AdmissionMode, QueuePolicy};
use pythia_experiments::{serving, Env, ExpConfig};
use pythia_workloads::templates::Template;

fn main() {
    let mini = std::env::args().any(|a| a == "--mini");
    let cfg = if mini {
        ExpConfig {
            scale: 0.05,
            n_queries: 12,
            test_frac: 0.25,
            ..ExpConfig::quick()
        }
    } else {
        ExpConfig::from_env()
    };
    let env = Env::new(cfg);
    if !mini {
        serving::run(&env).emit("serving");
    }

    if let Some(path) = serving::admission_out_arg() {
        let json = serving::admission_snapshot(&env);
        std::fs::write(&path, &json)
            .unwrap_or_else(|e| panic!("writing admission snapshot to {path}: {e}"));
        eprintln!("[pythia] wrote wave-vs-continuous admission snapshot to {path}");
    }

    if let Some(path) = serving::drift_out_arg() {
        let json = pythia_experiments::drift::drift_snapshot(&env);
        std::fs::write(&path, &json)
            .unwrap_or_else(|e| panic!("writing drift snapshot to {path}: {e}"));
        eprintln!("[pythia] wrote drift-injection snapshot to {path}");
    }

    if let Some(path) = serving::trace_out_arg() {
        let metrics_addr = serving::metrics_addr_arg();
        let metrics_out = serving::metrics_out_arg();
        let rep = serving::dump_trace(&env, &path, metrics_addr.as_deref(), metrics_out.as_deref());
        println!("{}", rep.report());
        return;
    }

    let tw = env.trained_default(Template::T18);
    let rep = serving::serve_poisson(
        &env,
        Template::T18,
        Some(tw.as_ref()),
        AdmissionMode::Continuous,
        QueuePolicy::Overlap,
        0.75,
        env.cfg.seed ^ 0x5E4B,
    );
    println!("{}", rep.report());
}
