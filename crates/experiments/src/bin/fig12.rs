//! Reproduce Figure 12 (a-h). Pass panel letters as args to run a subset,
//! e.g. `fig12 a e g`; default runs all panels.
use pythia_experiments::{fig12, Env, ExpConfig};

fn main() {
    let cfg = ExpConfig::from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |p: &str| args.is_empty() || args.iter().any(|a| a == p);

    if want("a") {
        fig12::run_a(&cfg).emit("fig12a");
    }
    let env = Env::new(cfg);
    if want("b") {
        fig12::run_b(&env).emit("fig12b");
    }
    if want("c") {
        fig12::run_c(&env).emit("fig12c");
    }
    if want("d") {
        fig12::run_d(&env).emit("fig12d");
    }
    if want("e") {
        fig12::run_e(&env).emit("fig12e");
    }
    if want("f") {
        fig12::run_f(&env).emit("fig12f");
    }
    if want("g") {
        fig12::run_g(&env).emit("fig12g");
    }
    if want("h") {
        fig12::run_h(&env).emit("fig12h");
    }
}
