//! Reproduce Figure 13 (a-d).
use pythia_experiments::{fig13, Env, ExpConfig};

fn main() {
    let env = Env::new(ExpConfig::from_env());
    let r = fig13::run(&env);
    r.a.emit("fig13a");
    r.b.emit("fig13b");
    r.c.emit("fig13c");
    r.d.emit("fig13d");
}
