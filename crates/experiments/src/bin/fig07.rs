//! Reproduce Figures 7 and 8.
use pythia_experiments::{fig07_08, Env, ExpConfig};

fn main() {
    let env = Env::new(ExpConfig::from_env());
    let r = fig07_08::run(&env);
    r.f1.emit("fig07");
    r.speedup.emit("fig08");
}
