//! Reproduce Figure 9.
use pythia_experiments::{fig09, Env, ExpConfig};

fn main() {
    let env = Env::new(ExpConfig::from_env());
    fig09::run(&env).emit("fig09");
}
