//! Reproduce Figure 1.
use pythia_experiments::{fig01, Env, ExpConfig};

fn main() {
    let env = Env::new(ExpConfig::from_env());
    fig01::run(&env).emit("fig01");
}
