//! Run the entire experiment suite (every table and figure of the paper).
//! `PYTHIA_FULL=1` switches to the full-size configuration. With
//! `--trace-out <path>`, a traced serving run is appended and its Chrome
//! trace JSON written to the given path (open in ui.perfetto.dev).
//!
//! Independent artifacts fan out over the shared deterministic worker pool
//! (`pythia_nn::pool`): the workloads and default models every figure shares
//! are prepared once up front (the `Env` caches them behind `Arc`s), then the
//! figure jobs run concurrently and the finished tables are emitted serially
//! in the paper's order — output is byte-identical to the old sequential run.
use pythia_experiments::*;
use pythia_nn::pool::parallel_map;
use pythia_workloads::templates::Template;

/// One independent artifact of the suite.
#[derive(Clone, Copy)]
enum Job {
    Table1,
    Fig01,
    Fig0506,
    Fig0708,
    Fig09,
    Fig1011,
    Fig12A,
    Fig12B,
    Fig12C,
    Fig12D,
    Fig12E,
    Fig12F,
    Fig12G,
    Fig12H,
    Fig13,
    Serving,
}

fn main() {
    let cfg = ExpConfig::from_env();
    eprintln!(
        "[pythia] running {} suite (scale={}, {} queries/workload, {} worker threads)",
        if cfg.quick { "quick" } else { "FULL" },
        cfg.scale,
        cfg.n_queries,
        pythia_nn::pool::configured_threads()
    );
    let t0 = std::time::Instant::now();
    let env = Env::new(cfg.clone());
    eprintln!(
        "[pythia] database built: {} pages",
        env.bench.db.disk.total_pages()
    );

    // Warm the shared caches before fanning out: training itself spreads
    // over the pool, and warmed caches keep the figure jobs lock-free.
    for template in Template::ALL {
        env.prepare(template);
        env.trained_default(template);
    }
    eprintln!(
        "[pythia] workloads sampled and models trained ({:.1}s)",
        t0.elapsed().as_secs_f64()
    );

    use Job::*;
    let jobs = [
        Table1, Fig01, Fig0506, Fig0708, Fig09, Fig1011, Fig12A, Fig12B, Fig12C, Fig12D, Fig12E,
        Fig12F, Fig12G, Fig12H, Fig13, Serving,
    ];
    let groups: Vec<Vec<(&'static str, Table)>> = parallel_map(&jobs, |_, job| match job {
        Table1 => vec![("table1", table1::run(&env))],
        Fig01 => vec![("fig01", fig01::run(&env))],
        Fig0506 => {
            let r = fig05_06::run(&env);
            vec![("fig05", r.f1), ("fig06", r.speedup)]
        }
        Fig0708 => {
            let r = fig07_08::run(&env);
            vec![("fig07", r.f1), ("fig08", r.speedup)]
        }
        Fig09 => vec![("fig09", fig09::run(&env))],
        Fig1011 => {
            let r = fig10_11::run(&env);
            vec![("fig10", r.f1), ("fig11", r.speedup)]
        }
        Fig12A => vec![("fig12a", fig12::run_a(&cfg))],
        Fig12B => vec![("fig12b", fig12::run_b(&env))],
        Fig12C => vec![("fig12c", fig12::run_c(&env))],
        Fig12D => vec![("fig12d", fig12::run_d(&env))],
        Fig12E => vec![("fig12e", fig12::run_e(&env))],
        Fig12F => vec![("fig12f", fig12::run_f(&env))],
        Fig12G => vec![("fig12g", fig12::run_g(&env))],
        Fig12H => vec![("fig12h", fig12::run_h(&env))],
        Fig13 => {
            let r = fig13::run(&env);
            vec![
                ("fig13a", r.a),
                ("fig13b", r.b),
                ("fig13c", r.c),
                ("fig13d", r.d),
            ]
        }
        Serving => vec![("serving", serving::run(&env))],
    });
    for group in groups {
        for (id, table) in group {
            table.emit(id);
        }
    }

    if let Some(path) = serving::trace_out_arg() {
        let metrics_addr = serving::metrics_addr_arg();
        let metrics_out = serving::metrics_out_arg();
        serving::dump_trace(&env, &path, metrics_addr.as_deref(), metrics_out.as_deref());
    }

    eprintln!(
        "[pythia] suite finished in {:.1}s; CSVs in results/",
        t0.elapsed().as_secs_f64()
    );
}
