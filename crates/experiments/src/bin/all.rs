//! Run the entire experiment suite (every table and figure of the paper).
//! `PYTHIA_FULL=1` switches to the full-size configuration.
use pythia_experiments::*;

fn main() {
    let cfg = ExpConfig::from_env();
    eprintln!(
        "[pythia] running {} suite (scale={}, {} queries/workload, {} worker threads)",
        if cfg.quick { "quick" } else { "FULL" },
        cfg.scale,
        cfg.n_queries,
        pythia_nn::pool::configured_threads()
    );
    let t0 = std::time::Instant::now();
    let env = Env::new(cfg.clone());
    eprintln!("[pythia] database built: {} pages", env.bench.db.disk.total_pages());

    table1::run(&env).emit("table1");
    fig01::run(&env).emit("fig01");
    let r = fig05_06::run(&env);
    r.f1.emit("fig05");
    r.speedup.emit("fig06");
    let r = fig07_08::run(&env);
    r.f1.emit("fig07");
    r.speedup.emit("fig08");
    fig09::run(&env).emit("fig09");
    let r = fig10_11::run(&env);
    r.f1.emit("fig10");
    r.speedup.emit("fig11");
    fig12::run_a(&cfg).emit("fig12a");
    fig12::run_b(&env).emit("fig12b");
    fig12::run_c(&env).emit("fig12c");
    fig12::run_d(&env).emit("fig12d");
    fig12::run_e(&env).emit("fig12e");
    fig12::run_f(&env).emit("fig12f");
    fig12::run_g(&env).emit("fig12g");
    fig12::run_h(&env).emit("fig12h");
    let r = fig13::run(&env);
    r.a.emit("fig13a");
    r.b.emit("fig13b");
    r.c.emit("fig13c");
    r.d.emit("fig13d");

    eprintln!("[pythia] suite finished in {:.1}s; CSVs in results/", t0.elapsed().as_secs_f64());
}
