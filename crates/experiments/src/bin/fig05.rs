//! Reproduce Figures 5 and 6 (joint computation; this binary emits both).
use pythia_experiments::{fig05_06, Env, ExpConfig};

fn main() {
    let env = Env::new(ExpConfig::from_env());
    let r = fig05_06::run(&env);
    r.f1.emit("fig05");
    r.speedup.emit("fig06");
}
