//! Reproduce Figures 10 and 11.
use pythia_experiments::{fig10_11, Env, ExpConfig};

fn main() {
    let env = Env::new(ExpConfig::from_env());
    let r = fig10_11::run(&env);
    r.f1.emit("fig10");
    r.speedup.emit("fig11");
}
