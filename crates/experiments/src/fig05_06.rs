//! Figures 5 & 6: Pythia vs the idealized baselines.
//!
//! * Figure 5 — F1 of Pythia vs NN (nearest neighbour) per workload. ORCL is
//!   omitted there because its F1 is 1.0 by definition.
//! * Figure 6 — speedup of Pythia vs ORCL vs NN per workload.

use std::collections::BTreeSet;

use pythia_baselines::{oracle_prefetch, NearestNeighbor, OracleScope};
use pythia_core::metrics::{f1_score, Distribution};
use pythia_core::predictor::ground_truth;
use pythia_db::trace::{Trace, TraceEvent};
use pythia_sim::{PageId, SimDuration};
use pythia_workloads::templates::Template;

use crate::harness::{mean, Env};
use crate::output::{f2, f3, Table};

/// The NN baseline's F1 compares raw page-id sets (its stored block accesses
/// vs the test query's true non-sequential accesses).
fn pageid_set(trace: &Trace) -> BTreeSet<PageId> {
    trace
        .events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Read { page, kind, .. } if !kind.is_sequential() => Some(*page),
            _ => None,
        })
        .collect()
}

fn f1_of_pageid_sets(pred: &BTreeSet<PageId>, truth: &BTreeSet<PageId>) -> f64 {
    let correct = pred.intersection(truth).count() as f64;
    if pred.is_empty() && truth.is_empty() {
        return 1.0;
    }
    if pred.is_empty() || truth.is_empty() {
        return 0.0;
    }
    let p = correct / pred.len() as f64;
    let r = correct / truth.len() as f64;
    if p + r == 0.0 {
        0.0
    } else {
        2.0 * p * r / (p + r)
    }
}

/// Per-template results for both figures.
pub struct Fig0506 {
    pub f1: Table,
    pub speedup: Table,
}

/// Run Figures 5 and 6 over all four workloads.
pub fn run(env: &Env) -> Fig0506 {
    let mut f1_table = Table::new(
        "Figure 5: F1 score, Pythia vs NN baseline",
        &[
            "workload",
            "pythia median F1",
            "pythia q25",
            "pythia q75",
            "NN median F1",
        ],
    );
    let mut sp_table = Table::new(
        "Figure 6: Speedup over DFLT, Pythia vs ORCL vs NN",
        &["workload", "pythia", "ORCL", "NN"],
    );

    for template in Template::ALL {
        let w = env.prepare(template);
        let tw = env.trained_default(template);
        let modeled = tw.modeled_objects();
        let nn = NearestNeighbor::new(&w.train_traces());

        let mut pythia_f1 = Vec::new();
        let mut nn_f1 = Vec::new();
        let mut pythia_sp = Vec::new();
        let mut orcl_sp = Vec::new();
        let mut nn_sp = Vec::new();

        // One batched forward sweep serves every held-out test query.
        let plans = w.test_plans();
        let preds = tw.infer_batch(&env.bench.db, &plans);
        let prefetches = env.pythia_prefetch_batch(&env.run_cfg, &tw, &plans);
        for (q, (_, trace)) in w.test_queries().enumerate() {
            // --- F1 ---
            let truth = ground_truth(trace, &modeled);
            pythia_f1.push(f1_score(&preds[q].as_set(), &truth).f1);

            let (nn_pages, _, _) = nn.prefetch_for(trace);
            let nn_set: BTreeSet<PageId> = nn_pages.iter().copied().collect();
            nn_f1.push(f1_of_pageid_sets(&nn_set, &pageid_set(trace)));

            // --- speedup ---
            let (pf, inference) = prefetches[q].clone();
            pythia_sp.push(env.speedup(&env.run_cfg, trace, pf, inference));

            let orcl = oracle_prefetch(trace, OracleScope::All);
            orcl_sp.push(env.speedup(&env.run_cfg, trace, orcl, SimDuration::ZERO));

            nn_sp.push(env.speedup(&env.run_cfg, trace, nn_pages, SimDuration::ZERO));
        }

        let pd = Distribution::of(&pythia_f1);
        let nd = Distribution::of(&nn_f1);
        f1_table.row(vec![
            template.name().to_owned(),
            f3(pd.median),
            f3(pd.q25),
            f3(pd.q75),
            f3(nd.median),
        ]);
        sp_table.row(vec![
            template.name().to_owned(),
            f2(mean(&pythia_sp)),
            f2(mean(&orcl_sp)),
            f2(mean(&nn_sp)),
        ]);
    }
    Fig0506 {
        f1: f1_table,
        speedup: sp_table,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pageid_f1_edge_cases() {
        let empty = BTreeSet::new();
        assert_eq!(f1_of_pageid_sets(&empty, &empty), 1.0);
        let one: BTreeSet<PageId> = [PageId::new(pythia_sim::FileId(0), 1)]
            .into_iter()
            .collect();
        assert_eq!(f1_of_pageid_sets(&one, &empty), 0.0);
        assert_eq!(f1_of_pageid_sets(&one, &one), 1.0);
    }
}
