//! Figure 1: prefetching sequential vs non-sequential reads.
//!
//! With an oracle providing the exact block sequence, prefetch either only
//! the sequentially scanned blocks or only the non-sequential ones. The
//! paper's point: sequential prefetch adds little (OS readahead already
//! covers it); non-sequential prefetch is where the win is.

use pythia_baselines::{oracle_prefetch, OracleScope};
use pythia_sim::SimDuration;
use pythia_workloads::templates::Template;

use crate::harness::{mean, Env};
use crate::output::{f2, Table};

/// Run the Figure 1 experiment over the DSB templates.
pub fn run(env: &Env) -> Table {
    let mut t = Table::new(
        "Figure 1: Oracle prefetch of sequential vs non-sequential reads (speedup over DFLT)",
        &["workload", "seq-only speedup", "non-seq-only speedup"],
    );
    for template in Template::DSB {
        let w = env.prepare_n(template, env.cfg.n_queries.clamp(8, 40));
        let mut seq_speedups = Vec::new();
        let mut nonseq_speedups = Vec::new();
        for (_, trace) in w.test_queries() {
            let seq = oracle_prefetch(trace, OracleScope::SequentialOnly);
            let nonseq = oracle_prefetch(trace, OracleScope::NonSequentialOnly);
            seq_speedups.push(env.speedup(&env.run_cfg, trace, seq, SimDuration::ZERO));
            nonseq_speedups.push(env.speedup(&env.run_cfg, trace, nonseq, SimDuration::ZERO));
        }
        t.row(vec![
            template.name().to_owned(),
            f2(mean(&seq_speedups)),
            f2(mean(&nonseq_speedups)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExpConfig;

    #[test]
    fn nonseq_prefetch_dominates_seq_prefetch() {
        // Needs a scale where queries are non-sequential-I/O-bound, as in
        // the paper's SF100 setup (a toy database is seq-scan dominated).
        let cfg = ExpConfig {
            scale: 0.12,
            n_queries: 12,
            ..ExpConfig::quick()
        };
        let env = Env::new(cfg);
        let t = run(&env);
        assert_eq!(t.rows.len(), 3);
        let mut seq_mean = 0.0;
        let mut nonseq_mean = 0.0;
        for row in &t.rows {
            let seq: f64 = row[1].parse().unwrap();
            let nonseq: f64 = row[2].parse().unwrap();
            seq_mean += seq / 3.0;
            nonseq_mean += nonseq / 3.0;
            assert!(
                nonseq > 1.2,
                "{}: non-seq oracle should clearly win: {nonseq}",
                row[0]
            );
        }
        assert!(
            nonseq_mean > seq_mean,
            "non-seq prefetch ({nonseq_mean:.2}) must beat seq prefetch ({seq_mean:.2}) on average"
        );
    }
}
