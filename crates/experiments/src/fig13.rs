//! Figure 13: Pythia with multiple queries (§5.4) — warm buffers, no cache
//! clearing between queries.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pythia_baselines::{oracle_prefetch, OracleScope};
use pythia_core::predictor::TrainedWorkload;
use pythia_db::plan::PlanNode;
use pythia_db::runtime::QueryRun;
use pythia_db::trace::Trace;
use pythia_sim::{PageId, SimDuration};
use pythia_workloads::templates::Template;

use crate::harness::{mean, Env, PreparedWorkload};
use crate::output::{f2, Table};

/// How each query in a batch is prefetched.
enum Variant {
    Dflt,
    Orcl,
    Pythia,
}

struct Batch<'a> {
    items: Vec<(&'a PlanNode, &'a Trace, &'a TrainedWorkload)>,
}

impl<'a> Batch<'a> {
    /// Total latency of the batch run warm-sequentially (each query starts
    /// when the previous one ends; buffers are NOT cleared in between).
    fn sequential_total(&self, env: &Env, variant: &Variant) -> SimDuration {
        let prefetches = self.prefetches(env, variant);
        let mut rt = env.runtime();
        let mut total = SimDuration::ZERO;
        for (&(_, trace, _), pf) in self.items.iter().zip(prefetches) {
            let res = rt.run(&[Self::make_run(trace, pf)]);
            total += res.timings[0].elapsed();
        }
        total
    }

    /// Makespan of the batch run concurrently with the given arrival offsets.
    fn concurrent_makespan(
        &self,
        env: &Env,
        variant: &Variant,
        arrivals: &[SimDuration],
    ) -> SimDuration {
        let prefetches = self.prefetches(env, variant);
        let mut rt = env.runtime();
        let runs: Vec<QueryRun<'_>> = self
            .items
            .iter()
            .zip(prefetches)
            .zip(arrivals)
            .map(|((&(_, trace, _), pf), &arr)| QueryRun {
                arrival: arr,
                ..Self::make_run(trace, pf)
            })
            .collect();
        rt.run(&runs).makespan()
    }

    /// Per-item prefetch list + charged inference latency (`None` = DFLT).
    /// Pythia items are grouped by model and each group goes through one
    /// batched forward pass — the multi-query serving path a deployed
    /// batching predictor would use.
    fn prefetches(&self, env: &Env, variant: &Variant) -> Vec<Option<(Vec<PageId>, SimDuration)>> {
        match variant {
            Variant::Dflt => vec![None; self.items.len()],
            Variant::Orcl => self
                .items
                .iter()
                .map(|(_, trace, _)| {
                    Some((oracle_prefetch(trace, OracleScope::All), SimDuration::ZERO))
                })
                .collect(),
            Variant::Pythia => {
                let mut out: Vec<Option<(Vec<PageId>, SimDuration)>> = vec![None; self.items.len()];
                let mut grouped = vec![false; self.items.len()];
                for i in 0..self.items.len() {
                    if grouped[i] {
                        continue;
                    }
                    let tw = self.items[i].2;
                    let idxs: Vec<usize> = (i..self.items.len())
                        .filter(|&j| !grouped[j] && std::ptr::eq(self.items[j].2, tw))
                        .collect();
                    let plans: Vec<&PlanNode> = idxs.iter().map(|&j| self.items[j].0).collect();
                    let batched = env.pythia_prefetch_batch(&env.run_cfg, tw, &plans);
                    for (&j, pf) in idxs.iter().zip(batched) {
                        out[j] = Some(pf);
                        grouped[j] = true;
                    }
                }
                out
            }
        }
    }

    fn make_run(trace: &Trace, prefetch: Option<(Vec<PageId>, SimDuration)>) -> QueryRun<'_> {
        match prefetch {
            None => QueryRun::default_run(trace),
            Some((pf, inference)) => QueryRun::with_prefetch(trace, pf, inference),
        }
    }
}

struct Fleet {
    workloads: Vec<(
        std::sync::Arc<PreparedWorkload>,
        std::sync::Arc<TrainedWorkload>,
    )>,
}

impl Fleet {
    fn train(env: &Env, templates: &[Template]) -> Fleet {
        let workloads = templates
            .iter()
            .map(|&t| {
                let w = env.prepare(t);
                let tw = env.trained_default(t);
                (w, tw)
            })
            .collect();
        Fleet { workloads }
    }

    /// Sample `n` test queries round-robin across the given workload indices,
    /// without replacement within a workload where possible (repeating the
    /// same query would overstate warm-buffer sharing).
    fn sample<'a>(&'a self, which: &[usize], n: usize, seed: u64) -> Batch<'a> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cursors: Vec<Vec<usize>> = self
            .workloads
            .iter()
            .map(|(w, _)| {
                use rand::seq::SliceRandom;
                let mut idx = w.test_idx.clone();
                idx.shuffle(&mut rng);
                idx
            })
            .collect();
        let mut items = Vec::with_capacity(n);
        for i in 0..n {
            let wi = which[i % which.len()];
            let (w, tw) = &self.workloads[wi];
            let pool = &mut cursors[wi];
            let qi = pool
                .pop()
                .unwrap_or_else(|| w.test_idx[rng.gen_range(0..w.test_idx.len())]);
            items.push((&w.queries[qi].plan, &w.traces[qi], tw.as_ref()));
        }
        Batch { items }
    }
}

/// All four panels of Figure 13.
pub struct Fig13 {
    pub a: Table,
    pub b: Table,
    pub c: Table,
    pub d: Table,
}

/// Run Figure 13 (a–d).
pub fn run(env: &Env) -> Fig13 {
    let fleet = Fleet::train(env, &Template::DSB);

    // --- (a) sequential, no overlap, warm buffers ---
    let mut a = Table::new(
        "Figure 13a: sequential multi-query (no overlap, warm buffer) — total-latency speedup",
        &["run", "pythia speedup", "ORCL speedup"],
    );
    for rep in 0..3u64 {
        let batch = fleet.sample(&[0, 1, 2], 4, env.cfg.seed ^ (rep + 1));
        let dflt = batch.sequential_total(env, &Variant::Dflt);
        let pythia = batch.sequential_total(env, &Variant::Pythia);
        let orcl = batch.sequential_total(env, &Variant::Orcl);
        a.row(vec![
            format!("run {}", rep + 1),
            f2(dflt.as_micros() as f64 / pythia.as_micros().max(1) as f64),
            f2(dflt.as_micros() as f64 / orcl.as_micros().max(1) as f64),
        ]);
    }

    // --- (b) concurrent, single template ---
    let mut b = Table::new(
        "Figure 13b: concurrent queries, single template (T18) — makespan speedup",
        &["concurrent queries", "pythia speedup"],
    );
    for &n in &[1usize, 2, 4, 8] {
        let batch = fleet.sample(&[0], n, env.cfg.seed ^ 0xB0 ^ n as u64);
        let arrivals = vec![SimDuration::ZERO; n];
        let dflt = batch.concurrent_makespan(env, &Variant::Dflt, &arrivals);
        let pythia = batch.concurrent_makespan(env, &Variant::Pythia, &arrivals);
        b.row(vec![
            n.to_string(),
            f2(dflt.as_micros() as f64 / pythia.as_micros().max(1) as f64),
        ]);
    }

    // --- (c) concurrent, mixed templates ---
    let mut c = Table::new(
        "Figure 13c: concurrent queries, mixed templates — makespan speedup",
        &["concurrent queries", "pythia speedup"],
    );
    for &n in &[2usize, 4, 8] {
        let batch = fleet.sample(&[0, 1, 2], n, env.cfg.seed ^ 0xC0 ^ n as u64);
        let arrivals = vec![SimDuration::ZERO; n];
        let dflt = batch.concurrent_makespan(env, &Variant::Dflt, &arrivals);
        let pythia = batch.concurrent_makespan(env, &Variant::Pythia, &arrivals);
        c.row(vec![
            n.to_string(),
            f2(dflt.as_micros() as f64 / pythia.as_micros().max(1) as f64),
        ]);
    }

    // --- (d) Poisson arrivals with target expected overlap ---
    let mut d = Table::new(
        "Figure 13d: 5 concurrent T18 queries, Poisson arrivals — makespan speedup",
        &["expected overlap", "pythia speedup"],
    );
    // Expected single-query runtime under DFLT (measured once).
    let probe = fleet.sample(&[0], 3, env.cfg.seed ^ 0xD0);
    let mut runtimes = Vec::new();
    for (_, trace, _) in &probe.items {
        runtimes.push(
            env.cold_time(&env.run_cfg, trace, None, SimDuration::ZERO)
                .as_micros() as f64,
        );
    }
    let expected_rt = mean(&runtimes);
    let mut rng = StdRng::seed_from_u64(env.cfg.seed ^ 0xDD);
    for &overlap in &[0.25f64, 0.5, 0.75, 1.0] {
        let batch = fleet.sample(&[0], 5, env.cfg.seed ^ 0xD1 ^ (overlap * 100.0) as u64);
        // Consecutive expected overlap f => mean inter-arrival (1-f)*runtime;
        // exponential gaps make it a Poisson arrival process.
        let mean_gap = (1.0 - overlap) * expected_rt;
        let mut arrivals = Vec::with_capacity(5);
        let mut t = 0.0f64;
        for i in 0..5 {
            if i > 0 {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                t += -mean_gap * u.ln();
            }
            arrivals.push(SimDuration::from_micros(t as u64));
        }
        let dflt = batch.concurrent_makespan(env, &Variant::Dflt, &arrivals);
        let pythia = batch.concurrent_makespan(env, &Variant::Pythia, &arrivals);
        d.row(vec![
            format!("{:.0}%", overlap * 100.0),
            f2(dflt.as_micros() as f64 / pythia.as_micros().max(1) as f64),
        ]);
    }

    Fig13 { a, b, c, d }
}
