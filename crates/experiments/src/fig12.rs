//! Figure 12: the eight factor studies, all on Template 18 (paper §5.3).

use pythia_buffer::PolicyKind;
use pythia_core::metrics::f1_score;
use pythia_core::predictor::ground_truth;
use pythia_core::PythiaConfig;
use pythia_db::runtime::RunConfig;
use pythia_workloads::templates::Template;

use crate::config::ExpConfig;
use crate::harness::{mean, Env, PreparedWorkload};
use crate::output::{f2, f3, Table};

fn mean_f1(env: &Env, w: &PreparedWorkload, tw: &pythia_core::predictor::TrainedWorkload) -> f64 {
    let modeled = tw.modeled_objects();
    let preds = tw.infer_batch(&env.bench.db, &w.test_plans());
    let f1s: Vec<f64> = preds
        .iter()
        .zip(w.test_queries())
        .map(|(pred, (_, trace))| f1_score(&pred.as_set(), &ground_truth(trace, &modeled)).f1)
        .collect();
    mean(&f1s)
}

fn mean_speedup(
    env: &Env,
    run_cfg: &RunConfig,
    w: &PreparedWorkload,
    tw: &pythia_core::predictor::TrainedWorkload,
) -> f64 {
    let prefetches = env.pythia_prefetch_batch(run_cfg, tw, &w.test_plans());
    let sps: Vec<f64> = prefetches
        .into_iter()
        .zip(w.test_queries())
        .map(|((pf, inference), (_, trace))| env.speedup(run_cfg, trace, pf, inference))
        .collect();
    mean(&sps)
}

/// Figure 12a: F1 vs database scale factor (25/50/100 analog).
///
/// The paper fixes the training-set size (1000 queries) and grows the
/// database 25 GB → 100 GB: accuracy slightly deteriorates because the same
/// training data must cover more blocks. We reproduce that regime by growing
/// the database *upward* from the experiment's base scale (1×/2×/4×, the
/// paper's 25/50/100 ratio) with the query count fixed.
pub fn run_a(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "Figure 12a: F1 vs database scale factor (Template 18)",
        &["scale factor (relative)", "total pages", "mean F1"],
    );
    for rel in [1.0, 2.0, 4.0] {
        let env = Env::at_scale(cfg.clone(), cfg.scale * rel);
        let w = env.prepare(Template::T18);
        let tw = env.trained_default(Template::T18);
        t.row(vec![
            format!("{rel:.2}x"),
            env.bench.db.disk.total_pages().to_string(),
            f3(mean_f1(&env, &w, &tw)),
        ]);
    }
    t
}

/// Figure 12b: F1 vs training-set fraction.
pub fn run_b(env: &Env) -> Table {
    let mut t = Table::new(
        "Figure 12b: F1 vs training data size (Template 18)",
        &["train fraction", "train queries", "mean F1"],
    );
    let w = env.prepare(Template::T18);
    for frac in [0.10, 0.25, 0.50, 0.75, 1.00] {
        let k = ((w.train_idx.len() as f64 * frac).round() as usize).max(4);
        let sub = PreparedWorkload {
            template: w.template,
            queries: w.queries.clone(),
            traces: w.traces.clone(),
            train_idx: w.train_idx[..k].to_vec(),
            test_idx: w.test_idx.clone(),
        };
        let tw = env.train(&sub);
        t.row(vec![
            format!("{:.0}%", frac * 100.0),
            k.to_string(),
            f3(mean_f1(env, &sub, &tw)),
        ]);
    }
    t
}

/// Figure 12c: homogeneous vs heterogeneous workloads.
pub fn run_c(env: &Env) -> Table {
    let mut t = Table::new(
        "Figure 12c: homogeneous vs heterogeneous workload (T18 + T19)",
        &[
            "workload type",
            "mean F1 on T18 tests",
            "mean F1 on T19 tests",
        ],
    );
    let w18 = env.prepare(Template::T18);
    let w19 = env.prepare(Template::T19);

    // Homogeneous: one model per template.
    let tw18 = env.trained_default(Template::T18);
    let tw19 = env.trained_default(Template::T19);
    t.row(vec![
        "homogeneous (per-template models)".into(),
        f3(mean_f1(env, &w18, &tw18)),
        f3(mean_f1(env, &w19, &tw19)),
    ]);

    // Heterogeneous: one model trained on a 50/50 mix of the same total size.
    let half18 = w18.train_idx.len() / 2;
    let half19 = w19.train_idx.len() / 2;
    let mut plans = Vec::new();
    let mut traces = Vec::new();
    for &i in w18.train_idx.iter().take(half18) {
        plans.push(w18.queries[i].plan.clone());
        traces.push(w18.traces[i].clone());
    }
    for &i in w19.train_idx.iter().take(half19) {
        plans.push(w19.queries[i].plan.clone());
        traces.push(w19.traces[i].clone());
    }
    let mixed = pythia_core::train_workload(
        &env.bench.db,
        "hetero-t18-t19",
        &plans,
        &traces,
        None,
        &env.cfg.pythia,
    );
    let modeled = mixed.modeled_objects();
    let f1_on = |w: &PreparedWorkload| -> f64 {
        let preds = mixed.infer_batch(&env.bench.db, &w.test_plans());
        let f1s: Vec<f64> = preds
            .iter()
            .zip(w.test_queries())
            .map(|(pred, (_, trace))| f1_score(&pred.as_set(), &ground_truth(trace, &modeled)).f1)
            .collect();
        mean(&f1s)
    };
    t.row(vec![
        "heterogeneous (single mixed model)".into(),
        f3(f1_on(&w18)),
        f3(f1_on(&w19)),
    ]);
    t
}

/// Figure 12d: separate vs combined index/base-table models.
pub fn run_d(env: &Env) -> Table {
    let mut t = Table::new(
        "Figure 12d: separate vs combined index/base-table models (Template 18)",
        &["model design", "mean F1", "total model MB"],
    );
    let w = env.prepare(Template::T18);
    let separate = env.trained_default(Template::T18);
    t.row(vec![
        "separate (paper default)".into(),
        f3(mean_f1(env, &w, &separate)),
        f2(separate.size_bytes() as f64 / 1e6),
    ]);
    let combined_cfg = PythiaConfig {
        combined_index_base: true,
        ..env.cfg.pythia.clone()
    };
    let combined = env.train_with(&w, &combined_cfg);
    t.row(vec![
        "combined".into(),
        f3(mean_f1(env, &w, &combined)),
        f2(combined.size_bytes() as f64 / 1e6),
    ]);
    t
}

/// Figure 12e: buffer replacement policies (Clock / LRU / MRU) under a
/// halved buffer so replacement actually kicks in (the paper uses 512 MB
/// instead of 1024 MB for the same reason).
pub fn run_e(env: &Env) -> Table {
    let mut t = Table::new(
        "Figure 12e: Pythia speedup under different replacement policies (Template 18)",
        &["policy", "mean speedup"],
    );
    let w = env.prepare(Template::T18);
    let tw = env.trained_default(Template::T18);
    for policy in PolicyKind::ALL {
        let run_cfg = RunConfig {
            policy,
            pool_frames: (env.run_cfg.pool_frames / 2).max(64),
            readahead_window: env
                .run_cfg
                .readahead_window
                .min(env.run_cfg.pool_frames / 4)
                .max(16),
            ..env.run_cfg.clone()
        };
        t.row(vec![
            policy.to_string(),
            f2(mean_speedup(env, &run_cfg, &w, &tw)),
        ]);
    }
    t
}

/// Figure 12f: buffer size sweep.
pub fn run_f(env: &Env) -> Table {
    let mut t = Table::new(
        "Figure 12f: Pythia speedup vs buffer size (Template 18)",
        &["buffer frames", "mean speedup"],
    );
    let w = env.prepare(Template::T18);
    let tw = env.trained_default(Template::T18);
    for mult in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let frames = ((env.run_cfg.pool_frames as f64 * mult) as usize).max(64);
        let run_cfg = RunConfig {
            pool_frames: frames,
            readahead_window: env.run_cfg.readahead_window.min(frames / 2).max(16),
            ..env.run_cfg.clone()
        };
        t.row(vec![
            frames.to_string(),
            f2(mean_speedup(env, &run_cfg, &w, &tw)),
        ]);
    }
    t
}

/// Figure 12g: readahead window sweep.
pub fn run_g(env: &Env) -> Table {
    let mut t = Table::new(
        "Figure 12g: Pythia speedup vs readahead window R (Template 18)",
        &["R (pages pinned)", "mean speedup"],
    );
    let w = env.prepare(Template::T18);
    let tw = env.trained_default(Template::T18);
    for r in [16usize, 64, 256, 1024] {
        let r = r.min(env.run_cfg.pool_frames / 2).max(8);
        let run_cfg = RunConfig {
            readahead_window: r,
            ..env.run_cfg.clone()
        };
        t.row(vec![
            r.to_string(),
            f2(mean_speedup(env, &run_cfg, &w, &tw)),
        ]);
    }
    t
}

/// Figure 12h: predicting only the top-k most frequent pages.
pub fn run_h(env: &Env) -> Table {
    let mut t = Table::new(
        "Figure 12h: top-k page models vs full prediction (Template 18)",
        &["model", "mean F1", "mean speedup"],
    );
    let w = env.prepare(Template::T18);
    // k relative to the largest modeled object.
    let full = env.trained_default(Template::T18);
    let max_pages = full.models.values().map(|m| m.n_pages).max().unwrap_or(64) as usize;
    for (label, k) in [
        ("top 1/16 of pages", Some(max_pages / 16)),
        ("top 1/4 of pages", Some(max_pages / 4)),
        ("top 1/2 of pages", Some(max_pages / 2)),
        ("full prediction", None),
    ] {
        let trained;
        let tw: &pythia_core::predictor::TrainedWorkload = match k {
            // Reuse the already-trained full model.
            None => full.as_ref(),
            Some(kv) => {
                let cfg = PythiaConfig {
                    top_k: Some(kv.max(8)),
                    ..env.cfg.pythia.clone()
                };
                trained = env.train_with(&w, &cfg);
                &trained
            }
        };
        t.row(vec![
            label.into(),
            f3(mean_f1(env, &w, tw)),
            f2(mean_speedup(env, &env.run_cfg, &w, tw)),
        ]);
    }
    t
}
