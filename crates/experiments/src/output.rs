//! Result tables: aligned console printing plus CSV export.

use std::fmt::Write as _;
use std::path::Path;

/// A result table for one figure/table of the paper.
#[derive(Debug, Clone)]
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render aligned for the console.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// CSV encoding (quotes cells containing commas).
    pub fn to_csv(&self) -> String {
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_owned()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Print to stdout and write `results/<id>.csv` (best effort).
    pub fn emit(&self, id: &str) {
        println!("{}", self.render());
        let dir = Path::new("results");
        if std::fs::create_dir_all(dir).is_ok() {
            let _ = std::fs::write(dir.join(format!("{id}.csv")), self.to_csv());
        }
    }
}

/// Format a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Format a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_csv() {
        let mut t = Table::new("demo", &["a", "long_header"]);
        t.row(vec!["1".into(), "x".into()]);
        t.row(vec!["2".into(), "value,with,commas".into()]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        assert!(r.contains("long_header"));
        let csv = t.to_csv();
        assert!(csv.contains("\"value,with,commas\""));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    #[should_panic]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
