//! Table 1: statistics for the template workloads.

use pythia_workloads::templates::Template;
use pythia_workloads::workload_stats;

use crate::harness::Env;
use crate::output::Table;

/// Compute Table 1 over all four workloads.
pub fn run(env: &Env) -> Table {
    let mut t = Table::new(
        "Table 1: Statistics for template workloads",
        &[
            "workload",
            "sequential IO",
            "min distinct non-seq IO",
            "max distinct non-seq IO",
            "distinct plans",
            "relations (index-scanned)",
        ],
    );
    for template in Template::ALL {
        let w = env.prepare(template);
        let s = workload_stats(&env.bench, template, &w.queries, &w.traces);
        t.row(vec![
            template.name().to_owned(),
            s.sequential_io.to_string(),
            s.min_distinct_nonseq.to_string(),
            s.max_distinct_nonseq.to_string(),
            s.distinct_plans.to_string(),
            format!("{}({})", s.relations_joined, s.index_scanned),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExpConfig;

    #[test]
    fn table1_has_four_workloads() {
        let cfg = ExpConfig {
            scale: 0.05,
            n_queries: 8,
            ..ExpConfig::quick()
        };
        let env = Env::new(cfg);
        let t = run(&env);
        assert_eq!(t.rows.len(), 4);
        // T91 row reports 7 relations, 5 index-scanned.
        let t91 = &t.rows[2];
        assert_eq!(t91[0], "Template 91");
        assert_eq!(t91[5], "7(5)");
    }
}
