//! Shared experiment machinery: build the database, prepare workloads
//! (sample + trace + train/test split), train Pythia, and time replays.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use pythia_core::predictor::TrainedWorkload;
use pythia_core::prefetch::{cap_to_budget, prefetch_list};
use pythia_core::{train_workload, PythiaConfig};
use pythia_db::plan::PlanNode;
use pythia_db::runtime::{QueryRun, RunConfig, Runtime};
use pythia_db::trace::Trace;
use pythia_sim::{PageId, SimDuration};
use pythia_workloads::templates::{sample_workload, QueryInstance, Template};
use pythia_workloads::{build_benchmark, BenchmarkDb, GeneratorConfig};

use crate::config::ExpConfig;

/// A sampled workload with traces and an unseen-query split.
pub struct PreparedWorkload {
    pub template: Template,
    pub queries: Vec<QueryInstance>,
    pub traces: Vec<Trace>,
    pub train_idx: Vec<usize>,
    pub test_idx: Vec<usize>,
}

impl PreparedWorkload {
    /// Training plans (cloned).
    pub fn train_plans(&self) -> Vec<PlanNode> {
        self.train_idx
            .iter()
            .map(|&i| self.queries[i].plan.clone())
            .collect()
    }

    /// Training traces (cloned).
    pub fn train_traces(&self) -> Vec<Trace> {
        self.train_idx
            .iter()
            .map(|&i| self.traces[i].clone())
            .collect()
    }

    /// Iterate `(plan, trace)` of the held-out test queries.
    pub fn test_queries(&self) -> impl Iterator<Item = (&PlanNode, &Trace)> {
        self.test_idx
            .iter()
            .map(|&i| (&self.queries[i].plan, &self.traces[i]))
    }

    /// Borrowed test-query plans, in [`Self::test_queries`] order — the
    /// input shape batched inference wants.
    pub fn test_plans(&self) -> Vec<&PlanNode> {
        self.test_idx
            .iter()
            .map(|&i| &self.queries[i].plan)
            .collect()
    }
}

/// The experiment environment: database + sized replay configuration.
///
/// Preparing a workload (sampling + tracing) and training the default models
/// are expensive; both are cached per template so the figure modules can
/// share them within one suite run. The caches are mutex-guarded and hand out
/// `Arc`s, so one `Env` is shared by figure jobs running concurrently on the
/// worker pool; a miss computes under the lock (each key exactly once), which
/// is why `bin/all.rs` warms the caches before fanning out.
pub struct Env {
    pub cfg: ExpConfig,
    pub bench: BenchmarkDb,
    pub run_cfg: RunConfig,
    prepared: std::sync::Mutex<
        std::collections::HashMap<(Template, usize), std::sync::Arc<PreparedWorkload>>,
    >,
    trained: std::sync::Mutex<std::collections::HashMap<Template, std::sync::Arc<TrainedWorkload>>>,
}

impl Env {
    /// Build the benchmark database at the configured scale.
    pub fn new(cfg: ExpConfig) -> Env {
        let bench = build_benchmark(&GeneratorConfig {
            scale: cfg.scale,
            seed: cfg.seed,
        });
        let run_cfg = cfg.sized_run(bench.db.disk.total_pages());
        Env {
            cfg,
            bench,
            run_cfg,
            prepared: Default::default(),
            trained: Default::default(),
        }
    }

    /// Like [`Env::new`] but at an explicit scale (Figure 12a).
    pub fn at_scale(cfg: ExpConfig, scale: f64) -> Env {
        let bench = build_benchmark(&GeneratorConfig {
            scale,
            seed: cfg.seed,
        });
        let run_cfg = cfg.sized_run(bench.db.disk.total_pages());
        Env {
            cfg,
            bench,
            run_cfg,
            prepared: Default::default(),
            trained: Default::default(),
        }
    }

    /// Sample `n_queries` instances of `template`, execute them for traces,
    /// and split off the unseen test queries (random, seeded). Cached.
    pub fn prepare(&self, template: Template) -> std::sync::Arc<PreparedWorkload> {
        self.prepare_n(template, self.cfg.n_queries)
    }

    /// [`Env::prepare`] with an explicit workload size. Cached per
    /// `(template, n)`; the lock is held across a miss so each workload is
    /// sampled exactly once even under concurrent callers.
    pub fn prepare_n(&self, template: Template, n: usize) -> std::sync::Arc<PreparedWorkload> {
        let mut cache = self.prepared.lock().unwrap();
        if let Some(w) = cache.get(&(template, n)) {
            return w.clone();
        }
        let w = std::sync::Arc::new(self.prepare_uncached(template, n));
        cache.insert((template, n), w.clone());
        w
    }

    /// Train (once, cached) the default-config models for a template.
    /// Training fans out internally on the worker pool; the lock only
    /// guarantees a single trainer per template.
    pub fn trained_default(&self, template: Template) -> std::sync::Arc<TrainedWorkload> {
        let mut cache = self.trained.lock().unwrap();
        if let Some(tw) = cache.get(&template) {
            return tw.clone();
        }
        let w = self.prepare(template);
        let tw = std::sync::Arc::new(self.train_with(&w, &self.cfg.pythia));
        cache.insert(template, tw.clone());
        tw
    }

    fn prepare_uncached(&self, template: Template, n: usize) -> PreparedWorkload {
        let queries = sample_workload(
            &self.bench,
            template,
            n,
            self.cfg.seed ^ ((template as u64 + 1) * 0x9E37),
        );
        let traces: Vec<Trace> = queries
            .iter()
            .map(|q| pythia_db::exec::execute(&q.plan, &self.bench.db).1)
            .collect();
        let mut idx: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0x5EED);
        idx.shuffle(&mut rng);
        let n_test = ((n as f64 * self.cfg.test_frac).round() as usize).clamp(2, n / 2);
        let (test_idx, train_idx) = idx.split_at(n_test);
        PreparedWorkload {
            template,
            queries,
            traces,
            train_idx: train_idx.to_vec(),
            test_idx: test_idx.to_vec(),
        }
    }

    /// Train Pythia on a prepared workload with the default model config.
    pub fn train(&self, w: &PreparedWorkload) -> TrainedWorkload {
        self.train_with(w, &self.cfg.pythia)
    }

    /// Train with an explicit model config (ablations).
    pub fn train_with(&self, w: &PreparedWorkload, pythia: &PythiaConfig) -> TrainedWorkload {
        let restrict = w.template.prefetch_objects(&self.bench);
        train_workload(
            &self.bench.db,
            w.template.name(),
            &w.train_plans(),
            &w.train_traces(),
            restrict.as_deref(),
            pythia,
        )
    }

    /// A cold replay stack under this environment's sizing.
    pub fn runtime(&self) -> Runtime {
        Runtime::new(&self.run_cfg, self.bench.db.file_lengths())
    }

    /// A cold replay stack with an explicit configuration.
    pub fn runtime_with(&self, cfg: &RunConfig) -> Runtime {
        Runtime::new(cfg, self.bench.db.file_lengths())
    }

    /// Cold-cache runtime of one query (paper methodology: restart +
    /// drop caches between runs).
    pub fn cold_time(
        &self,
        run_cfg: &RunConfig,
        trace: &Trace,
        prefetch: Option<Vec<PageId>>,
        inference: SimDuration,
    ) -> SimDuration {
        let mut rt = self.runtime_with(run_cfg);
        let res = rt.run(&[QueryRun {
            trace,
            prefetch,
            arrival: SimDuration::ZERO,
            inference_latency: inference,
            span_name: pythia_db::runtime::DEFAULT_REPLAY_SPAN,
        }]);
        res.timings[0].elapsed()
    }

    /// Speedup of a prefetch variant over DFLT for one query, cold cache.
    pub fn speedup(
        &self,
        run_cfg: &RunConfig,
        trace: &Trace,
        prefetch: Vec<PageId>,
        inference: SimDuration,
    ) -> f64 {
        let base = self.cold_time(run_cfg, trace, None, SimDuration::ZERO);
        let with = self.cold_time(run_cfg, trace, Some(prefetch), inference);
        base.as_micros() as f64 / with.as_micros().max(1) as f64
    }

    /// Run Pythia inference for a plan, returning the (budget-capped)
    /// prefetch list and the *measured* wall-clock inference latency —
    /// charged against the query like the paper charges its 1–1.5 s.
    pub fn pythia_prefetch(
        &self,
        run_cfg: &RunConfig,
        tw: &TrainedWorkload,
        plan: &PlanNode,
    ) -> (Vec<PageId>, SimDuration) {
        let t0 = std::time::Instant::now();
        let pred = tw.infer(&self.bench.db, plan);
        let list = prefetch_list(&self.bench.db, &pred);
        let inference = SimDuration::from_micros(t0.elapsed().as_micros() as u64);
        // Limited prefetching: stay within buffer bounds (paper §5.1).
        let budget = run_cfg.pool_frames * 3 / 4;
        (cap_to_budget(list, budget), inference)
    }

    /// [`Env::pythia_prefetch`] for a whole batch of plans: one batched
    /// forward pass per model serves every query, and each query is charged
    /// an equal share of the measured wall-clock latency (the amortized cost
    /// a deployed batching server would see). Page lists are identical to
    /// the per-query path — batched inference is bit-identical to serial.
    pub fn pythia_prefetch_batch(
        &self,
        run_cfg: &RunConfig,
        tw: &TrainedWorkload,
        plans: &[&PlanNode],
    ) -> Vec<(Vec<PageId>, SimDuration)> {
        if plans.is_empty() {
            return Vec::new();
        }
        let t0 = std::time::Instant::now();
        let preds = tw.infer_batch(&self.bench.db, plans);
        let inference =
            SimDuration::from_micros(t0.elapsed().as_micros() as u64 / plans.len() as u64);
        let budget = run_cfg.pool_frames * 3 / 4;
        preds
            .into_iter()
            .map(|pred| {
                let list = prefetch_list(&self.bench.db, &pred);
                (cap_to_budget(list, budget), inference)
            })
            .collect()
    }
}

/// Mean of a sample (0 for empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Quartile bucket per element: 0 = bottom 25%, 1 = middle 50%, 2 = top 25%
/// (the paper's Figures 7/8/10/11 bucketing).
pub fn quartile_buckets(values: &[f64]) -> Vec<usize> {
    let n = values.len();
    if n == 0 {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("no NaN"));
    let q1 = n / 4;
    let q3 = n - n / 4;
    let mut buckets = vec![1usize; n];
    for (rank, &i) in order.iter().enumerate() {
        buckets[i] = if rank < q1 {
            0
        } else if rank >= q3 {
            2
        } else {
            1
        };
    }
    buckets
}

/// Bucket labels matching the paper's figures.
pub const BUCKET_NAMES: [&str; 3] = ["low (bottom 25%)", "medium (mid 50%)", "high (top 25%)"];

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_env() -> Env {
        let cfg = ExpConfig {
            scale: 0.05,
            n_queries: 12,
            test_frac: 0.25,
            ..ExpConfig::quick()
        };
        Env::new(cfg)
    }

    #[test]
    fn prepare_splits_disjointly() {
        let env = tiny_env();
        let w = env.prepare(Template::T91);
        assert_eq!(w.queries.len(), 12);
        assert_eq!(w.traces.len(), 12);
        let all: std::collections::HashSet<usize> =
            w.train_idx.iter().chain(&w.test_idx).copied().collect();
        assert_eq!(all.len(), 12, "train/test disjoint and covering");
        assert_eq!(w.test_idx.len(), 3);
    }

    #[test]
    fn cold_time_is_deterministic() {
        let env = tiny_env();
        let w = env.prepare_n(Template::T91, 4);
        let t1 = env.cold_time(&env.run_cfg, &w.traces[0], None, SimDuration::ZERO);
        let t2 = env.cold_time(&env.run_cfg, &w.traces[0], None, SimDuration::ZERO);
        assert_eq!(t1, t2);
        assert!(t1 > SimDuration::ZERO);
    }

    #[test]
    fn oracle_speedup_exceeds_one() {
        let env = tiny_env();
        let w = env.prepare_n(Template::T91, 4);
        let pf = pythia_baselines::oracle_prefetch(
            &w.traces[0],
            pythia_baselines::OracleScope::NonSequentialOnly,
        );
        let s = env.speedup(&env.run_cfg, &w.traces[0], pf, SimDuration::ZERO);
        assert!(s > 1.2, "oracle speedup {s:.2}");
    }

    #[test]
    fn quartile_buckets_partition() {
        let vals: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let b = quartile_buckets(&vals);
        assert_eq!(b.iter().filter(|&&x| x == 0).count(), 5);
        assert_eq!(b.iter().filter(|&&x| x == 2).count(), 5);
        assert_eq!(b.iter().filter(|&&x| x == 1).count(), 10);
        assert_eq!(b[0], 0);
        assert_eq!(b[19], 2);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn batched_prefetch_matches_serial_pages() {
        let env = tiny_env();
        let w = env.prepare_n(Template::T91, 8);
        let pythia = PythiaConfig {
            epochs: 6,
            ..env.cfg.pythia.clone()
        };
        let tw = env.train_with(&w, &pythia);
        let plans = w.test_plans();
        assert!(!plans.is_empty());
        let batched = env.pythia_prefetch_batch(&env.run_cfg, &tw, &plans);
        assert_eq!(batched.len(), plans.len());
        for (q, plan) in plans.iter().enumerate() {
            let (serial_pages, _) = env.pythia_prefetch(&env.run_cfg, &tw, plan);
            assert_eq!(batched[q].0, serial_pages, "query {q}");
        }
        assert!(env.pythia_prefetch_batch(&env.run_cfg, &tw, &[]).is_empty());
    }

    #[test]
    fn env_caches_shared_across_threads() {
        let env = tiny_env();
        let first = env.prepare_n(Template::T91, 4);
        let again = pythia_nn::pool::parallel_map(&[(); 3], |_, _| env.prepare_n(Template::T91, 4));
        for w in &again {
            assert!(
                std::sync::Arc::ptr_eq(w, &first),
                "cache must hand out one workload"
            );
        }
    }
}
