//! # pythia-experiments
//!
//! The harness that regenerates every table and figure of the paper's
//! evaluation (§5). Each `fig*`/`table*` module computes one artifact and
//! returns [`output::Table`]s; the binaries under `src/bin/` print them and
//! write CSVs to `results/`.
//!
//! Two run modes (see [`config::ExpConfig::from_env`]):
//! * **quick** (default) — scaled-down database, fewer queries, small model
//!   dims; minutes on a laptop. Shapes (who wins, crossovers) match the
//!   paper; absolute values differ.
//! * **full** (`PYTHIA_FULL=1`) — the crate's largest configuration: paper
//!   model dimensions (100-d, 10 heads, 800 hidden) and 1000 queries per
//!   workload.

pub mod config;
pub mod drift;
pub mod extensions;
pub mod fig01;
pub mod fig05_06;
pub mod fig07_08;
pub mod fig09;
pub mod fig10_11;
pub mod fig12;
pub mod fig13;
pub mod harness;
pub mod output;
pub mod serving;
pub mod table1;

pub use config::ExpConfig;
pub use harness::Env;
pub use output::Table;
