//! Figure 13d through the serving loop: Poisson arrivals against the
//! admission-controlled prefetch server.
//!
//! The original Figure 13d replays a pre-built batch with Poisson arrival
//! offsets through one [`pythia_db::runtime::Runtime::run`] call — every
//! query is "admitted" the moment it arrives. A deployed database instead
//! admits under a concurrency limit, so this experiment re-expresses the
//! sweep through [`PrefetchServer`]: queries arrive on the same Poisson
//! process, queue, get batch-inferred per admission wave, and replay
//! concurrently up to the admission limit. Scheduling extensions are then
//! one-flag variants of the same loop — the table compares DFLT (no
//! predictor) against Pythia under FIFO and under the §7 overlap scheduler.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pythia_core::predictor::TrainedWorkload;
use pythia_core::server::{
    AdmissionMode, InferenceCharge, PrefetchServer, QueuePolicy, ServeReport, ServerConfig,
    ServerRequest,
};
use pythia_obs::Recorder;
use pythia_sim::SimDuration;
use pythia_workloads::templates::Template;

use crate::harness::{mean, Env};
use crate::output::{f2, Table};

/// Queries admitted concurrently per wave (the paper's machine runs a small
/// number of backends at once; 2 keeps contention visible at quick scale).
const CONCURRENCY: usize = 2;
/// Queries in each served stream.
const N_QUERIES: usize = 6;

/// Poisson arrival offsets: exponential inter-arrival gaps with the given
/// mean (first arrival at zero).
fn poisson_arrivals(n: usize, mean_gap_us: f64, rng: &mut StdRng) -> Vec<SimDuration> {
    let mut arrivals = Vec::with_capacity(n);
    let mut t = 0.0f64;
    for i in 0..n {
        if i > 0 {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += -mean_gap_us * u.ln();
        }
        arrivals.push(SimDuration::from_micros(t as u64));
    }
    arrivals
}

/// Serve one Poisson-arrival stream of `template` test queries end to end.
///
/// `overlap` is the expected consecutive overlap fraction (Figure 13d's
/// x-axis): the mean inter-arrival gap is `(1 - overlap) ×` the expected
/// DFLT runtime. `tw = None` is the DFLT baseline (no prefetching);
/// `admission` selects wave-barrier or admit-on-completion refill.
pub fn serve_poisson(
    env: &Env,
    template: Template,
    tw: Option<&TrainedWorkload>,
    admission: AdmissionMode,
    policy: QueuePolicy,
    overlap: f64,
    seed: u64,
) -> ServeReport {
    let (rep, _) = serve_poisson_inner(
        env,
        template,
        tw,
        admission,
        policy,
        overlap,
        seed,
        InferenceCharge::Measured,
        Recorder::disabled(),
    );
    rep
}

/// Inference charge used by traced runs: a fixed virtual cost keeps every
/// timestamp in the trace independent of host speed, so two same-seed runs
/// produce byte-identical virtual-time traces ([`InferenceCharge::Measured`]
/// would leak wall-clock noise into admission times).
pub const TRACED_INFER_CHARGE_US: u64 = 150;

/// [`serve_poisson`] with a structured-trace [`Recorder`] installed on the
/// serving stack and NN wall-task capture on for the duration of the call.
/// Returns the report together with the recorder holding the run's events,
/// counters, and histograms — dump [`Recorder::chrome_trace_json`] for
/// Perfetto, or [`Recorder::virtual_trace_json`] for the deterministic
/// virtual-clock subset.
pub fn serve_poisson_traced(
    env: &Env,
    template: Template,
    tw: Option<&TrainedWorkload>,
    admission: AdmissionMode,
    policy: QueuePolicy,
    overlap: f64,
    seed: u64,
) -> (ServeReport, Recorder) {
    serve_poisson_inner(
        env,
        template,
        tw,
        admission,
        policy,
        overlap,
        seed,
        InferenceCharge::Fixed(SimDuration::from_micros(TRACED_INFER_CHARGE_US)),
        Recorder::enabled(),
    )
}

#[allow(clippy::too_many_arguments)]
fn serve_poisson_inner(
    env: &Env,
    template: Template,
    tw: Option<&TrainedWorkload>,
    admission: AdmissionMode,
    policy: QueuePolicy,
    overlap: f64,
    seed: u64,
    charge: InferenceCharge,
    recorder: Recorder,
) -> (ServeReport, Recorder) {
    let w = env.prepare(template);
    let idxs: Vec<usize> = (0..N_QUERIES)
        .map(|i| w.test_idx[i % w.test_idx.len()])
        .collect();

    // Expected single-query DFLT runtime calibrates the arrival rate.
    let probes: Vec<f64> = idxs
        .iter()
        .take(3)
        .map(|&qi| {
            env.cold_time(&env.run_cfg, &w.traces[qi], None, SimDuration::ZERO)
                .as_micros() as f64
        })
        .collect();
    let mean_gap = (1.0 - overlap) * mean(&probes);
    let mut rng = StdRng::seed_from_u64(seed);
    let arrivals = poisson_arrivals(idxs.len(), mean_gap, &mut rng);

    let requests: Vec<ServerRequest<'_>> = idxs
        .iter()
        .zip(&arrivals)
        .map(|(&qi, &arrival)| ServerRequest {
            plan: &w.queries[qi].plan,
            trace: &w.traces[qi],
            arrival,
            // Template-derived span name: repeated shapes group in Perfetto.
            span_name: template.replay_span(),
            tenant: 0,
            request: 0,
        })
        .collect();
    let cfg = ServerConfig {
        concurrency: CONCURRENCY,
        admission,
        policy,
        charge,
        prefetch_budget: None,
        tenant_quota: None,
    };
    let mut server = PrefetchServer::new(&env.bench.db, &env.run_cfg, cfg);
    if let Some(tw) = tw {
        server = server.with_predictor(tw);
    }
    // Traced runs stream per-admission quality telemetry (quality.observe
    // instants, labeled series); the untraced sweep path stays bare. The
    // tracker reads interval diffs only, so virtual-time determinism holds
    // either way.
    if recorder.is_enabled() {
        server = server.with_quality(std::sync::Arc::new(std::sync::Mutex::new(
            pythia_obs::quality::QualityTracker::default(),
        )));
    }
    server.set_recorder(recorder);
    let capture = server.recorder().is_enabled();
    // NN capture (pool task spans + training telemetry) may already be on:
    // [`dump_trace`] enables it *before* training so the epoch ladder lands
    // in the same trace. Only toggle the flags this call turned on itself;
    // absorbing drains whatever accumulated either way.
    let was_on = pythia_obs::wall::enabled();
    if capture && !was_on {
        pythia_obs::wall::drain();
        pythia_obs::train::drain();
        pythia_obs::wall::set_enabled(true);
        pythia_obs::train::set_enabled(true);
    }
    let rep = server.serve(&requests);
    let mut rec = server.take_recorder();
    if capture {
        if !was_on {
            pythia_obs::wall::set_enabled(false);
            pythia_obs::train::set_enabled(false);
        }
        rec.absorb_wall_tasks(pythia_obs::wall::drain());
        rec.absorb_train_telemetry(pythia_obs::train::drain());
    }
    (rep, rec)
}

/// Value of a `--<name> <value>` (or `--<name>=<value>`) command-line flag,
/// if present.
fn flag_value(name: &str) -> Option<String> {
    let long = format!("--{name}");
    let prefixed = format!("--{name}=");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == long {
            return args.next();
        }
        if let Some(p) = a.strip_prefix(&prefixed) {
            return Some(p.to_owned());
        }
    }
    None
}

/// Value of the `--trace-out <path>` (or `--trace-out=<path>`) command-line
/// flag, if present. Experiment binaries use this to dump a Perfetto-loadable
/// Chrome trace of one traced serving run.
pub fn trace_out_arg() -> Option<String> {
    flag_value("trace-out")
}

/// Value of `--metrics-addr <host:port>`: serve the live metrics snapshot
/// over HTTP for the duration of the traced run (`curl <addr>/metrics`).
pub fn metrics_addr_arg() -> Option<String> {
    flag_value("metrics-addr")
}

/// Value of `--metrics-out <path>`: write the final metrics snapshot JSON
/// next to the trace (what CI uploads as an artifact).
pub fn metrics_out_arg() -> Option<String> {
    flag_value("metrics-out")
}

/// Value of `--admission-out <path>`: write the wave-vs-continuous
/// [`admission_snapshot`] JSON to the given path (CI uploads it alongside
/// the trace artifacts).
pub fn admission_out_arg() -> Option<String> {
    flag_value("admission-out")
}

/// Value of `--drift-out <path>`: write the drift-injection sweep's
/// before/after [`crate::drift::drift_snapshot`] JSON to the given path (CI
/// gates on the stationary run reporting zero alerts).
pub fn drift_out_arg() -> Option<String> {
    flag_value("drift-out")
}

/// Score the trained workload on its held-out test queries (one batched
/// inference) and buffer one `nn.heldout_f1` telemetry record per query.
fn record_heldout_f1(env: &Env, template: Template, tw: &TrainedWorkload) {
    let w = env.prepare(template);
    let modeled = tw.modeled_objects();
    let preds = tw.infer_batch(&env.bench.db, &w.test_plans());
    for (qi, ((_, trace), pred)) in w.test_queries().zip(&preds).enumerate() {
        let truth = pythia_core::predictor::ground_truth(trace, &modeled);
        let f1 = pythia_core::f1_score(&pred.as_set(), &truth).f1;
        pythia_obs::train::record_f1(qi as u64, pythia_obs::train::to_e6(f1));
    }
}

/// Run the canonical traced serving run (Fig 13d's 75%-overlap point under
/// continuous admission and the overlap scheduler) and write its Chrome
/// trace JSON to `path`.
///
/// Training-telemetry capture is turned on *before* the (cached) model
/// training, so a cold `Env` contributes its whole epoch ladder — per-epoch
/// `nn.epoch` spans, loss/grad-norm histograms, held-out F1 instants — to
/// the exported trace. With `metrics_addr`, the run's metrics snapshot is
/// served live at `http://<addr>/metrics` (Prometheus text) until the
/// process exits; with `metrics_out`, the final snapshot JSON is written to
/// that path.
pub fn dump_trace(
    env: &Env,
    path: &str,
    metrics_addr: Option<&str>,
    metrics_out: Option<&str>,
) -> ServeReport {
    // Enable NN capture up front so training (if this Env hasn't trained
    // T18 yet) is observed; serve_poisson_inner sees the flag already on
    // and leaves lifecycle management to us.
    pythia_obs::wall::drain();
    pythia_obs::train::drain();
    pythia_obs::wall::set_enabled(true);
    pythia_obs::train::set_enabled(true);

    let shared = pythia_obs::serve::SharedSnapshot::new();
    let metrics_server = metrics_addr.map(|addr| {
        let srv = pythia_obs::serve::MetricsServer::start(addr, shared.clone())
            .unwrap_or_else(|e| panic!("binding metrics endpoint {addr}: {e}"));
        eprintln!("[pythia] metrics live at http://{}/metrics", srv.addr());
        srv
    });
    let mut recorder = Recorder::enabled();
    if metrics_server.is_some() {
        recorder.set_publisher(shared);
    }

    let tw = env.trained_default(Template::T18);
    record_heldout_f1(env, Template::T18, tw.as_ref());

    let (rep, rec) = serve_poisson_inner(
        env,
        Template::T18,
        Some(tw.as_ref()),
        // The canonical traced run exercises the continuous-admission path
        // (the default admission mode) under the overlap scheduler.
        AdmissionMode::Continuous,
        QueuePolicy::Overlap,
        0.75,
        env.cfg.seed ^ 0x5E4B,
        InferenceCharge::Fixed(SimDuration::from_micros(TRACED_INFER_CHARGE_US)),
        recorder,
    );
    pythia_obs::wall::set_enabled(false);
    pythia_obs::train::set_enabled(false);
    rec.publish();

    std::fs::write(path, rec.chrome_trace_json())
        .unwrap_or_else(|e| panic!("writing trace to {path}: {e}"));
    eprintln!(
        "[pythia] wrote Perfetto trace ({} events, {} queries) to {path}",
        rec.events().len(),
        rep.queries.len()
    );
    if let Some(out) = metrics_out {
        std::fs::write(out, rec.snapshot().to_json())
            .unwrap_or_else(|e| panic!("writing metrics snapshot to {out}: {e}"));
        eprintln!("[pythia] wrote metrics snapshot to {out}");
    }
    // The endpoint (if any) stays up until the process exits; leaking the
    // handle keeps the accept thread alive without blocking shutdown.
    if let Some(srv) = metrics_server {
        std::mem::forget(srv);
    }
    rep
}

/// The serving-loop sweep: Figure 13d's overlap axis × admission mode ×
/// serving policy. The DFLT baseline is the original wave-barrier loop; the
/// Pythia variants cover wave FIFO against continuous FIFO and the §7
/// overlap scheduler under continuous admission.
pub fn run(env: &Env) -> Table {
    let mut t = Table::new(
        "Serving loop: Poisson arrivals through admission control (Fig 13d re-expressed) — T18",
        &[
            "expected overlap",
            "variant",
            "makespan speedup vs DFLT",
            "mean admission wait",
            "mean occupancy",
            "max queue depth",
        ],
    );
    let tw = env.trained_default(Template::T18);

    for &overlap in &[0.25f64, 0.5, 0.75, 1.0] {
        let seed = env.cfg.seed ^ 0x5E ^ (overlap * 100.0) as u64;
        let dflt = serve_poisson(
            env,
            Template::T18,
            None,
            AdmissionMode::Wave,
            QueuePolicy::Fifo,
            overlap,
            seed,
        );
        let variants = [
            ("pythia FIFO (wave)", AdmissionMode::Wave, QueuePolicy::Fifo),
            (
                "pythia FIFO (continuous)",
                AdmissionMode::Continuous,
                QueuePolicy::Fifo,
            ),
            (
                "pythia overlap-sched (continuous)",
                AdmissionMode::Continuous,
                QueuePolicy::Overlap,
            ),
        ];
        for (name, admission, policy) in variants {
            let rep = serve_poisson(
                env,
                Template::T18,
                Some(tw.as_ref()),
                admission,
                policy,
                overlap,
                seed,
            );
            t.row(vec![
                format!("{:.0}%", overlap * 100.0),
                name.to_string(),
                f2(dflt.makespan().as_micros() as f64 / rep.makespan().as_micros().max(1) as f64),
                rep.mean_admission_wait().to_string(),
                f2(rep.mean_occupancy()),
                rep.max_queue_depth().to_string(),
            ]);
        }
    }
    t
}

/// Wave-vs-continuous admission under a deliberately skewed request mix: the
/// template's longest-trace query plus its shortest companions, all arriving
/// at once under a tight concurrency limit. A wave barrier strands a slot
/// behind the whale; admit-on-completion backfills it. Returns the
/// comparison as a small JSON document (what `--admission-out` writes and CI
/// uploads next to the trace artifacts).
pub fn admission_snapshot(env: &Env) -> String {
    let w = env.prepare(Template::T18);
    // Sort this template's queries by trace length: one whale + minnows.
    let mut by_len: Vec<usize> = (0..w.traces.len()).collect();
    by_len.sort_by_key(|&qi| std::cmp::Reverse(w.traces[qi].events.len()));
    let whale = by_len[0];
    let minnows: Vec<usize> = by_len.iter().rev().take(5).copied().collect();

    let mut idxs = vec![whale];
    idxs.extend(&minnows);
    let requests: Vec<ServerRequest<'_>> = idxs
        .iter()
        .map(|&qi| {
            ServerRequest::new(
                &w.queries[qi].plan,
                &w.traces[qi],
                // Simultaneous arrivals: admission order is pure policy.
                SimDuration::ZERO,
            )
        })
        .collect();

    let serve = |admission: AdmissionMode| {
        let cfg = ServerConfig {
            concurrency: CONCURRENCY,
            admission,
            policy: QueuePolicy::Fifo,
            charge: InferenceCharge::Fixed(SimDuration::from_micros(TRACED_INFER_CHARGE_US)),
            prefetch_budget: None,
            tenant_quota: None,
        };
        let mut server = PrefetchServer::new(&env.bench.db, &env.run_cfg, cfg);
        server.serve(&requests)
    };
    let wave = serve(AdmissionMode::Wave);
    let cont = serve(AdmissionMode::Continuous);

    format!(
        "{{\n  \"queries\": {},\n  \"concurrency\": {},\n  \"whale_trace_pages\": {},\n  \
         \"wave_makespan_us\": {},\n  \"continuous_makespan_us\": {},\n  \
         \"wave_throughput_qps\": {:.3},\n  \"continuous_throughput_qps\": {:.3},\n  \
         \"continuous_speedup\": {:.3}\n}}\n",
        requests.len(),
        CONCURRENCY,
        w.traces[whale].events.len(),
        wave.makespan().as_micros(),
        cont.makespan().as_micros(),
        wave.throughput_qps(),
        cont.throughput_qps(),
        wave.makespan().as_micros() as f64 / cont.makespan().as_micros().max(1) as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExpConfig;

    #[test]
    fn dflt_serving_reports_admission_metrics() {
        let cfg = ExpConfig {
            scale: 0.05,
            n_queries: 12,
            test_frac: 0.25,
            ..ExpConfig::quick()
        };
        let env = Env::new(cfg);
        for admission in [AdmissionMode::Wave, AdmissionMode::Continuous] {
            // High overlap → arrivals bunch up → the concurrency limit must
            // actually queue some queries.
            let rep = serve_poisson(
                &env,
                Template::T91,
                None,
                admission,
                QueuePolicy::Fifo,
                1.0,
                7,
            );
            assert_eq!(rep.queries.len(), N_QUERIES);
            assert!(!rep.waves.is_empty());
            assert!(rep.waves.iter().all(|w| w.occupancy <= CONCURRENCY));
            assert!(
                rep.max_queue_depth() >= CONCURRENCY,
                "simultaneous arrivals must queue ({admission:?})"
            );
            assert!(rep.makespan() > SimDuration::ZERO);
            let report = rep.report();
            assert!(report.contains("admission"), "{report}");
        }
    }

    #[test]
    fn traced_serving_reconciles_and_is_deterministic() {
        let cfg = ExpConfig {
            scale: 0.05,
            n_queries: 12,
            test_frac: 0.25,
            ..ExpConfig::quick()
        };
        let env = Env::new(cfg);
        for admission in [AdmissionMode::Wave, AdmissionMode::Continuous] {
            let serve = || {
                serve_poisson_traced(
                    &env,
                    Template::T91,
                    None,
                    admission,
                    QueuePolicy::Fifo,
                    1.0,
                    7,
                )
            };
            let (rep, rec) = serve();
            // Trace counters must reconcile exactly with the report's.
            assert_eq!(rec.counter("reads.hit"), rep.stats.hits);
            assert_eq!(rec.counter("reads.os_copy"), rep.stats.os_copies);
            assert_eq!(rec.counter("reads.disk"), rep.stats.disk_reads);
            assert_eq!(rec.counter("prefetch.issued"), rep.stats.prefetch_issued);
            match admission {
                AdmissionMode::Wave => {
                    assert_eq!(rec.counter("server.waves"), rep.waves.len() as u64);
                }
                AdmissionMode::Continuous => {
                    // One admission event per query, and every admission
                    // completes.
                    assert_eq!(rec.counter("server.admitted"), rep.waves.len() as u64);
                    assert_eq!(rec.counter("server.completions"), rep.queries.len() as u64);
                }
            }
            assert_eq!(rec.counter("queries.replayed"), rep.queries.len() as u64);
            // Same seed, same env → byte-identical virtual-clock traces.
            let (_, rec2) = serve();
            assert_eq!(rec.virtual_trace_json(), rec2.virtual_trace_json());
        }
    }

    #[test]
    fn admission_snapshot_shows_continuous_at_least_as_fast() {
        let cfg = ExpConfig {
            scale: 0.05,
            n_queries: 12,
            test_frac: 0.25,
            ..ExpConfig::quick()
        };
        let env = Env::new(cfg);
        let json = admission_snapshot(&env);
        assert!(json.contains("\"wave_makespan_us\""), "{json}");
        assert!(json.contains("\"continuous_speedup\""), "{json}");
        // Deterministic inputs → deterministic snapshot.
        assert_eq!(json, admission_snapshot(&env));
        // Parse the speedup back out: continuous must not materially lose
        // to waves on a skewed mix. (The strict win under controlled skew is
        // pinned by pythia-core's
        // `continuous_admits_on_completion_and_beats_waves_under_skew`; real
        // template traces share buffer pages across queries, so the ratio
        // here gets a small tolerance instead of a hard `>= 1`.)
        let speedup: f64 = json
            .lines()
            .find(|l| l.contains("continuous_speedup"))
            .and_then(|l| l.split(':').nth(1))
            .map(|v| v.trim().trim_end_matches(','))
            .and_then(|v| v.parse().ok())
            .expect("snapshot has a parsable speedup");
        assert!(speedup > 0.9, "continuous lost badly to waves: {json}");
    }

    #[test]
    fn poisson_gaps_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        assert_eq!(
            poisson_arrivals(5, 1000.0, &mut a),
            poisson_arrivals(5, 1000.0, &mut b)
        );
        assert_eq!(poisson_arrivals(3, 0.0, &mut a), vec![SimDuration::ZERO; 3]);
    }
}
