//! # pythia-bench
//!
//! Criterion micro-benchmarks for the Pythia workspace (see `benches/`):
//!
//! * `storage` — B+Tree build/search/range, heap scans, slotted pages.
//! * `buffer` — pool lookups, eviction cycles per policy, AIO pump.
//! * `nn` — matmul kernels, transformer encoder forward, training steps.
//! * `pipeline` — plan serialization, model inference latency (the paper's
//!   "1–1.5 s per query" claim, at our scale), trace replay throughput.
//!
//! This crate's library exposes small shared fixtures.

use pythia_db::catalog::Database;
use pythia_db::exec::execute;
use pythia_db::expr::{CmpOp, Pred};
use pythia_db::plan::PlanNode;
use pythia_db::trace::Trace;
use pythia_db::types::Schema;

/// A small fact/dim pair with an index, used by several benches.
pub fn bench_db(
    rows: i64,
) -> (
    Database,
    pythia_db::catalog::TableId,
    pythia_db::catalog::ObjectId,
) {
    let mut db = Database::new();
    let fact = db.create_table("fact", Schema::ints(&["id", "day", "k"]));
    let dim = db.create_table("dim", Schema::ints(&["d_id", "attr"]));
    for i in 0..rows {
        db.insert(
            fact,
            Database::row(&[i, i / 8, (i * 13) % (rows / 4).max(1)]),
        );
    }
    for d in 0..(rows / 4).max(1) {
        db.insert(dim, Database::row(&[d, d % 9]));
    }
    let idx = db.create_index("dim_pk", dim, 0);
    (db, fact, idx)
}

/// A star-schema workload with `n_dims` dimension tables, each probed
/// through its own index by a rotating subset of queries. Every dimension
/// heap and index becomes an independent per-object model, which is what the
/// parallel-training benchmarks and `perf_snapshot` fan out over.
///
/// The fact table's per-dim key columns are clustered by `date`, so a date
/// range selects a learnable page range in each dimension (same construction
/// as the predictor unit tests' `mini_star`, widened to many objects).
pub fn star_workload(n_dims: usize, n_queries: usize) -> (Database, Vec<PlanNode>, Vec<Trace>) {
    assert!(n_dims >= 1);
    const DIM_ROWS: i64 = 600;
    let mut db = Database::new();
    let mut cols: Vec<String> = vec!["id".into(), "date".into()];
    for d in 0..n_dims {
        cols.push(format!("k{d}"));
    }
    let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
    let fact = db.create_table("fact", Schema::ints(&col_refs));
    for i in 0..2000i64 {
        let date = i / 2; // 1000 distinct dates
        let mut row = vec![i, date];
        for d in 0..n_dims {
            // Clustered key with a little jitter so labels are learnable but
            // not trivial; each dim gets a distinct phase.
            let key = (date * DIM_ROWS / 1000 + (i + d as i64) % 3).min(DIM_ROWS - 1);
            row.push(key);
        }
        db.insert(fact, Database::row(&row));
    }
    let mut dims = Vec::with_capacity(n_dims);
    for d in 0..n_dims {
        let dim = db.create_table(&format!("dim{d}"), Schema::ints(&["d_id", "attr"]));
        for r in 0..DIM_ROWS {
            db.insert(dim, Database::row(&[r, r % 9]));
        }
        let idx = db.create_index(&format!("dim{d}_pk"), dim, 0);
        dims.push((dim, idx));
    }

    let mut plans = Vec::with_capacity(n_queries);
    let mut traces = Vec::with_capacity(n_queries);
    for q in 0..n_queries {
        let d = q % n_dims;
        let lo = ((q as i64) * 31) % 900;
        let hi = lo + 60;
        let (dim, idx) = dims[d];
        let plan = PlanNode::IndexNLJoin {
            outer: Box::new(PlanNode::SeqScan {
                table: fact,
                pred: Some(Pred::Between { col: 1, lo, hi }),
            }),
            outer_key: 2 + d,
            inner: dim,
            inner_index: idx,
            inner_pred: Some(Pred::Cmp {
                col: 1,
                op: CmpOp::Ge,
                lit: 0,
            }),
        };
        let (_, trace) = execute(&plan, &db);
        plans.push(plan);
        traces.push(trace);
    }
    (db, plans, traces)
}
