//! # pythia-bench
//!
//! Criterion micro-benchmarks for the Pythia workspace (see `benches/`):
//!
//! * `storage` — B+Tree build/search/range, heap scans, slotted pages.
//! * `buffer` — pool lookups, eviction cycles per policy, AIO pump.
//! * `nn` — matmul kernels, transformer encoder forward, training steps.
//! * `pipeline` — plan serialization, model inference latency (the paper's
//!   "1–1.5 s per query" claim, at our scale), trace replay throughput.
//!
//! This crate's library exposes small shared fixtures.

use pythia_db::catalog::Database;
use pythia_db::types::Schema;

/// A small fact/dim pair with an index, used by several benches.
pub fn bench_db(rows: i64) -> (Database, pythia_db::catalog::TableId, pythia_db::catalog::ObjectId) {
    let mut db = Database::new();
    let fact = db.create_table("fact", Schema::ints(&["id", "day", "k"]));
    let dim = db.create_table("dim", Schema::ints(&["d_id", "attr"]));
    for i in 0..rows {
        db.insert(fact, Database::row(&[i, i / 8, (i * 13) % (rows / 4).max(1)]));
    }
    for d in 0..(rows / 4).max(1) {
        db.insert(dim, Database::row(&[d, d % 9]));
    }
    let idx = db.create_index("dim_pk", dim, 0);
    (db, fact, idx)
}
