//! Performance snapshot for the parallel model fleet.
//!
//! Trains a multi-dimension star workload twice — once pinned to a single
//! worker thread, once on the configured pool — verifies the two runs are
//! bit-identical, and records wall-clock numbers to `BENCH_nn.json` at the
//! repository root. A final section serves the workload with and without a
//! trace recorder installed and records the observability overhead plus the
//! traced run's metrics snapshot.
//!
//! ```text
//! cargo run --release -p pythia-bench --bin perf_snapshot
//! ```
//!
//! `PYTHIA_THREADS` bounds the pool; the snapshot reports the count it used.

use std::cell::Cell;
use std::sync::Arc;
use std::time::Instant;

use pythia_bench::star_workload;
use pythia_core::config::PythiaConfig;
use pythia_core::predictor::{train_workload, TrainedWorkload};
use pythia_core::registry::TenantFleet;
use pythia_core::server::{
    AdmissionMode, InferenceCharge, PrefetchServer, QueuePolicy, ServerConfig, ServerRequest,
};
use pythia_db::runtime::RunConfig;
use pythia_db::trace::Trace;
use pythia_nn::init::Initializer;
use pythia_nn::kernels::{detected_isa_label, set_simd_override, SimdOverride};
use pythia_nn::pool::{configured_threads, set_thread_override};
use pythia_nn::Tensor;
use pythia_sim::SimDuration;

const N_DIMS: usize = 4;
const N_QUERIES: usize = 48;
const INFER_REPS: usize = 4;
/// Repetitions of the traced/untraced serving comparison (best-of wins, so
/// one noisy rep doesn't fake an observability regression).
const OBS_REPS: usize = 3;

/// GEMM kernel section: scalar vs dispatched GFLOP/s on one thread at two
/// representative shapes, with a bit-identity cross-check between the arms.
struct KernelReport {
    isa: &'static str,
    scalar_256_gflops: f64,
    dispatched_256_gflops: f64,
    scalar_decoder_gflops: f64,
    dispatched_decoder_gflops: f64,
}

fn kernel_snapshot() -> KernelReport {
    /// Best-of-`reps` GFLOP/s for `a.matmul(&b)` under the current override.
    fn gflops(a: &Tensor, b: &Tensor, reps: usize) -> f64 {
        let mut best = f64::INFINITY;
        let _ = a.matmul(b); // warmup
        for _ in 0..reps {
            let t0 = Instant::now();
            let out = a.matmul(b);
            best = best.min(t0.elapsed().as_secs_f64());
            std::hint::black_box(out);
        }
        let (m, k) = a.shape();
        2.0 * m as f64 * k as f64 * b.cols() as f64 / best / 1e9
    }

    // Pin to one thread so the numbers are kernel throughput, not banding.
    set_thread_override(1);
    let a256 = Initializer::new(21).uniform(256, 256, 1.0);
    let b256 = Initializer::new(22).uniform(256, 256, 1.0);
    let adec = Initializer::new(23).uniform(32, 800, 1.0);
    let bdec = Initializer::new(24).uniform(800, 2000, 1.0);

    set_simd_override(SimdOverride::ForceScalar);
    let scalar_out = a256.matmul(&b256);
    let scalar_256 = gflops(&a256, &b256, 20);
    let scalar_dec = gflops(&adec, &bdec, 10);
    set_simd_override(SimdOverride::ForceDetect);
    assert_eq!(
        a256.matmul(&b256),
        scalar_out,
        "dispatched kernel diverged from forced-scalar"
    );
    let disp_256 = gflops(&a256, &b256, 20);
    let disp_dec = gflops(&adec, &bdec, 10);
    set_simd_override(SimdOverride::Env);
    set_thread_override(0);

    KernelReport {
        isa: detected_isa_label(),
        scalar_256_gflops: scalar_256,
        dispatched_256_gflops: disp_256,
        scalar_decoder_gflops: scalar_dec,
        dispatched_decoder_gflops: disp_dec,
    }
}

fn main() {
    let suite_t0 = Instant::now();
    let threads = configured_threads();

    // --- GEMM kernels: scalar vs dispatched ------------------------------
    let kernels = kernel_snapshot();
    eprintln!(
        "[perf_snapshot] kernels ({}): 256^3 scalar {:.2} vs dispatched {:.2} GFLOP/s, \
         decoder 32x800x2000 scalar {:.2} vs dispatched {:.2} GFLOP/s",
        kernels.isa,
        kernels.scalar_256_gflops,
        kernels.dispatched_256_gflops,
        kernels.scalar_decoder_gflops,
        kernels.dispatched_decoder_gflops,
    );
    eprintln!("[perf_snapshot] building {N_DIMS}-dim star workload ({N_QUERIES} queries)...");
    let (db, plans, traces) = star_workload(N_DIMS, N_QUERIES);
    let cfg = PythiaConfig {
        epochs: 12,
        batch_size: 8,
        lr: 5e-3,
        ..PythiaConfig::fast()
    };

    // --- training: serial vs pooled -------------------------------------
    set_thread_override(1);
    let t0 = Instant::now();
    let tw_serial = train_workload(&db, "snapshot", &plans, &traces, None, &cfg);
    let train_serial_s = t0.elapsed().as_secs_f64();
    eprintln!(
        "[perf_snapshot] serial train: {train_serial_s:.2}s ({} models)",
        tw_serial.models.len()
    );

    set_thread_override(0);
    let t0 = Instant::now();
    let tw_parallel = train_workload(&db, "snapshot", &plans, &traces, None, &cfg);
    let train_parallel_s = t0.elapsed().as_secs_f64();
    eprintln!("[perf_snapshot] pooled train ({threads} threads): {train_parallel_s:.2}s");

    // Determinism check: the pooled run must reproduce the serial run bit
    // for bit (weights, vocab, binner — everything that serializes).
    let a = serde_json::to_string(&tw_serial).expect("serialize serial model");
    let b = serde_json::to_string(&tw_parallel).expect("serialize parallel model");
    let bit_identical = a == b;
    assert!(
        bit_identical,
        "pooled training diverged from the serial run"
    );
    eprintln!("[perf_snapshot] serial and pooled runs are bit-identical");

    // --- inference: serial vs pooled ------------------------------------
    // Prewarm the plan-encoding cache so both timings measure model forward
    // passes, not first-touch serialization.
    for p in &plans {
        let _ = tw_parallel.infer(&db, p);
    }
    set_thread_override(1);
    let infer_serial_ms = time_infer(&tw_parallel, &db, &plans);
    set_thread_override(0);
    let infer_parallel_ms = time_infer(&tw_parallel, &db, &plans);
    eprintln!(
        "[perf_snapshot] infer: serial {infer_serial_ms:.2} ms/query, \
         pooled {infer_parallel_ms:.2} ms/query"
    );

    // --- batched inference: whole workload through one forward sweep ------
    // Correctness first (batched must equal serial bit for bit), then the
    // amortized per-query latency of the batched path on the pool.
    let plan_refs: Vec<&pythia_db::plan::PlanNode> = plans.iter().collect();
    let batched = tw_parallel.infer_batch(&db, &plan_refs);
    for (q, p) in plans.iter().enumerate() {
        assert_eq!(
            batched[q].pages,
            tw_parallel.infer(&db, p).pages,
            "batched inference diverged from serial on query {q}"
        );
    }
    let infer_batched_ms = time_infer_batched(&tw_parallel, &db, &plan_refs);
    eprintln!(
        "[perf_snapshot] batched infer (batch {}): {infer_batched_ms:.2} ms/query \
         ({:.2}x vs per-query pooled)",
        plans.len(),
        infer_parallel_ms / infer_batched_ms
    );

    // --- serving loop: the whole workload through admission control -------
    // Staggered arrivals at a fixed cadence; concurrency-4 waves with
    // per-wave batched inference. The virtual throughput is deterministic;
    // the wall clock measures the serving loop's host-side overhead
    // (inference + replay bookkeeping).
    let server_cfg = ServerConfig {
        concurrency: 4,
        // Wave mode keeps this section's numbers comparable with earlier
        // snapshots; the admission-mode comparison has its own section.
        admission: AdmissionMode::Wave,
        policy: QueuePolicy::Fifo,
        charge: InferenceCharge::Measured,
        prefetch_budget: None,
        tenant_quota: None,
    };
    let requests: Vec<ServerRequest<'_>> = plans
        .iter()
        .zip(&traces)
        .enumerate()
        .map(|(i, (plan, trace))| {
            ServerRequest::new(plan, trace, SimDuration::from_micros(i as u64 * 200))
        })
        .collect();
    let mut server =
        PrefetchServer::new(&db, &RunConfig::default(), server_cfg).with_predictor(&tw_parallel);
    let t0 = Instant::now();
    let report = server.serve(&requests);
    let server_wall_s = t0.elapsed().as_secs_f64();
    let server_qps = report.throughput_qps();
    eprintln!(
        "[perf_snapshot] serving loop: {} queries in {} waves, {:.1} q/s virtual \
         (mean wait {}, wall {server_wall_s:.2}s)",
        report.queries.len(),
        report.waves.len(),
        server_qps,
        report.mean_admission_wait()
    );

    // --- admission modes: wave barrier vs admit-on-completion -------------
    // A deliberately skewed request mix — one "whale" (the longest trace,
    // repeated to dominate) plus short companions, all arriving at once
    // under a tight concurrency limit. The wave barrier strands a slot
    // behind the whale; continuous admission backfills it, so its virtual
    // throughput should come out at least as high. Fixed inference charge
    // and no predictor keep both runs fully deterministic.
    let mut by_len: Vec<usize> = (0..traces.len()).collect();
    by_len.sort_by_key(|&q| std::cmp::Reverse(traces[q].events.len()));
    let whale = Trace {
        events: std::iter::repeat(traces[by_len[0]].events.clone())
            .take(8)
            .flatten()
            .collect(),
    };
    let minnow_idxs: Vec<usize> = by_len.iter().rev().take(6).copied().collect();
    let mut skew_requests = vec![ServerRequest::new(
        &plans[by_len[0]],
        &whale,
        SimDuration::ZERO,
    )];
    skew_requests.extend(
        minnow_idxs
            .iter()
            .map(|&q| ServerRequest::new(&plans[q], &traces[q], SimDuration::ZERO)),
    );
    let serve_mode = |admission: AdmissionMode| {
        let cfg = ServerConfig {
            concurrency: 2,
            admission,
            policy: QueuePolicy::Fifo,
            charge: InferenceCharge::Fixed(SimDuration::from_micros(150)),
            prefetch_budget: None,
            tenant_quota: None,
        };
        let mut server = PrefetchServer::new(&db, &RunConfig::default(), cfg);
        server.serve(&skew_requests)
    };
    let wave_rep = serve_mode(AdmissionMode::Wave);
    let cont_rep = serve_mode(AdmissionMode::Continuous);
    let cont_speedup =
        wave_rep.makespan().as_micros() as f64 / cont_rep.makespan().as_micros().max(1) as f64;
    eprintln!(
        "[perf_snapshot] admission (skewed mix, C=2): wave {} vs continuous {} makespan \
         ({:.2}x, {:.1} vs {:.1} q/s)",
        wave_rep.makespan(),
        cont_rep.makespan(),
        cont_speedup,
        wave_rep.throughput_qps(),
        cont_rep.throughput_qps(),
    );

    // --- observability overhead: traced vs untraced serving ---------------
    // Same requests on both sides, fixed inference charge so the comparison
    // is not polluted by NN wall-time variance. The disabled recorder is the
    // default (one predictable branch per event site), so the untraced run
    // here is the production configuration.
    let obs_cfg = ServerConfig {
        charge: InferenceCharge::Fixed(SimDuration::from_micros(150)),
        ..server_cfg
    };
    let serve_wall = |traced: bool| -> (f64, pythia_obs::Recorder) {
        let mut best = f64::INFINITY;
        let mut rec = pythia_obs::Recorder::disabled();
        for _ in 0..OBS_REPS {
            let mut server = PrefetchServer::new(&db, &RunConfig::default(), obs_cfg)
                .with_predictor(&tw_parallel);
            if traced {
                server.set_recorder(pythia_obs::Recorder::enabled());
                pythia_obs::wall::drain();
                pythia_obs::wall::set_enabled(true);
            }
            let t0 = Instant::now();
            let rep = server.serve(&requests);
            best = best.min(t0.elapsed().as_secs_f64());
            std::hint::black_box(rep.queries.len());
            rec = server.take_recorder();
            if traced {
                pythia_obs::wall::set_enabled(false);
                rec.absorb_wall_tasks(pythia_obs::wall::drain());
            }
        }
        (best, rec)
    };
    let (obs_off_s, _) = serve_wall(false);
    let (obs_on_s, traced_rec) = serve_wall(true);
    let obs_overhead_pct = (obs_on_s - obs_off_s) / obs_off_s * 100.0;
    eprintln!(
        "[perf_snapshot] obs overhead: untraced {obs_off_s:.3}s, traced {obs_on_s:.3}s \
         ({obs_overhead_pct:+.1}%, {} events)",
        traced_rec.events().len()
    );

    // --- flight recorder: always-on ring cost on the untraced path ---------
    // The production default serves with trace export off but with every
    // event site still mirroring into the fixed-size flight ring. Compare
    // that default against a zero-capacity ring (mirroring short-circuits)
    // to price the always-on postmortem buffer, and time rendering the
    // retained tail into a postmortem dump.
    let serve_flight = |capacity: usize| -> (f64, pythia_obs::Recorder) {
        let mut best = f64::INFINITY;
        let mut rec = pythia_obs::Recorder::disabled();
        for _ in 0..OBS_REPS {
            let mut r = pythia_obs::Recorder::disabled();
            r.set_flight_capacity(capacity);
            let mut server = PrefetchServer::new(&db, &RunConfig::default(), obs_cfg)
                .with_predictor(&tw_parallel);
            server.set_recorder(r);
            let t0 = Instant::now();
            let rep = server.serve(&requests);
            best = best.min(t0.elapsed().as_secs_f64());
            std::hint::black_box(rep.queries.len());
            rec = server.take_recorder();
        }
        (best, rec)
    };
    let (flight_off_s, _) = serve_flight(0);
    let (flight_on_s, flight_rec) = serve_flight(pythia_obs::flight::DEFAULT_CAPACITY);
    let flight_overhead_pct = (flight_on_s - flight_off_s) / flight_off_s * 100.0;
    let flight_ring_events = flight_rec.flight().len();
    let t0 = Instant::now();
    let flight_dump = flight_rec.flight_dump_json();
    let flight_dump_render_ms = t0.elapsed().as_secs_f64() * 1e3;
    std::hint::black_box(flight_dump.len());
    eprintln!(
        "[perf_snapshot] flight recorder: ring-off {flight_off_s:.3}s, ring-on \
         {flight_on_s:.3}s ({flight_overhead_pct:+.1}%, {flight_ring_events} events retained, \
         dump render {flight_dump_render_ms:.2} ms)"
    );

    // --- request tracing: span volume on the traced run --------------------
    // The traced serve above already emitted the per-request span trees;
    // record their volume so trace-size regressions show up in the diff of
    // successive snapshots.
    let request_spans = traced_rec
        .events()
        .iter()
        .filter(|e| e.name.starts_with("request.") && e.name != "request.flow")
        .count();
    let request_flows = traced_rec.event_count("request.flow");
    eprintln!(
        "[perf_snapshot] request tracing: {request_spans} request.* spans + \
         {request_flows} flow endpoints across {} queries",
        report.queries.len()
    );

    // --- quality telemetry: tracked vs untracked continuous serving --------
    // The streaming QualityTracker only feeds on the continuous-admission
    // path (per-admission interval diffs), so the comparison runs there:
    // untracked (production default — quality disabled) against the same
    // stream with a tracker attached. Both sides keep the recorder disabled,
    // isolating the tracker's own cost from trace-event recording.
    let quality_cfg = ServerConfig {
        admission: AdmissionMode::Continuous,
        ..obs_cfg
    };
    let serve_quality = |tracked: bool| -> (f64, u64, u64) {
        let mut best = f64::INFINITY;
        let mut outcomes = 0u64;
        let mut alerts = 0u64;
        for _ in 0..OBS_REPS {
            let tracker = tracked.then(|| {
                Arc::new(std::sync::Mutex::new(
                    pythia_obs::quality::QualityTracker::default(),
                ))
            });
            let mut server = PrefetchServer::new(&db, &RunConfig::default(), quality_cfg)
                .with_predictor(&tw_parallel);
            if let Some(t) = &tracker {
                server = server.with_quality(Arc::clone(t));
            }
            let t0 = Instant::now();
            let rep = server.serve(&requests);
            best = best.min(t0.elapsed().as_secs_f64());
            std::hint::black_box(rep.queries.len());
            if let Some(t) = tracker {
                let q = t.lock().expect("tracker poisoned");
                outcomes = q.global_lifetime().outcomes;
                alerts = q.total_alerts();
            }
        }
        (best, outcomes, alerts)
    };
    let (quality_off_s, _, _) = serve_quality(false);
    let (quality_on_s, quality_outcomes, quality_alerts) = serve_quality(true);
    let quality_overhead_pct = (quality_on_s - quality_off_s) / quality_off_s * 100.0;
    let quality_ns_per_outcome =
        ((quality_on_s - quality_off_s).max(0.0) * 1e9) / quality_outcomes.max(1) as f64;
    eprintln!(
        "[perf_snapshot] quality telemetry: untracked {quality_off_s:.3}s, tracked \
         {quality_on_s:.3}s ({quality_overhead_pct:+.1}%, {quality_ns_per_outcome:.0} ns/outcome \
         over {quality_outcomes} outcomes, {quality_alerts} alerts)"
    );

    // --- model registry: publish latency + serving through a hot swap ------
    // How long installing a retrained model takes (atomic Arc swap under a
    // brief write lock), and proof that a mid-stream swap to a bit-identical
    // model leaves the serving schedule untouched while queries keep being
    // answered throughout.
    let mut publish_best = f64::INFINITY;
    {
        let fleet = Arc::new(TenantFleet::new("bench"));
        for _ in 0..OBS_REPS {
            let dup = tw_parallel.duplicate();
            let t0 = Instant::now();
            fleet.publish(dup);
            publish_best = publish_best.min(t0.elapsed().as_secs_f64());
        }
    }

    const SWAP_AT: usize = 2;
    let base_fleet = Arc::new(TenantFleet::new("bench"));
    base_fleet.publish(tw_parallel.duplicate());
    let mut base_srv =
        PrefetchServer::new(&db, &RunConfig::default(), obs_cfg).with_registry(base_fleet);
    let base_rep = base_srv.serve(&requests);

    let swap_fleet = Arc::new(TenantFleet::new("bench"));
    swap_fleet.publish(tw_parallel.duplicate());
    let swap_latency = Cell::new(0.0f64);
    let spare = tw_parallel.duplicate();
    let hook_fleet = Arc::clone(&swap_fleet);
    let mut swap_srv = PrefetchServer::new(&db, &RunConfig::default(), obs_cfg)
        .with_registry(Arc::clone(&swap_fleet));
    swap_srv.set_admission_hook(|k| {
        if k == SWAP_AT {
            let dup = spare.duplicate();
            let t0 = Instant::now();
            hook_fleet.publish(dup);
            swap_latency.set(t0.elapsed().as_secs_f64());
        }
    });
    let swap_rep = swap_srv.serve(&requests);
    assert_eq!(
        swap_fleet.current("snapshot").expect("published").version,
        2,
        "the mid-stream publish must have landed"
    );
    for (i, (a, b)) in base_rep.queries.iter().zip(&swap_rep.queries).enumerate() {
        assert_eq!(
            (a.start, a.end, a.inference),
            (b.start, b.end, b.inference),
            "hot swap changed the schedule of query {i}"
        );
    }
    assert_eq!(
        base_rep.stats, swap_rep.stats,
        "hot swap changed the buffer counters"
    );
    let registry_swap_predictions = swap_rep
        .queries
        .iter()
        .filter(|q| q.wave >= SWAP_AT)
        .count();
    eprintln!(
        "[perf_snapshot] registry: publish {:.1} us, in-serve swap {:.1} us, \
         {registry_swap_predictions}/{} queries served on the swapped model, bit-identical",
        publish_best * 1e6,
        swap_latency.get() * 1e6,
        swap_rep.queries.len(),
    );

    let suite_wall_s = suite_t0.elapsed().as_secs_f64();
    let obs_metrics: serde_json::Value = serde_json::from_str(&traced_rec.snapshot().to_json())
        .expect("recorder snapshot is valid JSON");
    let out = serde_json::json!({
        "generated_by": "cargo run --release -p pythia-bench --bin perf_snapshot",
        "threads": threads,
        "n_dims": N_DIMS,
        "n_queries": N_QUERIES,
        "train_serial_s": round3(train_serial_s),
        "train_parallel_s": round3(train_parallel_s),
        "train_speedup": round3(train_serial_s / train_parallel_s),
        "infer_serial_ms_per_query": round3(infer_serial_ms),
        "infer_parallel_ms_per_query": round3(infer_parallel_ms),
        "infer_speedup": round3(infer_serial_ms / infer_parallel_ms),
        "infer_batched_ms_per_query": round3(infer_batched_ms),
        "infer_batched_speedup_vs_serial": round3(infer_serial_ms / infer_batched_ms),
        "infer_batch_size": N_QUERIES,
        "bit_identical": bit_identical,
        "kernel_isa": kernels.isa,
        "kernel_scalar_256_gflops": round3(kernels.scalar_256_gflops),
        "kernel_dispatched_256_gflops": round3(kernels.dispatched_256_gflops),
        "kernel_scalar_decoder_gflops": round3(kernels.scalar_decoder_gflops),
        "kernel_dispatched_decoder_gflops": round3(kernels.dispatched_decoder_gflops),
        "kernel_speedup_256": round3(kernels.dispatched_256_gflops / kernels.scalar_256_gflops),
        "kernel_speedup_decoder": round3(
            kernels.dispatched_decoder_gflops / kernels.scalar_decoder_gflops
        ),
        "server_queries": report.queries.len(),
        "server_waves": report.waves.len(),
        "server_throughput_qps": round3(server_qps),
        "server_mean_admission_wait_us": report.mean_admission_wait().as_micros(),
        "server_wall_s": round3(server_wall_s),
        "server_skew_queries": skew_requests.len(),
        "server_skew_wave_makespan_us": wave_rep.makespan().as_micros(),
        "server_continuous_makespan_us": cont_rep.makespan().as_micros(),
        "server_skew_wave_throughput_qps": round3(wave_rep.throughput_qps()),
        "server_continuous_throughput_qps": round3(cont_rep.throughput_qps()),
        "server_continuous_speedup": round3(cont_speedup),
        "server_continuous_mean_admission_wait_us":
            cont_rep.mean_admission_wait().as_micros(),
        "obs_serve_untraced_s": round3(obs_off_s),
        "obs_serve_traced_s": round3(obs_on_s),
        "obs_overhead_pct": round3(obs_overhead_pct),
        "obs_trace_events": traced_rec.events().len(),
        "obs_metrics": obs_metrics,
        "obs_flight_serve_ring_off_s": round3(flight_off_s),
        "obs_flight_serve_ring_on_s": round3(flight_on_s),
        "obs_flight_overhead_pct": round3(flight_overhead_pct),
        "obs_flight_ring_events": flight_ring_events,
        "obs_flight_dump_render_ms": round3(flight_dump_render_ms),
        "obs_request_spans_traced": request_spans,
        "obs_request_flow_events": request_flows,
        "obs_quality_serve_untracked_s": round3(quality_off_s),
        "obs_quality_serve_tracked_s": round3(quality_on_s),
        "obs_quality_overhead_pct": round3(quality_overhead_pct),
        "obs_quality_ns_per_outcome": round3(quality_ns_per_outcome),
        "obs_quality_outcomes": quality_outcomes,
        "obs_quality_alerts": quality_alerts,
        "registry_swap_publish_us": round3(publish_best * 1e6),
        "registry_swap_latency_us": round3(swap_latency.get() * 1e6),
        "registry_swap_predictions_during_swap": registry_swap_predictions,
        "registry_swap_total_queries": swap_rep.queries.len(),
        "registry_swap_bit_identical": true,
        "suite_wall_s": round3(suite_wall_s),
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_nn.json");
    std::fs::write(
        path,
        format!("{}\n", serde_json::to_string_pretty(&out).unwrap()),
    )
    .expect("write BENCH_nn.json");
    eprintln!(
        "[perf_snapshot] wrote {path} (train speedup {:.2}x, suite {:.1}s)",
        train_serial_s / train_parallel_s,
        suite_wall_s
    );
}

/// Mean milliseconds per `infer` call over `INFER_REPS` passes of the plans.
fn time_infer(
    tw: &TrainedWorkload,
    db: &pythia_db::catalog::Database,
    plans: &[pythia_db::plan::PlanNode],
) -> f64 {
    let t0 = Instant::now();
    let mut total_pages = 0usize;
    for _ in 0..INFER_REPS {
        for p in plans {
            total_pages += tw.infer(db, p).len();
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    std::hint::black_box(total_pages);
    elapsed * 1e3 / (INFER_REPS * plans.len()) as f64
}

/// Amortized milliseconds per query of `infer_batch` over the whole plan set.
fn time_infer_batched(
    tw: &TrainedWorkload,
    db: &pythia_db::catalog::Database,
    plans: &[&pythia_db::plan::PlanNode],
) -> f64 {
    let t0 = Instant::now();
    let mut total_pages = 0usize;
    for _ in 0..INFER_REPS {
        total_pages += tw
            .infer_batch(db, plans)
            .iter()
            .map(|p| p.len())
            .sum::<usize>();
    }
    let elapsed = t0.elapsed().as_secs_f64();
    std::hint::black_box(total_pages);
    elapsed * 1e3 / (INFER_REPS * plans.len()) as f64
}

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}
