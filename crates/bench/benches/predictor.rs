//! Model-fleet benchmarks: per-object training fan-out and batched inference
//! on the shared worker pool, serial (one thread) vs pooled, over the
//! multi-dimension star fixture. Pairs with the `perf_snapshot` binary, which
//! records the same comparison to `BENCH_nn.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pythia_bench::star_workload;
use pythia_core::{train_workload, PythiaConfig};
use pythia_nn::pool::set_thread_override;

fn bench_cfg() -> PythiaConfig {
    PythiaConfig {
        epochs: 2,
        batch_size: 8,
        lr: 5e-3,
        ..PythiaConfig::fast()
    }
}

fn training(c: &mut Criterion) {
    let (db, plans, traces) = star_workload(4, 24);
    let cfg = bench_cfg();
    c.bench_function("predictor/train_workload_serial", |b| {
        set_thread_override(1);
        b.iter(|| black_box(train_workload(&db, "bench", &plans, &traces, None, &cfg)));
        set_thread_override(0);
    });
    c.bench_function("predictor/train_workload_pooled", |b| {
        b.iter(|| black_box(train_workload(&db, "bench", &plans, &traces, None, &cfg)))
    });
}

fn inference(c: &mut Criterion) {
    let (db, plans, traces) = star_workload(4, 24);
    let tw = train_workload(&db, "bench", &plans, &traces, None, &bench_cfg());
    let test = &plans[0];
    // Prewarm the plan-encoding memo so iterations measure model forwards.
    let _ = tw.infer(&db, test);
    c.bench_function("predictor/infer_all_models_serial", |b| {
        set_thread_override(1);
        b.iter(|| black_box(tw.infer(&db, test)));
        set_thread_override(0);
    });
    c.bench_function("predictor/infer_all_models_pooled", |b| {
        b.iter(|| black_box(tw.infer(&db, test)))
    });
}

/// Serial per-query loop vs one batched forward over the same plan set —
/// the tradeoff `pythia_prefetch_batch` and the suite harness rely on.
fn batched_inference(c: &mut Criterion) {
    let (db, plans, traces) = star_workload(4, 24);
    let tw = train_workload(&db, "bench", &plans, &traces, None, &bench_cfg());
    let refs: Vec<&pythia_db::plan::PlanNode> = plans.iter().collect();
    // Prewarm the plan-encoding memo so iterations measure model forwards.
    let _ = tw.infer_batch(&db, &refs);
    c.bench_function("predictor/infer_24_queries_one_by_one", |b| {
        b.iter(|| {
            for p in &plans {
                black_box(tw.infer(&db, p));
            }
        })
    });
    c.bench_function("predictor/infer_24_queries_batched", |b| {
        b.iter(|| black_box(tw.infer_batch(&db, &refs)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = training, inference, batched_inference
}
criterion_main!(benches);
