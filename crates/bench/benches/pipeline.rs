//! Pipeline benchmarks: plan serialization, full-model inference latency
//! (the paper's "within 1.5 seconds per query" practicality claim, §5.5),
//! and trace-replay throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pythia_core::{serialize_plan, train_workload, PythiaConfig, ValueBinner};
use pythia_db::runtime::{QueryRun, RunConfig, Runtime};
use pythia_workloads::templates::{sample_workload, Template};
use pythia_workloads::{build_benchmark, GeneratorConfig};

fn serialization(c: &mut Criterion) {
    let bench = build_benchmark(&GeneratorConfig {
        scale: 0.05,
        seed: 1,
    });
    let binner = ValueBinner::from_database(&bench.db);
    let q = sample_workload(&bench, Template::T18, 1, 2).remove(0);
    c.bench_function("pipeline/serialize_t18_plan", |b| {
        b.iter(|| black_box(serialize_plan(&bench.db, &binner, &q.plan)))
    });
}

fn inference_latency(c: &mut Criterion) {
    // Train a small-but-real model set once, then measure per-query
    // inference (all object models) — the number the paper reports as
    // 1–1.5 s on their hardware / page counts.
    let bench = build_benchmark(&GeneratorConfig {
        scale: 0.05,
        seed: 1,
    });
    let queries = sample_workload(&bench, Template::T91, 24, 3);
    let traces: Vec<_> = queries
        .iter()
        .map(|q| pythia_db::exec::execute(&q.plan, &bench.db).1)
        .collect();
    let cfg = PythiaConfig {
        epochs: 2,
        ..PythiaConfig::fast()
    };
    let plans: Vec<_> = queries.iter().map(|q| q.plan.clone()).collect();
    let tw = train_workload(&bench.db, "t91", &plans, &traces, None, &cfg);
    let test = &plans[0];
    c.bench_function("pipeline/pythia_inference_all_models", |b| {
        b.iter(|| black_box(tw.infer(&bench.db, test)))
    });
}

fn replay_throughput(c: &mut Criterion) {
    let bench = build_benchmark(&GeneratorConfig {
        scale: 0.05,
        seed: 1,
    });
    let q = sample_workload(&bench, Template::T18, 1, 9).remove(0);
    let (_, trace) = pythia_db::exec::execute(&q.plan, &bench.db);
    let cfg = RunConfig::default();
    let lens = bench.db.file_lengths();
    c.bench_function("pipeline/replay_t18_trace", |b| {
        b.iter(|| {
            let mut rt = Runtime::new(&cfg, lens.clone());
            black_box(rt.run(&[QueryRun::default_run(&trace)]).timings[0].elapsed())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = serialization, inference_latency, replay_throughput
}
criterion_main!(benches);
