//! Buffer-manager micro-benchmarks: lookup/hit path, eviction cycles per
//! replacement policy, and AIO prefetch pump throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pythia_buffer::{AioPrefetcher, BufferPool, PolicyKind};
use pythia_sim::{CostModel, FileId, IoWorkerPool, OsPageCache, PageId, SimTime};

fn pid(p: u32) -> PageId {
    PageId::new(FileId(0), p)
}

fn hit_path(c: &mut Criterion) {
    let mut pool = BufferPool::new(1024, PolicyKind::Clock);
    for p in 0..1024 {
        pool.load(pid(p), false, SimTime::ZERO).unwrap();
    }
    let mut p = 0u32;
    c.bench_function("buffer/lookup_and_touch", |b| {
        b.iter(|| {
            p = (p + 631) % 1024;
            let fid = pool.lookup(pid(p)).unwrap();
            pool.touch(fid);
            black_box(fid)
        })
    });
}

fn eviction_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("buffer/eviction_cycle");
    for policy in PolicyKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(policy),
            &policy,
            |b, &policy| {
                let mut pool = BufferPool::new(256, policy);
                let mut p = 0u32;
                b.iter(|| {
                    p += 1; // always a fresh page: forces an eviction when full
                    black_box(pool.load(pid(p), false, SimTime::ZERO))
                })
            },
        );
    }
    group.finish();
}

fn aio_pump(c: &mut Criterion) {
    c.bench_function("buffer/aio_prefetch_1k_pages", |b| {
        b.iter(|| {
            let mut pool = BufferPool::new(2048, PolicyKind::Clock);
            let mut os = OsPageCache::new(4096, 32);
            let mut io = IoWorkerPool::new(8);
            let cost = CostModel::default();
            let mut aio = AioPrefetcher::new(256);
            aio.start(
                (0..1000).map(pid),
                &mut pool,
                &mut os,
                &mut io,
                &cost,
                SimTime::ZERO,
            );
            let mut now = SimTime::ZERO;
            for _ in 0..1000 {
                now = now + pythia_sim::SimDuration::from_micros(100);
                aio.on_query_read(&mut pool, &mut os, &mut io, &cost, now);
            }
            aio.finish(&mut pool);
            black_box(pool.stats().prefetch_issued)
        })
    });
}

criterion_group!(benches, hit_path, eviction_cycle, aio_pump);
criterion_main!(benches);
