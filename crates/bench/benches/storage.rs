//! Storage-substrate micro-benchmarks: B+Tree build/probe/range and heap
//! scans. These bound how fast trace collection (the paper's training-data
//! step) can run.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use pythia_db::btree::BTree;
use pythia_db::heap::{HeapFile, RecordId};
use pythia_db::types::Datum;
use pythia_sim::SimDisk;

fn btree_build(c: &mut Criterion) {
    let entries: Vec<(i64, RecordId)> = (0..100_000)
        .map(|i| {
            (
                (i * 7919) % 100_000,
                RecordId {
                    page_no: i as u32,
                    slot: 0,
                },
            )
        })
        .collect();
    c.bench_function("btree/bulk_build_100k", |b| {
        b.iter_batched(
            || (SimDisk::new(), entries.clone()),
            |(mut disk, e)| black_box(BTree::bulk_build(&mut disk, e)),
            BatchSize::LargeInput,
        )
    });
}

fn btree_probe(c: &mut Criterion) {
    let mut disk = SimDisk::new();
    let entries: Vec<(i64, RecordId)> = (0..100_000)
        .map(|i| {
            (
                i,
                RecordId {
                    page_no: i as u32,
                    slot: 0,
                },
            )
        })
        .collect();
    let tree = BTree::bulk_build(&mut disk, entries);
    let mut k = 0i64;
    c.bench_function("btree/point_search", |b| {
        b.iter(|| {
            k = (k + 37_633) % 100_000;
            black_box(tree.search(&disk, k, &mut |_, _| {}))
        })
    });
    c.bench_function("btree/range_1000", |b| {
        b.iter(|| {
            k = (k + 37_633) % 99_000;
            black_box(tree.range(&disk, k, k + 999, &mut |_, _| {}))
        })
    });
}

fn heap_ops(c: &mut Criterion) {
    let mut disk = SimDisk::new();
    let mut heap = HeapFile::create(&mut disk);
    for i in 0..50_000i64 {
        heap.insert(&mut disk, &[Datum::Int(i), Datum::Int(i % 97)]);
    }
    c.bench_function("heap/full_scan_50k", |b| {
        b.iter(|| black_box(heap.scan(&disk).count()))
    });
    let mut i = 0u32;
    let pages = heap.page_count(&disk);
    c.bench_function("heap/page_read", |b| {
        b.iter(|| {
            i = (i + 131) % pages;
            black_box(heap.read_page(&disk, i))
        })
    });
}

criterion_group!(benches, btree_build, btree_probe, heap_ops);
criterion_main!(benches);
