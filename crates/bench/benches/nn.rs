//! Neural-substrate micro-benchmarks: the GEMM kernels (all three variants,
//! scalar vs dispatched SIMD), a fused Linear forward, a transformer encoder
//! forward pass (paper dimensions: 100-d, 10 heads, 2 layers), and a full
//! training step.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pythia_nn::init::Initializer;
use pythia_nn::kernels::{detected_isa_label, set_simd_override, SimdOverride};
use pythia_nn::layers::{Linear, TransformerEncoder};
use pythia_nn::tape::{bce_with_logits, ParamSet, Tape};
use pythia_nn::{Adam, Tensor};

fn matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("nn/matmul");
    for &n in &[64usize, 128, 256] {
        let a = Initializer::new(1).uniform(n, n, 1.0);
        let b = Initializer::new(2).uniform(n, n, 1.0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| black_box(a.matmul(&b)))
        });
    }
    // The decoder's dominant shape: [batch, hidden] x [hidden, pages].
    let a = Initializer::new(3).uniform(32, 800, 1.0);
    let b = Initializer::new(4).uniform(800, 2000, 1.0);
    group.bench_function("decoder_32x800x2000", |bch| {
        bch.iter(|| black_box(a.matmul(&b)))
    });
    group.finish();
}

/// All three GEMM variants plus the fused Linear forward at the real
/// classifier shapes, each under forced-scalar and dispatched SIMD so the
/// per-variant kernel win is visible in one report. The dispatched ISA is
/// embedded in the bench id (`dispatched_avx2+fma`, ...) so runs on
/// different hardware stay distinguishable.
fn kernel_variants(c: &mut Criterion) {
    /// Runs `f` once per iteration under both dispatch arms.
    fn both(
        group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>,
        name: &str,
        f: impl Fn() -> Tensor,
    ) {
        for (arm, mode) in [
            ("scalar", SimdOverride::ForceScalar),
            (detected_isa_label(), SimdOverride::ForceDetect),
        ] {
            group.bench_function(format!("{name}/{arm}"), |bch| {
                set_simd_override(mode);
                bch.iter(|| black_box(f()));
                set_simd_override(SimdOverride::Env);
            });
        }
    }

    let mut group = c.benchmark_group("nn/kernel");
    // Forward decoder: [batch, hidden] x [hidden, pages].
    let x = Initializer::new(11).uniform(32, 800, 1.0);
    let w = Initializer::new(12).uniform(800, 2000, 1.0);
    let bias = Initializer::new(13).uniform(1, 2000, 1.0);
    // Backward weight grad: Xᵀ·G = [32,800]ᵀ x [32,2000].
    let g = Initializer::new(14).uniform(32, 2000, 1.0);
    // Backward input grad: G·Wᵀ = [32,2000] x [800,2000]ᵀ.
    both(&mut group, "matmul_32x800x2000", || x.matmul(&w));
    both(&mut group, "at_b_32x800x2000", || x.matmul_at_b(&g));
    both(&mut group, "a_bt_32x2000x800", || g.matmul_a_bt(&w));
    both(&mut group, "linear_fwd_32x800x2000", || {
        x.matmul_bias(&w, &bias)
    });
    group.finish();
}

fn paper_model() -> (ParamSet, TransformerEncoder, Linear, Linear) {
    let mut params = ParamSet::new();
    let mut init = Initializer::new(7);
    let enc = TransformerEncoder::new(&mut params, &mut init, "enc", 800, 100, 10, 256, 2, 128);
    let fc1 = Linear::new(&mut params, &mut init, "fc1", 100, 800);
    let fc2 = Linear::new(&mut params, &mut init, "fc2", 800, 2000);
    (params, enc, fc1, fc2)
}

fn encoder_forward(c: &mut Criterion) {
    let (params, enc, _, _) = paper_model();
    let seq: Vec<usize> = (0..80).map(|i| 2 + i % 700).collect();
    c.bench_function("nn/encode_one_plan_paper_dims", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let vars = params.inject(&mut tape);
            black_box(enc.encode(&mut tape, &vars, &seq));
        })
    });
}

fn training_step(c: &mut Criterion) {
    let (mut params, enc, fc1, fc2) = paper_model();
    let seqs: Vec<Vec<usize>> = (0..32)
        .map(|s| (0..60).map(|i| 2 + (s * 31 + i * 7) % 700).collect())
        .collect();
    let targets = Tensor::from_fn(32, 2000, |r, c| {
        if (r * 97 + c).is_multiple_of(200) {
            1.0
        } else {
            0.0
        }
    });
    let mut adam = Adam::new(&params, 1e-3);
    c.bench_function("nn/train_step_batch32_paper_dims", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let vars = params.inject(&mut tape);
            let refs: Vec<&[usize]> = seqs.iter().map(|s| s.as_slice()).collect();
            let reps = enc.encode_batch(&mut tape, &vars, &refs, 1);
            let h = fc1.forward(&mut tape, &vars, reps);
            let h = tape.relu(h);
            let logits = fc2.forward(&mut tape, &vars, h);
            let loss = bce_with_logits(&mut tape, logits, targets.clone(), 2.0);
            let grads = tape.backward(loss);
            adam.step(&mut params, &vars, &grads);
            black_box(tape.len())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = matmul, kernel_variants, encoder_forward, training_step
}
criterion_main!(benches);
