//! Per-object page-prediction models.
//!
//! Pythia trains a separate model per database object (base table or index) —
//! §3.3 design choice 2. Two structural variants from the paper are
//! supported:
//!
//! * **Partitioned models** — objects with more pages than
//!   [`crate::PythiaConfig::partition_pages`] are split into page-range
//!   partitions, one classifier each ("we split large tables into several
//!   smaller partitions and then train one model for each").
//! * **Top-k models** — predict only the `k` most frequently accessed pages
//!   (the Figure 12h ablation).
//!
//! [`CombinedModel`] implements the Figure 12d ablation: one classifier
//! jointly predicting a base table's and its index's pages.

use std::collections::HashMap;

use pythia_db::catalog::ObjectId;

use crate::classifier::{Example, PlanClassifier};
use crate::config::PythiaConfig;

/// Training data for one object: serialized plan tokens plus the sorted
/// distinct non-sequential pages of that object (Algorithm 1 lines 8–13).
/// Both sides are borrowed from the workload's per-query buffers, so fanning
/// the same queries out to many object models shares one encoding.
pub type ObjectExample<'a> = (&'a [usize], &'a [u32]);

/// Training data for a [`CombinedModel`]: plan tokens, table pages, index
/// pages — all borrowed from the workload's buffers.
pub type CombinedExample<'a> = (&'a [usize], &'a [u32], &'a [u32]);

#[derive(serde::Serialize, serde::Deserialize)]
#[allow(clippy::large_enum_variant)] // both variants are model-sized; boxing buys nothing
enum ModelKind {
    /// One classifier per page-range partition.
    Partitioned {
        classifiers: Vec<PlanClassifier>,
        partition_pages: usize,
    },
    /// One classifier over the k most popular pages; `page_map[label]` is the
    /// real page number.
    TopK {
        classifier: PlanClassifier,
        page_map: Vec<u32>,
    },
}

/// A trained page predictor for one database object.
#[derive(serde::Serialize, serde::Deserialize)]
pub struct ObjectModel {
    pub object: ObjectId,
    pub n_pages: u32,
    kind: ModelKind,
}

impl ObjectModel {
    /// Train a model for `object` with `n_pages` pages from per-query
    /// examples. `examples` may contain queries that do not touch the object
    /// (empty page lists) — they serve as negatives.
    pub fn train(
        cfg: &PythiaConfig,
        vocab_size: usize,
        object: ObjectId,
        n_pages: u32,
        examples: &[ObjectExample<'_>],
    ) -> Self {
        assert!(n_pages > 0, "object with zero pages");
        let kind = if let Some(k) = cfg.top_k {
            // Rank pages by training-set frequency; model the top k.
            let mut freq: HashMap<u32, u32> = HashMap::new();
            for (_, pages) in examples {
                for &p in pages {
                    *freq.entry(p).or_insert(0) += 1;
                }
            }
            let mut ranked: Vec<(u32, u32)> = freq.into_iter().collect();
            ranked.sort_unstable_by_key(|&(p, c)| (std::cmp::Reverse(c), p));
            let page_map: Vec<u32> = ranked.into_iter().take(k.max(1)).map(|(p, _)| p).collect();
            let page_map = if page_map.is_empty() {
                vec![0]
            } else {
                page_map
            };
            let index_of: HashMap<u32, usize> =
                page_map.iter().enumerate().map(|(i, &p)| (p, i)).collect();
            let data: Vec<Example<'_>> = examples
                .iter()
                .map(|&(toks, pages)| {
                    let labels = pages
                        .iter()
                        .filter_map(|p| index_of.get(p).copied())
                        .collect();
                    (toks, labels)
                })
                .collect();
            let mut classifier = PlanClassifier::new(cfg, vocab_size, page_map.len());
            classifier.train(&data, cfg);
            ModelKind::TopK {
                classifier,
                page_map,
            }
        } else {
            let pp = cfg.partition_pages;
            let n_parts = (n_pages as usize).div_ceil(pp);
            let mut classifiers = Vec::with_capacity(n_parts);
            for part in 0..n_parts {
                let base = part * pp;
                let labels_here = pp.min(n_pages as usize - base);
                let data: Vec<Example<'_>> = examples
                    .iter()
                    .map(|&(toks, pages)| {
                        let labels = pages
                            .iter()
                            .filter(|&&p| (p as usize) >= base && (p as usize) < base + labels_here)
                            .map(|&p| p as usize - base)
                            .collect();
                        (toks, labels)
                    })
                    .collect();
                let mut c = PlanClassifier::new(
                    &PythiaConfig {
                        seed: cfg.seed.wrapping_add(part as u64),
                        ..cfg.clone()
                    },
                    vocab_size,
                    labels_here,
                );
                c.train(&data, cfg);
                classifiers.push(c);
            }
            ModelKind::Partitioned {
                classifiers,
                partition_pages: pp,
            }
        };
        ObjectModel {
            object,
            n_pages,
            kind,
        }
    }

    /// Continue training this model on additional examples — incremental
    /// retraining (§5.3). Top-k models keep their original page map (the
    /// popular set is a training-time decision); partitioned models refine
    /// every partition.
    pub fn refine(&mut self, cfg: &PythiaConfig, examples: &[ObjectExample<'_>]) {
        match &mut self.kind {
            ModelKind::Partitioned {
                classifiers,
                partition_pages,
            } => {
                let pp = *partition_pages;
                for (part, c) in classifiers.iter_mut().enumerate() {
                    let base = part * pp;
                    let labels_here = c.n_labels();
                    let data: Vec<Example<'_>> = examples
                        .iter()
                        .map(|&(toks, pages)| {
                            let labels = pages
                                .iter()
                                .filter(|&&p| {
                                    (p as usize) >= base && (p as usize) < base + labels_here
                                })
                                .map(|&p| p as usize - base)
                                .collect();
                            (toks, labels)
                        })
                        .collect();
                    c.refine(&data, cfg);
                }
            }
            ModelKind::TopK {
                classifier,
                page_map,
            } => {
                let index_of: HashMap<u32, usize> =
                    page_map.iter().enumerate().map(|(i, &p)| (p, i)).collect();
                let data: Vec<Example<'_>> = examples
                    .iter()
                    .map(|&(toks, pages)| {
                        let labels = pages
                            .iter()
                            .filter_map(|p| index_of.get(p).copied())
                            .collect();
                        (toks, labels)
                    })
                    .collect();
                classifier.refine(&data, cfg);
            }
        }
    }

    /// Predicted pages (sorted ascending — the prefetcher contract).
    pub fn predict(&self, toks: &[usize]) -> Vec<u32> {
        let mut out = match &self.kind {
            ModelKind::Partitioned {
                classifiers,
                partition_pages,
            } => {
                let mut pages = Vec::new();
                for (part, c) in classifiers.iter().enumerate() {
                    let base = part * partition_pages;
                    pages.extend(c.predict(toks).into_iter().map(|l| (base + l) as u32));
                }
                pages
            }
            ModelKind::TopK {
                classifier,
                page_map,
            } => classifier
                .predict(toks)
                .into_iter()
                .map(|l| page_map[l])
                .collect(),
        };
        out.sort_unstable();
        out
    }

    /// [`Self::predict`] for a batch of plans: each partition's classifier
    /// runs one packed forward over every plan in `toks_list` instead of one
    /// forward per query. Element `q` is exactly `self.predict(toks_list[q])`
    /// — partitions are visited in the same order and each per-query page
    /// list gets the same final sort.
    pub fn predict_batch(&self, toks_list: &[&[usize]]) -> Vec<Vec<u32>> {
        let mut out: Vec<Vec<u32>> = vec![Vec::new(); toks_list.len()];
        match &self.kind {
            ModelKind::Partitioned {
                classifiers,
                partition_pages,
            } => {
                for (part, c) in classifiers.iter().enumerate() {
                    let base = part * partition_pages;
                    for (q, labels) in c.predict_batch(toks_list).into_iter().enumerate() {
                        out[q].extend(labels.into_iter().map(|l| (base + l) as u32));
                    }
                }
            }
            ModelKind::TopK {
                classifier,
                page_map,
            } => {
                for (q, labels) in classifier.predict_batch(toks_list).into_iter().enumerate() {
                    out[q].extend(labels.into_iter().map(|l| page_map[l]));
                }
            }
        }
        for pages in &mut out {
            pages.sort_unstable();
        }
        out
    }

    /// Per-page scores over the whole object (top-k models score only their
    /// modeled pages; others are 0).
    pub fn scores(&self, toks: &[usize]) -> Vec<f32> {
        match &self.kind {
            ModelKind::Partitioned { classifiers, .. } => {
                let mut all = Vec::with_capacity(self.n_pages as usize);
                for c in classifiers {
                    all.extend(c.scores(toks));
                }
                all
            }
            ModelKind::TopK {
                classifier,
                page_map,
            } => {
                let mut all = vec![0.0; self.n_pages as usize];
                for (l, s) in classifier.scores(toks).into_iter().enumerate() {
                    all[page_map[l] as usize] = s;
                }
                all
            }
        }
    }

    /// Number of partitions (1 for top-k models).
    pub fn partition_count(&self) -> usize {
        match &self.kind {
            ModelKind::Partitioned { classifiers, .. } => classifiers.len(),
            ModelKind::TopK { .. } => 1,
        }
    }

    /// Model size in bytes.
    pub fn size_bytes(&self) -> usize {
        match &self.kind {
            ModelKind::Partitioned { classifiers, .. } => {
                classifiers.iter().map(PlanClassifier::size_bytes).sum()
            }
            ModelKind::TopK { classifier, .. } => classifier.size_bytes(),
        }
    }
}

/// Figure 12d ablation: one model jointly predicting a base table's and its
/// index's pages (label space = table pages ++ index pages).
#[derive(serde::Serialize, serde::Deserialize)]
pub struct CombinedModel {
    pub table: ObjectId,
    pub index: ObjectId,
    table_pages: u32,
    classifier: PlanClassifier,
}

impl CombinedModel {
    /// Train on examples of `(tokens, table pages, index pages)`.
    pub fn train(
        cfg: &PythiaConfig,
        vocab_size: usize,
        table: ObjectId,
        index: ObjectId,
        table_pages: u32,
        index_pages: u32,
        examples: &[CombinedExample<'_>],
    ) -> Self {
        let n_labels = (table_pages + index_pages) as usize;
        let data: Vec<Example<'_>> = examples
            .iter()
            .map(|&(toks, tp, ip)| {
                let mut labels: Vec<usize> = tp.iter().map(|&p| p as usize).collect();
                labels.extend(ip.iter().map(|&p| (table_pages + p) as usize));
                (toks, labels)
            })
            .collect();
        let mut classifier = PlanClassifier::new(cfg, vocab_size, n_labels.max(1));
        classifier.train(&data, cfg);
        CombinedModel {
            table,
            index,
            table_pages,
            classifier,
        }
    }

    /// Predict `(table pages, index pages)`, each sorted.
    pub fn predict(&self, toks: &[usize]) -> (Vec<u32>, Vec<u32>) {
        let mut tp = Vec::new();
        let mut ip = Vec::new();
        for l in self.classifier.predict(toks) {
            if (l as u32) < self.table_pages {
                tp.push(l as u32);
            } else {
                ip.push(l as u32 - self.table_pages);
            }
        }
        (tp, ip)
    }

    /// [`Self::predict`] for a batch of plans through one packed forward.
    pub fn predict_batch(&self, toks_list: &[&[usize]]) -> Vec<(Vec<u32>, Vec<u32>)> {
        self.classifier
            .predict_batch(toks_list)
            .into_iter()
            .map(|labels| {
                let mut tp = Vec::new();
                let mut ip = Vec::new();
                for l in labels {
                    if (l as u32) < self.table_pages {
                        tp.push(l as u32);
                    } else {
                        ip.push(l as u32 - self.table_pages);
                    }
                }
                (tp, ip)
            })
            .collect()
    }

    /// Model size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.classifier.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PythiaConfig {
        PythiaConfig {
            epochs: 80,
            batch_size: 8,
            lr: 5e-3,
            ..PythiaConfig::fast()
        }
    }

    /// Token 2/3 selects low/high page block. Owned data; borrow with
    /// [`as_refs`] before training.
    fn examples() -> Vec<(Vec<usize>, Vec<u32>)> {
        let mut out = Vec::new();
        for rep in 0..6 {
            out.push((vec![2, 5 + rep % 2], vec![0, 1, 2]));
            out.push((vec![3, 5 + rep % 2], vec![7, 8, 9]));
        }
        out
    }

    fn as_refs(owned: &[(Vec<usize>, Vec<u32>)]) -> Vec<ObjectExample<'_>> {
        owned
            .iter()
            .map(|(t, p)| (t.as_slice(), p.as_slice()))
            .collect()
    }

    #[test]
    fn object_model_learns() {
        let owned = examples();
        let m = ObjectModel::train(&cfg(), 10, ObjectId(0), 10, &as_refs(&owned));
        assert_eq!(m.predict(&[2, 5]), vec![0, 1, 2]);
        assert_eq!(m.predict(&[3, 5]), vec![7, 8, 9]);
        assert_eq!(m.partition_count(), 1);
    }

    #[test]
    fn partitioned_model_spans_ranges() {
        let c = PythiaConfig {
            partition_pages: 4,
            ..cfg()
        };
        let owned = examples();
        let m = ObjectModel::train(&c, 10, ObjectId(0), 10, &as_refs(&owned));
        assert_eq!(m.partition_count(), 3); // 4+4+2
                                            // Pages 7-9 live in partitions 1 and 2; prediction must still work.
        assert_eq!(m.predict(&[3, 5]), vec![7, 8, 9]);
        assert_eq!(m.predict(&[2, 5]), vec![0, 1, 2]);
        assert_eq!(m.scores(&[2, 5]).len(), 10);
    }

    #[test]
    fn top_k_limits_label_space() {
        let c = PythiaConfig {
            top_k: Some(3),
            ..cfg()
        };
        // Make pages 0,1,2 far more frequent than 7,8,9.
        let mut ex = examples();
        for _ in 0..10 {
            ex.push((vec![2, 5], vec![0, 1, 2]));
        }
        let m = ObjectModel::train(&c, 10, ObjectId(0), 10, &as_refs(&ex));
        let pred = m.predict(&[2, 5]);
        assert_eq!(pred, vec![0, 1, 2]);
        // Pages outside the top-3 can never be predicted.
        let pred_high = m.predict(&[3, 5]);
        assert!(
            pred_high.iter().all(|p| [0, 1, 2].contains(p)),
            "{pred_high:?}"
        );
    }

    #[test]
    fn combined_model_splits_label_space() {
        let owned: Vec<(Vec<usize>, Vec<u32>, Vec<u32>)> = (0..12)
            .map(|i| {
                if i % 2 == 0 {
                    (vec![2, 5 + i % 3], vec![0, 1], vec![0])
                } else {
                    (vec![3, 5 + i % 3], vec![4, 5], vec![2])
                }
            })
            .collect();
        let data: Vec<CombinedExample<'_>> = owned
            .iter()
            .map(|(t, tp, ip)| (t.as_slice(), tp.as_slice(), ip.as_slice()))
            .collect();
        let m = CombinedModel::train(&cfg(), 10, ObjectId(0), ObjectId(1), 6, 3, &data);
        let (tp, ip) = m.predict(&[2, 5]);
        assert_eq!(tp, vec![0, 1]);
        assert_eq!(ip, vec![0]);
        let (tp, ip) = m.predict(&[3, 5]);
        assert_eq!(tp, vec![4, 5]);
        assert_eq!(ip, vec![2]);
        assert!(m.size_bytes() > 0);
    }

    #[test]
    fn batched_predict_matches_serial_across_partitions() {
        let c = PythiaConfig {
            partition_pages: 4,
            ..cfg()
        };
        let owned = examples();
        let m = ObjectModel::train(&c, 10, ObjectId(0), 10, &as_refs(&owned));
        let plans: Vec<Vec<usize>> = vec![vec![2, 5], vec![3, 5], vec![2, 6], vec![3, 6]];
        let refs: Vec<&[usize]> = plans.iter().map(|p| p.as_slice()).collect();
        let batched = m.predict_batch(&refs);
        assert_eq!(batched.len(), plans.len());
        for (q, p) in plans.iter().enumerate() {
            assert_eq!(batched[q], m.predict(p), "query {q}");
        }
    }

    #[test]
    fn combined_batched_predict_matches_serial() {
        let owned: Vec<(Vec<usize>, Vec<u32>, Vec<u32>)> = (0..12)
            .map(|i| {
                if i % 2 == 0 {
                    (vec![2, 5 + i % 3], vec![0, 1], vec![0])
                } else {
                    (vec![3, 5 + i % 3], vec![4, 5], vec![2])
                }
            })
            .collect();
        let data: Vec<CombinedExample<'_>> = owned
            .iter()
            .map(|(t, tp, ip)| (t.as_slice(), tp.as_slice(), ip.as_slice()))
            .collect();
        let m = CombinedModel::train(&cfg(), 10, ObjectId(0), ObjectId(1), 6, 3, &data);
        let plans: Vec<Vec<usize>> = vec![vec![2, 5], vec![3, 5], vec![2, 7]];
        let refs: Vec<&[usize]> = plans.iter().map(|p| p.as_slice()).collect();
        let batched = m.predict_batch(&refs);
        for (q, p) in plans.iter().enumerate() {
            assert_eq!(batched[q], m.predict(p), "query {q}");
        }
    }

    #[test]
    fn predictions_are_sorted() {
        let owned = examples();
        let m = ObjectModel::train(&cfg(), 10, ObjectId(0), 10, &as_refs(&owned));
        let p = m.predict(&[3, 5]);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(p, sorted);
    }
}
