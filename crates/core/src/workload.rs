//! Workload registry and query→workload matching (Algorithm 3 lines 3–4 and
//! 13–14).
//!
//! "We first ensure Q belongs to a workload that Pythia has trained a model
//! for. If not, Pythia does not engage and the query is executed as it would
//! in the absence of Pythia." Matching is structural: the set of database
//! objects a plan scans is compared (Jaccard) against each trained workload's
//! object signature; below the threshold the query is declared
//! out-of-distribution and Pythia falls back to default execution.

use std::collections::BTreeSet;

use pythia_db::catalog::Database;
use pythia_db::plan::PlanNode;

use crate::predictor::TrainedWorkload;

/// Minimum object-set Jaccard similarity to claim a query for a workload.
pub const MATCH_THRESHOLD: f64 = 0.5;

/// All trained workloads known to this Pythia deployment.
#[derive(Default)]
pub struct WorkloadRegistry {
    entries: Vec<TrainedWorkload>,
}

impl WorkloadRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        WorkloadRegistry::default()
    }

    /// Register a trained workload.
    pub fn register(&mut self, tw: TrainedWorkload) {
        self.entries.push(tw);
    }

    /// Number of registered workloads.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no workloads are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Registered workloads.
    pub fn workloads(&self) -> &[TrainedWorkload] {
        &self.entries
    }

    /// Find the workload a query belongs to, if any: highest object-set
    /// Jaccard above [`MATCH_THRESHOLD`].
    pub fn match_plan(&self, db: &Database, plan: &PlanNode) -> Option<&TrainedWorkload> {
        let objs: BTreeSet<_> = plan.objects(db).into_iter().collect();
        if objs.is_empty() {
            return None;
        }
        let mut best: Option<(f64, &TrainedWorkload)> = None;
        for tw in &self.entries {
            let inter = objs.intersection(&tw.object_union).count();
            let union = objs.union(&tw.object_union).count();
            let j = if union == 0 {
                0.0
            } else {
                inter as f64 / union as f64
            };
            if j >= MATCH_THRESHOLD && best.map(|(bj, _)| j > bj).unwrap_or(true) {
                best = Some((j, tw));
            }
        }
        best.map(|(_, tw)| tw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PythiaConfig;
    use crate::predictor::train_workload;
    use pythia_db::catalog::TableId;
    use pythia_db::exec::execute;
    use pythia_db::expr::Pred;
    use pythia_db::types::Schema;

    fn setup() -> (Database, TableId, TableId, pythia_db::catalog::ObjectId) {
        let mut db = Database::new();
        let fact = db.create_table("fact", Schema::ints(&["id", "date", "dkey"]));
        let dim = db.create_table("dim", Schema::ints(&["d_id", "attr"]));
        let other = db.create_table("other", Schema::ints(&["o_id"]));
        for i in 0..600i64 {
            db.insert(fact, Database::row(&[i, i % 100, i % 50]));
            db.insert(dim, Database::row(&[i % 50, i % 7]));
            db.insert(other, Database::row(&[i]));
        }
        let idx = db.create_index("dim_pk", dim, 0);
        let _ = other;
        (db, fact, dim, idx)
    }

    fn star_plan(
        db: &Database,
        fact: TableId,
        dim: TableId,
        idx: pythia_db::catalog::ObjectId,
        lo: i64,
    ) -> PlanNode {
        let _ = db;
        PlanNode::IndexNLJoin {
            outer: Box::new(PlanNode::SeqScan {
                table: fact,
                pred: Some(Pred::Between {
                    col: 1,
                    lo,
                    hi: lo + 10,
                }),
            }),
            outer_key: 2,
            inner: dim,
            inner_index: idx,
            inner_pred: None,
        }
    }

    #[test]
    fn matches_same_shape_rejects_foreign() {
        let (db, fact, dim, idx) = setup();
        let plans: Vec<PlanNode> = (0..8)
            .map(|i| star_plan(&db, fact, dim, idx, i * 7))
            .collect();
        let traces: Vec<_> = plans.iter().map(|p| execute(p, &db).1).collect();
        let cfg = PythiaConfig {
            epochs: 2,
            ..PythiaConfig::fast()
        };
        let tw = train_workload(&db, "star", &plans, &traces, None, &cfg);

        let mut reg = WorkloadRegistry::new();
        reg.register(tw);
        assert_eq!(reg.len(), 1);

        // Same-shape unseen query matches.
        let q = star_plan(&db, fact, dim, idx, 55);
        assert!(reg.match_plan(&db, &q).is_some());

        // A query over an unrelated table does not.
        let other = db.table("other").unwrap();
        let foreign = PlanNode::SeqScan {
            table: other,
            pred: None,
        };
        assert!(reg.match_plan(&db, &foreign).is_none());
    }

    #[test]
    fn empty_registry_never_matches() {
        let (db, fact, dim, idx) = setup();
        let reg = WorkloadRegistry::new();
        assert!(reg.is_empty());
        let q = star_plan(&db, fact, dim, idx, 0);
        assert!(reg.match_plan(&db, &q).is_none());
    }

    #[test]
    fn best_of_multiple_workloads_wins() {
        let (db, fact, dim, idx) = setup();
        let cfg = PythiaConfig {
            epochs: 2,
            ..PythiaConfig::fast()
        };

        // Workload A: the star join. Workload B: fact-only scans.
        let plans_a: Vec<PlanNode> = (0..6)
            .map(|i| star_plan(&db, fact, dim, idx, i * 5))
            .collect();
        let traces_a: Vec<_> = plans_a.iter().map(|p| execute(p, &db).1).collect();
        let plans_b: Vec<PlanNode> = (0..6)
            .map(|i| PlanNode::SeqScan {
                table: fact,
                pred: Some(Pred::Between {
                    col: 1,
                    lo: i,
                    hi: i + 5,
                }),
            })
            .collect();
        let traces_b: Vec<_> = plans_b.iter().map(|p| execute(p, &db).1).collect();

        let mut reg = WorkloadRegistry::new();
        reg.register(train_workload(&db, "star", &plans_a, &traces_a, None, &cfg));
        reg.register(train_workload(&db, "scan", &plans_b, &traces_b, None, &cfg));

        let q = star_plan(&db, fact, dim, idx, 42);
        let m = reg.match_plan(&db, &q).expect("matches");
        assert_eq!(m.name, "star");

        let q2 = PlanNode::SeqScan {
            table: fact,
            pred: None,
        };
        let m2 = reg.match_plan(&db, &q2).expect("matches");
        assert_eq!(m2.name, "scan");
    }
}
