//! Query plan serialization (the paper's Algorithm 2).
//!
//! A preorder traversal emits:
//!
//! * an operator token per node (`[SEQ]`, `[IDX]`, `[NLJ]`, `[HJ]`, `[FLT]`,
//!   `[AGG]`, `[LIM]`; sorts are skipped — "they do not affect page access
//!   order");
//! * for scan nodes, the database object name(s);
//! * for each filter predicate atom, `[PRED] colName opName valName` tokens.
//!
//! **Value binning.** The paper serializes raw literal values. With uniform
//! parameter sampling, raw values almost never repeat between training and
//! test queries, so we bin numeric literals instead: literals over small
//! categorical domains (≤ [`EXACT_DOMAIN`] distinct values) become exact
//! `v:` tokens; larger domains are emitted as a multi-resolution bin pyramid
//! (`b8:`, `b64:`, `b512:` — one token per level). Coarse bins recur across
//! the training workload, so a test query whose exact value was never seen
//! still shares tokens with many training queries; that shared context is
//! what lets the model generalize to unseen parameters. This is a documented
//! deviation (see DESIGN.md).

use std::collections::HashMap;

use pythia_db::catalog::{Database, ObjectId, TableId};
use pythia_db::expr::{CmpOp, Pred};
use pythia_db::plan::PlanNode;

/// Domain size at or below which literals are emitted exactly. Kept small:
/// exact tokens only make sense for categorical columns whose every value
/// appears in training (months, genders, kinds); anything larger uses digit
/// binning so unseen test values still encode meaningfully.
pub const EXACT_DOMAIN: i64 = 32;
/// Bin counts of the multi-resolution value pyramid. A literal over a large
/// domain is emitted as one token per level (`b8:`, `b64:`, `b512:`). The
/// coarse levels repeat often across a training workload, so the model
/// learns a region→pages mapping that generalizes to parameter values whose
/// fine bins were never seen — the property that makes *unseen* queries
/// predictable (the paper's test queries are new parameterizations, not new
/// shapes).
const PYRAMID: [i64; 3] = [8, 64, 512];

/// The closed set of value tokens the binner can ever emit (pyramid bins and
/// exact small-domain values). Pre-interned into every training vocabulary
/// so a test query's value tokens are never `[UNK]` even when the exact
/// parameter value was absent from training.
pub fn standard_value_tokens() -> Vec<String> {
    let mut out =
        Vec::with_capacity(PYRAMID.iter().sum::<i64>() as usize + EXACT_DOMAIN as usize + 1);
    for &levels in &PYRAMID {
        for b in 0..levels {
            out.push(format!("b{levels}:{b}"));
        }
    }
    for v in 0..=EXACT_DOMAIN {
        out.push(format!("v:{v}"));
    }
    out
}
/// Cap on IN-list values serialized (the count is always emitted).
const MAX_IN_VALUES: usize = 6;

#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
struct ColumnStats {
    min: i64,
    max: i64,
}

/// Per-column min/max statistics used to normalize literals — the analogue
/// of the optimizer's statistics catalog.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ValueBinner {
    #[serde(with = "crate::serde_utils::hash_map_pairs")]
    stats: HashMap<(ObjectId, usize), ColumnStats>,
}

impl ValueBinner {
    /// Scan every table once and record per-column integer ranges.
    pub fn from_database(db: &Database) -> Self {
        let mut stats = HashMap::new();
        for t in db.tables() {
            let arity = t.schema.arity();
            let mut mins = vec![i64::MAX; arity];
            let mut maxs = vec![i64::MIN; arity];
            for (_, row) in t.heap.scan(&db.disk) {
                for (c, d) in row.iter().enumerate() {
                    if let Some(v) = d.as_int() {
                        mins[c] = mins[c].min(v);
                        maxs[c] = maxs[c].max(v);
                    }
                }
            }
            for c in 0..arity {
                if mins[c] <= maxs[c] {
                    stats.insert(
                        (t.object, c),
                        ColumnStats {
                            min: mins[c],
                            max: maxs[c],
                        },
                    );
                }
            }
        }
        ValueBinner { stats }
    }

    /// Emit the token(s) encoding literal `v` for `(table object, column)`.
    fn value_tokens(&self, obj: ObjectId, col: usize, v: i64, out: &mut Vec<String>) {
        let Some(s) = self.stats.get(&(obj, col)) else {
            out.push(format!("v:{v}"));
            return;
        };
        let domain = s.max - s.min + 1;
        if domain <= EXACT_DOMAIN {
            out.push(format!("v:{}", (v - s.min).clamp(0, domain)));
        } else {
            let frac = (v - s.min).clamp(0, s.max - s.min) as f64 / (s.max - s.min) as f64;
            for &levels in &PYRAMID {
                let b = ((frac * levels as f64) as i64).min(levels - 1);
                out.push(format!("b{levels}:{b}"));
            }
        }
    }
}

fn emit_pred(
    db: &Database,
    binner: &ValueBinner,
    table: TableId,
    pred: &Pred,
    out: &mut Vec<String>,
) {
    let info = db.table_info(table);
    let obj = info.object;
    match pred {
        Pred::Cmp { col, op, lit } => {
            out.push("[PRED]".into());
            out.push(format!("col:{}.{}", info.name, info.schema.name(*col)));
            out.push(format!("op:{}", op.sql()));
            binner.value_tokens(obj, *col, *lit, out);
        }
        Pred::Between { col, lo, hi } => {
            emit_pred(
                db,
                binner,
                table,
                &Pred::Cmp {
                    col: *col,
                    op: CmpOp::Ge,
                    lit: *lo,
                },
                out,
            );
            emit_pred(
                db,
                binner,
                table,
                &Pred::Cmp {
                    col: *col,
                    op: CmpOp::Le,
                    lit: *hi,
                },
                out,
            );
        }
        Pred::In { col, set } => {
            out.push("[PRED]".into());
            out.push(format!("col:{}.{}", info.name, info.schema.name(*col)));
            out.push("op:IN".into());
            out.push(format!("incnt:{}", set.len().min(MAX_IN_VALUES + 1)));
            for v in set.iter().take(MAX_IN_VALUES) {
                binner.value_tokens(obj, *col, *v, out);
            }
        }
        Pred::And(ps) => {
            for p in ps {
                emit_pred(db, binner, table, p, out);
            }
        }
    }
}

fn walk(db: &Database, binner: &ValueBinner, node: &PlanNode, out: &mut Vec<String>) {
    match node {
        PlanNode::SeqScan { table, pred } => {
            out.push("[SEQ]".into());
            out.push(format!("rel:{}", db.table_info(*table).name));
            if let Some(p) = pred {
                emit_pred(db, binner, *table, p, out);
            }
        }
        PlanNode::IndexScan {
            table,
            index,
            lo,
            hi,
            residual,
        } => {
            out.push("[IDX]".into());
            out.push(format!("idx:{}", db.index_info(*index).name));
            out.push(format!("rel:{}", db.table_info(*table).name));
            let key_col = db.index_info(*index).key_col;
            emit_pred(
                db,
                binner,
                *table,
                &Pred::Between {
                    col: key_col,
                    lo: *lo,
                    hi: *hi,
                },
                out,
            );
            if let Some(p) = residual {
                emit_pred(db, binner, *table, p, out);
            }
        }
        PlanNode::IndexNLJoin {
            outer,
            inner,
            inner_index,
            inner_pred,
            ..
        } => {
            out.push("[NLJ]".into());
            walk(db, binner, outer, out);
            out.push("[IDX]".into());
            out.push(format!("idx:{}", db.index_info(*inner_index).name));
            out.push(format!("rel:{}", db.table_info(*inner).name));
            if let Some(p) = inner_pred {
                emit_pred(db, binner, *inner, p, out);
            }
        }
        PlanNode::HashJoin { build, probe, .. } => {
            out.push("[HJ]".into());
            walk(db, binner, probe, out);
            walk(db, binner, build, out);
        }
        PlanNode::Filter { input, .. } => {
            // Filter predicates over joined schemas have no stable column
            // names; the operator token alone marks their presence.
            out.push("[FLT]".into());
            walk(db, binner, input, out);
        }
        PlanNode::Aggregate { input, .. } => {
            out.push("[AGG]".into());
            walk(db, binner, input, out);
        }
        PlanNode::Sort { input, .. } => {
            // Skipped: sorting does not affect page access order (paper §3.3).
            walk(db, binner, input, out);
        }
        PlanNode::Limit { input, .. } => {
            out.push("[LIM]".into());
            walk(db, binner, input, out);
        }
    }
}

/// Serialize a plan into tokens (Algorithm 2).
pub fn serialize_plan(db: &Database, binner: &ValueBinner, plan: &PlanNode) -> Vec<String> {
    let mut out = Vec::with_capacity(64);
    walk(db, binner, plan, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pythia_db::plan::AggFunc;
    use pythia_db::types::Schema;

    fn sample_db() -> (Database, TableId, TableId, ObjectId) {
        let mut db = Database::new();
        let fact = db.create_table("fact", Schema::ints(&["k", "date", "dkey"]));
        let dim = db.create_table("dim", Schema::ints(&["id", "attr"]));
        for i in 0..2000 {
            db.insert(fact, Database::row(&[i, i % 1000, i % 50]));
        }
        for i in 0..50 {
            db.insert(dim, Database::row(&[i, i % 7]));
        }
        let idx = db.create_index("dim_pk", dim, 0);
        (db, fact, dim, idx)
    }

    #[test]
    fn binner_exact_for_small_domains() {
        let (db, _fact, dim, _idx) = sample_db();
        let b = ValueBinner::from_database(&db);
        let obj = db.table_info(dim).object;
        let mut out = Vec::new();
        b.value_tokens(obj, 1, 3, &mut out); // attr domain 0..6 -> exact
        assert_eq!(out, vec!["v:3"]);
    }

    #[test]
    fn binner_pyramid_for_large_domains() {
        let (db, fact, _dim, _idx) = sample_db();
        let b = ValueBinner::from_database(&db);
        let obj = db.table_info(fact).object;
        let mut out = Vec::new();
        b.value_tokens(obj, 0, 1000, &mut out); // k domain 0..1999 -> pyramid
        assert_eq!(out.len(), 3);
        assert!(out[0].starts_with("b8:"));
        assert!(out[1].starts_with("b64:"));
        assert!(out[2].starts_with("b512:"));
        // Monotone: a larger value never gets a smaller coarse bin.
        let coarse = |v: i64| {
            let mut o = Vec::new();
            b.value_tokens(obj, 0, v, &mut o);
            o[0].trim_start_matches("b8:").parse::<i64>().unwrap()
        };
        assert!(coarse(100) <= coarse(500));
        assert!(coarse(500) <= coarse(1900));
        // Every emitted token is in the pre-interned closed set.
        let std = standard_value_tokens();
        for t in &out {
            assert!(std.contains(t), "{t} not in standard set");
        }
    }

    #[test]
    fn close_values_share_coarse_digit() {
        let (db, fact, _dim, _idx) = sample_db();
        let b = ValueBinner::from_database(&db);
        let obj = db.table_info(fact).object;
        let tok = |v: i64| {
            let mut o = Vec::new();
            b.value_tokens(obj, 0, v, &mut o);
            o[0].clone()
        };
        assert_eq!(tok(1000), tok(1002), "nearby values should bin together");
        assert_ne!(tok(100), tok(1900));
    }

    #[test]
    fn serialization_structure() {
        let (db, fact, dim, idx) = sample_db();
        let b = ValueBinner::from_database(&db);
        let plan = PlanNode::Aggregate {
            input: Box::new(PlanNode::IndexNLJoin {
                outer: Box::new(PlanNode::SeqScan {
                    table: fact,
                    pred: Some(Pred::Between {
                        col: 1,
                        lo: 100,
                        hi: 200,
                    }),
                }),
                outer_key: 2,
                inner: dim,
                inner_index: idx,
                inner_pred: Some(Pred::In {
                    col: 1,
                    set: vec![1, 3],
                }),
            }),
            group_col: None,
            agg: AggFunc::CountStar,
        };
        let toks = serialize_plan(&db, &b, &plan);
        let s = toks.join(" ");
        assert!(s.starts_with("[AGG] [NLJ] [SEQ] rel:fact [PRED] col:fact.date op:>="));
        assert!(s.contains("[IDX] idx:dim_pk rel:dim [PRED] col:dim.attr op:IN incnt:2 v:1 v:3"));
    }

    #[test]
    fn different_params_differ_only_in_value_tokens() {
        let (db, fact, _dim, _idx) = sample_db();
        let b = ValueBinner::from_database(&db);
        let mk = |lo: i64| {
            serialize_plan(
                &db,
                &b,
                &PlanNode::SeqScan {
                    table: fact,
                    pred: Some(Pred::Cmp {
                        col: 1,
                        op: CmpOp::Ge,
                        lit: lo,
                    }),
                },
            )
        };
        let a = mk(100);
        let c = mk(900);
        assert_eq!(a.len(), c.len());
        let diffs = a.iter().zip(&c).filter(|(x, y)| x != y).count();
        assert!(
            diffs >= 1 && diffs <= 3,
            "only value tokens differ: {diffs}"
        );
    }

    #[test]
    fn in_lists_are_capped() {
        let (db, fact, _dim, _idx) = sample_db();
        let b = ValueBinner::from_database(&db);
        let plan = PlanNode::SeqScan {
            table: fact,
            pred: Some(Pred::In {
                col: 2,
                set: (0..20).collect(),
            }),
        };
        let toks = serialize_plan(&db, &b, &plan);
        // dkey's domain (0..49) exceeds EXACT_DOMAIN, so each of the capped
        // 6 values becomes a 3-token pyramid.
        let vals = toks.iter().filter(|t| t.starts_with("b8:")).count();
        assert_eq!(vals, MAX_IN_VALUES);
        assert!(toks.iter().any(|t| t.starts_with("incnt:")));
    }

    #[test]
    fn sort_nodes_are_skipped() {
        let (db, fact, _dim, _idx) = sample_db();
        let b = ValueBinner::from_database(&db);
        let plan = PlanNode::Sort {
            input: Box::new(PlanNode::SeqScan {
                table: fact,
                pred: None,
            }),
            col: 0,
        };
        let toks = serialize_plan(&db, &b, &plan);
        assert_eq!(toks, vec!["[SEQ]".to_owned(), "rel:fact".to_owned()]);
    }
}
