//! Turning predictions into a prefetch sequence.
//!
//! The paper's prefetcher contract (§3.3 "Prefetcher"): pages are issued in
//! *file storage order* (ascending offsets per object) so the prefetcher
//! cooperates with OS readahead, with index objects first — index blocks are
//! small, heavily re-referenced, and their models are fastest, "allowing the
//! prefetcher to begin loading the index blocks that will be heavily
//! referenced by the buffer manager".
//!
//! When a prediction exceeds the buffer budget, only a prefix is issued —
//! "we perform limited prefetching to stay within buffer memory bounds"
//! (§5.1, IMDB workload).

use pythia_db::catalog::{Database, ObjectKind};
use pythia_sim::PageId;

use crate::predictor::Prediction;

/// Build the ordered prefetch list for a prediction.
pub fn prefetch_list(db: &Database, prediction: &Prediction) -> Vec<PageId> {
    let mut objs: Vec<_> = prediction.pages.keys().copied().collect();
    // Indexes first, then base tables; stable within each class.
    objs.sort_by_key(|&o| (db.object_kind(o) != ObjectKind::Index, o));
    let mut out = Vec::with_capacity(prediction.len());
    for obj in objs {
        let file = db.object_file(obj);
        let pages = &prediction.pages[&obj];
        debug_assert!(
            pages.windows(2).all(|w| w[0] <= w[1]),
            "pages must be sorted"
        );
        out.extend(pages.iter().map(|&p| PageId::new(file, p)));
    }
    out
}

/// Cap a prefetch list to a buffer budget (limited prefetching).
pub fn cap_to_budget(mut list: Vec<PageId>, budget_pages: usize) -> Vec<PageId> {
    list.truncate(budget_pages);
    list
}

#[cfg(test)]
mod tests {
    use super::*;
    use pythia_db::catalog::Database;
    use pythia_db::types::Schema;

    fn db_with_index() -> (
        Database,
        pythia_db::catalog::ObjectId,
        pythia_db::catalog::ObjectId,
    ) {
        let mut db = Database::new();
        let t = db.create_table("t", Schema::ints(&["a", "b"]));
        for i in 0..2000 {
            db.insert(t, Database::row(&[i, i % 5]));
        }
        let idx = db.create_index("t_pk", t, 0);
        let table_obj = db.table_info(t).object;
        (db, table_obj, idx)
    }

    #[test]
    fn index_pages_come_first_in_storage_order() {
        let (db, table_obj, idx_obj) = db_with_index();
        let mut pred = Prediction::default();
        pred.pages.insert(table_obj, vec![3, 10, 11]);
        pred.pages.insert(idx_obj, vec![0, 2]);
        let list = prefetch_list(&db, &pred);
        assert_eq!(list.len(), 5);
        let idx_file = db.object_file(idx_obj);
        let table_file = db.object_file(table_obj);
        assert_eq!(list[0].file, idx_file);
        assert_eq!(list[1].file, idx_file);
        assert_eq!(list[0].page_no, 0);
        assert_eq!(list[1].page_no, 2);
        assert_eq!(list[2], PageId::new(table_file, 3));
        assert_eq!(list[4], PageId::new(table_file, 11));
    }

    #[test]
    fn budget_caps_prefix() {
        let (db, table_obj, _) = db_with_index();
        let mut pred = Prediction::default();
        pred.pages.insert(table_obj, (0..100).collect());
        let list = cap_to_budget(prefetch_list(&db, &pred), 10);
        assert_eq!(list.len(), 10);
        assert_eq!(list[9].page_no, 9);
    }

    #[test]
    fn empty_prediction_is_empty_list() {
        let (db, _, _) = db_with_index();
        assert!(prefetch_list(&db, &Prediction::default()).is_empty());
    }
}
