//! Prediction-quality metrics (paper §5.1 "Performance Metrics").
//!
//! For a query, the ground truth is the deduplicated set of non-sequential
//! page accesses across all modeled objects; the prediction is the union of
//! all object models' outputs. Precision/recall/F1 are computed over those
//! two sets.

use std::collections::BTreeSet;

use pythia_db::catalog::ObjectId;

/// A page labeled with its database object (pages of different objects never
/// collide).
pub type ObjPage = (ObjectId, u32);

/// Precision / recall / F1 over two page sets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SetMetrics {
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
    pub predicted: usize,
    pub actual: usize,
    pub correct: usize,
}

/// Compute set metrics between predicted and actual page sets.
///
/// Conventions: if both sets are empty the prediction is perfect (F1 = 1);
/// if exactly one is empty, F1 = 0.
pub fn f1_score(predicted: &BTreeSet<ObjPage>, actual: &BTreeSet<ObjPage>) -> SetMetrics {
    let correct = predicted.intersection(actual).count();
    let (precision, recall, f1);
    if predicted.is_empty() && actual.is_empty() {
        precision = 1.0;
        recall = 1.0;
        f1 = 1.0;
    } else {
        precision = if predicted.is_empty() {
            0.0
        } else {
            correct as f64 / predicted.len() as f64
        };
        recall = if actual.is_empty() {
            0.0
        } else {
            correct as f64 / actual.len() as f64
        };
        f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
    }
    SetMetrics {
        precision,
        recall,
        f1,
        predicted: predicted.len(),
        actual: actual.len(),
        correct,
    }
}

/// Summary statistics over many per-query F1 scores (for the paper's
/// box-plot style figures: median and quartiles).
#[derive(Debug, Clone, Copy)]
pub struct Distribution {
    pub mean: f64,
    pub median: f64,
    pub q25: f64,
    pub q75: f64,
    pub min: f64,
    pub max: f64,
    pub n: usize,
}

impl Distribution {
    /// Summarize a sample (empty samples yield all-zero stats).
    pub fn of(values: &[f64]) -> Distribution {
        if values.is_empty() {
            return Distribution {
                mean: 0.0,
                median: 0.0,
                q25: 0.0,
                q75: 0.0,
                min: 0.0,
                max: 0.0,
                n: 0,
            };
        }
        let mut v = values.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
        let q = |p: f64| {
            let idx = (p * (v.len() - 1) as f64).round() as usize;
            v[idx]
        };
        Distribution {
            mean: v.iter().sum::<f64>() / v.len() as f64,
            median: q(0.5),
            q25: q(0.25),
            q75: q(0.75),
            min: v[0],
            max: v[v.len() - 1],
            n: v.len(),
        }
    }
}

impl std::fmt::Display for Distribution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "median={:.3} mean={:.3} q25={:.3} q75={:.3} min={:.3} max={:.3} (n={})",
            self.median, self.mean, self.q25, self.q75, self.min, self.max, self.n
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(pages: &[u32]) -> BTreeSet<ObjPage> {
        pages.iter().map(|&p| (ObjectId(0), p)).collect()
    }

    #[test]
    fn perfect_prediction() {
        let m = f1_score(&set(&[1, 2, 3]), &set(&[1, 2, 3]));
        assert_eq!(m.f1, 1.0);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
    }

    #[test]
    fn half_overlap() {
        // predicted {1,2}, actual {2,3}: p=0.5, r=0.5, f1=0.5.
        let m = f1_score(&set(&[1, 2]), &set(&[2, 3]));
        assert!((m.f1 - 0.5).abs() < 1e-12);
        assert_eq!(m.correct, 1);
    }

    #[test]
    fn empty_cases() {
        assert_eq!(f1_score(&set(&[]), &set(&[])).f1, 1.0);
        assert_eq!(f1_score(&set(&[1]), &set(&[])).f1, 0.0);
        assert_eq!(f1_score(&set(&[]), &set(&[1])).f1, 0.0);
    }

    #[test]
    fn object_ids_disambiguate_pages() {
        let a: BTreeSet<ObjPage> = [(ObjectId(0), 1)].into_iter().collect();
        let b: BTreeSet<ObjPage> = [(ObjectId(1), 1)].into_iter().collect();
        assert_eq!(
            f1_score(&a, &b).f1,
            0.0,
            "same page number, different object"
        );
    }

    #[test]
    fn distribution_quartiles() {
        let d = Distribution::of(&[0.0, 0.25, 0.5, 0.75, 1.0]);
        assert_eq!(d.median, 0.5);
        assert_eq!(d.q25, 0.25);
        assert_eq!(d.q75, 0.75);
        assert_eq!(d.min, 0.0);
        assert_eq!(d.max, 1.0);
        assert_eq!(d.n, 5);
        assert!((d.mean - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distribution_empty() {
        let d = Distribution::of(&[]);
        assert_eq!(d.n, 0);
        assert_eq!(d.mean, 0.0);
    }
}
