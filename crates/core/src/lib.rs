//! # pythia-core
//!
//! Pythia itself — the paper's contribution (§3): a neural model that, given
//! a serialized query plan, predicts in one shot the *set* of non-sequential
//! pages the query will read, plus the prefetch scheduling that turns those
//! predictions into I/O.
//!
//! Pipeline (matching the paper's algorithms):
//!
//! * **Algorithm 1 (training)** — [`predictor::train_workload`]: collect each
//!   training query's trace, strip sequential accesses, deduplicate, split by
//!   database object, sort by offset, and train one multi-label classifier
//!   per object ([`model::ObjectModel`], built on
//!   [`classifier::PlanClassifier`]).
//! * **Algorithm 2 (serialization)** — [`serialize`]: preorder walk of the
//!   plan emitting operator tokens (`[NLJ]`, `[HJ]`, `[SEQ]`, `[IDX]`),
//!   object names and `[PRED] col op value` tokens; numeric literals are
//!   binned into digit tokens so unseen parameter values generalize.
//! * **Algorithm 3 (inference)** — [`predictor::TrainedWorkload::infer`] and
//!   [`workload::WorkloadRegistry`]: match the query to a trained workload
//!   (fall back to default execution otherwise), run every applicable object
//!   model, and hand the union of predicted pages to the prefetcher in file
//!   storage order ([`prefetch`]).
//!
//! Beyond the paper's evaluated system, two §7 extensions are implemented —
//! prefetch-aware query scheduling ([`scheduler`]) and incremental model
//! refinement ([`predictor::TrainedWorkload::refine`]) — plus an
//! admission-controlled serving loop ([`server`]) that batches inference per
//! admission wave and makes scheduling policies one-flag variants.
//!
//! Model architecture (§5.1): tokens → 100-d embeddings (+ sinusoidal
//! positions) → 2 transformer encoder layers with 10 heads → last-token query
//! embedding → feed-forward decoder (one 800-unit hidden layer) → per-page
//! sigmoid logits, trained end-to-end with `BCEWithLogitsLoss` and Adam.
//! Large objects are split into partitioned models; index and base-table
//! models are separate (both paper design choices, ablated in Figure 12).

pub mod classifier;
pub mod config;
pub mod frontend;
pub mod metrics;
pub mod model;
pub mod predictor;
pub mod prefetch;
pub mod registry;
pub mod scheduler;
pub mod serde_utils;
pub mod serialize;
pub mod server;
pub mod vocab;
pub mod workload;

pub use config::PythiaConfig;
pub use frontend::{Arrival, Frontend, FrontendConfig, FrontendStats, HealthProvider, Responder};
pub use metrics::{f1_score, SetMetrics};
pub use predictor::{train_workload, Prediction, TrainedWorkload};
pub use registry::{CatalogCompat, ModelRegistry, TenantFleet, VersionedWorkload};
pub use serialize::{serialize_plan, ValueBinner};
pub use server::{
    AdmissionMode, InferenceCharge, PrefetchServer, QueryOutcome, QueuePolicy, ServeReport,
    ServerConfig, ServerRequest, TenantReport, WaveStats,
};
pub use vocab::Vocab;
pub use workload::WorkloadRegistry;
