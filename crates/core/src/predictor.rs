//! Workload-level training (Algorithm 1) and inference (Algorithm 3).
//!
//! Every per-object model is an independent, self-seeded training problem,
//! so the model fleet trains, infers, and refines on the shared worker pool
//! ([`pythia_nn::pool`]) with outputs bit-identical to a serial run.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Mutex;

use pythia_db::catalog::{Database, ObjectId};
use pythia_db::plan::PlanNode;
use pythia_db::trace::Trace;

use pythia_nn::pool::{
    parallel_map_labeled, parallel_map_sharded_labeled, parallel_map_vec_labeled,
};

use crate::config::PythiaConfig;
use crate::metrics::ObjPage;
use crate::model::{CombinedExample, CombinedModel, ObjectExample, ObjectModel};
use crate::serialize::{serialize_plan, ValueBinner};
use crate::vocab::Vocab;

/// Upper bound on memoized plan encodings (each workload template has few
/// distinct plans, so this is generous; it only guards pathological callers).
const ENCODE_CACHE_CAP: usize = 4096;

/// Shard key for an object's model: a splitmix-style hash of the object id.
/// Inference dispatch pins each model to `shard_key(obj) % pool_width`, so a
/// given object's model always runs on the same worker for a given pool
/// configuration (see [`parallel_map_sharded_labeled`]).
pub fn shard_key(obj: ObjectId) -> u64 {
    let mut x = obj.0 as u64 ^ 0x9e37_79b9_7f4a_7c15;
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A fully trained Pythia instance for one workload.
#[derive(serde::Serialize, serde::Deserialize)]
pub struct TrainedWorkload {
    pub name: String,
    pub vocab: Vocab,
    pub binner: ValueBinner,
    /// Separate per-object models (the paper's default design).
    #[serde(with = "crate::serde_utils::btree_map_pairs")]
    pub models: BTreeMap<ObjectId, ObjectModel>,
    /// Combined table+index models (Figure 12d ablation mode).
    pub combined: Vec<CombinedModel>,
    /// Every object scanned by any training plan — the workload signature
    /// used for matching incoming queries.
    pub object_union: BTreeSet<ObjectId>,
    pub cfg: PythiaConfig,
    /// Plan → token-sequence memo for [`Self::infer`]. Encoding depends only
    /// on the (frozen) vocabulary and binner, so entries never invalidate —
    /// not even across [`Self::refine`], which only moves model weights.
    #[serde(skip)]
    encode_cache: Mutex<HashMap<PlanNode, Vec<usize>>>,
}

/// The output of Algorithm 3's prediction step: pages per object.
#[derive(Debug, Clone, Default)]
pub struct Prediction {
    pub pages: BTreeMap<ObjectId, Vec<u32>>,
}

impl Prediction {
    /// Flatten to a set for F1 computation.
    pub fn as_set(&self) -> BTreeSet<ObjPage> {
        self.pages
            .iter()
            .flat_map(|(obj, pages)| pages.iter().map(move |&p| (*obj, p)))
            .collect()
    }

    /// Total predicted pages.
    pub fn len(&self) -> usize {
        self.pages.values().map(Vec::len).sum()
    }

    /// Whether nothing was predicted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The ground-truth page set for a query, restricted to the objects Pythia
/// models (paper §5.1: predicted vs actual sets over all applicable models).
pub fn ground_truth(trace: &Trace, modeled: &BTreeSet<ObjectId>) -> BTreeSet<ObjPage> {
    trace
        .non_sequential_sets()
        .into_iter()
        .filter(|(obj, _)| modeled.contains(obj))
        .flat_map(|(obj, pages)| pages.into_iter().map(move |p| (obj, p)))
        .collect()
}

/// Train Pythia for one workload (Algorithm 1).
///
/// * `plans` / `traces` — the training queries and their collected traces.
/// * `restrict_objects` — if `Some`, only these objects get models (the
///   paper restricts IMDB template 1a to `cast_info`); otherwise every object
///   accessed non-sequentially by at least `cfg.min_object_support` of the
///   training queries is modeled.
pub fn train_workload(
    db: &Database,
    name: &str,
    plans: &[PlanNode],
    traces: &[Trace],
    restrict_objects: Option<&[ObjectId]>,
    cfg: &PythiaConfig,
) -> TrainedWorkload {
    assert_eq!(plans.len(), traces.len(), "plan/trace count mismatch");
    assert!(!plans.is_empty(), "empty training workload");
    cfg.validate().expect("invalid config");

    let binner = ValueBinner::from_database(db);
    let mut vocab = Vocab::new();
    // Pre-intern the closed value-token set so unseen parameter values at
    // test time never degrade to [UNK].
    for t in crate::serialize::standard_value_tokens() {
        vocab.intern(&t);
    }
    let token_seqs: Vec<Vec<usize>> = plans
        .iter()
        .map(|p| {
            let toks = serialize_plan(db, &binner, p);
            vocab.encode_interning(&toks)
        })
        .collect();

    let page_sets: Vec<BTreeMap<ObjectId, Vec<u32>>> =
        traces.iter().map(|t| t.non_sequential_sets()).collect();

    // Workload signature: union of objects across training plans.
    let mut object_union = BTreeSet::new();
    for p in plans {
        object_union.extend(p.objects(db));
    }

    // Object selection (Algorithm 1 trains per DbObj).
    let selected: Vec<ObjectId> = match restrict_objects {
        Some(objs) => objs.to_vec(),
        None => {
            let mut support: BTreeMap<ObjectId, usize> = BTreeMap::new();
            for sets in &page_sets {
                for obj in sets.keys() {
                    *support.entry(*obj).or_insert(0) += 1;
                }
            }
            let min = (cfg.min_object_support * plans.len() as f64).ceil() as usize;
            support
                .into_iter()
                .filter(|&(_, s)| s >= min.max(1))
                .map(|(o, _)| o)
                .collect()
        }
    };

    // Build the training job list serially (catalog lookups stay on this
    // thread), then fan the independent model fits out on the worker pool.
    // Each fit is a pure function of (cfg, vocab size, pages, examples) with
    // a self-contained RNG, so results are bit-identical to a serial run.
    enum TrainJob {
        Separate {
            obj: ObjectId,
            n_pages: u32,
        },
        Combined {
            table: ObjectId,
            index: ObjectId,
            table_pages: u32,
            index_pages: u32,
        },
    }
    enum TrainOut {
        Separate(ObjectId, ObjectModel),
        Combined(CombinedModel),
    }

    let mut jobs: Vec<TrainJob> = Vec::new();
    if cfg.combined_index_base {
        // Pair each selected index with its base table when both are
        // selected; leftovers get separate models.
        use pythia_db::catalog::ObjectKind;
        let mut used: BTreeSet<ObjectId> = BTreeSet::new();
        for &obj in &selected {
            if db.object_kind(obj) != ObjectKind::Index {
                continue;
            }
            let idx_info = db.index_info(obj);
            let table_obj = db.table_info(idx_info.table).object;
            if !selected.contains(&table_obj) {
                continue;
            }
            jobs.push(TrainJob::Combined {
                table: table_obj,
                index: obj,
                table_pages: db.object_pages(table_obj),
                index_pages: db.object_pages(obj),
            });
            used.insert(obj);
            used.insert(table_obj);
        }
        for &obj in &selected {
            if !used.contains(&obj) {
                jobs.push(TrainJob::Separate {
                    obj,
                    n_pages: db.object_pages(obj),
                });
            }
        }
    } else {
        for &obj in &selected {
            jobs.push(TrainJob::Separate {
                obj,
                n_pages: db.object_pages(obj),
            });
        }
    }

    let vocab_len = vocab.len();
    let results = parallel_map_labeled("nn.train", &jobs, |_, job| match *job {
        TrainJob::Separate { obj, n_pages } => {
            let examples = object_examples(&token_seqs, &page_sets, obj);
            TrainOut::Separate(
                obj,
                ObjectModel::train(cfg, vocab_len, obj, n_pages, &examples),
            )
        }
        TrainJob::Combined {
            table,
            index,
            table_pages,
            index_pages,
        } => {
            let examples: Vec<CombinedExample<'_>> = token_seqs
                .iter()
                .zip(&page_sets)
                .map(|(toks, sets)| {
                    (
                        toks.as_slice(),
                        sets.get(&table).map(Vec::as_slice).unwrap_or(&[]),
                        sets.get(&index).map(Vec::as_slice).unwrap_or(&[]),
                    )
                })
                .collect();
            TrainOut::Combined(CombinedModel::train(
                cfg,
                vocab_len,
                table,
                index,
                table_pages,
                index_pages,
                &examples,
            ))
        }
    });

    let mut models = BTreeMap::new();
    let mut combined = Vec::new();
    for r in results {
        match r {
            TrainOut::Separate(obj, m) => {
                models.insert(obj, m);
            }
            TrainOut::Combined(c) => combined.push(c),
        }
    }

    TrainedWorkload {
        name: name.to_owned(),
        vocab,
        binner,
        models,
        combined,
        object_union,
        cfg: cfg.clone(),
        encode_cache: Mutex::new(HashMap::new()),
    }
}

/// Per-object training view: every example borrows the query's encoded plan
/// and the trace's page list — nothing is cloned per object, so fanning N
/// objects out over Q queries costs O(N·Q) fat-pointer pairs, not O(N·Q·len)
/// buffer copies.
fn object_examples<'a>(
    token_seqs: &'a [Vec<usize>],
    page_sets: &'a [BTreeMap<ObjectId, Vec<u32>>],
    obj: ObjectId,
) -> Vec<ObjectExample<'a>> {
    token_seqs
        .iter()
        .zip(page_sets)
        .map(|(toks, sets)| {
            (
                toks.as_slice(),
                sets.get(&obj).map(Vec::as_slice).unwrap_or(&[]),
            )
        })
        .collect()
}

impl TrainedWorkload {
    /// Objects this workload has models for.
    pub fn modeled_objects(&self) -> BTreeSet<ObjectId> {
        let mut out: BTreeSet<ObjectId> = self.models.keys().copied().collect();
        for c in &self.combined {
            out.insert(c.table);
            out.insert(c.index);
        }
        out
    }

    /// Serialize + encode a plan with this workload's vocabulary.
    pub fn encode_plan(&self, db: &Database, plan: &PlanNode) -> Vec<usize> {
        let toks = serialize_plan(db, &self.binner, plan);
        self.vocab.encode(&toks)
    }

    /// [`Self::encode_plan`] with memoization: each workload template has
    /// only a handful of distinct plans (paper Table 1), so repeat queries
    /// skip serialization entirely.
    pub fn encode_plan_cached(&self, db: &Database, plan: &PlanNode) -> Vec<usize> {
        if let Some(hit) = self.encode_cache.lock().unwrap().get(plan) {
            return hit.clone();
        }
        let toks = self.encode_plan(db, plan);
        let mut cache = self.encode_cache.lock().unwrap();
        if cache.len() < ENCODE_CACHE_CAP {
            cache.insert(plan.clone(), toks.clone());
        }
        toks
    }

    /// Algorithm 3's prediction step: run every applicable model, fanned out
    /// over the worker pool. Each model's prediction is a pure function of
    /// the token sequence and the assembly below consumes results in the
    /// fixed job order, so output is identical to the serial loop.
    pub fn infer(&self, db: &Database, plan: &PlanNode) -> Prediction {
        let toks = self.encode_plan_cached(db, plan);

        enum PredJob<'a> {
            Separate(ObjectId, &'a ObjectModel),
            Combined(&'a CombinedModel),
        }
        enum PredOut {
            Separate(ObjectId, Vec<u32>),
            Combined {
                table: ObjectId,
                tp: Vec<u32>,
                index: ObjectId,
                ip: Vec<u32>,
            },
        }
        let jobs: Vec<PredJob<'_>> = self
            .models
            .iter()
            .map(|(obj, m)| PredJob::Separate(*obj, m))
            .chain(self.combined.iter().map(PredJob::Combined))
            .collect();
        // Shard-affine dispatch: each object's model is pinned to its home
        // worker (`shard_key(obj) % width`), so repeated inference keeps a
        // model's weights hot on one core. Training/refine keep the
        // cursor-claimed map instead — there load balance across models of
        // very different sizes dominates.
        let keys: Vec<u64> = jobs
            .iter()
            .map(|j| match j {
                PredJob::Separate(obj, _) => shard_key(*obj),
                PredJob::Combined(c) => shard_key(c.table),
            })
            .collect();
        let outs = parallel_map_sharded_labeled("nn.infer", &jobs, &keys, |_, job| match job {
            PredJob::Separate(obj, model) => PredOut::Separate(*obj, model.predict(&toks)),
            PredJob::Combined(c) => {
                let (tp, ip) = c.predict(&toks);
                PredOut::Combined {
                    table: c.table,
                    tp,
                    index: c.index,
                    ip,
                }
            }
        });

        let mut pages = BTreeMap::new();
        for out in outs {
            match out {
                PredOut::Separate(obj, p) => {
                    if !p.is_empty() {
                        pages.insert(obj, p);
                    }
                }
                PredOut::Combined {
                    table,
                    tp,
                    index,
                    ip,
                } => {
                    if !tp.is_empty() {
                        pages.entry(table).or_insert_with(Vec::new).extend(tp);
                    }
                    if !ip.is_empty() {
                        pages.entry(index).or_insert_with(Vec::new).extend(ip);
                    }
                }
            }
        }
        for v in pages.values_mut() {
            v.sort_unstable();
            v.dedup();
        }
        Prediction { pages }
    }

    /// [`Self::infer`] for a batch of queries — true batched inference. Every
    /// applicable model sees the whole batch through one packed forward pass
    /// (batch-major matmuls) instead of one forward per query, while the
    /// model fleet still fans out over the worker pool. Element `q` of the
    /// result is exactly `self.infer(db, plans[q])`: jobs run in the same
    /// fixed order, batched rows are bit-identical to the serial forward, and
    /// each query's pages go through the same assembly (insert in job order,
    /// skip empty, sort + dedup).
    pub fn infer_batch(&self, db: &Database, plans: &[&PlanNode]) -> Vec<Prediction> {
        if plans.is_empty() {
            return Vec::new();
        }
        let toks: Vec<Vec<usize>> = plans
            .iter()
            .map(|p| self.encode_plan_cached(db, p))
            .collect();
        let toks_refs: Vec<&[usize]> = toks.iter().map(Vec::as_slice).collect();

        enum PredJob<'a> {
            Separate(ObjectId, &'a ObjectModel),
            Combined(&'a CombinedModel),
        }
        enum PredOut {
            Separate(ObjectId, Vec<Vec<u32>>),
            Combined {
                table: ObjectId,
                index: ObjectId,
                preds: Vec<(Vec<u32>, Vec<u32>)>,
            },
        }
        let jobs: Vec<PredJob<'_>> = self
            .models
            .iter()
            .map(|(obj, m)| PredJob::Separate(*obj, m))
            .chain(self.combined.iter().map(PredJob::Combined))
            .collect();
        // Same shard-affine dispatch as [`Self::infer`].
        let keys: Vec<u64> = jobs
            .iter()
            .map(|j| match j {
                PredJob::Separate(obj, _) => shard_key(*obj),
                PredJob::Combined(c) => shard_key(c.table),
            })
            .collect();
        let outs =
            parallel_map_sharded_labeled("nn.infer_batch", &jobs, &keys, |_, job| match job {
                PredJob::Separate(obj, model) => {
                    PredOut::Separate(*obj, model.predict_batch(&toks_refs))
                }
                PredJob::Combined(c) => PredOut::Combined {
                    table: c.table,
                    index: c.index,
                    preds: c.predict_batch(&toks_refs),
                },
            });

        let mut results: Vec<Prediction> =
            (0..plans.len()).map(|_| Prediction::default()).collect();
        for out in outs {
            match out {
                PredOut::Separate(obj, per_query) => {
                    for (q, p) in per_query.into_iter().enumerate() {
                        if !p.is_empty() {
                            results[q].pages.insert(obj, p);
                        }
                    }
                }
                PredOut::Combined {
                    table,
                    index,
                    preds,
                } => {
                    for (q, (tp, ip)) in preds.into_iter().enumerate() {
                        if !tp.is_empty() {
                            results[q]
                                .pages
                                .entry(table)
                                .or_insert_with(Vec::new)
                                .extend(tp);
                        }
                        if !ip.is_empty() {
                            results[q]
                                .pages
                                .entry(index)
                                .or_insert_with(Vec::new)
                                .extend(ip);
                        }
                    }
                }
            }
        }
        for pred in &mut results {
            for v in pred.pages.values_mut() {
                v.sort_unstable();
                v.dedup();
            }
        }
        results
    }

    /// Incremental retraining (§5.3): continue training every object model
    /// on newly observed queries. Plans are encoded with the *existing*
    /// vocabulary (tokens unseen at initial training map to `[UNK]`; value
    /// tokens are a closed set, so parameters always encode), and the label
    /// spaces are unchanged — this is the cheap periodic-refresh path the
    /// paper recommends over full retraining.
    pub fn refine(&mut self, db: &Database, plans: &[PlanNode], traces: &[Trace]) {
        assert_eq!(plans.len(), traces.len());
        if plans.is_empty() {
            return;
        }
        let token_seqs: Vec<Vec<usize>> = plans.iter().map(|p| self.encode_plan(db, p)).collect();
        let page_sets: Vec<BTreeMap<ObjectId, Vec<u32>>> =
            traces.iter().map(|t| t.non_sequential_sets()).collect();
        let cfg = self.cfg.clone();
        // Fan the independent per-object refinements out on the worker pool;
        // ownership moves through `parallel_map_vec_labeled` and the map is rebuilt
        // from the in-order results (BTreeMap, so order is immaterial anyway).
        let owned: Vec<(ObjectId, ObjectModel)> =
            std::mem::take(&mut self.models).into_iter().collect();
        let retrained = parallel_map_vec_labeled("nn.refine", owned, |_, (obj, mut model)| {
            let examples = object_examples(&token_seqs, &page_sets, obj);
            model.refine(&cfg, &examples);
            (obj, model)
        });
        self.models = retrained.into_iter().collect();
        for p in plans {
            self.object_union.extend(p.objects(db));
        }
    }

    /// Persist the trained workload (vocabulary, binner statistics and all
    /// model weights) as JSON. The paper retrains cheaply, but a deployed
    /// system wants to ship models without retraining.
    pub fn save_json(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let json = serde_json::to_string(self)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        std::fs::write(path, json)
    }

    /// Load a workload saved with [`Self::save_json`].
    ///
    /// This performs **no** catalog compatibility check — a model persisted
    /// against a different database deserializes fine and then silently
    /// mispredicts (its page labels index another catalog's files). Use
    /// [`Self::load_json_checked`] whenever the serving database is at hand.
    pub fn load_json(path: impl AsRef<std::path::Path>) -> std::io::Result<TrainedWorkload> {
        let json = std::fs::read_to_string(path)?;
        serde_json::from_str(&json)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// [`Self::load_json`] + [`Self::check_compat`] against the serving
    /// database: a model persisted against a different catalog fails loudly
    /// here instead of silently mispredicting.
    pub fn load_json_checked(
        path: impl AsRef<std::path::Path>,
        db: &Database,
    ) -> std::io::Result<TrainedWorkload> {
        let tw = Self::load_json(path)?;
        tw.check_compat(db)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        Ok(tw)
    }

    /// Verify this model fleet was trained against (a catalog identical to)
    /// `db`: every modeled object must exist, have the page count the model
    /// was sized for, and carry the name the vocabulary interned. Any
    /// mismatch means predictions would index the wrong pages — the caller
    /// must refuse to serve, not degrade silently.
    pub fn check_compat(&self, db: &Database) -> Result<(), String> {
        use pythia_db::catalog::ObjectKind;
        let exists = |obj: ObjectId| (obj.0 as usize) < db.object_count();
        for (obj, m) in &self.models {
            if !exists(*obj) {
                return Err(format!(
                    "model '{}' predicts object {obj:?}, which does not exist in this catalog \
                     ({} objects)",
                    self.name,
                    db.object_count()
                ));
            }
            let have = db.object_pages(*obj);
            if have != m.n_pages {
                return Err(format!(
                    "model '{}' was trained on object {obj:?} ('{}') with {} pages, but this \
                     catalog has {have}",
                    self.name,
                    db.object_name(*obj),
                    m.n_pages
                ));
            }
        }
        for c in &self.combined {
            for obj in [c.table, c.index] {
                if !exists(obj) {
                    return Err(format!(
                        "combined model of '{}' references object {obj:?}, which does not exist \
                         in this catalog",
                        self.name
                    ));
                }
            }
            if db.object_kind(c.index) != ObjectKind::Index {
                return Err(format!(
                    "combined model of '{}' expects object {:?} ('{}') to be an index",
                    self.name,
                    c.index,
                    db.object_name(c.index)
                ));
            }
        }
        for obj in &self.object_union {
            if !exists(*obj) {
                return Err(format!(
                    "workload signature of '{}' references object {obj:?}, which does not exist \
                     in this catalog",
                    self.name
                ));
            }
        }
        // Plan serialization emits catalog object names; a modeled object
        // whose current name was never interned would encode to [UNK] and
        // silently degrade every prediction (e.g. a renamed table).
        for obj in self.modeled_objects() {
            let name = db.object_name(obj);
            if self.vocab.get(name).is_none() {
                return Err(format!(
                    "model '{}' has no vocabulary token for object {obj:?}'s current name \
                     '{name}' — the catalog changed since training",
                    self.name
                ));
            }
        }
        Ok(())
    }

    /// A deep copy via the serde path (model weights round-trip exactly; the
    /// encode cache starts empty). [`TrainedWorkload`] holds a `Mutex`, so
    /// `derive(Clone)` is unavailable — and the serde route is exactly what
    /// a registry publish of a re-loaded model exercises anyway.
    pub fn duplicate(&self) -> TrainedWorkload {
        let json = serde_json::to_string(self).expect("serialize trained workload");
        serde_json::from_str(&json).expect("deserialize trained workload")
    }

    /// Total model size in bytes (paper §5.1 reports this per template).
    pub fn size_bytes(&self) -> usize {
        self.models
            .values()
            .map(ObjectModel::size_bytes)
            .sum::<usize>()
            + self
                .combined
                .iter()
                .map(CombinedModel::size_bytes)
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::f1_score;
    use pythia_db::exec::execute;
    use pythia_db::expr::{CmpOp, Pred};
    use pythia_db::types::Schema;

    /// A miniature star: fact(2000 rows) probing dim(600 rows) through an
    /// index, with fact.dkey clustered by fact.date so date ranges select
    /// learnable dim page ranges.
    fn mini_star() -> (Database, Vec<PlanNode>, Vec<Trace>) {
        let mut db = Database::new();
        let fact = db.create_table("fact", Schema::ints(&["id", "date", "dkey"]));
        let dim = db.create_table("dim", Schema::ints(&["d_id", "attr"]));
        for i in 0..2000i64 {
            let date = i / 2; // 1000 dates
            let dkey = (date * 600 / 1000 + i % 3).min(599);
            db.insert(fact, Database::row(&[i, date, dkey]));
        }
        for d in 0..600i64 {
            db.insert(dim, Database::row(&[d, d % 9]));
        }
        let idx = db.create_index("dim_pk", dim, 0);

        let mut plans = Vec::new();
        let mut traces = Vec::new();
        for q in 0..36i64 {
            let lo = (q * 31) % 900;
            let hi = lo + 60;
            let plan = PlanNode::IndexNLJoin {
                outer: Box::new(PlanNode::SeqScan {
                    table: fact,
                    pred: Some(Pred::Between { col: 1, lo, hi }),
                }),
                outer_key: 2,
                inner: dim,
                inner_index: idx,
                inner_pred: Some(Pred::Cmp {
                    col: 1,
                    op: CmpOp::Ge,
                    lit: 0,
                }),
            };
            let (_, trace) = execute(&plan, &db);
            plans.push(plan);
            traces.push(trace);
        }
        (db, plans, traces)
    }

    fn cfg() -> PythiaConfig {
        PythiaConfig {
            epochs: 40,
            batch_size: 8,
            lr: 5e-3,
            ..PythiaConfig::fast()
        }
    }

    /// Interleaved train/test split: every 6th query is held out, so test
    /// parameters fall *inside* the trained range (the paper's unseen
    /// queries are from the same workload distribution, not extrapolations).
    fn split(
        plans: &[PlanNode],
        traces: &[Trace],
    ) -> (Vec<PlanNode>, Vec<Trace>, Vec<PlanNode>, Vec<Trace>) {
        let mut tr_p = Vec::new();
        let mut tr_t = Vec::new();
        let mut te_p = Vec::new();
        let mut te_t = Vec::new();
        for (i, (p, t)) in plans.iter().zip(traces).enumerate() {
            if i % 6 == 5 {
                te_p.push(p.clone());
                te_t.push(t.clone());
            } else {
                tr_p.push(p.clone());
                tr_t.push(t.clone());
            }
        }
        (tr_p, tr_t, te_p, te_t)
    }

    #[test]
    fn trains_models_for_probed_objects() {
        let (db, plans, traces) = mini_star();
        let tw = train_workload(&db, "mini", &plans[..20], &traces[..20], None, &cfg());
        // dim table + dim index both accessed non-sequentially by every query.
        assert_eq!(tw.models.len(), 2, "dim heap + dim index");
        assert!(tw.size_bytes() > 0);
        assert!(tw.object_union.len() >= 3);
    }

    /// Epoch ladder for learning-quality assertions (ROADMAP seed-test
    /// triage): trained F1 at a fixed small epoch count depends on the
    /// shuffle stream, so these tests deterministically grow epochs until the
    /// floor is met instead of gating on a single training budget. Every rung
    /// uses the same seed, so the test passes or fails identically on every
    /// machine.
    const EPOCH_LADDER: [usize; 3] = [40, 80, 160];

    #[test]
    fn predictions_beat_trivial_baselines_on_held_out_queries() {
        let (db, plans, traces) = mini_star();
        let (tr_p, tr_t, te_p, te_t) = split(&plans, &traces);
        let mut mean = 0.0;
        for epochs in EPOCH_LADDER {
            let c = PythiaConfig { epochs, ..cfg() };
            let tw = train_workload(&db, "mini", &tr_p, &tr_t, None, &c);
            let modeled = tw.modeled_objects();
            let f1s: Vec<f64> = te_p
                .iter()
                .zip(&te_t)
                .map(|(p, t)| {
                    let pred = tw.infer(&db, p);
                    f1_score(&pred.as_set(), &ground_truth(t, &modeled)).f1
                })
                .collect();
            mean = f1s.iter().sum::<f64>() / f1s.len() as f64;
            if mean > 0.4 {
                break;
            }
        }
        assert!(
            mean > 0.4,
            "held-out F1 too low even at max epochs: {mean:.3}"
        );
    }

    #[test]
    fn restrict_objects_limits_models() {
        let (db, plans, traces) = mini_star();
        let dim_obj = db.table_info(db.table("dim").unwrap()).object;
        let tw = train_workload(
            &db,
            "mini",
            &plans[..12],
            &traces[..12],
            Some(&[dim_obj]),
            &cfg(),
        );
        assert_eq!(tw.models.len(), 1);
        assert!(tw.models.contains_key(&dim_obj));
    }

    #[test]
    fn combined_mode_builds_joint_models() {
        let (db, plans, traces) = mini_star();
        let c = PythiaConfig {
            combined_index_base: true,
            ..cfg()
        };
        let tw = train_workload(&db, "mini", &plans[..12], &traces[..12], None, &c);
        assert_eq!(tw.combined.len(), 1, "dim heap + dim index pair");
        assert!(tw.models.is_empty());
        let pred = tw.infer(&db, &plans[12]);
        assert!(!pred.is_empty());
        let batched = tw.infer_batch(&db, &[&plans[12]]);
        assert_eq!(batched[0].pages, pred.pages, "combined-mode batch of 1");
    }

    #[test]
    fn batched_infer_matches_serial_infer() {
        let (db, plans, traces) = mini_star();
        let quick = PythiaConfig { epochs: 8, ..cfg() };
        let tw = train_workload(&db, "mini", &plans[..12], &traces[..12], None, &quick);
        let batch: Vec<&PlanNode> = plans[12..20].iter().collect();
        let preds = tw.infer_batch(&db, &batch);
        assert_eq!(preds.len(), batch.len());
        for (q, p) in batch.iter().enumerate() {
            assert_eq!(preds[q].pages, tw.infer(&db, p).pages, "query {q}");
        }
        assert!(tw.infer_batch(&db, &[]).is_empty());
    }

    #[test]
    fn incremental_refinement_adapts_to_new_region() {
        // Train only on queries over the low half of the date domain; the
        // model is weak on high-range queries. Refining with high-range
        // examples must improve F1 there (the paper's "every new query run
        // can be used as a new training data point").
        let (db, plans, traces) = mini_star();
        // mini_star: lo = (q*31)%900. Low-half training: lo < 450.
        let low: Vec<usize> = (0..36)
            .filter(|&q| (q as i64 * 31) % 900 < 450 && q % 6 != 5)
            .collect();
        let high_train: Vec<usize> = (0..36)
            .filter(|&q| (q as i64 * 31) % 900 >= 450 && q % 6 != 5)
            .collect();
        let high_test: Vec<usize> = (0..36)
            .filter(|&q| (q as i64 * 31) % 900 >= 450 && q % 6 == 5)
            .collect();
        assert!(!high_test.is_empty());

        let pick = |idx: &[usize]| -> (Vec<PlanNode>, Vec<Trace>) {
            (
                idx.iter().map(|&i| plans[i].clone()).collect(),
                idx.iter().map(|&i| traces[i].clone()).collect(),
            )
        };
        let (lp, lt) = pick(&low);
        let (hp, ht) = pick(&high_train);
        let (mut before, mut after) = (0.0, 0.0);
        for epochs in EPOCH_LADDER {
            let c = PythiaConfig { epochs, ..cfg() };
            let mut tw = train_workload(&db, "mini", &lp, &lt, None, &c);
            let modeled = tw.modeled_objects();
            let f1_high = |tw: &TrainedWorkload| {
                let f1s: Vec<f64> = high_test
                    .iter()
                    .map(|&i| {
                        let pred = tw.infer(&db, &plans[i]);
                        f1_score(&pred.as_set(), &ground_truth(&traces[i], &modeled)).f1
                    })
                    .collect();
                f1s.iter().sum::<f64>() / f1s.len() as f64
            };
            before = f1_high(&tw);
            tw.refine(&db, &hp, &ht);
            after = f1_high(&tw);
            if after > before + 0.05 {
                break;
            }
        }
        assert!(
            after > before + 0.05,
            "refinement should improve the new region: {before:.3} -> {after:.3}"
        );
    }

    #[test]
    fn save_load_roundtrip_preserves_predictions() {
        let (db, plans, traces) = mini_star();
        let quick = PythiaConfig { epochs: 4, ..cfg() };
        let tw = train_workload(&db, "mini", &plans[..10], &traces[..10], None, &quick);
        let dir = std::env::temp_dir().join("pythia_model_roundtrip.json");
        tw.save_json(&dir).unwrap();
        let loaded = TrainedWorkload::load_json(&dir).unwrap();
        let _ = std::fs::remove_file(&dir);
        assert_eq!(loaded.name, tw.name);
        assert_eq!(loaded.modeled_objects(), tw.modeled_objects());
        for p in &plans[10..14] {
            let a = tw.infer(&db, p);
            let b = loaded.infer(&db, p);
            assert_eq!(a.pages, b.pages, "loaded model must predict identically");
        }
    }

    #[test]
    fn checked_load_rejects_mutated_catalog() {
        let (db, plans, traces) = mini_star();
        let quick = PythiaConfig { epochs: 4, ..cfg() };
        let tw = train_workload(&db, "mini", &plans[..10], &traces[..10], None, &quick);
        let path = std::env::temp_dir().join("pythia_model_compat_check.json");
        tw.save_json(&path).unwrap();

        // Same catalog: the checked load succeeds and predicts identically.
        let loaded = TrainedWorkload::load_json_checked(&path, &db).unwrap();
        for p in &plans[10..12] {
            assert_eq!(loaded.infer(&db, p).pages, tw.infer(&db, p).pages);
        }

        // Mutated catalog #1: same objects, but dim grew (different page
        // count). The unchecked load silently accepts it; the checked load
        // must fail loudly, naming the page mismatch.
        let mut grown = Database::new();
        let fact = grown.create_table("fact", Schema::ints(&["id", "date", "dkey"]));
        let dim = grown.create_table("dim", Schema::ints(&["d_id", "attr"]));
        for i in 0..2000i64 {
            grown.insert(fact, Database::row(&[i, i / 2, 0]));
        }
        for d in 0..1800i64 {
            grown.insert(dim, Database::row(&[d, d % 9]));
        }
        grown.create_index("dim_pk", dim, 0);
        assert!(
            TrainedWorkload::load_json(&path).is_ok(),
            "unchecked load is the bug"
        );
        let err = TrainedWorkload::load_json_checked(&path, &grown).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("pages"), "{err}");

        // Mutated catalog #2: an object the model predicts for is gone.
        let mut shrunk = Database::new();
        let f2 = shrunk.create_table("fact", Schema::ints(&["id", "date", "dkey"]));
        for i in 0..2000i64 {
            shrunk.insert(f2, Database::row(&[i, i / 2, 0]));
        }
        let err = TrainedWorkload::load_json_checked(&path, &shrunk).unwrap_err();
        assert!(err.to_string().contains("does not exist"), "{err}");
        let _ = std::fs::remove_file(&path);

        // duplicate(): a deep copy via the same serde path, bit-identical.
        let dup = tw.duplicate();
        assert!(dup.check_compat(&db).is_ok());
        for p in &plans[10..12] {
            assert_eq!(dup.infer(&db, p).pages, tw.infer(&db, p).pages);
        }
        let _ = traces;
    }

    #[test]
    fn ground_truth_restricted_to_modeled() {
        let (db, plans, traces) = mini_star();
        let dim_obj = db.table_info(db.table("dim").unwrap()).object;
        let modeled: BTreeSet<ObjectId> = [dim_obj].into_iter().collect();
        let gt = ground_truth(&traces[0], &modeled);
        assert!(gt.iter().all(|(o, _)| *o == dim_obj));
        assert!(!gt.is_empty());
        let _ = plans;
    }
}
