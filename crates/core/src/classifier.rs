//! The multi-label plan classifier — the hybrid model of Figure 3.
//!
//! Input: a serialized plan (token ids). The transformer encoder produces a
//! query embedding (last token's representation); a feed-forward decoder with
//! one hidden layer emits one logit per label (page). Training is end-to-end
//! with `BCEWithLogitsLoss` + Adam. "Intuitively, we can think of training n
//! binary classifiers where n is the number of blocks for a given database
//! object" (§3.3).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use pythia_nn::init::Initializer;
use pythia_nn::layers::{Linear, TransformerEncoder};
use pythia_nn::tape::{bce_with_logits, ParamSet, Tape};
use pythia_nn::{grad_l2_norm, Adam, Tensor};

use crate::config::PythiaConfig;
use crate::vocab::Vocab;

/// One training example: serialized plan token ids (borrowed from the
/// workload's encoded plans — never cloned per object) and the positive
/// label indices (pages accessed non-sequentially).
pub type Example<'a> = (&'a [usize], Vec<usize>);

/// Training summary.
#[derive(Debug, Clone, Copy)]
pub struct TrainReport {
    pub epochs: usize,
    pub steps: usize,
    pub first_loss: f32,
    pub final_loss: f32,
}

/// A trained (or trainable) multi-label classifier over `n_labels` classes.
#[derive(serde::Serialize, serde::Deserialize)]
pub struct PlanClassifier {
    params: ParamSet,
    encoder: TransformerEncoder,
    fc1: Linear,
    fc2: Linear,
    n_labels: usize,
    threshold: f32,
    max_seq_len: usize,
}

impl PlanClassifier {
    /// Construct an untrained classifier.
    pub fn new(cfg: &PythiaConfig, vocab_size: usize, n_labels: usize) -> Self {
        cfg.validate().expect("invalid config");
        assert!(n_labels > 0, "classifier needs at least one label");
        let mut params = ParamSet::new();
        let mut init = Initializer::new(cfg.seed);
        let encoder = TransformerEncoder::new(
            &mut params,
            &mut init,
            "enc",
            vocab_size.max(2),
            cfg.embed_dim,
            cfg.heads,
            cfg.ff_dim,
            cfg.layers,
            cfg.max_seq_len,
        );
        let fc1 = Linear::new(
            &mut params,
            &mut init,
            "fc1",
            cfg.embed_dim,
            cfg.decoder_hidden,
        );
        let fc2 = Linear::new(&mut params, &mut init, "fc2", cfg.decoder_hidden, n_labels);
        PlanClassifier {
            params,
            encoder,
            fc1,
            fc2,
            n_labels,
            threshold: cfg.threshold,
            max_seq_len: cfg.max_seq_len,
        }
    }

    /// Number of output labels.
    pub fn n_labels(&self) -> usize {
        self.n_labels
    }

    /// Model size in bytes (paper reports per-template model sizes).
    pub fn size_bytes(&self) -> usize {
        self.params.size_bytes()
    }

    fn clip<'a>(&self, toks: &'a [usize]) -> &'a [usize] {
        &toks[..toks.len().min(self.max_seq_len)]
    }

    /// Train with Adam on BCE-with-logits (paper's objective).
    ///
    /// One [`Tape`] is reused across all minibatches: `reset` recycles every
    /// node buffer and `absorb` returns gradient buffers to the pool, so
    /// steady-state steps run allocation-free in the graph machinery.
    pub fn train(&mut self, data: &[Example<'_>], cfg: &PythiaConfig) -> TrainReport {
        self.train_phase(data, cfg, false)
    }

    /// Continue training from the current parameters on additional examples
    /// (fresh Adam state). This is the paper's incremental-training path:
    /// "Every new query run can be used as a new training data point to
    /// improve Pythia models" (§5.3).
    pub fn refine(&mut self, data: &[Example<'_>], cfg: &PythiaConfig) -> TrainReport {
        self.train_phase(data, cfg, true)
    }

    /// The shared train/refine loop. `refine` only matters for telemetry:
    /// with capture on ([`pythia_obs::train::set_enabled`]) every epoch emits
    /// one record carrying its mean minibatch loss, mean gradient L2 norm,
    /// step count, and wall timing, tagged with the `(worker, model)` context
    /// the pool set for this thread. With capture off (the default) the only
    /// cost is one atomic load per call — the optimizer math is untouched
    /// either way, so trained weights are bit-identical.
    fn train_phase(
        &mut self,
        data: &[Example<'_>],
        cfg: &PythiaConfig,
        refine: bool,
    ) -> TrainReport {
        assert!(!data.is_empty(), "no training data");
        let mut adam = Adam::new(&self.params, cfg.lr);
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x7e57);
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut first_loss = f32::NAN;
        let mut final_loss = f32::NAN;
        let mut steps = 0;
        let mut tape = Tape::new();
        let telemetry = pythia_obs::train::enabled();
        for epoch in 0..cfg.epochs {
            let epoch_start = if telemetry {
                pythia_obs::wall::now_us()
            } else {
                0
            };
            let mut epoch_loss = 0.0f64;
            let mut epoch_grad_norm = 0.0f64;
            let mut epoch_steps = 0u32;
            order.shuffle(&mut rng);
            for chunk in order.chunks(cfg.batch_size) {
                let seqs: Vec<&[usize]> = chunk.iter().map(|&i| self.clip(data[i].0)).collect();
                let mut targets = Tensor::zeros(chunk.len(), self.n_labels);
                for (r, &i) in chunk.iter().enumerate() {
                    for &lbl in &data[i].1 {
                        debug_assert!(lbl < self.n_labels);
                        targets.set(r, lbl, 1.0);
                    }
                }
                tape.reset();
                let vars = self.params.inject(&mut tape);
                let reps = self
                    .encoder
                    .encode_batch(&mut tape, &vars, &seqs, Vocab::PAD);
                let h = self.fc1.forward(&mut tape, &vars, reps);
                let h = tape.relu(h);
                let logits = self.fc2.forward(&mut tape, &vars, h);
                let loss = bce_with_logits(&mut tape, logits, targets, cfg.pos_weight);
                let loss_val = tape.value(loss).get(0, 0);
                if first_loss.is_nan() {
                    first_loss = loss_val;
                }
                final_loss = loss_val;
                let grads = tape.backward(loss);
                if telemetry {
                    epoch_loss += loss_val as f64;
                    epoch_grad_norm += grad_l2_norm(&grads, &vars) as f64;
                    epoch_steps += 1;
                }
                adam.step(&mut self.params, &vars, &grads);
                tape.absorb(grads);
                steps += 1;
            }
            if telemetry && epoch_steps > 0 {
                let (worker, model) = pythia_obs::train::context();
                pythia_obs::train::record_epoch(pythia_obs::train::EpochRec {
                    refine,
                    worker,
                    model,
                    epoch: epoch as u32,
                    steps: epoch_steps,
                    loss_e6: pythia_obs::train::to_e6(epoch_loss / epoch_steps as f64),
                    grad_norm_e6: pythia_obs::train::to_e6(epoch_grad_norm / epoch_steps as f64),
                    start_us: epoch_start,
                    dur_us: pythia_obs::wall::now_us().saturating_sub(epoch_start),
                });
            }
        }
        TrainReport {
            epochs: cfg.epochs,
            steps,
            first_loss,
            final_loss,
        }
    }

    /// Per-label sigmoid scores for one serialized plan.
    pub fn scores(&self, toks: &[usize]) -> Vec<f32> {
        let mut tape = Tape::new();
        let vars = self.params.inject(&mut tape);
        let toks = self.clip(toks);
        let rep = self.encoder.encode(&mut tape, &vars, toks);
        let h = self.fc1.forward(&mut tape, &vars, rep);
        let h = tape.relu(h);
        let logits = self.fc2.forward(&mut tape, &vars, h);
        tape.value(logits)
            .as_slice()
            .iter()
            .map(|&z| 1.0 / (1.0 + (-z).exp()))
            .collect()
    }

    /// Per-label sigmoid scores for a whole batch of serialized plans in one
    /// forward pass: parameters are injected once and every projection runs
    /// as a single batch-major matmul over the packed `[batch*seq_len, dim]`
    /// input. Row `q` of the result is bit-identical to `scores(toks_list[q])`
    /// — every op in the packed forward (linear, layer-norm, per-sample
    /// masked attention, relu) computes each row independently, in the same
    /// accumulation order as the serial path.
    pub fn scores_batch(&self, toks_list: &[&[usize]]) -> Vec<Vec<f32>> {
        if toks_list.is_empty() {
            return Vec::new();
        }
        let mut tape = Tape::new();
        let vars = self.params.inject(&mut tape);
        let clipped: Vec<&[usize]> = toks_list.iter().map(|t| self.clip(t)).collect();
        let reps = self
            .encoder
            .encode_batch(&mut tape, &vars, &clipped, Vocab::PAD);
        let h = self.fc1.forward(&mut tape, &vars, reps);
        let h = tape.relu(h);
        let logits = self.fc2.forward(&mut tape, &vars, h);
        let vals = tape.value(logits);
        (0..vals.rows())
            .map(|r| {
                vals.row(r)
                    .iter()
                    .map(|&z| 1.0 / (1.0 + (-z).exp()))
                    .collect()
            })
            .collect()
    }

    /// Labels whose score exceeds the threshold.
    pub fn predict(&self, toks: &[usize]) -> Vec<usize> {
        Self::threshold_labels(self.scores(toks), self.threshold)
    }

    /// [`Self::predict`] for a batch of plans through one forward pass.
    pub fn predict_batch(&self, toks_list: &[&[usize]]) -> Vec<Vec<usize>> {
        self.scores_batch(toks_list)
            .into_iter()
            .map(|s| Self::threshold_labels(s, self.threshold))
            .collect()
    }

    fn threshold_labels(scores: Vec<f32>, threshold: f32) -> Vec<usize> {
        scores
            .into_iter()
            .enumerate()
            .filter(|(_, s)| *s > threshold)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny synthetic task: token t in {2,3,4} deterministically selects a
    /// block of labels; classifier must learn the mapping. Returns owned
    /// sequences; borrow them with [`as_examples`] before training.
    fn block_task() -> Vec<(Vec<usize>, Vec<usize>)> {
        let mut data = Vec::new();
        for t in 2..5usize {
            for rep in 0..6 {
                let labels: Vec<usize> = ((t - 2) * 4..(t - 2) * 4 + 4).collect();
                data.push((vec![t, 5 + rep % 3], labels));
            }
        }
        data
    }

    fn as_examples(owned: &[(Vec<usize>, Vec<usize>)]) -> Vec<Example<'_>> {
        owned
            .iter()
            .map(|(t, l)| (t.as_slice(), l.clone()))
            .collect()
    }

    fn tiny_cfg() -> PythiaConfig {
        PythiaConfig {
            epochs: 40,
            batch_size: 8,
            lr: 5e-3,
            ..PythiaConfig::fast()
        }
    }

    #[test]
    fn learns_token_to_block_mapping() {
        let cfg = tiny_cfg();
        let owned = block_task();
        let data = as_examples(&owned);
        let mut clf = PlanClassifier::new(&cfg, 10, 12);
        let report = clf.train(&data, &cfg);
        assert!(report.final_loss < report.first_loss, "loss must decrease");
        for t in 2..5usize {
            let pred = clf.predict(&[t, 5]);
            let expect: Vec<usize> = ((t - 2) * 4..(t - 2) * 4 + 4).collect();
            assert_eq!(pred, expect, "token {t}");
        }
    }

    #[test]
    fn scores_are_probabilities() {
        let cfg = PythiaConfig::fast();
        let clf = PlanClassifier::new(&cfg, 10, 5);
        let s = clf.scores(&[2, 3]);
        assert_eq!(s.len(), 5);
        assert!(s.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn long_inputs_are_clipped() {
        let cfg = PythiaConfig {
            max_seq_len: 8,
            ..PythiaConfig::fast()
        };
        let clf = PlanClassifier::new(&cfg, 10, 3);
        let long: Vec<usize> = (0..100).map(|i| 2 + i % 8).collect();
        let s = clf.scores(&long);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn size_reporting() {
        let cfg = PythiaConfig::fast();
        let small = PlanClassifier::new(&cfg, 50, 10);
        let big = PlanClassifier::new(&cfg, 50, 1000);
        assert!(big.size_bytes() > small.size_bytes());
        assert_eq!(big.n_labels(), 1000);
    }

    #[test]
    fn batched_scores_bit_identical_to_serial() {
        // The tentpole contract: one packed forward over N plans must produce
        // exactly the floats the serial per-plan forward produces — including
        // for batches of mixed sequence lengths (padding + attention masking
        // must be invisible to the real rows).
        let cfg = tiny_cfg();
        let owned = block_task();
        let data = as_examples(&owned);
        let mut clf = PlanClassifier::new(&cfg, 10, 12);
        clf.train(&data, &cfg);
        let seqs: Vec<Vec<usize>> = vec![vec![2, 5], vec![3, 5, 6, 7, 8], vec![4], vec![2, 6, 7]];
        let refs: Vec<&[usize]> = seqs.iter().map(|s| s.as_slice()).collect();
        let batched = clf.scores_batch(&refs);
        assert_eq!(batched.len(), seqs.len());
        for (q, s) in seqs.iter().enumerate() {
            let serial = clf.scores(s);
            assert_eq!(
                batched[q], serial,
                "batch row {q} diverged from the serial forward"
            );
        }
        // Thresholding commutes with batching.
        let pb = clf.predict_batch(&refs);
        for (q, s) in seqs.iter().enumerate() {
            assert_eq!(pb[q], clf.predict(s));
        }
    }

    // One test covers all telemetry behavior: the capture flag is
    // process-global, so two #[test]s toggling it would race each other.
    #[test]
    fn training_telemetry_records_epochs_and_never_changes_weights() {
        use pythia_obs::train as tt;
        let cfg = PythiaConfig {
            epochs: 5,
            batch_size: 8,
            lr: 5e-3,
            ..PythiaConfig::fast()
        };
        let owned = block_task();
        let data = as_examples(&owned);
        // Baseline run through the same train + refine sequence, capture off.
        let mut plain = PlanClassifier::new(&cfg, 10, 12);
        plain.train(&data, &cfg);
        plain.refine(&data, &cfg);

        let mut clf = PlanClassifier::new(&cfg, 10, 12);
        // Other tests may train concurrently while the flag is on; a unique
        // context tag isolates our records in the shared buffer.
        tt::set_context(0, 424_242);
        tt::set_enabled(true);
        clf.train(&data, &cfg);
        clf.refine(&data, &cfg);
        tt::set_enabled(false);
        tt::set_context(0, 0);

        let mine: Vec<tt::EpochRec> = tt::drain()
            .into_iter()
            .filter_map(|r| match r {
                tt::TrainRec::Epoch(e) if e.model == 424_242 => Some(e),
                _ => None,
            })
            .collect();
        let trained: Vec<&tt::EpochRec> = mine.iter().filter(|e| !e.refine).collect();
        let refined: Vec<&tt::EpochRec> = mine.iter().filter(|e| e.refine).collect();
        assert_eq!(trained.len(), cfg.epochs, "one record per train epoch");
        assert_eq!(refined.len(), cfg.epochs, "one record per refine epoch");
        assert_eq!(
            trained.iter().map(|e| e.epoch).collect::<Vec<_>>(),
            (0..cfg.epochs as u32).collect::<Vec<_>>()
        );
        // 18 examples at batch size 8 → 3 minibatches per epoch.
        assert!(trained.iter().all(|e| e.steps == 3));
        assert!(trained.iter().all(|e| e.grad_norm_e6 > 0));
        assert!(
            trained.last().unwrap().loss_e6 < trained.first().unwrap().loss_e6,
            "mean epoch loss must fall on this learnable task"
        );
        // Capture is observation-only: same weights as the baseline run.
        for t in 2..5usize {
            assert_eq!(plain.scores(&[t, 5]), clf.scores(&[t, 5]));
        }
    }

    #[test]
    fn empty_positive_sets_are_valid() {
        let cfg = tiny_cfg();
        let mut clf = PlanClassifier::new(&cfg, 10, 4);
        let (t1, t2) = (vec![2usize, 3], vec![3usize, 4]);
        let data: Vec<Example<'_>> = vec![(&t1, vec![]), (&t2, vec![0])];
        let report = clf.train(&data, &cfg);
        assert!(report.final_loss.is_finite());
    }
}
