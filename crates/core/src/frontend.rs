//! A zero-dependency TCP front-end for the serving loop.
//!
//! [`Frontend`] binds a std [`TcpListener`] on a background accept thread
//! (the pattern proven by `pythia_obs::serve`) and translates wire requests
//! into [`Arrival`] events on a bounded queue:
//!
//! - `GET /query/<idx>` — enqueue catalog query `idx`. The connection stays
//!   open; whoever drains the queue replays the query through
//!   [`PrefetchServer`](crate::server::PrefetchServer) and answers through
//!   the arrival's [`Responder`] with the virtual-time outcome as JSON
//!   ([`outcome_json`]). When the queue is already at the configured depth
//!   target the request is **load-shed** instead: an immediate
//!   `503 Service Unavailable` with a `Retry-After` header, and the queue
//!   never grows past the bound (backpressure by rejection, the only kind a
//!   connectionless-budget front can apply).
//! - `GET /t/<tenant>/query/<idx>` — the same, attributed to a tenant in
//!   `0..tenants` ([`FrontendConfig::tenants`]); the arrival carries the
//!   tenant id so the serving loop can apply per-tenant quotas and route to
//!   the tenant's registry fleet. Unprefixed routes are tenant 0.
//! - `GET /healthz` — liveness probe, answered inline.
//! - `GET /stats` — accepted/shed/rejected counters and current depth, JSON.
//!   `GET /t/<tenant>/stats` scopes the same counters to one tenant.
//! - `GET /t/<tenant>/health` — the tenant's live quality/drift snapshot,
//!   produced by a [`HealthProvider`] callback the embedding wires in via
//!   [`Frontend::set_health_provider`] (typically composing
//!   `pythia_obs::quality::QualityTracker::health_json` with the registry's
//!   current model version and this front's per-tenant counters). `404`
//!   until a provider is wired.
//! - `GET /shutdown` — acknowledge and set a flag the serving loop can poll
//!   ([`Frontend::shutdown_requested`]) for a clean drain-then-exit.
//!   [`Frontend::shutdown`] then answers anything still queued with `503`
//!   so no accepted client is left hanging until its own timeout.
//!
//! Anything else (unknown path, non-GET, unparsable index, index outside the
//! catalog) gets `400`/`404`. There is deliberately no HTTP library and no
//! async runtime: blocking sockets with timeouts and `Connection: close`
//! semantics. The accept thread hands each connection to a short-lived
//! handler thread, so an idle or byte-trickling client never stalls other
//! requests (`/healthz` included); a connection that has not produced a full
//! request line within [`FrontendConfig::read_deadline`] is answered `408`
//! and closed, which also bounds every handler thread's lifetime.
//!
//! The wall-clock side (sockets, thread wakeups) never feeds back into the
//! virtual clock: arrivals carry no wall timestamps, and the serving loop
//! assigns them virtual arrival instants when it drains a batch — so two
//! identical request sequences still produce bit-identical virtual-time
//! outcomes regardless of network timing. `examples/serve_demo.rs` wires
//! this to a real trained predictor; `EXPERIMENTS.md` has the curl recipe.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use pythia_obs::Recorder;

use crate::server::QueryOutcome;

/// Front-end configuration.
#[derive(Debug, Clone, Copy)]
pub struct FrontendConfig {
    /// Number of queries in the catalog: `/query/<idx>` accepts `idx` in
    /// `0..catalog` and rejects the rest with `400`.
    pub catalog: usize,
    /// Queue depth target: a `/query` request that finds this many arrivals
    /// already queued is shed with `503` instead of enqueued, so the queue
    /// never holds more than `shed_depth` entries.
    pub shed_depth: usize,
    /// Total time a connection gets to produce a complete request line.
    /// A client that stays idle or trickles bytes past this deadline is
    /// answered `408 Request Timeout` and closed. This bounds the lifetime
    /// of each per-connection handler thread.
    pub read_deadline: Duration,
    /// Number of tenants: `/t/<tenant>/...` accepts ids in `0..tenants` and
    /// rejects the rest with `400`. Values below 1 behave as 1 (tenant 0 —
    /// the unprefixed legacy routes — always exists).
    pub tenants: usize,
}

impl FrontendConfig {
    /// Config for a single-tenant `catalog`-query workload with the default
    /// depth target and a 2s request-line deadline.
    pub fn new(catalog: usize) -> Self {
        FrontendConfig {
            catalog,
            shed_depth: 64,
            read_deadline: Duration::from_secs(2),
            tenants: 1,
        }
    }
}

/// Monotonic front-end counters plus the instantaneous queue depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FrontendStats {
    /// Requests enqueued as arrivals.
    pub accepted: u64,
    /// Requests load-shed with `503` at the depth target.
    pub shed: u64,
    /// Malformed requests answered `400` (bad path, bad index).
    pub rejected: u64,
    /// Arrivals currently queued.
    pub depth: usize,
}

impl FrontendStats {
    /// JSON rendering (the `/stats` endpoint body).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"accepted\":{},\"shed\":{},\"rejected\":{},\"depth\":{}}}\n",
            self.accepted, self.shed, self.rejected, self.depth
        )
    }
}

/// The deferred half of an accepted connection: answer it once the query has
/// been served (or refuse it if serving is impossible). Dropping a responder
/// unanswered just closes the socket.
#[derive(Debug)]
pub struct Responder {
    stream: Option<TcpStream>,
}

impl Responder {
    /// Answer `200 OK` with a JSON body. Write errors are ignored — the
    /// client may have gone away, which does not concern the serving loop.
    pub fn ok_json(mut self, body: &str) {
        if let Some(mut stream) = self.stream.take() {
            let _ = respond(&mut stream, "200 OK", "application/json", body, None);
        }
    }

    /// Answer an error status with a plain-text body.
    pub fn error(mut self, status: &str, body: &str) {
        if let Some(mut stream) = self.stream.take() {
            let _ = respond(&mut stream, status, "text/plain", body, None);
        }
    }
}

/// One accepted wire request, waiting in the queue for the serving loop.
#[derive(Debug)]
pub struct Arrival {
    /// Catalog index of the requested query.
    pub query: usize,
    /// Tenant the request was routed under (0 for unprefixed paths).
    pub tenant: u32,
    /// End-to-end trace id, minted at ingestion
    /// ([`pythia_obs::request::mint`] — wall-ordered, never 0). The serving
    /// loop threads it through [`crate::server::ServerRequest::with_request`]
    /// so the `request.*` span tree and the `/debug/slow` log name the same
    /// id the front-end accepted.
    pub request: u64,
    /// The connection to answer once served.
    pub responder: Responder,
}

struct Shared {
    queue: Mutex<VecDeque<Arrival>>,
    ready: Condvar,
    accepted: AtomicU64,
    shed: AtomicU64,
    rejected: AtomicU64,
    shutdown_req: AtomicBool,
    // Per-tenant slices of the counters above, indexed by tenant id. The
    // globals remain the totals (tenant-unattributable rejects — malformed
    // lines, bad tenant ids — only count globally).
    tenant_accepted: Vec<AtomicU64>,
    tenant_shed: Vec<AtomicU64>,
    tenant_rejected: Vec<AtomicU64>,
    // `/t/<tenant>/health` body producer; `None` until the embedding wires
    // one in (the route answers 404 meanwhile).
    health: Mutex<Option<HealthProvider>>,
}

/// Callback producing the `/t/<tenant>/health` response body for one tenant,
/// or `None` for tenants it has nothing to report about (answered `404`).
/// The front passes the tenant's own counter snapshot so the provider can
/// fold accepted/shed/rejected into the body without a handle back to the
/// [`Frontend`]. Runs on the per-connection handler thread, so it must be
/// cheap and must not block on the serving loop for long.
pub type HealthProvider = Arc<dyn Fn(u32, FrontendStats) -> Option<String> + Send + Sync>;

/// The accept loop: background thread, bounded queue, shed-above-target.
pub struct Frontend {
    addr: SocketAddr,
    cfg: FrontendConfig,
    shared: Arc<Shared>,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Frontend {
    /// Bind `addr` (e.g. `127.0.0.1:7878`, or port `0` for an ephemeral
    /// port) and start accepting. The bound address is available via
    /// [`Frontend::addr`].
    pub fn start(addr: &str, cfg: FrontendConfig) -> std::io::Result<Frontend> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let tenants = cfg.tenants.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            accepted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            shutdown_req: AtomicBool::new(false),
            tenant_accepted: (0..tenants).map(|_| AtomicU64::new(0)).collect(),
            tenant_shed: (0..tenants).map(|_| AtomicU64::new(0)).collect(),
            tenant_rejected: (0..tenants).map(|_| AtomicU64::new(0)).collect(),
            health: Mutex::new(None),
        });
        let stop = Arc::new(AtomicBool::new(false));
        let (shared_bg, stop_bg) = (Arc::clone(&shared), Arc::clone(&stop));
        let handle = std::thread::Builder::new()
            .name("pythia-frontend".to_owned())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop_bg.load(Ordering::Relaxed) {
                        break;
                    }
                    if let Ok(stream) = conn {
                        // One short-lived thread per connection, so a slow
                        // or idle client cannot stall the accept loop (and
                        // with it every other request). The thread's
                        // lifetime is bounded by `cfg.read_deadline` plus
                        // one response write; it is detached — `shutdown`
                        // only joins the accept thread, and any handler
                        // still in flight just answers its own socket.
                        let shared_conn = Arc::clone(&shared_bg);
                        // If spawning fails (thread exhaustion) the closure
                        // is dropped and the connection just closes.
                        let _ = std::thread::Builder::new()
                            .name("pythia-frontend-conn".to_owned())
                            .spawn(move || {
                                let _ = answer(stream, &shared_conn, &cfg);
                            });
                    }
                }
            })?;
        Ok(Frontend {
            addr: local,
            cfg,
            shared,
            stop,
            handle: Some(handle),
        })
    }

    /// The address the listener actually bound (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The config the front was started with.
    pub fn config(&self) -> FrontendConfig {
        self.cfg
    }

    /// Arrivals currently queued.
    pub fn depth(&self) -> usize {
        self.shared.queue.lock().expect("queue poisoned").len()
    }

    /// Counter snapshot plus current depth.
    pub fn stats(&self) -> FrontendStats {
        FrontendStats {
            accepted: self.shared.accepted.load(Ordering::Relaxed),
            shed: self.shared.shed.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            depth: self.depth(),
        }
    }

    /// [`Frontend::stats`] scoped to one tenant (the `/t/<tenant>/stats`
    /// endpoint). An out-of-range tenant gets the all-zero snapshot.
    pub fn tenant_stats(&self, tenant: u32) -> FrontendStats {
        tenant_stats(&self.shared, tenant)
    }

    /// Wire the `/t/<tenant>/health` body producer. Replaces any previous
    /// provider; takes effect for the next request.
    pub fn set_health_provider(&self, provider: HealthProvider) {
        *self.shared.health.lock().expect("health provider poisoned") = Some(provider);
    }

    /// True once a client has requested `/shutdown`; the serving loop polls
    /// this for a clean drain-then-exit.
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown_req.load(Ordering::Relaxed)
    }

    /// Pop one queued arrival without waiting.
    pub fn try_recv(&self) -> Option<Arrival> {
        self.shared
            .queue
            .lock()
            .expect("queue poisoned")
            .pop_front()
    }

    /// Wait up to `wait` for the queue to be non-empty, then drain
    /// *everything* queued at that instant — the opportunistic batch the
    /// serving loop re-batches inference over. Returns an empty vec on
    /// timeout.
    pub fn drain_batch(&self, wait: Duration) -> Vec<Arrival> {
        let mut queue = self.shared.queue.lock().expect("queue poisoned");
        if queue.is_empty() {
            let (guard, _) = self
                .shared
                .ready
                .wait_timeout(queue, wait)
                .expect("queue poisoned");
            queue = guard;
        }
        queue.drain(..).collect()
    }

    /// Fold the front-end counters into a recorder (as `frontend.*`
    /// counters). Call once, after serving — `Recorder::add` accumulates.
    /// Per-tenant slices land as labeled series (`frontend.accepted`
    /// labeled `tenant="<id>"`, rendered by `/metrics` as
    /// `pythia_frontend_accepted{tenant="0"}`, and so on).
    pub fn fold_into(&self, rec: &mut Recorder) {
        let s = self.stats();
        rec.add("frontend.accepted", s.accepted);
        rec.add("frontend.shed", s.shed);
        rec.add("frontend.rejected", s.rejected);
        for (t, (acc, (shed, rej))) in self
            .shared
            .tenant_accepted
            .iter()
            .zip(
                self.shared
                    .tenant_shed
                    .iter()
                    .zip(&self.shared.tenant_rejected),
            )
            .enumerate()
        {
            let id = t.to_string();
            let labels = [("tenant", id.as_str())];
            rec.add_labeled("frontend.accepted", &labels, acc.load(Ordering::Relaxed));
            rec.add_labeled("frontend.shed", &labels, shed.load(Ordering::Relaxed));
            rec.add_labeled("frontend.rejected", &labels, rej.load(Ordering::Relaxed));
        }
    }

    /// Stop the accept thread, wait for it to exit, then answer every
    /// arrival still queued with `503 Service Unavailable` — an accepted
    /// client whose query will never be served must not hang until its own
    /// timeout waiting on a response that cannot come.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // The accept loop only observes the flag on its next connection;
        // poke it so shutdown doesn't wait for an external request.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        // The accept thread is gone, so the queue can only drain from here.
        let drained: Vec<Arrival> = self
            .shared
            .queue
            .lock()
            .expect("queue poisoned")
            .drain(..)
            .collect();
        for a in drained {
            a.responder
                .error("503 Service Unavailable", "shutting down\n");
        }
    }
}

/// Per-tenant counter snapshot (shared by the method and the wire endpoint).
fn tenant_stats(shared: &Shared, tenant: u32) -> FrontendStats {
    let t = tenant as usize;
    let load = |v: &Vec<AtomicU64>| v.get(t).map_or(0, |c| c.load(Ordering::Relaxed));
    FrontendStats {
        accepted: load(&shared.tenant_accepted),
        shed: load(&shared.tenant_shed),
        rejected: load(&shared.tenant_rejected),
        depth: shared
            .queue
            .lock()
            .expect("queue poisoned")
            .iter()
            .filter(|a| a.tenant == tenant)
            .count(),
    }
}

impl Drop for Frontend {
    fn drop(&mut self) {
        // Best effort: detach rather than block in drop. Explicit shutdown
        // (which joins) is preferred; tests use it.
        self.stop.store(true, Ordering::Relaxed);
        let _ = TcpStream::connect(self.addr);
    }
}

/// Render a served query's virtual-time outcome as the response body,
/// including its trace id and the queue/admission/inference/replay latency
/// breakdown (the same partition the `request.*` trace spans draw).
pub fn outcome_json(query: usize, q: &QueryOutcome) -> String {
    let b = q.breakdown();
    format!(
        "{{\"query\":{query},\"request\":{},\"arrival_us\":{},\"admitted_us\":{},\"start_us\":{},\
         \"end_us\":{},\"wait_us\":{},\"latency_us\":{},\"queue_us\":{},\"admission_us\":{},\
         \"infer_us\":{},\"replay_us\":{},\"admission\":{}}}\n",
        q.request,
        q.arrival.as_micros(),
        q.admitted.as_micros(),
        q.start.as_micros(),
        q.end.as_micros(),
        q.admission_wait().as_micros(),
        q.latency().as_micros(),
        b.queue_us,
        b.admission_us,
        b.infer_us,
        b.replay_us,
        q.wave
    )
}

/// Handle one accepted connection: parse the request head, then either
/// answer inline or enqueue the connection as an [`Arrival`].
fn answer(mut stream: TcpStream, shared: &Shared, cfg: &FrontendConfig) -> std::io::Result<()> {
    stream.set_write_timeout(Some(Duration::from_millis(500)))?;
    let path = match read_request_path(&mut stream, cfg.read_deadline)? {
        RequestHead::Path(p) => p,
        RequestHead::TimedOut => {
            shared.rejected.fetch_add(1, Ordering::Relaxed);
            return respond(
                &mut stream,
                "408 Request Timeout",
                "text/plain",
                "no complete request line before the deadline\n",
                None,
            );
        }
        RequestHead::Malformed => {
            shared.rejected.fetch_add(1, Ordering::Relaxed);
            return respond(
                &mut stream,
                "400 Bad Request",
                "text/plain",
                "expected GET <path>\n",
                None,
            );
        }
    };
    // Tenant-scoped routes: `/t/<tenant>/query/<idx>` and
    // `/t/<tenant>/stats`. Unprefixed routes act as tenant 0 with the
    // global (unscoped) `/stats`.
    let (tenant, route, scoped) = match path.strip_prefix("/t/") {
        None => (0u32, path.as_str(), false),
        Some(rest) => match rest.split_once('/') {
            Some((id, _)) => match id.parse::<u32>() {
                Ok(t) if (t as usize) < cfg.tenants.max(1) => (t, &path[3 + id.len()..], true),
                _ => {
                    shared.rejected.fetch_add(1, Ordering::Relaxed);
                    return respond(
                        &mut stream,
                        "400 Bad Request",
                        "text/plain",
                        &format!("bad tenant id; this front serves {} tenants\n", cfg.tenants),
                        None,
                    );
                }
            },
            None => {
                shared.rejected.fetch_add(1, Ordering::Relaxed);
                return respond(
                    &mut stream,
                    "400 Bad Request",
                    "text/plain",
                    "expected /t/<tenant>/<route>\n",
                    None,
                );
            }
        },
    };
    if route == "/healthz" {
        return respond(&mut stream, "200 OK", "text/plain", "ok\n", None);
    }
    if route == "/stats" {
        let stats = if scoped {
            tenant_stats(shared, tenant)
        } else {
            FrontendStats {
                accepted: shared.accepted.load(Ordering::Relaxed),
                shed: shared.shed.load(Ordering::Relaxed),
                rejected: shared.rejected.load(Ordering::Relaxed),
                depth: shared.queue.lock().expect("queue poisoned").len(),
            }
        };
        return respond(
            &mut stream,
            "200 OK",
            "application/json",
            &stats.to_json(),
            None,
        );
    }
    if route == "/health" && scoped {
        // Clone the Arc out so the provider runs without holding the slot
        // lock (it may take the quality tracker's lock internally).
        let provider = shared
            .health
            .lock()
            .expect("health provider poisoned")
            .clone();
        return match provider.and_then(|p| p(tenant, tenant_stats(shared, tenant))) {
            Some(body) => respond(&mut stream, "200 OK", "application/json", &body, None),
            None => respond(
                &mut stream,
                "404 Not Found",
                "text/plain",
                "no health provider wired for this tenant\n",
                None,
            ),
        };
    }
    if route == "/shutdown" {
        shared.shutdown_req.store(true, Ordering::Relaxed);
        return respond(&mut stream, "200 OK", "text/plain", "shutting down\n", None);
    }
    if let Some(rest) = route.strip_prefix("/query/") {
        let t = tenant as usize;
        match rest.parse::<usize>() {
            Ok(idx) if idx < cfg.catalog => {
                let mut queue = shared.queue.lock().expect("queue poisoned");
                if queue.len() >= cfg.shed_depth {
                    drop(queue);
                    shared.shed.fetch_add(1, Ordering::Relaxed);
                    if let Some(c) = shared.tenant_shed.get(t) {
                        c.fetch_add(1, Ordering::Relaxed);
                    }
                    return respond(
                        &mut stream,
                        "503 Service Unavailable",
                        "text/plain",
                        "queue full, retry later\n",
                        Some("Retry-After: 1"),
                    );
                }
                queue.push_back(Arrival {
                    query: idx,
                    tenant,
                    request: pythia_obs::request::mint(),
                    responder: Responder {
                        stream: Some(stream),
                    },
                });
                drop(queue);
                shared.accepted.fetch_add(1, Ordering::Relaxed);
                if let Some(c) = shared.tenant_accepted.get(t) {
                    c.fetch_add(1, Ordering::Relaxed);
                }
                shared.ready.notify_one();
                // Response deferred to the serving loop via the Responder.
                return Ok(());
            }
            _ => {
                shared.rejected.fetch_add(1, Ordering::Relaxed);
                if let Some(c) = shared.tenant_rejected.get(t) {
                    c.fetch_add(1, Ordering::Relaxed);
                }
                return respond(
                    &mut stream,
                    "400 Bad Request",
                    "text/plain",
                    &format!("bad query index; catalog has {} queries\n", cfg.catalog),
                    None,
                );
            }
        }
    }
    respond(
        &mut stream,
        "404 Not Found",
        "text/plain",
        "try /query/<idx>, /t/<tenant>/query/<idx>, /t/<tenant>/health, /healthz, /stats or /shutdown\n",
        None,
    )
}

/// Write one `Connection: close` HTTP response.
fn respond(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
    extra_header: Option<&str>,
) -> std::io::Result<()> {
    let extra = extra_header.map(|h| format!("{h}\r\n")).unwrap_or_default();
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n{extra}Connection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// The outcome of reading a request head from a connection.
enum RequestHead {
    /// A well-formed `GET <path> ...` request line.
    Path(String),
    /// The client closed or sent something that isn't a simple GET line.
    Malformed,
    /// No complete request line arrived within the deadline.
    TimedOut,
}

/// Parse the request line's path from the head of an HTTP/1.x request,
/// giving the client at most `deadline` of total wall time to produce a
/// complete line. A byte-trickling or idle client therefore cannot hold its
/// handler thread for longer than the deadline.
fn read_request_path(stream: &mut TcpStream, deadline: Duration) -> std::io::Result<RequestHead> {
    let started = std::time::Instant::now();
    let mut buf = [0u8; 1024];
    let mut head = Vec::new();
    loop {
        let remaining = deadline.saturating_sub(started.elapsed());
        if remaining.is_zero() {
            return Ok(RequestHead::TimedOut);
        }
        // Cap each blocking read so the overall deadline is honored even
        // when the client trickles one byte per read.
        stream.set_read_timeout(Some(remaining.min(Duration::from_millis(500))))?;
        let n = match stream.read(&mut buf) {
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::WouldBlock =>
            {
                continue; // per-read timeout; the deadline check above decides
            }
            Err(e) => return Err(e),
        };
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(2).any(|w| w == b"\r\n") || head.len() >= 8 * 1024 {
            break;
        }
    }
    let line_end = head
        .windows(2)
        .position(|w| w == b"\r\n")
        .unwrap_or(head.len());
    let line = String::from_utf8_lossy(&head[..line_end]);
    let mut parts = line.split_whitespace();
    match (parts.next(), parts.next()) {
        (Some("GET"), Some(path)) => Ok(RequestHead::Path(path.to_owned())),
        _ => Ok(RequestHead::Malformed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{
        AdmissionMode, InferenceCharge, PrefetchServer, QueuePolicy, ServerConfig, ServerRequest,
    };
    use pythia_db::catalog::Database;
    use pythia_db::plan::PlanNode;
    use pythia_db::runtime::RunConfig;
    use pythia_db::trace::Trace;
    use pythia_db::types::Schema;
    use pythia_sim::SimDuration;

    /// Blocking one-shot HTTP GET against the front.
    fn http_get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect to frontend");
        let req = format!("GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
        stream.write_all(req.as_bytes()).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    /// Spin until `cond` holds (bounded) — accept-thread effects are async.
    fn wait_for(mut cond: impl FnMut() -> bool) {
        for _ in 0..500 {
            if cond() {
                return;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        panic!("condition not reached within 1s");
    }

    #[test]
    fn healthz_stats_and_unknown_paths() {
        let fe = Frontend::start("127.0.0.1:0", FrontendConfig::new(4)).expect("bind");
        let ok = http_get(fe.addr(), "/healthz");
        assert!(ok.starts_with("HTTP/1.1 200 OK\r\n"), "{ok}");
        assert!(ok.ends_with("ok\n"), "{ok}");

        let stats = http_get(fe.addr(), "/stats");
        assert!(stats.contains("\"accepted\":0"), "{stats}");
        assert!(stats.contains("\"depth\":0"), "{stats}");

        let missing = http_get(fe.addr(), "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

        // Bad query indices and malformed request lines are 400s.
        let bad = http_get(fe.addr(), "/query/99");
        assert!(bad.starts_with("HTTP/1.1 400"), "{bad}");
        let worse = http_get(fe.addr(), "/query/banana");
        assert!(worse.starts_with("HTTP/1.1 400"), "{worse}");
        {
            let mut raw = TcpStream::connect(fe.addr()).unwrap();
            raw.write_all(b"BLAH\r\n\r\n").unwrap();
            let mut out = String::new();
            raw.read_to_string(&mut out).unwrap();
            assert!(out.starts_with("HTTP/1.1 400"), "{out}");
        }
        wait_for(|| fe.stats().rejected == 3);
        fe.shutdown();
    }

    #[test]
    fn queue_bounds_and_load_shedding() {
        // Depth target 2: the first two requests queue (responses deferred),
        // the third is shed with 503 + Retry-After while the queue is full.
        let cfg = FrontendConfig {
            shed_depth: 2,
            ..FrontendConfig::new(8)
        };
        let fe = Frontend::start("127.0.0.1:0", cfg).expect("bind");

        let mut open = Vec::new();
        for i in 0..2 {
            let mut s = TcpStream::connect(fe.addr()).unwrap();
            s.write_all(format!("GET /query/{i} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
                .unwrap();
            // Handlers run on per-connection threads; wait for each request
            // to land before sending the next so the queue order is pinned.
            wait_for(|| fe.depth() == i + 1);
            open.push(s);
        }

        let shed = http_get(fe.addr(), "/query/2");
        assert!(shed.starts_with("HTTP/1.1 503"), "{shed}");
        assert!(shed.contains("Retry-After: 1"), "{shed}");
        assert_eq!(fe.stats().shed, 1);
        assert_eq!(fe.stats().accepted, 2);
        assert_eq!(fe.depth(), 2, "shed request must not grow the queue");

        // Drain and answer the two queued arrivals; their clients get the
        // deferred responses.
        for want in 0..2 {
            let a = fe.try_recv().expect("queued arrival");
            assert_eq!(a.query, want, "FIFO queue order");
            a.responder.ok_json(&format!("{{\"query\":{want}}}\n"));
        }
        assert!(fe.try_recv().is_none());
        for (i, mut s) in open.into_iter().enumerate() {
            let mut out = String::new();
            s.read_to_string(&mut out).unwrap();
            assert!(out.starts_with("HTTP/1.1 200 OK"), "{out}");
            assert!(out.contains(&format!("\"query\":{i}")), "{out}");
        }

        // Capacity freed: the next request is accepted again.
        let mut s = TcpStream::connect(fe.addr()).unwrap();
        s.write_all(b"GET /query/3 HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        wait_for(|| fe.depth() == 1);
        fe.try_recv()
            .unwrap()
            .responder
            .error("500 Internal Server Error", "sorry\n");
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 500"), "{out}");

        fe.shutdown();
    }

    #[test]
    fn idle_connections_do_not_stall_other_requests() {
        // Open several connections that never send a byte. With per-
        // connection handler threads, /healthz must still answer promptly;
        // the old serial accept loop would stall 500ms per read per idle
        // connection (≥2s here).
        let fe = Frontend::start("127.0.0.1:0", FrontendConfig::new(4)).expect("bind");
        let idlers: Vec<TcpStream> = (0..4)
            .map(|_| TcpStream::connect(fe.addr()).expect("connect idler"))
            .collect();
        let started = std::time::Instant::now();
        let ok = http_get(fe.addr(), "/healthz");
        assert!(ok.starts_with("HTTP/1.1 200 OK\r\n"), "{ok}");
        assert!(
            started.elapsed() < Duration::from_secs(1),
            "healthz stalled {:?} behind idle connections",
            started.elapsed()
        );
        drop(idlers);
        fe.shutdown();
    }

    #[test]
    fn slow_clients_get_request_timeout() {
        // A client that trickles a partial request line and then stalls must
        // be answered 408 once the configured deadline expires (and counted
        // as rejected), rather than holding its handler thread forever.
        let cfg = FrontendConfig {
            read_deadline: Duration::from_millis(300),
            ..FrontendConfig::new(4)
        };
        let fe = Frontend::start("127.0.0.1:0", cfg).expect("bind");
        let mut trickler = TcpStream::connect(fe.addr()).expect("connect");
        trickler.write_all(b"GET /heal").unwrap(); // no CRLF, then silence
        let mut out = String::new();
        trickler.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 408"), "{out}");
        wait_for(|| fe.stats().rejected == 1);
        fe.shutdown();
    }

    #[test]
    fn shutdown_answers_in_queue_requests_with_503() {
        // A request still sitting in the queue when the front shuts down must
        // get an answer, not a silently dropped connection.
        let fe = Frontend::start("127.0.0.1:0", FrontendConfig::new(4)).expect("bind");
        let mut s = TcpStream::connect(fe.addr()).unwrap();
        s.write_all(b"GET /query/1 HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        wait_for(|| fe.depth() == 1);
        fe.shutdown();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 503"), "{out}");
        assert!(out.contains("shutting down"), "{out}");
    }

    #[test]
    fn tenant_routes_attribute_queries_and_scope_stats() {
        let cfg = FrontendConfig {
            tenants: 2,
            ..FrontendConfig::new(8)
        };
        let fe = Frontend::start("127.0.0.1:0", cfg).expect("bind");

        // Legacy unprefixed routes act as tenant 0; /t/1/... routes to
        // tenant 1. Hold the streams open so the arrivals stay queued.
        let mut open = Vec::new();
        for (i, path) in ["/query/1", "/t/1/query/2"].iter().enumerate() {
            let mut s = TcpStream::connect(fe.addr()).unwrap();
            s.write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
                .unwrap();
            wait_for(|| fe.depth() == i + 1);
            open.push(s);
        }

        let a = fe.try_recv().expect("first arrival");
        assert_eq!((a.query, a.tenant), (1, 0));
        a.responder.ok_json("{}\n");
        let b = fe.try_recv().expect("second arrival");
        assert_eq!((b.query, b.tenant), (2, 1));
        b.responder.ok_json("{}\n");
        drop(open);

        // Scoped stats slice the per-tenant counters; the global /stats keeps
        // the totals.
        let t0 = http_get(fe.addr(), "/t/0/stats");
        assert!(t0.contains("\"accepted\":1"), "{t0}");
        let t1 = http_get(fe.addr(), "/t/1/stats");
        assert!(t1.contains("\"accepted\":1"), "{t1}");
        let all = http_get(fe.addr(), "/stats");
        assert!(all.contains("\"accepted\":2"), "{all}");
        assert_eq!(fe.tenant_stats(0).accepted, 1);
        assert_eq!(fe.tenant_stats(1).accepted, 1);

        // Out-of-range or malformed tenant ids are 400s.
        let bad = http_get(fe.addr(), "/t/9/query/1");
        assert!(bad.starts_with("HTTP/1.1 400"), "{bad}");
        let worse = http_get(fe.addr(), "/t/x/stats");
        assert!(worse.starts_with("HTTP/1.1 400"), "{worse}");
        let trunc = http_get(fe.addr(), "/t/1");
        assert!(trunc.starts_with("HTTP/1.1 400"), "{trunc}");
        wait_for(|| fe.stats().rejected == 3);

        // A bad query index on a tenant route is attributed to that tenant.
        let badq = http_get(fe.addr(), "/t/1/query/99");
        assert!(badq.starts_with("HTTP/1.1 400"), "{badq}");
        wait_for(|| fe.tenant_stats(1).rejected == 1);

        fe.shutdown();
    }

    #[test]
    fn tenant_health_route_uses_the_wired_provider() {
        let cfg = FrontendConfig {
            tenants: 2,
            ..FrontendConfig::new(4)
        };
        let fe = Frontend::start("127.0.0.1:0", cfg).expect("bind");

        // No provider wired yet: the route exists but answers 404, and the
        // unprefixed variant stays an unknown path.
        let bare = http_get(fe.addr(), "/t/0/health");
        assert!(bare.starts_with("HTTP/1.1 404"), "{bare}");
        assert!(bare.contains("no health provider"), "{bare}");

        fe.set_health_provider(Arc::new(|tenant, stats: FrontendStats| {
            (tenant == 1).then(|| {
                format!(
                    "{{\"tenant\":{tenant},\"observations\":3,\"accepted\":{}}}\n",
                    stats.accepted
                )
            })
        }));
        let known = http_get(fe.addr(), "/t/1/health");
        assert!(known.starts_with("HTTP/1.1 200 OK"), "{known}");
        assert!(known.contains("application/json"), "{known}");
        assert!(known.contains("\"observations\":3"), "{known}");
        // Provider declined this tenant: 404, not an empty 200.
        let unknown = http_get(fe.addr(), "/t/0/health");
        assert!(unknown.starts_with("HTTP/1.1 404"), "{unknown}");
        // Out-of-range tenants are rejected before the provider runs.
        let bad = http_get(fe.addr(), "/t/9/health");
        assert!(bad.starts_with("HTTP/1.1 400"), "{bad}");
        // `/health` without a tenant prefix is not a route.
        let unscoped = http_get(fe.addr(), "/health");
        assert!(unscoped.starts_with("HTTP/1.1 404"), "{unscoped}");
        assert!(unscoped.contains("/t/<tenant>/health"), "{unscoped}");
        fe.shutdown();
    }

    #[test]
    fn fold_into_exports_per_tenant_labeled_series() {
        let cfg = FrontendConfig {
            tenants: 2,
            shed_depth: 1,
            ..FrontendConfig::new(8)
        };
        let fe = Frontend::start("127.0.0.1:0", cfg).expect("bind");

        // Tenant 1: one accepted (held open so the queue stays full), then
        // one shed at the depth target. Tenant 0: one rejected index.
        let mut s = TcpStream::connect(fe.addr()).unwrap();
        s.write_all(b"GET /t/1/query/1 HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        wait_for(|| fe.depth() == 1);
        let shed = http_get(fe.addr(), "/t/1/query/2");
        assert!(shed.starts_with("HTTP/1.1 503"), "{shed}");
        let bad = http_get(fe.addr(), "/query/99");
        assert!(bad.starts_with("HTTP/1.1 400"), "{bad}");
        wait_for(|| fe.stats().rejected == 1);

        let mut rec = Recorder::enabled();
        fe.fold_into(&mut rec);
        assert_eq!(rec.counter("frontend.accepted"), 1);
        assert_eq!(rec.labeled("frontend.accepted", &[("tenant", "1")]), 1);
        assert_eq!(rec.labeled("frontend.accepted", &[("tenant", "0")]), 0);
        assert_eq!(rec.labeled("frontend.shed", &[("tenant", "1")]), 1);
        assert_eq!(rec.labeled("frontend.rejected", &[("tenant", "0")]), 1);
        let prom = rec.snapshot().to_prometheus();
        assert!(
            prom.contains("pythia_frontend_accepted{tenant=\"1\"} 1\n"),
            "{prom}"
        );

        fe.try_recv().unwrap().responder.ok_json("{}\n");
        drop(s);
        fe.shutdown();
    }

    #[test]
    fn end_to_end_socket_serving_with_continuous_admission() {
        // A real (tiny) catalog served over the socket by a continuous-
        // admission server: request → queue → drain_batch → serve → JSON
        // outcome on the wire.
        let mut db = Database::new();
        let t = db.create_table("t", Schema::ints(&["a"]));
        for i in 0..20_000i64 {
            db.insert(t, Database::row(&[i]));
        }
        let plans: Vec<PlanNode> = (0..3)
            .map(|_| PlanNode::SeqScan {
                table: t,
                pred: None,
            })
            .collect();
        let traces: Vec<Trace> = plans
            .iter()
            .map(|p| pythia_db::exec::execute(p, &db).1)
            .collect();

        let fe = Frontend::start("127.0.0.1:0", FrontendConfig::new(plans.len())).expect("bind");
        let addr = fe.addr();
        std::thread::scope(|scope| {
            let fe_ref = &fe;
            let db_ref = &db;
            let plans_ref = &plans;
            let traces_ref = &traces;
            scope.spawn(move || {
                let cfg = ServerConfig {
                    concurrency: 2,
                    admission: AdmissionMode::Continuous,
                    policy: QueuePolicy::Fifo,
                    charge: InferenceCharge::Fixed(SimDuration::ZERO),
                    prefetch_budget: None,
                    tenant_quota: None,
                };
                let mut srv = PrefetchServer::new(db_ref, &RunConfig::default(), cfg);
                loop {
                    let batch = fe_ref.drain_batch(Duration::from_millis(20));
                    if batch.is_empty() {
                        if fe_ref.shutdown_requested() && fe_ref.depth() == 0 {
                            break;
                        }
                        continue;
                    }
                    let reqs: Vec<ServerRequest<'_>> = batch
                        .iter()
                        .map(|a| {
                            ServerRequest::new(
                                &plans_ref[a.query],
                                &traces_ref[a.query],
                                SimDuration::ZERO,
                            )
                            .with_request(a.request)
                        })
                        .collect();
                    let rep = srv.serve(&reqs);
                    for (a, q) in batch.into_iter().zip(&rep.queries) {
                        a.responder.ok_json(&outcome_json(a.query, q));
                    }
                }
            });

            let resp = http_get(addr, "/query/1");
            assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
            assert!(resp.contains("application/json"), "{resp}");
            assert!(resp.contains("\"query\":1"), "{resp}");
            assert!(resp.contains("\"latency_us\":"), "{resp}");
            assert!(resp.contains("\"admission\":0"), "{resp}");
            // The outcome carries the front-end-minted trace id and the
            // queue/admission/inference/replay breakdown.
            assert!(resp.contains("\"request\":"), "{resp}");
            assert!(
                !resp.contains("\"request\":0,"),
                "minted id is never 0: {resp}"
            );
            for field in [
                "\"queue_us\":",
                "\"admission_us\":",
                "\"infer_us\":",
                "\"replay_us\":",
            ] {
                assert!(resp.contains(field), "missing {field} in {resp}");
            }

            let bye = http_get(addr, "/shutdown");
            assert!(bye.starts_with("HTTP/1.1 200"), "{bye}");
        });
        assert_eq!(fe.stats().accepted, 1);
        fe.shutdown();
    }
}
