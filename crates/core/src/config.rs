//! Pythia configuration.

/// Hyperparameters and structural choices for Pythia's models.
///
/// Defaults follow the paper (§5.1): 100-d embeddings, 2 encoder layers with
/// 10 heads, an 800-unit decoder hidden layer, trained with Adam on
/// `BCEWithLogitsLoss`. The feed-forward width inside the encoder and the
/// positive-class weight are our choices (the paper does not state them).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct PythiaConfig {
    /// Token embedding / query representation width (paper: 100).
    pub embed_dim: usize,
    /// Attention heads (paper: 10).
    pub heads: usize,
    /// Encoder layers (paper: 2).
    pub layers: usize,
    /// Encoder feed-forward width.
    pub ff_dim: usize,
    /// Decoder hidden width (paper: 800).
    pub decoder_hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// `BCEWithLogitsLoss` positive-class weight — page labels are extremely
    /// sparse, so positives are up-weighted.
    pub pos_weight: f32,
    /// Sigmoid threshold for emitting a page (0.5 like the paper's 0/1
    /// output reading).
    pub threshold: f32,
    /// Maximum serialized-plan length (longer plans are truncated).
    pub max_seq_len: usize,
    /// Objects with more pages than this are split into partitioned models
    /// (paper §3.3 "we split large tables into several smaller partitions").
    pub partition_pages: usize,
    /// Train a model for an object only if it is accessed non-sequentially
    /// by at least this fraction of training queries.
    pub min_object_support: f64,
    /// If set, each object model only predicts its `k` most frequently
    /// accessed pages (Figure 12h).
    pub top_k: Option<usize>,
    /// Train one combined model per (base table + index) pair instead of two
    /// separate models (Figure 12d ablation; paper default is separate).
    pub combined_index_base: bool,
    /// RNG seed for init and batch shuffling.
    pub seed: u64,
}

impl Default for PythiaConfig {
    fn default() -> Self {
        PythiaConfig {
            embed_dim: 100,
            heads: 10,
            layers: 2,
            ff_dim: 256,
            decoder_hidden: 800,
            epochs: 10,
            batch_size: 64,
            lr: 1e-3,
            pos_weight: 4.0,
            threshold: 0.5,
            max_seq_len: 128,
            partition_pages: 8192,
            min_object_support: 0.1,
            top_k: None,
            combined_index_base: false,
            seed: 0x9717,
        }
    }
}

impl PythiaConfig {
    /// A scaled-down configuration for unit tests and quick experiment runs:
    /// same architecture, smaller widths and fewer epochs.
    pub fn fast() -> Self {
        PythiaConfig {
            embed_dim: 32,
            heads: 4,
            layers: 2,
            ff_dim: 64,
            decoder_hidden: 128,
            epochs: 6,
            batch_size: 32,
            lr: 2e-3,
            ..Default::default()
        }
    }

    /// Validate invariants.
    pub fn validate(&self) -> Result<(), String> {
        if !self.embed_dim.is_multiple_of(self.heads) {
            return Err(format!(
                "embed_dim {} not divisible by heads {}",
                self.embed_dim, self.heads
            ));
        }
        if self.epochs == 0 || self.batch_size == 0 {
            return Err("epochs and batch_size must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.min_object_support) {
            return Err("min_object_support must be in [0,1]".into());
        }
        if self.partition_pages == 0 {
            return Err("partition_pages must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = PythiaConfig::default();
        assert_eq!(c.embed_dim, 100);
        assert_eq!(c.heads, 10);
        assert_eq!(c.layers, 2);
        assert_eq!(c.decoder_hidden, 800);
        c.validate().unwrap();
    }

    #[test]
    fn fast_is_valid() {
        PythiaConfig::fast().validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_heads() {
        let c = PythiaConfig {
            embed_dim: 100,
            heads: 7,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }
}
