//! Versioned, multi-tenant model registry: N independent databases served
//! from one process group, each with its own hot-swappable
//! [`TrainedWorkload`] fleet.
//!
//! The ROADMAP north-star ("millions of users") needs three properties the
//! plain [`crate::workload::WorkloadRegistry`] lacks:
//!
//! * **Tenancy** — a [`ModelRegistry`] maps tenant name → [`TenantFleet`];
//!   each fleet is an isolated set of trained workloads over that tenant's
//!   catalog. Tenants never see each other's models.
//! * **Hot swap** — [`TenantFleet::publish`] installs retrained weights by
//!   an atomic `Arc` swap under a briefly-held write lock. Serving code
//!   clones the `Arc` once per admission batch ([`crate::server`]), so a
//!   prediction batch always runs against one coherent model version and a
//!   swap lands *between* admissions, never inside one. Versions are
//!   monotonically increasing per fleet.
//! * **Checked persistence** — models go to disk through the
//!   [`crate::serde_utils::versioned`] envelope with a
//!   [`CatalogCompat`] header (modeled objects + page counts, vocabulary
//!   fingerprint, architecture shape). [`load_model`] refuses a file whose
//!   header disagrees with the serving catalog or with its own body, so a
//!   model trained against a different database fails loudly instead of
//!   silently mispredicting.
//!
//! Sharding note: within a fleet, per-object inference is already
//! shard-affine — [`crate::predictor::shard_key`] pins every `object_id` to
//! a fixed `pythia_nn::pool` worker, so per-object scratch state stays
//! worker-local regardless of batch composition. Cross-*process* sharding
//! (splitting one tenant's objects across machines) is future work; see
//! ROADMAP.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use pythia_db::catalog::{Database, ObjectId};
use pythia_db::plan::PlanNode;

use crate::predictor::TrainedWorkload;
use crate::serde_utils::versioned;
use crate::workload::MATCH_THRESHOLD;

/// Envelope `kind` for persisted models.
pub const MODEL_KIND: &str = "pythia.model";

/// Catalog-compatibility header persisted alongside every model: everything
/// needed to decide "was this trained against the catalog I'm serving?"
/// without trusting the body.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CatalogCompat {
    /// `(object, page count at training time)` per separately modeled
    /// object, in id order.
    pub objects: Vec<(ObjectId, u32)>,
    /// [`crate::vocab::Vocab::fingerprint`] — token ids are only meaningful
    /// against the exact vocabulary the weights were trained with.
    pub vocab_hash: u64,
    pub vocab_len: usize,
    /// Architecture shape; weights of one shape cannot serve another.
    pub embed_dim: usize,
    pub layers: usize,
    pub heads: usize,
}

impl CatalogCompat {
    /// The header describing `tw` as trained.
    pub fn of(tw: &TrainedWorkload) -> CatalogCompat {
        CatalogCompat {
            objects: tw.models.iter().map(|(o, m)| (*o, m.n_pages)).collect(),
            vocab_hash: tw.vocab.fingerprint(),
            vocab_len: tw.vocab.len(),
            embed_dim: tw.cfg.embed_dim,
            layers: tw.cfg.layers,
            heads: tw.cfg.heads,
        }
    }

    /// Check the header against a serving catalog: every recorded object
    /// must still exist with the same page count.
    pub fn check_db(&self, db: &Database) -> Result<(), String> {
        for &(obj, pages) in &self.objects {
            if (obj.0 as usize) >= db.object_count() {
                return Err(format!(
                    "compat header lists object {obj:?}, but this catalog has only {} objects",
                    db.object_count()
                ));
            }
            let have = db.object_pages(obj);
            if have != pages {
                return Err(format!(
                    "compat header sized object {obj:?} ('{}') at {pages} pages, but this \
                     catalog has {have}",
                    db.object_name(obj)
                ));
            }
        }
        Ok(())
    }

    /// Check the header against a deserialized body (tamper / mix-up guard).
    pub fn check_body(&self, tw: &TrainedWorkload) -> Result<(), String> {
        let actual = CatalogCompat::of(tw);
        if *self != actual {
            return Err(format!(
                "compat header does not describe the model body (header {self:?}, body {actual:?})"
            ));
        }
        Ok(())
    }
}

/// The persisted payload: version + compat header + weights.
#[derive(serde::Serialize, serde::Deserialize)]
struct ModelFile {
    version: u64,
    compat: CatalogCompat,
    workload: TrainedWorkload,
}

/// Write `tw` at `version` to `path` as an enveloped, compat-headered file.
pub fn save_model(path: impl AsRef<Path>, version: u64, tw: &TrainedWorkload) -> io::Result<()> {
    let file = ModelFile {
        version,
        compat: CatalogCompat::of(tw),
        workload: tw.duplicate(),
    };
    versioned::save(path, MODEL_KIND, &file)
}

/// Load a model written by [`save_model`], refusing anything incompatible
/// with the serving catalog `db`. Returns `(version, workload)`.
pub fn load_model(path: impl AsRef<Path>, db: &Database) -> io::Result<(u64, TrainedWorkload)> {
    let file: ModelFile = versioned::load(path, MODEL_KIND)?;
    let fail = |e: String| io::Error::new(io::ErrorKind::InvalidData, e);
    file.compat.check_db(db).map_err(fail)?;
    file.compat.check_body(&file.workload).map_err(fail)?;
    file.workload.check_compat(db).map_err(fail)?;
    Ok((file.version, file.workload))
}

/// One installed model: immutable weights plus the fleet version they were
/// published at. Serving code holds an `Arc<VersionedWorkload>` for the span
/// of one admission batch.
pub struct VersionedWorkload {
    /// Monotonically increasing per fleet; bumped by every publish.
    pub version: u64,
    pub workload: TrainedWorkload,
}

/// One tenant's hot-swappable workload fleet, keyed by workload name.
pub struct TenantFleet {
    name: String,
    next_version: AtomicU64,
    slots: RwLock<BTreeMap<String, Arc<VersionedWorkload>>>,
}

impl TenantFleet {
    /// An empty fleet for `name`. Versions start at 1.
    pub fn new(name: &str) -> TenantFleet {
        TenantFleet {
            name: name.to_owned(),
            next_version: AtomicU64::new(1),
            slots: RwLock::new(BTreeMap::new()),
        }
    }

    /// Tenant name this fleet serves.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Install (or replace) the model for `tw.name`, returning the version
    /// it was published at. The write lock is held only for the map insert —
    /// an atomic `Arc` swap — so in-flight readers are never blocked on
    /// anything slower than a pointer store.
    pub fn publish(&self, tw: TrainedWorkload) -> u64 {
        let version = self.next_version.fetch_add(1, Ordering::Relaxed);
        let slot = Arc::new(VersionedWorkload {
            version,
            workload: tw,
        });
        self.slots
            .write()
            .expect("fleet lock poisoned")
            .insert(slot.workload.name.clone(), slot);
        version
    }

    /// Load a persisted model (catalog-checked against `db`) and publish it.
    /// The on-disk version is informational; the fleet assigns its own.
    pub fn publish_from_file(&self, path: impl AsRef<Path>, db: &Database) -> io::Result<u64> {
        let (_, tw) = load_model(path, db)?;
        Ok(self.publish(tw))
    }

    /// The currently installed model for a workload name, if any.
    pub fn current(&self, workload: &str) -> Option<Arc<VersionedWorkload>> {
        self.slots
            .read()
            .expect("fleet lock poisoned")
            .get(workload)
            .cloned()
    }

    /// The single installed model of a one-workload fleet (first by name
    /// otherwise) — the common serving shape.
    pub fn any(&self) -> Option<Arc<VersionedWorkload>> {
        self.slots
            .read()
            .expect("fleet lock poisoned")
            .values()
            .next()
            .cloned()
    }

    /// Names of installed workloads, in order.
    pub fn workload_names(&self) -> Vec<String> {
        self.slots
            .read()
            .expect("fleet lock poisoned")
            .keys()
            .cloned()
            .collect()
    }

    /// Number of installed workloads.
    pub fn len(&self) -> usize {
        self.slots.read().expect("fleet lock poisoned").len()
    }

    /// Whether no workloads are installed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Find the installed workload a query belongs to, if any: highest
    /// object-set Jaccard above [`MATCH_THRESHOLD`] (Algorithm 3 lines 3–4,
    /// same rule as [`crate::workload::WorkloadRegistry::match_plan`]).
    pub fn match_plan(&self, db: &Database, plan: &PlanNode) -> Option<Arc<VersionedWorkload>> {
        let objs: std::collections::BTreeSet<_> = plan.objects(db).into_iter().collect();
        if objs.is_empty() {
            return None;
        }
        let slots = self.slots.read().expect("fleet lock poisoned");
        let mut best: Option<(f64, &Arc<VersionedWorkload>)> = None;
        for slot in slots.values() {
            let tw = &slot.workload;
            let inter = objs.intersection(&tw.object_union).count();
            let union = objs.union(&tw.object_union).count();
            let j = if union == 0 {
                0.0
            } else {
                inter as f64 / union as f64
            };
            if j >= MATCH_THRESHOLD && best.map(|(bj, _)| j > bj).unwrap_or(true) {
                best = Some((j, slot));
            }
        }
        best.map(|(_, slot)| Arc::clone(slot))
    }
}

/// The process-wide registry: tenant name → fleet. Cheap to share
/// (`Arc<ModelRegistry>`); all methods take `&self`.
#[derive(Default)]
pub struct ModelRegistry {
    tenants: RwLock<BTreeMap<String, Arc<TenantFleet>>>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> ModelRegistry {
        ModelRegistry::default()
    }

    /// The fleet for `name`, created empty on first use.
    pub fn tenant(&self, name: &str) -> Arc<TenantFleet> {
        if let Some(fleet) = self.get(name) {
            return fleet;
        }
        let mut tenants = self.tenants.write().expect("registry lock poisoned");
        Arc::clone(
            tenants
                .entry(name.to_owned())
                .or_insert_with(|| Arc::new(TenantFleet::new(name))),
        )
    }

    /// The fleet for `name`, if it exists.
    pub fn get(&self, name: &str) -> Option<Arc<TenantFleet>> {
        self.tenants
            .read()
            .expect("registry lock poisoned")
            .get(name)
            .cloned()
    }

    /// Known tenant names, in order.
    pub fn tenant_names(&self) -> Vec<String> {
        self.tenants
            .read()
            .expect("registry lock poisoned")
            .keys()
            .cloned()
            .collect()
    }

    /// Number of tenants.
    pub fn len(&self) -> usize {
        self.tenants.read().expect("registry lock poisoned").len()
    }

    /// Whether no tenants exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PythiaConfig;
    use crate::predictor::train_workload;
    use pythia_db::exec::execute;
    use pythia_db::expr::Pred;
    use pythia_db::types::Schema;

    fn star_db() -> (Database, Vec<PlanNode>) {
        let mut db = Database::new();
        let fact = db.create_table("fact", Schema::ints(&["id", "date", "dkey"]));
        let dim = db.create_table("dim", Schema::ints(&["d_id", "attr"]));
        for i in 0..600i64 {
            db.insert(fact, Database::row(&[i, i % 100, i % 50]));
            db.insert(dim, Database::row(&[i % 50, i % 7]));
        }
        let idx = db.create_index("dim_pk", dim, 0);
        let plans: Vec<PlanNode> = (0..8)
            .map(|i| PlanNode::IndexNLJoin {
                outer: Box::new(PlanNode::SeqScan {
                    table: fact,
                    pred: Some(Pred::Between {
                        col: 1,
                        lo: i * 7,
                        hi: i * 7 + 10,
                    }),
                }),
                outer_key: 2,
                inner: dim,
                inner_index: idx,
                inner_pred: None,
            })
            .collect();
        (db, plans)
    }

    fn train(db: &Database, plans: &[PlanNode], name: &str) -> TrainedWorkload {
        let traces: Vec<_> = plans.iter().map(|p| execute(p, db).1).collect();
        let cfg = PythiaConfig {
            epochs: 2,
            ..PythiaConfig::fast()
        };
        train_workload(db, name, plans, &traces, None, &cfg)
    }

    #[test]
    fn publish_bumps_versions_and_swaps_atomically() {
        let (db, plans) = star_db();
        let fleet = TenantFleet::new("acme");
        assert!(fleet.is_empty());
        assert!(fleet.any().is_none());
        assert!(fleet.current("star").is_none());

        let tw = train(&db, &plans, "star");
        let held = {
            let v1 = fleet.publish(tw.duplicate());
            assert_eq!(v1, 1);
            fleet.current("star").expect("installed")
        };
        assert_eq!(held.version, 1);

        // Re-publish while a reader still holds the old Arc: the reader's
        // model stays alive and untouched; new lookups see the new version.
        let v2 = fleet.publish(tw.duplicate());
        assert_eq!(v2, 2);
        assert_eq!(held.version, 1, "in-flight reader keeps its snapshot");
        assert_eq!(fleet.current("star").unwrap().version, 2);
        assert_eq!(fleet.len(), 1, "same name replaces, not accumulates");

        // Bit-identical weights either side of the swap.
        let p = &plans[0];
        assert_eq!(
            held.workload.infer(&db, p).pages,
            fleet.current("star").unwrap().workload.infer(&db, p).pages
        );
    }

    #[test]
    fn fleet_matches_plans_like_the_flat_registry() {
        let (db, plans) = star_db();
        let fleet = TenantFleet::new("acme");
        fleet.publish(train(&db, &plans, "star"));
        let hit = fleet.match_plan(&db, &plans[3]).expect("star matches");
        assert_eq!(hit.workload.name, "star");
        // A foreign-shaped query does not match.
        let mut other = Database::new();
        let t = other.create_table("lonely", Schema::ints(&["x"]));
        other.insert(t, Database::row(&[1]));
        let foreign = PlanNode::SeqScan {
            table: t,
            pred: None,
        };
        assert!(fleet.match_plan(&other, &foreign).is_none());
    }

    #[test]
    fn tenants_are_isolated() {
        let (db, plans) = star_db();
        let reg = ModelRegistry::new();
        assert!(reg.is_empty());
        let a = reg.tenant("alpha");
        let b = reg.tenant("beta");
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.tenant_names(), vec!["alpha", "beta"]);
        a.publish(train(&db, &plans, "star"));
        assert_eq!(a.len(), 1);
        assert!(b.is_empty(), "publishing to alpha is invisible to beta");
        assert!(b.current("star").is_none());
        // tenant() is get-or-create: the same Arc comes back.
        assert!(Arc::ptr_eq(&a, &reg.tenant("alpha")));
        assert!(reg.get("gamma").is_none());
    }

    #[test]
    fn persisted_models_are_catalog_checked() {
        let (db, plans) = star_db();
        let tw = train(&db, &plans, "star");
        let path = std::env::temp_dir().join("pythia_registry_model.json");
        save_model(&path, 7, &tw).unwrap();

        // Same catalog: loads, preserving the stored version and weights.
        let (version, loaded) = load_model(&path, &db).unwrap();
        assert_eq!(version, 7);
        assert_eq!(
            loaded.infer(&db, &plans[0]).pages,
            tw.infer(&db, &plans[0]).pages
        );

        // publish_from_file installs it under the fleet's own version.
        let fleet = TenantFleet::new("acme");
        let v = fleet.publish_from_file(&path, &db).unwrap();
        assert_eq!(v, 1);
        assert_eq!(fleet.current("star").unwrap().version, 1);

        // A catalog whose dim grew: refused by the header check alone.
        let mut grown = Database::new();
        let fact = grown.create_table("fact", Schema::ints(&["id", "date", "dkey"]));
        let dim = grown.create_table("dim", Schema::ints(&["d_id", "attr"]));
        for i in 0..600i64 {
            grown.insert(fact, Database::row(&[i, i % 100, i % 50]));
        }
        for d in 0..2000i64 {
            grown.insert(dim, Database::row(&[d, d % 7]));
        }
        grown.create_index("dim_pk", dim, 0);
        let err = load_model(&path, &grown).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("pages"), "{err}");

        // A tampered header (vocab hash flipped) is caught even when the
        // catalog happens to agree.
        let json = std::fs::read_to_string(&path).unwrap();
        let tampered = json.replacen("\"vocab_hash\":", "\"vocab_hash\":1,\"_x\":", 1);
        assert_ne!(json, tampered, "test must actually tamper");
        std::fs::write(&path, tampered).unwrap();
        let err = load_model(&path, &db).unwrap_err();
        assert!(err.to_string().contains("header"), "{err}");
        let _ = std::fs::remove_file(&path);
    }
}
