//! Token vocabulary for serialized query plans.
//!
//! Built over the training workload's serializations; tokens never seen in
//! training map to `[UNK]` at inference time (an unseen *operator* pattern is
//! a sign the query is out-of-distribution; unseen *values* cannot occur
//! because numeric literals are digit-binned, see [`crate::serialize`]).

use std::collections::HashMap;

/// Interned token vocabulary.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Vocab {
    map: HashMap<String, usize>,
    tokens: Vec<String>,
}

impl Vocab {
    /// Id of the unknown token.
    pub const UNK: usize = 0;
    /// Id of the padding token (used when packing batches).
    pub const PAD: usize = 1;

    /// A vocabulary containing only the reserved tokens.
    pub fn new() -> Self {
        let mut v = Vocab {
            map: HashMap::new(),
            tokens: Vec::new(),
        };
        v.intern("[UNK]");
        v.intern("[PAD]");
        v
    }

    /// Intern `tok`, returning its id (existing id if already present).
    pub fn intern(&mut self, tok: &str) -> usize {
        if let Some(&id) = self.map.get(tok) {
            return id;
        }
        let id = self.tokens.len();
        self.tokens.push(tok.to_owned());
        self.map.insert(tok.to_owned(), id);
        id
    }

    /// Id of `tok` if known.
    pub fn get(&self, tok: &str) -> Option<usize> {
        self.map.get(tok).copied()
    }

    /// Encode a token sequence, mapping unknown tokens to `[UNK]`.
    pub fn encode(&self, toks: &[String]) -> Vec<usize> {
        toks.iter()
            .map(|t| self.get(t).unwrap_or(Vocab::UNK))
            .collect()
    }

    /// Intern every token of a sequence and return the ids (training-time).
    pub fn encode_interning(&mut self, toks: &[String]) -> Vec<usize> {
        toks.iter().map(|t| self.intern(t)).collect()
    }

    /// Number of known tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether only reserved tokens exist.
    pub fn is_empty(&self) -> bool {
        self.tokens.len() <= 2
    }

    /// Token string for an id (diagnostics).
    pub fn token(&self, id: usize) -> &str {
        &self.tokens[id]
    }

    /// Stable content hash of the vocabulary: FNV-1a over every token string
    /// in id order. Two vocabularies fingerprint equal iff they assign the
    /// same ids to the same tokens — the property model persistence checks
    /// before trusting a loaded model's token ids
    /// ([`crate::registry::CatalogCompat`]).
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for tok in &self.tokens {
            for &b in tok.as_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            // Separator so ["ab","c"] and ["a","bc"] hash differently.
            h ^= 0xff;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

impl Default for Vocab {
    fn default() -> Self {
        Vocab::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserved_tokens() {
        let v = Vocab::new();
        assert_eq!(v.get("[UNK]"), Some(Vocab::UNK));
        assert_eq!(v.get("[PAD]"), Some(Vocab::PAD));
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocab::new();
        let a = v.intern("x");
        let b = v.intern("x");
        assert_eq!(a, b);
        assert_eq!(v.len(), 3);
        assert_eq!(v.token(a), "x");
    }

    #[test]
    fn encode_maps_unknown_to_unk() {
        let mut v = Vocab::new();
        v.intern("known");
        let ids = v.encode(&["known".into(), "mystery".into()]);
        assert_eq!(ids[0], 2);
        assert_eq!(ids[1], Vocab::UNK);
    }

    #[test]
    fn encode_interning_grows() {
        let mut v = Vocab::new();
        let ids = v.encode_interning(&["a".into(), "b".into(), "a".into()]);
        assert_eq!(ids, vec![2, 3, 2]);
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn fingerprint_tracks_content_and_order() {
        let mut a = Vocab::new();
        let mut b = Vocab::new();
        assert_eq!(a.fingerprint(), b.fingerprint(), "reserved-only vocabs");
        a.intern("x");
        assert_ne!(a.fingerprint(), b.fingerprint(), "extra token changes it");
        b.intern("x");
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Id assignment matters, not just the token set.
        let mut c = Vocab::new();
        let mut d = Vocab::new();
        c.intern("p");
        c.intern("q");
        d.intern("q");
        d.intern("p");
        assert_ne!(c.fingerprint(), d.fingerprint());
        // Token boundaries matter ("ab","c" vs "a","bc").
        let mut e = Vocab::new();
        let mut f = Vocab::new();
        e.intern("ab");
        e.intern("c");
        f.intern("a");
        f.intern("bc");
        assert_ne!(e.fingerprint(), f.fingerprint());
    }
}
