//! Admission-controlled prefetch serving loop.
//!
//! The paper's §5.4 experiments replay *pre-built* batches of concurrent
//! queries. A deployed Pythia sits in front of a live queue instead: queries
//! arrive on their own schedule, the database admits at most `concurrency` of
//! them at once, and the model is invoked over whatever is queued so
//! inference batches naturally with load (the batched forward pass of
//! [`TrainedWorkload::infer_batch`] amortizes across everything queued).
//!
//! [`PrefetchServer`] is that loop over the virtual-clock stack, in one of
//! two [`AdmissionMode`]s:
//!
//! - **Continuous** (the default): admit-on-completion. Arrivals,
//!   admissions and replay events are processed in global virtual-time order
//!   over one incremental [`ReplaySession`]. The scheduler tracks the
//!   virtual instant each of the `concurrency` slots became free (a
//!   completion frees its slot at the completion *end*), and an admission
//!   happens at `max(earliest queued arrival, earliest free-slot instant)`:
//!   an arrival that finds a free slot is admitted at its arrival instant,
//!   one that finds every slot busy waits for the slot-freeing completion
//!   and is injected at that completion's end. The admitted query is picked
//!   FIFO, or as the most page-overlapping candidate
//!   ([`pick_next_by_overlap`]). Each admission instant first runs one
//!   batched inference over every queued query lacking a prediction
//!   (opportunistic re-batching), charging each covered query the amortized
//!   latency ([`InferenceCharge`]). No barrier: a long query never stalls
//!   short ones queued behind it.
//! - **Wave**: the original barrier loop. Up to `concurrency` queries are
//!   admitted per wave under the [`QueuePolicy`] (FIFO, or the §7 overlap
//!   scheduler [`schedule_by_overlap`]), the wave replays to completion
//!   through [`Runtime::run`], and only then is the queue examined again.
//!   Kept for comparison — the wave-vs-continuous gap under skewed per-query
//!   cost is exactly what the `perf_snapshot` serving section measures.
//!
//! In both modes the shared pool's counters are attributed to each admission
//! event by snapshot diff ([`BufferStats::diff`]), so the per-event
//! [`WaveStats`] always partition the aggregate report.
//!
//! With `concurrency = 1`, FIFO policy and a fixed inference charge, *both*
//! modes are *bit-identical* to calling [`Runtime::run`] serially per query
//! on one warm stack — the property the proptests in
//! `tests/proptest_server.rs` pin down. Scheduling extensions are therefore
//! one-flag variants of the same loop, not separate harnesses.
//!
//! A socket front-end for this loop — bounded queue, load shedding, the
//! `serve_demo` example binary — lives in [`crate::frontend`].

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

use pythia_buffer::BufferStats;
use pythia_db::catalog::Database;
use pythia_db::plan::PlanNode;
use pythia_db::runtime::{QueryRun, ReplaySession, RunConfig, Runtime};
use pythia_db::trace::Trace;
use pythia_obs::quality::{QualityOutcome, QualityTotals, QualityTracker};
use pythia_obs::request::RequestBreakdown;
use pythia_obs::{tid, FlowDir, Recorder, Track};
use pythia_sim::{PageId, SimDuration, SimTime};

use crate::predictor::TrainedWorkload;
use crate::prefetch::{cap_to_budget, prefetch_list};
use crate::registry::TenantFleet;
use crate::scheduler::{pick_next_by_overlap_scored, schedule_by_overlap};

/// How queries are admitted from the queue into the replay stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionMode {
    /// Admit-on-completion (the default): the moment a slot frees, the
    /// scheduler picks the next queued query and injects it at the completion
    /// instant. Work-conserving — a long query never stalls short ones queued
    /// behind it.
    Continuous,
    /// Barrier waves: admit up to `concurrency` queries, replay the whole
    /// wave to completion, then look at the queue again. Kept for comparison.
    Wave,
}

/// How the serving loop picks the next admission from the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueuePolicy {
    /// Admit in arrival order.
    Fifo,
    /// Prefer page overlap: in wave mode, order the whole queue with
    /// [`schedule_by_overlap`] on the predicted page sets and admit the head
    /// of that chain; in continuous mode, pick the queued query most
    /// overlapping the previously admitted one ([`pick_next_by_overlap`]) —
    /// so consecutive admissions find their working sets resident. Degrades
    /// to FIFO when predictions are absent or empty (the schedulers'
    /// all-empty tie-break).
    Overlap,
}

/// How model-inference latency is charged to admitted queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InferenceCharge {
    /// Measure the actual wall-clock time of the batched forward pass and
    /// charge each covered query the amortized share (wall / batch size).
    Measured,
    /// Charge every covered query this fixed latency. Use this in tests:
    /// virtual timings become independent of host speed.
    Fixed(SimDuration),
}

/// Serving-loop configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Maximum queries replaying at once (values below 1 behave as 1 — the
    /// clamp is regression-tested in this module).
    pub concurrency: usize,
    /// How slots are refilled from the queue.
    pub admission: AdmissionMode,
    /// Queue ordering policy.
    pub policy: QueuePolicy,
    /// Inference-latency accounting.
    pub charge: InferenceCharge,
    /// Prefetch budget in pages per query; `None` uses 3/4 of the pool
    /// (limited prefetching, §5.1).
    pub prefetch_budget: Option<usize>,
    /// Per-tenant cap on queries in flight at once (`None` disables tenant
    /// accounting entirely — the single-tenant fast path). Values below 1
    /// behave as 1, mirroring the `concurrency` clamp. A tenant at its quota
    /// never blocks other tenants: admission skips past it to the first
    /// feasible queued query.
    pub tenant_quota: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            concurrency: 4,
            admission: AdmissionMode::Continuous,
            policy: QueuePolicy::Fifo,
            charge: InferenceCharge::Measured,
            prefetch_budget: None,
            tenant_quota: None,
        }
    }
}

/// One incoming query: its plan (for inference), its recorded trace (for
/// replay) and its arrival offset from the instant [`PrefetchServer::serve`]
/// is called (i.e. from the stack's current clock).
#[derive(Debug, Clone, Copy)]
pub struct ServerRequest<'a> {
    pub plan: &'a PlanNode,
    pub trace: &'a Trace,
    pub arrival: SimDuration,
    /// Trace span name for this query's replay (see
    /// [`QueryRun::span_name`]); callers that know the query's template pass
    /// `Template::replay_span()` so Perfetto groups repeated templates.
    pub span_name: &'static str,
    /// Which tenant issued the query (0 when single-tenant). Drives the
    /// [`ServerConfig::tenant_quota`] admission cap and the per-tenant
    /// breakdown of [`ServeReport::by_tenant`].
    pub tenant: u32,
    /// End-to-end request id for tracing (0 = unassigned). A trace-only
    /// label: it never influences admission order or virtual time. The TCP
    /// front-end mints wall-ordered ids ([`pythia_obs::request::mint`]);
    /// direct [`PrefetchServer::serve`] callers may leave 0 and the serving
    /// loop assigns the deterministic per-call ordinal `i + 1`, so golden
    /// traces of replayed workloads stay byte-stable.
    pub request: u64,
}

impl<'a> ServerRequest<'a> {
    /// A request arriving at `arrival` with the default replay span name,
    /// attributed to tenant 0 and no request id (the serving loop assigns
    /// a deterministic ordinal).
    pub fn new(plan: &'a PlanNode, trace: &'a Trace, arrival: SimDuration) -> Self {
        ServerRequest {
            plan,
            trace,
            arrival,
            span_name: pythia_db::runtime::DEFAULT_REPLAY_SPAN,
            tenant: 0,
            request: 0,
        }
    }

    /// The same request attributed to `tenant`.
    pub fn with_tenant(mut self, tenant: u32) -> Self {
        self.tenant = tenant;
        self
    }

    /// The same request carrying an externally minted trace id.
    pub fn with_request(mut self, request: u64) -> Self {
        self.request = request;
        self
    }
}

/// Per-query serving outcome.
#[derive(Debug, Clone, Copy)]
pub struct QueryOutcome {
    /// When the query arrived (absolute virtual time).
    pub arrival: SimTime,
    /// When it was admitted into the replay stack (its wave's dispatch in
    /// wave mode; its own admission instant in continuous mode).
    pub admitted: SimTime,
    /// When replay began (admission + inference charge).
    pub start: SimTime,
    /// When replay finished.
    pub end: SimTime,
    /// Index into [`ServeReport::waves`] of the admission event that served
    /// it.
    pub wave: usize,
    /// Inference latency charged to this query.
    pub inference: SimDuration,
    /// Tenant the query was attributed to ([`ServerRequest::tenant`]).
    pub tenant: u32,
    /// Request id the query carried through the serving loop
    /// ([`ServerRequest::request`], after the loop's ordinal assignment).
    pub request: u64,
}

impl QueryOutcome {
    /// Time spent queued before admission.
    pub fn admission_wait(&self) -> SimDuration {
        self.admitted.since(self.arrival)
    }

    /// End-to-end latency: arrival to completion (includes queueing and
    /// inference).
    pub fn latency(&self) -> SimDuration {
        self.end.since(self.arrival)
    }

    /// The queue / admission / inference / replay latency breakdown — the
    /// same partition the `request.*` trace spans draw, so the report and
    /// the postmortem dump always agree.
    pub fn breakdown(&self) -> RequestBreakdown {
        RequestBreakdown {
            request: self.request,
            tenant: self.tenant,
            arrival_us: self.arrival.as_micros(),
            queue_us: self.admitted.since(self.arrival).as_micros(),
            admission_us: self.start.since(self.admitted).as_micros(),
            infer_us: self.inference.as_micros(),
            replay_us: self.end.since(self.start).as_micros(),
        }
    }
}

/// Per-admission-event serving metrics. In wave mode, one entry per barrier
/// wave; in continuous mode, one entry per admission (so exactly one per
/// query).
#[derive(Debug, Clone, Copy)]
pub struct WaveStats {
    /// When the admission was dispatched.
    pub admitted_at: SimTime,
    /// Queries in flight right after this admission (the wave's size in wave
    /// mode; the slot occupancy including the admitted query in continuous
    /// mode). Always within `1..=concurrency`.
    pub occupancy: usize,
    /// Queue depth at dispatch (admitted + still waiting).
    pub queue_depth: usize,
    /// Queries covered by this admission's batched inference call.
    pub inferred: usize,
    /// Total inference latency charged to the queries admitted here.
    pub inference: SimDuration,
    /// Buffer/prefetch counters accumulated between this admission and the
    /// next (or the end of the serve call) — the per-event entries always
    /// partition [`ServeReport::stats`].
    pub stats: BufferStats,
    /// Tenant of the admitted query in continuous mode (one admission per
    /// query, so the attribution is exact); `None` in wave mode, where one
    /// barrier wave can mix tenants.
    pub tenant: Option<u32>,
}

/// Result of serving one request stream.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Outcomes in the same order as the input requests.
    pub queries: Vec<QueryOutcome>,
    /// One entry per admission event, in dispatch order.
    pub waves: Vec<WaveStats>,
    /// Counters accumulated across the whole serve call.
    pub stats: BufferStats,
}

impl ServeReport {
    /// Wall time from first arrival to last completion.
    pub fn makespan(&self) -> SimDuration {
        let first = self
            .queries
            .iter()
            .map(|q| q.arrival)
            .min()
            .unwrap_or(SimTime::ZERO);
        let last = self.queries.iter().map(|q| q.end).max().unwrap_or(first);
        last.since(first)
    }

    /// Mean time queries spent queued before admission.
    pub fn mean_admission_wait(&self) -> SimDuration {
        if self.queries.is_empty() {
            return SimDuration::ZERO;
        }
        let total: u64 = self
            .queries
            .iter()
            .map(|q| q.admission_wait().as_micros())
            .sum();
        SimDuration::from_micros(total / self.queries.len() as u64)
    }

    /// Log₂-bucket histogram of per-query admission waits in microseconds —
    /// the same estimator the recorder's `server.admission_wait_us`
    /// histogram uses, so the report and the live metrics endpoint agree.
    pub fn admission_wait_hist(&self) -> pythia_obs::hist::Histogram {
        let mut h = pythia_obs::hist::Histogram::new();
        for q in &self.queries {
            h.record(q.admission_wait().as_micros());
        }
        h
    }

    /// Per-request latency breakdowns, in input order (see
    /// [`QueryOutcome::breakdown`]).
    pub fn breakdowns(&self) -> Vec<RequestBreakdown> {
        self.queries.iter().map(|q| q.breakdown()).collect()
    }

    /// The `k` slowest requests by end-to-end latency, slowest first (ties
    /// break toward the lower request id) — what the front-end's
    /// `/debug/slow` route and the report's "slowest requests" section show.
    pub fn slow_requests(&self, k: usize) -> Vec<RequestBreakdown> {
        let mut all = self.breakdowns();
        all.sort_by(|a, b| {
            b.latency_us()
                .cmp(&a.latency_us())
                .then(a.request.cmp(&b.request))
        });
        all.truncate(k);
        all
    }

    /// Mean queries admitted per wave.
    pub fn mean_occupancy(&self) -> f64 {
        if self.waves.is_empty() {
            return 0.0;
        }
        self.waves.iter().map(|w| w.occupancy).sum::<usize>() as f64 / self.waves.len() as f64
    }

    /// Largest queue depth seen at any dispatch.
    pub fn max_queue_depth(&self) -> usize {
        self.waves.iter().map(|w| w.queue_depth).max().unwrap_or(0)
    }

    /// Completed queries per virtual second.
    pub fn throughput_qps(&self) -> f64 {
        let secs = self.makespan().as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.queries.len() as f64 / secs
        }
    }

    /// Serving report: admission metrics, per-wave occupancy and the buffer
    /// manager's read-class breakdown.
    pub fn report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Serving report ({} queries, {} waves)",
            self.queries.len(),
            self.waves.len()
        );
        for (i, w) in self.waves.iter().enumerate() {
            let _ = writeln!(
                out,
                "  wave {i}: at {} occupancy {} queue depth {} inferred {} inference {}",
                w.admitted_at, w.occupancy, w.queue_depth, w.inferred, w.inference
            );
        }
        let _ = writeln!(out, "  makespan: {}", self.makespan());
        let _ = writeln!(out, "  throughput: {:.2} q/s", self.throughput_qps());
        let _ = writeln!(
            out,
            "  admission: mean wait {}, mean occupancy {:.2}, max queue depth {}",
            self.mean_admission_wait(),
            self.mean_occupancy(),
            self.max_queue_depth()
        );
        let aw = self.admission_wait_hist();
        let _ = writeln!(
            out,
            "  admission wait percentiles: p50 {}us p95 {}us p99 {}us",
            aw.p50(),
            aw.p95(),
            aw.p99()
        );
        for (rank, b) in self.slow_requests(3).iter().enumerate() {
            if rank == 0 {
                let _ = writeln!(out, "  slowest requests:");
            }
            let _ = writeln!(
                out,
                "    request {}: tenant {} latency {}us = queue {}us + admission {}us + replay {}us (infer {}us)",
                b.request,
                b.tenant,
                b.latency_us(),
                b.queue_us,
                b.admission_us,
                b.replay_us,
                b.infer_us
            );
        }
        let s = &self.stats;
        let _ = writeln!(
            out,
            "  reads: {} total = {} buffer hits ({:.1}%) + {} OS-cache copies + {} disk reads",
            s.total_reads(),
            s.hits,
            s.hit_rate() * 100.0,
            s.os_copies,
            s.disk_reads
        );
        let _ = writeln!(
            out,
            "  prefetch: {} issued, {} useful ({:.1}% precision), {} wasted",
            s.prefetch_issued,
            s.prefetch_useful,
            s.prefetch_precision() * 100.0,
            s.prefetch_wasted
        );
        out
    }

    /// Per-tenant breakdown. Query counts, waits and inference charges
    /// always partition the global totals; buffer counters additionally
    /// partition [`ServeReport::stats`] in continuous mode, where every
    /// admission event is attributed to exactly one tenant (wave-mode waves
    /// mix tenants, so their counters stay unattributed).
    pub fn by_tenant(&self) -> BTreeMap<u32, TenantReport> {
        let mut out: BTreeMap<u32, TenantReport> = BTreeMap::new();
        for q in &self.queries {
            let t = out.entry(q.tenant).or_default();
            t.queries += 1;
            t.total_admission_wait += q.admission_wait();
            t.total_latency += q.latency();
            t.inference += q.inference;
        }
        for w in &self.waves {
            if let Some(tenant) = w.tenant {
                let t = out.entry(tenant).or_default();
                t.admissions += 1;
                t.stats.merge(&w.stats);
            }
        }
        out
    }

    /// The breakdown for one tenant; a tenant that issued no queries gets
    /// the all-zero (NaN-free) report rather than a panic or a missing key.
    pub fn tenant_report(&self, tenant: u32) -> TenantReport {
        self.by_tenant().remove(&tenant).unwrap_or_default()
    }

    /// The whole serve call as a quality slice: the aggregate buffer
    /// counters plus the summed admission waits, in the same shape the
    /// streaming [`QualityTracker`] windows use — so report-level and live
    /// telemetry compute hit rate / precision / recall identically. The
    /// per-tenant slices ([`TenantReport::quality`]) partition this total
    /// in continuous mode (proptest-pinned).
    pub fn quality(&self) -> QualityTotals {
        QualityTotals {
            outcomes: self.queries.len() as u64,
            hits: self.stats.hits,
            os_copies: self.stats.os_copies,
            disk_reads: self.stats.disk_reads,
            prefetch_issued: self.stats.prefetch_issued,
            prefetch_useful: self.stats.prefetch_useful,
            prefetch_wasted: self.stats.prefetch_wasted,
            wait_us: self
                .queries
                .iter()
                .map(|q| q.admission_wait().as_micros())
                .sum(),
        }
    }
}

/// One tenant's slice of a [`ServeReport`] (see [`ServeReport::by_tenant`]).
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// Queries this tenant completed.
    pub queries: usize,
    /// Admission events attributed to this tenant (continuous mode only).
    pub admissions: usize,
    /// Summed time its queries spent queued before admission.
    pub total_admission_wait: SimDuration,
    /// Summed arrival-to-completion latency of its queries.
    pub total_latency: SimDuration,
    /// Summed inference latency charged to its queries.
    pub inference: SimDuration,
    /// Buffer/prefetch counters of its admission intervals (continuous mode
    /// only; zero in wave mode).
    pub stats: BufferStats,
}

impl Default for TenantReport {
    fn default() -> Self {
        TenantReport {
            queries: 0,
            admissions: 0,
            total_admission_wait: SimDuration::ZERO,
            total_latency: SimDuration::ZERO,
            inference: SimDuration::ZERO,
            stats: BufferStats::default(),
        }
    }
}

impl TenantReport {
    /// Mean queueing delay; zero (not NaN) for a zero-query tenant.
    pub fn mean_admission_wait(&self) -> SimDuration {
        if self.queries == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_micros(self.total_admission_wait.as_micros() / self.queries as u64)
    }

    /// Mean end-to-end latency; zero (not NaN) for a zero-query tenant.
    pub fn mean_latency(&self) -> SimDuration {
        if self.queries == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_micros(self.total_latency.as_micros() / self.queries as u64)
    }

    /// This tenant's quality slice, NaN-free for a zero-query tenant.
    pub fn quality(&self) -> QualityTotals {
        QualityTotals {
            outcomes: self.queries as u64,
            hits: self.stats.hits,
            os_copies: self.stats.os_copies,
            disk_reads: self.stats.disk_reads,
            prefetch_issued: self.stats.prefetch_issued,
            prefetch_useful: self.stats.prefetch_useful,
            prefetch_wasted: self.stats.prefetch_wasted,
            wait_us: self.total_admission_wait.as_micros(),
        }
    }

    /// One-line JSON fragment for the front-end's tenant-scoped `/stats`.
    pub fn to_json(&self) -> String {
        let q = self.quality();
        format!(
            "{{\"queries\":{},\"admissions\":{},\"mean_admission_wait_us\":{},\
             \"mean_latency_us\":{},\"inference_us\":{},\"prefetch_issued\":{},\
             \"hit_rate_e6\":{},\"prefetch_precision_e6\":{},\"prefetch_recall_e6\":{}}}",
            self.queries,
            self.admissions,
            self.mean_admission_wait().as_micros(),
            self.mean_latency().as_micros(),
            self.inference.as_micros(),
            self.stats.prefetch_issued,
            pythia_obs::quality::rate_e6(q.hit_rate()),
            pythia_obs::quality::rate_e6(q.prefetch_precision()),
            pythia_obs::quality::rate_e6(q.prefetch_recall()),
        )
    }
}

/// A computed prediction for a queued query: its ordered prefetch list and
/// the inference latency it was charged.
#[derive(Debug, Clone)]
struct PredEntry {
    list: Vec<PageId>,
    charge: SimDuration,
}

/// Where the serving loop's model comes from.
enum PredictorSource<'d> {
    /// No model: the DFLT baseline, every query replays unassisted.
    None,
    /// A model fixed for the server's lifetime (borrowed from the caller).
    Fixed(&'d TrainedWorkload),
    /// A tenant fleet in the hot-swap registry: the current model is
    /// re-resolved at every batched inference, so a
    /// [`TenantFleet::publish`] lands between admissions and the batch in
    /// flight keeps its coherent snapshot.
    Registry(Arc<TenantFleet>),
}

/// Observer invoked at each admission event with its ordinal (the index the
/// event gets in [`ServeReport::waves`]), *before* that event's batched
/// inference runs.
type AdmissionHook<'d> = Box<dyn FnMut(usize) + 'd>;

/// The admission-controlled serving loop over one warm replay stack.
pub struct PrefetchServer<'d> {
    db: &'d Database,
    rt: Runtime,
    cfg: ServerConfig,
    predictor: PredictorSource<'d>,
    admission_hook: Option<AdmissionHook<'d>>,
    /// Streaming quality telemetry, fed one outcome per closed admission
    /// interval in continuous mode (`None` disables the whole path — one
    /// branch per interval). Shared so a frontend health route can read it
    /// while serving runs.
    quality: Option<Arc<Mutex<QualityTracker>>>,
    /// End-to-end latency above which a completion counts as a slow request:
    /// it bumps `server.slow_requests` and fires the flight recorder's
    /// `slow.request` postmortem trigger. `None` (the default) disables the
    /// check entirely.
    slow_threshold: Option<SimDuration>,
}

impl<'d> PrefetchServer<'d> {
    /// Build a server over a cold stack, with no predictor (the DFLT
    /// baseline: every query replays without prefetching).
    pub fn new(db: &'d Database, run_cfg: &RunConfig, cfg: ServerConfig) -> Self {
        PrefetchServer {
            db,
            rt: Runtime::new(run_cfg, db.file_lengths()),
            cfg,
            predictor: PredictorSource::None,
            admission_hook: None,
            quality: None,
            slow_threshold: None,
        }
    }

    /// Set (or clear) the slow-request threshold: completions whose
    /// end-to-end latency reaches it bump the `server.slow_requests`
    /// counter and trigger a flight-recorder dump (`slow.request`). A
    /// setter rather than a [`ServerConfig`] field so existing full-literal
    /// config construction sites stay valid.
    pub fn set_slow_threshold(&mut self, threshold: Option<SimDuration>) {
        self.slow_threshold = threshold;
    }

    /// Attach a trained Pythia instance: admitted queries get capped prefetch
    /// plans, with inference batched per admission wave.
    pub fn with_predictor(mut self, tw: &'d TrainedWorkload) -> Self {
        self.predictor = PredictorSource::Fixed(tw);
        self
    }

    /// Attach a hot-swappable tenant fleet: each batched inference resolves
    /// the fleet's current model, so [`TenantFleet::publish`] takes effect
    /// at the next admission without restarting the server. An empty fleet
    /// behaves like no predictor.
    pub fn with_registry(mut self, fleet: Arc<TenantFleet>) -> Self {
        self.predictor = PredictorSource::Registry(fleet);
        self
    }

    /// Install an observer called at each admission event with its ordinal,
    /// before the event's batched inference. Tests use this to publish a
    /// model swap at a deterministic point mid-stream.
    pub fn set_admission_hook(&mut self, hook: impl FnMut(usize) + 'd) {
        self.admission_hook = Some(Box::new(hook));
    }

    /// Attach a streaming quality tracker. In continuous mode every closed
    /// admission interval feeds it one [`QualityOutcome`] (the interval's
    /// `BufferStats::diff` snapshot plus the query's admission wait),
    /// attributed to the admitted query's tenant and template span. Wave
    /// mode stays unattributed (a barrier wave mixes tenants) and feeds
    /// nothing. The tracker only *reads* serving state, so enabling it
    /// never perturbs virtual time or admission order.
    pub fn with_quality(mut self, quality: Arc<Mutex<QualityTracker>>) -> Self {
        self.quality = Some(quality);
        self
    }

    /// The attached quality tracker, if any.
    pub fn quality(&self) -> Option<&Arc<Mutex<QualityTracker>>> {
        self.quality.as_ref()
    }

    /// Feed one closed admission interval to the quality tracker (no-op
    /// without one, or for unattributed wave-mode intervals).
    fn feed_quality(
        &mut self,
        tenant: Option<u32>,
        span: &'static str,
        wait_us: u64,
        stats: &BufferStats,
        now_us: u64,
    ) {
        let Some(q) = self.quality.clone() else {
            return;
        };
        let Some(tenant) = tenant else {
            return;
        };
        let outcome = QualityOutcome {
            hits: stats.hits,
            os_copies: stats.os_copies,
            disk_reads: stats.disk_reads,
            prefetch_issued: stats.prefetch_issued,
            prefetch_useful: stats.prefetch_useful,
            prefetch_wasted: stats.prefetch_wasted,
            wait_us,
        };
        let mut tracker = match q.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        tracker.observe(tenant, span, outcome, now_us, self.rt.recorder_mut());
    }

    /// The underlying replay stack (clock and cumulative counters).
    pub fn runtime(&self) -> &Runtime {
        &self.rt
    }

    /// Install a trace/metrics recorder on the serving stack.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.rt.set_recorder(recorder);
    }

    /// The stack's recorder (disabled by default).
    pub fn recorder(&self) -> &Recorder {
        self.rt.recorder()
    }

    /// Mutable access to the stack's recorder (e.g. to absorb wall-clock NN
    /// task spans after serving).
    pub fn recorder_mut(&mut self) -> &mut Recorder {
        self.rt.recorder_mut()
    }

    /// Remove and return the recorder, leaving a disabled one behind.
    pub fn take_recorder(&mut self) -> Recorder {
        self.rt.take_recorder()
    }

    /// Cold restart of the underlying stack.
    pub fn reset(&mut self) {
        self.rt.reset();
    }

    /// Serve a stream of requests to completion and report per-query,
    /// per-admission and aggregate metrics. The stack stays warm across
    /// calls. Dispatches on [`ServerConfig::admission`].
    ///
    /// Requests with `request == 0` get the deterministic per-call ordinal
    /// `i + 1` as their trace id — replayed workloads thus produce
    /// byte-stable traces, while a front-end that minted wall-ordered ids
    /// keeps them.
    pub fn serve(&mut self, requests: &[ServerRequest<'_>]) -> ServeReport {
        let reqs: Vec<ServerRequest<'_>> = requests
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let mut r = *r;
                if r.request == 0 {
                    r.request = i as u64 + 1;
                }
                r
            })
            .collect();
        let report = match self.cfg.admission {
            AdmissionMode::Wave => self.serve_wave(&reqs),
            AdmissionMode::Continuous => self.serve_continuous(&reqs),
        };
        self.publish_tenant_wait_percentiles(&report);
        report
    }

    /// Per-tenant admission-wait p50/p90/p99 as labeled gauges
    /// (`server.admission_wait_us{quantile,tenant}`), refreshed at the end
    /// of every serve call — the per-tenant companions of the global
    /// `server.admission_wait_us` histogram.
    fn publish_tenant_wait_percentiles(&mut self, report: &ServeReport) {
        if !self.rt.recorder().is_enabled() || report.queries.is_empty() {
            return;
        }
        let mut hists: BTreeMap<u32, pythia_obs::hist::Histogram> = BTreeMap::new();
        for q in &report.queries {
            hists
                .entry(q.tenant)
                .or_insert_with(pythia_obs::hist::Histogram::new)
                .record(q.admission_wait().as_micros());
        }
        let rec = self.rt.recorder_mut();
        for (tenant, h) in &hists {
            let t = tenant.to_string();
            for (q, v) in [
                ("0.5", h.p50()),
                ("0.9", h.quantile(0.90)),
                ("0.99", h.p99()),
            ] {
                rec.set_labeled(
                    "server.admission_wait_us",
                    &[("quantile", q), ("tenant", t.as_str())],
                    v,
                );
            }
        }
        self.rt.recorder().publish();
    }

    /// Emit the per-request span tree for one completed query on its own
    /// `request-<id>` track — `request.queue` (arrival → admitted),
    /// `request.admission` (admitted → replay start), `request.infer` (the
    /// charged inference share) and `request.replay` — plus a Chrome-trace
    /// flow arrow from the request lane into `link` (the serving-loop track
    /// that carried the replay), so Perfetto connects the breakdown to the
    /// shared timeline. Mirrors into the always-on flight ring even when
    /// trace export is off; never touches virtual time. Also applies the
    /// slow-request threshold.
    fn emit_request_spans(&mut self, o: &QueryOutcome, link: Track) {
        let rid = o.request;
        if rid == 0 {
            return;
        }
        let rec = self.rt.recorder_mut();
        let track = pythia_obs::request::request_track(rid);
        rec.declare_track(track, || format!("request-{rid}"));
        let (arrival, admitted) = (o.arrival.as_micros(), o.admitted.as_micros());
        let (start, end) = (o.start.as_micros(), o.end.as_micros());
        rec.span(
            track,
            "request",
            "request.queue",
            arrival,
            admitted,
            &[("request", rid), ("tenant", o.tenant as u64)],
        );
        rec.span(
            track,
            "request",
            "request.admission",
            admitted,
            start,
            &[("request", rid)],
        );
        rec.span(
            track,
            "request",
            "request.infer",
            admitted,
            admitted + o.inference.as_micros(),
            &[("request", rid), ("charge_us", o.inference.as_micros())],
        );
        rec.span(
            track,
            "request",
            "request.replay",
            start,
            end,
            &[
                ("request", rid),
                ("latency_us", end.saturating_sub(arrival)),
            ],
        );
        rec.flow(track, "request", "request.flow", start, rid, FlowDir::Start);
        rec.flow(link, "request", "request.flow", end, rid, FlowDir::Finish);
        if let Some(th) = self.slow_threshold {
            if o.latency() >= th {
                let rec = self.rt.recorder_mut();
                rec.add("server.slow_requests", 1);
                rec.trigger_flight("slow.request", end);
            }
        }
    }

    /// Declare (idempotently) and return the serving-loop trace track.
    fn server_track(&mut self) -> Track {
        let track = Track::virt(tid::SERVER);
        self.rt
            .recorder_mut()
            .declare_track(track, || "serving-loop".to_owned());
        track
    }

    /// One batched inference at virtual instant `at` over every queued query
    /// lacking a prediction — the whole queue, not just the next admission,
    /// so the overlap policy can schedule over everything it has seen and
    /// later admissions reuse cached predictions. Returns the batch size.
    fn batch_infer_missing(
        &mut self,
        requests: &[ServerRequest<'_>],
        queue: &[usize],
        preds: &mut [Option<PredEntry>],
        at: SimTime,
        server_track: Track,
    ) -> usize {
        // Resolve the model once per batch: a registry swap published while
        // this batch runs is picked up by the *next* admission; this batch
        // keeps the coherent snapshot it resolved (the Arc keeps the old
        // weights alive even if the publish drops the registry's reference).
        let snapshot;
        let tw: &TrainedWorkload = match &self.predictor {
            PredictorSource::None => return 0,
            PredictorSource::Fixed(tw) => *tw,
            PredictorSource::Registry(fleet) => match fleet.any() {
                Some(m) => {
                    snapshot = m;
                    &snapshot.workload
                }
                None => return 0,
            },
        };
        let missing: Vec<usize> = queue
            .iter()
            .copied()
            .filter(|&i| preds[i].is_none())
            .collect();
        if missing.is_empty() {
            return 0;
        }
        let plans: Vec<&PlanNode> = missing.iter().map(|&i| requests[i].plan).collect();
        // Attribute the pool's wall-clock task spans to the batch head's
        // request id for the duration of the forward pass (the batch
        // amortizes over several requests; the head stands for the batch).
        let head = missing.first().map(|&i| requests[i].request).unwrap_or(0);
        pythia_obs::wall::set_request(head);
        let t0 = std::time::Instant::now();
        let batch = tw.infer_batch(self.db, &plans);
        pythia_obs::wall::set_request(0);
        let charge = match self.cfg.charge {
            InferenceCharge::Fixed(d) => d,
            InferenceCharge::Measured => {
                SimDuration::from_micros(t0.elapsed().as_micros() as u64 / missing.len() as u64)
            }
        };
        let inferred = missing.len();
        for (&i, pred) in missing.iter().zip(batch) {
            preds[i] = Some(PredEntry {
                list: prefetch_list(self.db, &pred),
                charge,
            });
        }
        let rec = self.rt.recorder_mut();
        rec.add("server.inferred", inferred as u64);
        // The batch's virtual-time cost is the amortized per-query charge
        // (each covered query pays it before replay).
        rec.span(
            server_track,
            "server",
            "server.infer_batch",
            at.as_micros(),
            (at + charge).as_micros(),
            &[
                ("batch", inferred as u64),
                ("charge_us", charge.as_micros()),
                ("request", head),
            ],
        );
        inferred
    }

    /// Build the replay run for request `i`: capped prefetch plan plus the
    /// inference latency its prediction was charged.
    fn build_run<'q>(
        req: &ServerRequest<'q>,
        pred: &Option<PredEntry>,
        budget: usize,
    ) -> QueryRun<'q> {
        let (prefetch, inference) = match pred {
            Some(e) if !e.list.is_empty() => {
                (Some(cap_to_budget(e.list.clone(), budget)), e.charge)
            }
            Some(e) => (None, e.charge),
            None => (None, SimDuration::ZERO),
        };
        QueryRun {
            trace: req.trace,
            prefetch,
            arrival: SimDuration::ZERO,
            inference_latency: inference,
            span_name: req.span_name,
        }
    }

    /// Barrier-wave admission (see the module doc).
    fn serve_wave(&mut self, requests: &[ServerRequest<'_>]) -> ServeReport {
        let base = self.rt.now();
        let start_stats = self.rt.stats();
        let n = requests.len();
        let abs: Vec<SimTime> = requests.iter().map(|r| base + r.arrival).collect();
        // Arrival order, stable by request index.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| (abs[i], i));

        let budget = self
            .cfg
            .prefetch_budget
            .unwrap_or(self.rt.pool_frames() * 3 / 4);
        let mut preds: Vec<Option<PredEntry>> = vec![None; n];
        let mut outcomes: Vec<Option<QueryOutcome>> = vec![None; n];
        let mut waves: Vec<WaveStats> = Vec::new();
        let mut queue: Vec<usize> = Vec::new();
        let mut next = 0usize;
        let server_track = self.server_track();

        while next < n || !queue.is_empty() {
            // Pull in everything that has arrived by the current clock.
            while next < n && abs[order[next]] <= self.rt.now() {
                let i = order[next];
                let rec = self.rt.recorder_mut();
                rec.add("server.arrivals", 1);
                rec.instant(
                    server_track,
                    "server",
                    "server.arrive",
                    abs[i].as_micros(),
                    &[("query", i as u64)],
                );
                queue.push(i);
                next += 1;
            }
            if queue.is_empty() {
                // Idle until the next arrival.
                self.rt.advance_to(abs[order[next]]);
                continue;
            }
            let admitted_at = self.rt.now();
            let queue_depth = queue.len();
            if let Some(hook) = self.admission_hook.as_mut() {
                hook(waves.len());
            }
            let inferred =
                self.batch_infer_missing(requests, &queue, &mut preds, admitted_at, server_track);

            // Select this wave's members: walk the queue in the policy's
            // preferred order, capping members per tenant at the quota
            // (`None` admits freely — the original single-tenant path).
            let take = self.cfg.concurrency.max(1).min(queue.len());
            let quota = self.cfg.tenant_quota.map(|q| q.max(1));
            let prefer: Vec<usize> = match self.cfg.policy {
                QueuePolicy::Fifo => (0..queue.len()).collect(),
                QueuePolicy::Overlap => {
                    let sets: Vec<Vec<PageId>> = queue
                        .iter()
                        .map(|&i| {
                            preds[i]
                                .as_ref()
                                .map(|e| e.list.clone())
                                .unwrap_or_default()
                        })
                        .collect();
                    schedule_by_overlap(&sets)
                }
            };
            let mut members: Vec<usize> = Vec::new();
            let mut per_tenant: HashMap<u32, usize> = HashMap::new();
            for p in prefer {
                if members.len() == take {
                    break;
                }
                let i = queue[p];
                let count = per_tenant.entry(requests[i].tenant).or_insert(0);
                if quota.is_none_or(|q| *count < q) {
                    *count += 1;
                    members.push(i);
                }
            }
            queue.retain(|i| !members.contains(i));

            // Dispatch the wave into concurrent replay; new arrivals wait for
            // the wave to drain.
            let runs: Vec<QueryRun<'_>> = members
                .iter()
                .map(|&i| Self::build_run(&requests[i], &preds[i], budget))
                .collect();
            if self.rt.recorder().is_enabled() {
                let rec = self.rt.recorder_mut();
                rec.add("server.admitted", members.len() as u64);
                for &i in &members {
                    rec.instant(
                        server_track,
                        "server",
                        "server.admit",
                        admitted_at.as_micros(),
                        &[("query", i as u64), ("request", requests[i].request)],
                    );
                    rec.observe(
                        "server.admission_wait_us",
                        admitted_at.since(abs[i]).as_micros(),
                    );
                }
            }
            let before = self.rt.stats();
            let res = self.rt.run(&runs);
            let wave_idx = waves.len();
            let mut wave_inference = SimDuration::ZERO;
            for (k, &i) in members.iter().enumerate() {
                let t = res.timings[k];
                wave_inference += runs[k].inference_latency;
                let o = QueryOutcome {
                    arrival: abs[i],
                    admitted: admitted_at,
                    start: t.start,
                    end: t.end,
                    wave: wave_idx,
                    inference: runs[k].inference_latency,
                    tenant: requests[i].tenant,
                    request: requests[i].request,
                };
                outcomes[i] = Some(o);
                self.emit_request_spans(&o, server_track);
            }
            let wave_stats = res.stats.diff(&before);
            let wave_end = self.rt.now();
            let rec = self.rt.recorder_mut();
            rec.add("server.waves", 1);
            rec.span(
                server_track,
                "server",
                "server.wave",
                admitted_at.as_micros(),
                wave_end.as_micros(),
                &[
                    ("wave", wave_idx as u64),
                    ("occupancy", members.len() as u64),
                    ("queue_depth", queue_depth as u64),
                    ("inferred", inferred as u64),
                ],
            );
            waves.push(WaveStats {
                admitted_at,
                occupancy: members.len(),
                queue_depth,
                inferred,
                inference: wave_inference,
                stats: wave_stats,
                tenant: None,
            });
            // Refresh the live metrics endpoint between waves — the only
            // point where the counters are consistent mid-serve.
            self.rt.recorder().publish();
        }

        let queries = outcomes
            .into_iter()
            .map(|o| o.expect("every request was dispatched"))
            .collect();
        self.rt.recorder().publish();
        ServeReport {
            queries,
            waves,
            stats: self.rt.stats().diff(&start_stats),
        }
    }

    /// Admit-on-completion (see the module doc): arrivals, admissions and
    /// replay events are processed in global virtual-time order over one
    /// incremental [`ReplaySession`]. Same-instant ties go arrival-first
    /// (the admission decision then sees the fresh arrival in the queue,
    /// matching what wave mode's pull-then-admit does at the same instant),
    /// then admission-before-step (injecting at `t <= next_event_time()` is
    /// the session's documented causal contract).
    ///
    /// Slot capacity is tracked explicitly as the virtual instants the
    /// `concurrency` slots become free — an admission consumes the earliest
    /// free instant `f` and is dispatched at `max(f, earliest queued
    /// arrival)`, never at a bare arrival instant. The distinction matters
    /// because the session steps queries in event-*start* order: a
    /// completion whose final event straddles an arrival (say the event runs
    /// 100..2100us and the arrival lands at 150us) is discovered *before*
    /// the arrival is processed, so `sess.live()` alone would claim a free
    /// slot at 150us even though the slot is occupied until 2100us in
    /// virtual time. Admitting there would overlap the straddling query,
    /// violating the concurrency cap and the C=1/FIFO/Fixed bit-identity to
    /// serial [`Runtime::run`] replay.
    fn serve_continuous(&mut self, requests: &[ServerRequest<'_>]) -> ServeReport {
        /// Admission bookkeeping for one in-flight query.
        struct AdmitInfo {
            at: SimTime,
            event: usize,
            inference: SimDuration,
        }

        let base = self.rt.now();
        let start_stats = self.rt.stats();
        let n = requests.len();
        let abs: Vec<SimTime> = requests.iter().map(|r| base + r.arrival).collect();
        // Arrival order, stable by request index.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| (abs[i], i));

        let budget = self
            .cfg
            .prefetch_budget
            .unwrap_or(self.rt.pool_frames() * 3 / 4);
        let cap = self.cfg.concurrency.max(1);
        let mut preds: Vec<Option<PredEntry>> = vec![None; n];
        let mut outcomes: Vec<Option<QueryOutcome>> = vec![None; n];
        let mut admits: Vec<Option<AdmitInfo>> = (0..n).map(|_| None).collect();
        let mut waves: Vec<WaveStats> = Vec::new();
        // Parallel to `waves`: the admitted query's replay span (its
        // template identity) and admission wait — what the quality tracker
        // attributes the closed interval to.
        let mut wave_meta: Vec<(&'static str, u64)> = Vec::new();
        // Pool-counter snapshot at the latest admission event: each event's
        // `stats` covers the interval up to the next event, so the entries
        // partition the aggregate.
        let mut last_stats = start_stats;
        let mut queue: Vec<usize> = Vec::new();
        let mut next = 0usize;
        // Predicted pages of the most recent admission — what the overlap
        // policy chains on.
        let mut last_admitted_pages: Vec<PageId> = Vec::new();
        let server_track = self.server_track();

        let mut sess = ReplaySession::new();
        // Session slot (injection order) → request index.
        let mut slot_req: Vec<usize> = Vec::new();

        // Virtual instants at which the currently-free slots became free.
        // Admissions consume the earliest instant, completions push their
        // end. Invariant between events: free.len() + sess.live() == cap.
        let mut free: Vec<SimTime> = vec![base; cap];

        // Per-tenant admission tokens, same shape as `free`: a tenant's
        // vector holds the instants its quota slots freed, lazily created at
        // `quota` tokens (all "free since serve start"). Empty vector means
        // the tenant is at its in-flight cap. `None` quota skips all tenant
        // accounting — the single-tenant path is bit-identical to before.
        let quota = self.cfg.tenant_quota.map(|q| q.max(1));
        let mut tenant_tokens: HashMap<u32, Vec<SimTime>> = HashMap::new();

        // Same-instant event priority: arrivals first (so the admission
        // decision sees them queued), then admissions, then session steps.
        const ARRIVE: u8 = 0;
        const ADMIT: u8 = 1;
        const STEP: u8 = 2;

        loop {
            let next_arrival = if next < n {
                Some(abs[order[next]])
            } else {
                None
            };
            // Queued arrivals all precede the admission instant (events are
            // processed in nondecreasing virtual time), so the earliest the
            // scheduler can dispatch is when the queue head has arrived AND
            // a slot is free — AND, under a tenant quota, the query's tenant
            // holds a token. A quota-blocked head never blocks other
            // tenants: the candidate scan covers the whole queue, earliest
            // feasible instant wins (queue order breaks ties).
            let admit_at = if queue.is_empty() {
                None
            } else if let Some(&fmin) = free.iter().min() {
                match quota {
                    None => Some(fmin.max(abs[queue[0]])),
                    Some(q) => {
                        let mut best: Option<SimTime> = None;
                        for &i in &queue {
                            let tokens = tenant_tokens
                                .entry(requests[i].tenant)
                                .or_insert_with(|| vec![base; q]);
                            let Some(&tmin) = tokens.iter().min() else {
                                continue;
                            };
                            let at = fmin.max(abs[i]).max(tmin);
                            if best.is_none_or(|b| at < b) {
                                best = Some(at);
                            }
                        }
                        best
                    }
                }
            } else {
                None
            };
            let step_at = sess.next_event_time();

            let mut event: Option<(SimTime, u8)> = None;
            for cand in [
                next_arrival.map(|t| (t, ARRIVE)),
                admit_at.map(|t| (t, ADMIT)),
                step_at.map(|t| (t, STEP)),
            ]
            .into_iter()
            .flatten()
            {
                if event.is_none_or(|best| cand < best) {
                    event = Some(cand);
                }
            }
            let Some((t, kind)) = event else { break };

            match kind {
                ARRIVE => {
                    let i = order[next];
                    next += 1;
                    let rec = self.rt.recorder_mut();
                    rec.add("server.arrivals", 1);
                    rec.instant(
                        server_track,
                        "server",
                        "server.arrive",
                        abs[i].as_micros(),
                        &[("query", i as u64)],
                    );
                    queue.push(i);
                }
                ADMIT => {
                    // Consume the earliest-freed slot.
                    let slot_pos = free
                        .iter()
                        .enumerate()
                        .min_by_key(|&(_, &f)| f)
                        .map(|(k, _)| k)
                        .expect("admission scheduled with a free slot");
                    free.swap_remove(slot_pos);
                    if let Some(hook) = self.admission_hook.as_mut() {
                        hook(waves.len());
                    }
                    let inferred =
                        self.batch_infer_missing(requests, &queue, &mut preds, t, server_track);
                    // Queue positions admissible at `t`: all of them without
                    // a quota; with one, those whose tenant holds a token
                    // freed by now.
                    let feasible: Vec<usize> = match quota {
                        None => (0..queue.len()).collect(),
                        Some(q) => (0..queue.len())
                            .filter(|&k| {
                                tenant_tokens
                                    .entry(requests[queue[k]].tenant)
                                    .or_insert_with(|| vec![base; q])
                                    .iter()
                                    .min()
                                    .is_some_and(|&f| f <= t)
                            })
                            .collect(),
                    };
                    let (pick, overlap) = match self.cfg.policy {
                        QueuePolicy::Fifo => (
                            *feasible
                                .first()
                                .expect("admission scheduled with a feasible query"),
                            None,
                        ),
                        QueuePolicy::Overlap => {
                            let sets: Vec<Vec<PageId>> = feasible
                                .iter()
                                .map(|&k| {
                                    preds[queue[k]]
                                        .as_ref()
                                        .map(|e| e.list.clone())
                                        .unwrap_or_default()
                                })
                                .collect();
                            let (k, score) =
                                pick_next_by_overlap_scored(&last_admitted_pages, &sets);
                            (feasible[k], Some(score))
                        }
                    };
                    let queue_depth = queue.len();
                    let i = queue.remove(pick);
                    if let Some(q) = quota {
                        // Consume the tenant's earliest-freed token,
                        // mirroring the slot consumption above.
                        let tokens = tenant_tokens
                            .entry(requests[i].tenant)
                            .or_insert_with(|| vec![base; q]);
                        let pos = tokens
                            .iter()
                            .enumerate()
                            .min_by_key(|&(_, &f)| f)
                            .map(|(k, _)| k)
                            .expect("admitted tenant holds a token");
                        tokens.swap_remove(pos);
                    }
                    last_admitted_pages = preds[i]
                        .as_ref()
                        .map(|e| e.list.clone())
                        .unwrap_or_default();
                    let run = Self::build_run(&requests[i], &preds[i], budget);
                    let inference = run.inference_latency;
                    let event_idx = waves.len();
                    if self.rt.recorder().is_enabled() {
                        let rec = self.rt.recorder_mut();
                        rec.add("server.admitted", 1);
                        // The overlap policy's winning Jaccard score rides
                        // along (e6 fixed-point) so postmortem dumps show how
                        // good each pick was; FIFO admits omit the arg.
                        match overlap {
                            Some(s) => rec.instant(
                                server_track,
                                "server",
                                "server.admit",
                                t.as_micros(),
                                &[
                                    ("query", i as u64),
                                    ("request", requests[i].request),
                                    ("overlap_e6", (s * 1e6) as u64),
                                ],
                            ),
                            None => rec.instant(
                                server_track,
                                "server",
                                "server.admit",
                                t.as_micros(),
                                &[("query", i as u64), ("request", requests[i].request)],
                            ),
                        }
                        rec.observe("server.admission_wait_us", t.since(abs[i]).as_micros());
                    }
                    let occupancy = cap - free.len();
                    let (slot, done) = sess.inject(&mut self.rt, run, t);
                    debug_assert_eq!(slot, slot_req.len());
                    slot_req.push(i);
                    admits[i] = Some(AdmitInfo {
                        at: t,
                        event: event_idx,
                        inference,
                    });
                    // Close the previous admission's stats interval and open
                    // this one's.
                    let now_stats = self.rt.stats();
                    if let Some(prev) = waves.last_mut() {
                        prev.stats = now_stats.diff(&last_stats);
                    }
                    last_stats = now_stats;
                    if self.quality.is_some() {
                        if let Some(prev) = waves.last() {
                            let (tenant, stats) = (prev.tenant, prev.stats);
                            let (span, wait) = wave_meta[waves.len() - 1];
                            self.feed_quality(tenant, span, wait, &stats, t.as_micros());
                        }
                    }
                    waves.push(WaveStats {
                        admitted_at: t,
                        occupancy,
                        queue_depth,
                        inferred,
                        inference,
                        stats: BufferStats::default(),
                        tenant: Some(requests[i].tenant),
                    });
                    wave_meta.push((requests[i].span_name, t.since(abs[i]).as_micros()));
                    if let Some(c) = done {
                        // Empty trace: completed — and freed its slot — the
                        // instant it was admitted.
                        let info = admits[i].as_ref().expect("just admitted");
                        let o = QueryOutcome {
                            arrival: abs[i],
                            admitted: info.at,
                            start: c.timing.start,
                            end: c.timing.end,
                            wave: info.event,
                            inference: info.inference,
                            tenant: requests[i].tenant,
                            request: requests[i].request,
                        };
                        outcomes[i] = Some(o);
                        let rec = self.rt.recorder_mut();
                        rec.add("server.completions", 1);
                        rec.instant(
                            server_track,
                            "server",
                            "server.complete",
                            c.timing.end.as_micros(),
                            &[("query", i as u64), ("request", o.request)],
                        );
                        self.emit_request_spans(&o, server_track);
                        free.push(c.timing.end);
                        if quota.is_some() {
                            tenant_tokens
                                .get_mut(&requests[i].tenant)
                                .expect("token consumed at admission")
                                .push(c.timing.end);
                        }
                    }
                }
                _ => {
                    if let Some(c) = sess.step(&mut self.rt) {
                        let i = slot_req[c.slot];
                        let info = admits[i].as_ref().expect("completed query was admitted");
                        let o = QueryOutcome {
                            arrival: abs[i],
                            admitted: info.at,
                            start: c.timing.start,
                            end: c.timing.end,
                            wave: info.event,
                            inference: info.inference,
                            tenant: requests[i].tenant,
                            request: requests[i].request,
                        };
                        outcomes[i] = Some(o);
                        let rec = self.rt.recorder_mut();
                        rec.add("server.completions", 1);
                        rec.instant(
                            server_track,
                            "server",
                            "server.complete",
                            c.timing.end.as_micros(),
                            &[("query", i as u64), ("request", o.request)],
                        );
                        self.emit_request_spans(&o, server_track);
                        free.push(c.timing.end);
                        if quota.is_some() {
                            tenant_tokens
                                .get_mut(&requests[i].tenant)
                                .expect("token consumed at admission")
                                .push(c.timing.end);
                        }
                        // Counters are consistent at completions — refresh the
                        // live metrics endpoint (wave mode does so per wave).
                        self.rt.recorder().publish();
                    }
                }
            }
            debug_assert_eq!(free.len() + sess.live(), cap, "slot accounting");
        }

        debug_assert!(queue.is_empty(), "drained queue at exit");
        debug_assert_eq!(free.len(), cap, "all slots free at exit");
        let _ = sess.finish(&mut self.rt);
        // The tail interval (after the last admission) absorbs the remaining
        // counters, end-of-session prefetch-waste accounting included.
        let final_stats = self.rt.stats();
        if let Some(last) = waves.last_mut() {
            last.stats = final_stats.diff(&last_stats);
        }
        if self.quality.is_some() {
            if let Some(last) = waves.last() {
                let (tenant, stats) = (last.tenant, last.stats);
                let (span, wait) = wave_meta[waves.len() - 1];
                let now_us = self.rt.now().as_micros();
                self.feed_quality(tenant, span, wait, &stats, now_us);
            }
        }
        let queries = outcomes
            .into_iter()
            .map(|o| o.expect("every request was dispatched"))
            .collect();
        self.rt.recorder().publish();
        ServeReport {
            queries,
            waves,
            stats: final_stats.diff(&start_stats),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PythiaConfig;
    use crate::predictor::train_workload;
    use pythia_db::exec::execute;
    use pythia_db::expr::Pred;
    use pythia_db::trace::{AccessKind, TraceEvent};
    use pythia_db::types::Schema;
    use pythia_sim::FileId;

    fn read_ev(p: u32) -> TraceEvent {
        TraceEvent::Read {
            obj: pythia_db::catalog::ObjectId(0),
            page: PageId::new(FileId(0), p),
            kind: AccessKind::HeapFetch,
        }
    }

    /// `n` random heap reads with CPU work between them.
    fn random_trace(n: u32) -> Trace {
        let mut events = Vec::new();
        for i in 0..n {
            events.push(read_ev((i * 37) % 10_000));
            events.push(TraceEvent::Cpu { units: 2 });
        }
        Trace { events }
    }

    fn run_cfg() -> RunConfig {
        RunConfig {
            pool_frames: 2048,
            os_cache_pages: 16384,
            ..Default::default()
        }
    }

    /// A database whose file 0 is big enough for the synthetic traces, plus a
    /// trivial plan (the predictor-less tests never run inference, but
    /// [`ServerRequest`] still wants a plan).
    fn dummy_db_and_plan() -> (Database, PlanNode) {
        let mut db = Database::new();
        let t = db.create_table("t", Schema::ints(&["a"]));
        for i in 0..60_000i64 {
            db.insert(t, Database::row(&[i]));
        }
        let plan = PlanNode::SeqScan {
            table: t,
            pred: None,
        };
        (db, plan)
    }

    /// Wave-mode config with a zero fixed charge.
    fn fixed_cfg(concurrency: usize, policy: QueuePolicy) -> ServerConfig {
        ServerConfig {
            concurrency,
            admission: AdmissionMode::Wave,
            policy,
            charge: InferenceCharge::Fixed(SimDuration::ZERO),
            prefetch_budget: None,
            tenant_quota: None,
        }
    }

    /// Continuous-mode config with a zero fixed charge.
    fn cont_cfg(concurrency: usize, policy: QueuePolicy) -> ServerConfig {
        ServerConfig {
            admission: AdmissionMode::Continuous,
            ..fixed_cfg(concurrency, policy)
        }
    }

    #[test]
    fn empty_request_stream() {
        let (db, _) = dummy_db_and_plan();
        let mut srv = PrefetchServer::new(&db, &run_cfg(), ServerConfig::default());
        let rep = srv.serve(&[]);
        assert!(rep.queries.is_empty());
        assert!(rep.waves.is_empty());
        assert_eq!(rep.makespan(), SimDuration::ZERO);
        assert_eq!(rep.throughput_qps(), 0.0);
    }

    #[test]
    fn admission_respects_concurrency_limit() {
        let (db, plan) = dummy_db_and_plan();
        let t = random_trace(40);
        // Three simultaneous arrivals, then one far in the future.
        let late = SimDuration::from_secs(3600);
        let reqs: Vec<ServerRequest<'_>> = [
            SimDuration::ZERO,
            SimDuration::ZERO,
            SimDuration::ZERO,
            late,
        ]
        .iter()
        .map(|&arrival| ServerRequest::new(&plan, &t, arrival))
        .collect();

        let mut srv = PrefetchServer::new(&db, &run_cfg(), fixed_cfg(2, QueuePolicy::Fifo));
        let rep = srv.serve(&reqs);

        // Wave 0 admits two of the three simultaneous arrivals (queue depth
        // 3), wave 1 the leftover, wave 2 the late one after idling forward.
        assert_eq!(rep.waves.len(), 3);
        assert_eq!(rep.waves[0].occupancy, 2);
        assert_eq!(rep.waves[0].queue_depth, 3);
        assert_eq!(rep.waves[1].occupancy, 1);
        assert_eq!(rep.waves[2].occupancy, 1);
        assert!(rep.waves[2].admitted_at >= SimTime::ZERO + late);
        assert_eq!(rep.max_queue_depth(), 3);

        // FIFO: the third arrival waited for the first wave to drain.
        assert_eq!(rep.queries[2].wave, 1);
        assert!(rep.queries[2].admission_wait() > SimDuration::ZERO);
        // The late arrival never queued.
        assert_eq!(rep.queries[3].admission_wait(), SimDuration::ZERO);
        // Wave stats sum to the aggregate.
        let mut sum = BufferStats::default();
        for w in &rep.waves {
            sum.merge(&w.stats);
        }
        assert_eq!(sum, rep.stats);
    }

    #[test]
    fn c1_fifo_matches_serial_runtime_runs() {
        // The determinism contract the proptests generalize: concurrency 1 +
        // FIFO + fixed charge ≡ serial Runtime::run calls on one warm stack —
        // in BOTH admission modes.
        let (db, plan) = dummy_db_and_plan();
        let traces: Vec<Trace> = vec![random_trace(60), random_trace(25), random_trace(40)];
        let arrivals = [
            SimDuration::ZERO,
            SimDuration::from_micros(300),
            SimDuration::from_secs(30),
        ];
        let reqs: Vec<ServerRequest<'_>> = traces
            .iter()
            .zip(arrivals)
            .map(|(t, arrival)| ServerRequest::new(&plan, t, arrival))
            .collect();

        for cfg in [
            fixed_cfg(1, QueuePolicy::Fifo),
            cont_cfg(1, QueuePolicy::Fifo),
        ] {
            let mut srv = PrefetchServer::new(&db, &run_cfg(), cfg);
            let rep = srv.serve(&reqs);

            let mut rt = Runtime::new(&run_cfg(), db.file_lengths());
            for ((t, arrival), q) in traces.iter().zip(arrivals).zip(&rep.queries) {
                rt.advance_to(SimTime::ZERO + arrival);
                let res = rt.run(&[QueryRun::default_run(t)]);
                assert_eq!(q.start, res.timings[0].start, "{:?}", cfg.admission);
                assert_eq!(q.end, res.timings[0].end, "{:?}", cfg.admission);
            }
            assert_eq!(rep.stats, rt.stats(), "{:?}", cfg.admission);
            // Each query ran alone, in arrival order, back to back.
            assert_eq!(rep.waves.len(), 3);
            assert!(rep.queries[1].start >= rep.queries[0].end);
            assert!(rep.queries[2].start >= rep.queries[1].end);
        }
    }

    #[test]
    fn overlap_policy_without_predictions_degrades_to_fifo() {
        let (db, plan) = dummy_db_and_plan();
        let traces: Vec<Trace> = (0..4).map(|_| random_trace(30)).collect();
        let reqs: Vec<ServerRequest<'_>> = traces
            .iter()
            .map(|t| ServerRequest::new(&plan, t, SimDuration::ZERO))
            .collect();

        for (fifo_cfg, ovlp_cfg) in [
            (
                fixed_cfg(2, QueuePolicy::Fifo),
                fixed_cfg(2, QueuePolicy::Overlap),
            ),
            (
                cont_cfg(2, QueuePolicy::Fifo),
                cont_cfg(2, QueuePolicy::Overlap),
            ),
        ] {
            let mut fifo = PrefetchServer::new(&db, &run_cfg(), fifo_cfg);
            let mut ovlp = PrefetchServer::new(&db, &run_cfg(), ovlp_cfg);
            let a = fifo.serve(&reqs);
            let b = ovlp.serve(&reqs);
            assert_eq!(a.stats, b.stats, "{:?}", fifo_cfg.admission);
            for (qa, qb) in a.queries.iter().zip(&b.queries) {
                assert_eq!(qa.wave, qb.wave);
                assert_eq!(qa.start, qb.start);
                assert_eq!(qa.end, qb.end);
            }
        }
    }

    #[test]
    fn continuous_admits_on_completion_and_beats_waves_under_skew() {
        // One long query plus four short ones, all arriving together, two
        // slots. Wave mode barriers on the long query; continuous streams the
        // shorts through the freed slot while the long one is still running.
        let (db, plan) = dummy_db_and_plan();
        let long = random_trace(400);
        let shorts: Vec<Trace> = (0..4).map(|_| random_trace(30)).collect();
        let mut reqs = vec![ServerRequest::new(&plan, &long, SimDuration::ZERO)];
        reqs.extend(
            shorts
                .iter()
                .map(|t| ServerRequest::new(&plan, t, SimDuration::ZERO)),
        );

        let mut wave_srv = PrefetchServer::new(&db, &run_cfg(), fixed_cfg(2, QueuePolicy::Fifo));
        let mut cont_srv = PrefetchServer::new(&db, &run_cfg(), cont_cfg(2, QueuePolicy::Fifo));
        let wave = wave_srv.serve(&reqs);
        let cont = cont_srv.serve(&reqs);

        // Admit-on-completion: the third query is admitted the moment the
        // first short completes — long before the long query finishes. Wave
        // mode cannot admit it until the whole first wave drains.
        assert!(cont.queries[2].admitted < cont.queries[0].end);
        assert!(wave.queries[2].admitted >= wave.queries[0].end);
        // One admission event per query in continuous mode.
        assert_eq!(cont.waves.len(), reqs.len());
        assert!(cont.waves.iter().all(|w| (1..=2).contains(&w.occupancy)));
        // Work conservation shows up as makespan/throughput: the acceptance
        // bar "continuous ≥ wave throughput under skewed per-query costs".
        assert!(
            cont.makespan() < wave.makespan(),
            "continuous {} vs wave {}",
            cont.makespan(),
            wave.makespan()
        );
        assert!(cont.throughput_qps() > wave.throughput_qps());
        // Both modes serve every query exactly once, with consistent stats
        // partitions.
        for rep in [&wave, &cont] {
            let mut sum = BufferStats::default();
            for w in &rep.waves {
                sum.merge(&w.stats);
            }
            assert_eq!(sum, rep.stats);
        }
    }

    #[test]
    fn concurrency_zero_behaves_as_one() {
        // The documented clamp: "values below 1 behave as 1" — in both
        // admission modes, concurrency 0 must serve bit-identically to 1.
        let (db, plan) = dummy_db_and_plan();
        let traces: Vec<Trace> = vec![random_trace(40), random_trace(20), random_trace(30)];
        let reqs: Vec<ServerRequest<'_>> = traces
            .iter()
            .enumerate()
            .map(|(i, t)| ServerRequest::new(&plan, t, SimDuration::from_micros(i as u64 * 100)))
            .collect();

        for make in [fixed_cfg, cont_cfg] {
            let mut zero = PrefetchServer::new(&db, &run_cfg(), make(0, QueuePolicy::Fifo));
            let mut one = PrefetchServer::new(&db, &run_cfg(), make(1, QueuePolicy::Fifo));
            let a = zero.serve(&reqs);
            let b = one.serve(&reqs);
            assert_eq!(a.stats, b.stats);
            assert_eq!(a.waves.len(), b.waves.len());
            for (qa, qb) in a.queries.iter().zip(&b.queries) {
                assert_eq!(qa.admitted, qb.admitted);
                assert_eq!(qa.start, qb.start);
                assert_eq!(qa.end, qb.end);
                assert_eq!(qa.wave, qb.wave);
            }
            // Occupancy respects the clamped limit.
            assert!(a.waves.iter().all(|w| w.occupancy == 1));
        }
    }

    #[test]
    fn continuous_serves_empty_traces_at_their_admission_instant() {
        // Empty-trace queries complete the instant they are admitted; the
        // refill chain must still admit everything exactly once (this is the
        // instant-completion path of the continuous driver).
        let (db, plan) = dummy_db_and_plan();
        let empty = Trace::new();
        let real = random_trace(25);
        let reqs = [
            ServerRequest::new(&plan, &empty, SimDuration::ZERO),
            ServerRequest::new(&plan, &empty, SimDuration::ZERO),
            ServerRequest::new(&plan, &real, SimDuration::ZERO),
            ServerRequest::new(&plan, &empty, SimDuration::ZERO),
        ];
        let mut srv = PrefetchServer::new(&db, &run_cfg(), cont_cfg(1, QueuePolicy::Fifo));
        let rep = srv.serve(&reqs);
        assert_eq!(rep.queries.len(), 4);
        assert_eq!(rep.waves.len(), 4);
        for (i, q) in rep.queries.iter().enumerate() {
            if i != 2 {
                assert_eq!(q.start, q.admitted);
                assert_eq!(q.end, q.start, "empty trace replays in zero time");
            }
        }
        // FIFO: the two leading empties chain at t=0, the real query runs,
        // the trailing empty completes at the real query's end.
        assert_eq!(rep.queries[0].end, SimTime::ZERO);
        assert_eq!(rep.queries[1].end, SimTime::ZERO);
        assert_eq!(rep.queries[3].admitted, rep.queries[2].end);
    }

    #[test]
    fn continuous_c1_straddling_completion_defers_admission() {
        // Straddle regression: query 0's entire replay is one cold disk read
        // (2ms of virtual time starting at t=0) and query 1 arrives mid-read
        // at 150us. The session steps events in *start* order, so query 0's
        // completion (end 2000us) is discovered before the arrival is
        // processed; the scheduler must still admit query 1 only when the
        // slot actually frees — at the completion end, not at the arrival
        // instant, which would overlap the two queries and break the C=1
        // cap. A raw `live()` check admits at 150us here.
        let (db, plan) = dummy_db_and_plan();
        let long = Trace {
            events: vec![read_ev(0)],
        };
        let tail = random_trace(10);
        let arrival = SimDuration::from_micros(150);
        let reqs = [
            ServerRequest::new(&plan, &long, SimDuration::ZERO),
            ServerRequest::new(&plan, &tail, arrival),
        ];
        let mut srv = PrefetchServer::new(&db, &run_cfg(), cont_cfg(1, QueuePolicy::Fifo));
        let rep = srv.serve(&reqs);

        // The scenario really straddles: the arrival lands strictly inside
        // query 0's replay interval.
        assert!(rep.queries[0].start < rep.queries[1].arrival);
        assert!(rep.queries[1].arrival < rep.queries[0].end);
        // Admission waits for the slot: dispatched exactly at the completion.
        assert_eq!(rep.queries[1].admitted, rep.queries[0].end);
        assert_eq!(rep.queries[1].start, rep.queries[0].end);

        // And the result is bit-identical to serial replay — the straddle
        // case of the C=1/FIFO/Fixed pin, hit deterministically.
        let mut rt = Runtime::new(&run_cfg(), db.file_lengths());
        for ((t, arr), q) in [&long, &tail]
            .iter()
            .zip([SimDuration::ZERO, arrival])
            .zip(&rep.queries)
        {
            rt.advance_to(SimTime::ZERO + arr);
            let res = rt.run(&[QueryRun::default_run(t)]);
            assert_eq!(q.start, res.timings[0].start);
            assert_eq!(q.end, res.timings[0].end);
        }
        assert_eq!(rep.stats, rt.stats());
        assert_eq!(srv.runtime().now(), rt.now());
    }

    #[test]
    fn serve_report_is_nan_free_on_empty_and_degenerate_inputs() {
        // Satellite pin: no panics, NaNs or divisions by zero on empty or
        // zero-duration inputs.
        let empty = ServeReport {
            queries: Vec::new(),
            waves: Vec::new(),
            stats: BufferStats::default(),
        };
        assert_eq!(empty.makespan(), SimDuration::ZERO);
        assert_eq!(empty.mean_admission_wait(), SimDuration::ZERO);
        assert_eq!(empty.mean_occupancy(), 0.0);
        assert_eq!(empty.max_queue_depth(), 0);
        assert_eq!(empty.throughput_qps(), 0.0);
        assert!(!empty.throughput_qps().is_nan());
        let aw = empty.admission_wait_hist();
        assert_eq!((aw.p50(), aw.p95(), aw.p99()), (0, 0, 0));
        let text = empty.report();
        assert!(text.contains("0 queries, 0 waves"), "{text}");

        // Zero-duration queries (arrival == end): makespan 0 with a non-zero
        // query count must yield throughput 0, not infinity or NaN.
        let t = SimTime::from_micros(50);
        let degenerate = ServeReport {
            queries: vec![QueryOutcome {
                arrival: t,
                admitted: t,
                start: t,
                end: t,
                wave: 0,
                inference: SimDuration::ZERO,
                tenant: 0,
                request: 1,
            }],
            // A queries/waves mismatch must not trip any indexing either.
            waves: Vec::new(),
            stats: BufferStats::default(),
        };
        assert_eq!(degenerate.makespan(), SimDuration::ZERO);
        assert_eq!(degenerate.throughput_qps(), 0.0);
        assert!(!degenerate.mean_occupancy().is_nan());
        assert!(degenerate.report().contains("1 queries, 0 waves"));
    }

    #[test]
    fn report_mentions_admission_metrics() {
        let (db, plan) = dummy_db_and_plan();
        let t = random_trace(20);
        let reqs = [
            ServerRequest::new(&plan, &t, SimDuration::ZERO),
            ServerRequest::new(&plan, &t, SimDuration::from_micros(5)),
        ];
        let mut srv = PrefetchServer::new(&db, &run_cfg(), fixed_cfg(1, QueuePolicy::Fifo));
        let rep = srv.serve(&reqs).report();
        for needle in [
            "Serving report",
            "wave 0",
            "queue depth",
            "throughput",
            "admission",
            "prefetch",
        ] {
            assert!(rep.contains(needle), "missing '{needle}' in:\n{rep}");
        }
    }

    #[test]
    fn report_pins_hand_computed_admission_wait_percentiles() {
        // Waits in µs: eighteen of 10 (log₂ bucket [8,16) → bound 15), one of
        // 100 (bucket [64,128) → bound 127), one of 1000 (rank 20 lands in
        // its bucket, whose bound 1023 clamps to the observed max).
        let mut waits = vec![10u64; 18];
        waits.push(100);
        waits.push(1000);
        let queries: Vec<QueryOutcome> = waits
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                let admitted = SimTime::ZERO + SimDuration::from_micros(w);
                QueryOutcome {
                    arrival: SimTime::ZERO,
                    admitted,
                    start: admitted,
                    end: admitted + SimDuration::from_micros(1),
                    wave: 0,
                    inference: SimDuration::ZERO,
                    tenant: 0,
                    request: i as u64 + 1,
                }
            })
            .collect();
        let rep = ServeReport {
            queries,
            waves: Vec::new(),
            stats: BufferStats::default(),
        };
        let aw = rep.admission_wait_hist();
        assert_eq!((aw.p50(), aw.p95(), aw.p99()), (15, 127, 1000));
        assert!(
            rep.report()
                .contains("admission wait percentiles: p50 15us p95 127us p99 1000us"),
            "percentile line drifted:\n{}",
            rep.report()
        );
    }

    /// End-to-end with a trained model: a tiny star schema, a handful of
    /// index-probe queries, Poisson-ish staggered arrivals.
    #[test]
    fn serves_with_trained_predictor_and_charges_inference() {
        let mut db = Database::new();
        let fact = db.create_table("fact", Schema::ints(&["id", "date", "dkey"]));
        let dim = db.create_table("dim", Schema::ints(&["d_id", "attr"]));
        for i in 0..800i64 {
            let date = i / 2;
            let dkey = (date * 300 / 400 + i % 3).min(299);
            db.insert(fact, Database::row(&[i, date, dkey]));
        }
        for d in 0..300i64 {
            db.insert(dim, Database::row(&[d, d % 9]));
        }
        let idx = db.create_index("dim_pk", dim, 0);

        let mut plans = Vec::new();
        let mut traces = Vec::new();
        for q in 0..12i64 {
            let lo = (q * 37) % 300;
            let plan = PlanNode::IndexNLJoin {
                outer: Box::new(PlanNode::SeqScan {
                    table: fact,
                    pred: Some(Pred::Between {
                        col: 1,
                        lo,
                        hi: lo + 40,
                    }),
                }),
                outer_key: 2,
                inner: dim,
                inner_index: idx,
                inner_pred: None,
            };
            let (_, trace) = execute(&plan, &db);
            plans.push(plan);
            traces.push(trace);
        }
        let cfg = PythiaConfig {
            epochs: 6,
            batch_size: 8,
            ..PythiaConfig::fast()
        };
        let tw = train_workload(&db, "mini", &plans[..8], &traces[..8], None, &cfg);

        let inf = SimDuration::from_millis(2);
        let server_cfg = ServerConfig {
            concurrency: 2,
            admission: AdmissionMode::Continuous,
            policy: QueuePolicy::Overlap,
            charge: InferenceCharge::Fixed(inf),
            prefetch_budget: None,
            tenant_quota: None,
        };
        let reqs: Vec<ServerRequest<'_>> = plans[8..]
            .iter()
            .zip(&traces[8..])
            .enumerate()
            .map(|(i, (p, t))| ServerRequest::new(p, t, SimDuration::from_micros(i as u64 * 40)))
            .collect();
        let mut srv = PrefetchServer::new(&db, &run_cfg(), server_cfg).with_predictor(&tw);
        let rep = srv.serve(&reqs);

        assert_eq!(rep.queries.len(), 4);
        assert!(
            rep.stats.prefetch_issued > 0,
            "predictor must drive prefetching"
        );
        let covered: usize = rep.waves.iter().map(|w| w.inferred).sum();
        assert_eq!(covered, 4, "every query inferred exactly once");
        for q in &rep.queries {
            assert_eq!(q.inference, inf);
            assert_eq!(q.start, q.admitted + inf);
        }

        // Registry-routed serving is bit-identical to the borrowed
        // predictor, even with a mid-stream hot swap to identical weights
        // published by the admission hook (versions bump, outcomes don't).
        let fleet = Arc::new(TenantFleet::new("t0"));
        fleet.publish(tw.duplicate());
        let mut reg_srv =
            PrefetchServer::new(&db, &run_cfg(), server_cfg).with_registry(Arc::clone(&fleet));
        let swapper = Arc::clone(&fleet);
        let spare = tw.duplicate();
        reg_srv.set_admission_hook(move |k| {
            if k == 2 {
                swapper.publish(spare.duplicate());
            }
        });
        let rep2 = reg_srv.serve(&reqs);
        assert_eq!(fleet.current("mini").unwrap().version, 2, "swap landed");
        for (a, b) in rep.queries.iter().zip(&rep2.queries) {
            assert_eq!(a.start, b.start);
            assert_eq!(a.end, b.end);
            assert_eq!(a.inference, b.inference);
        }
        assert_eq!(rep.stats, rep2.stats);
    }

    #[test]
    fn tenant_quota_zero_clamps_to_one() {
        // The satellite pin: quota 0 behaves as quota 1, mirroring the
        // concurrency clamp — in both admission modes.
        let (db, plan) = dummy_db_and_plan();
        let traces: Vec<Trace> = vec![
            random_trace(30),
            random_trace(20),
            random_trace(25),
            random_trace(15),
        ];
        let reqs: Vec<ServerRequest<'_>> = traces
            .iter()
            .enumerate()
            .map(|(i, t)| {
                ServerRequest::new(&plan, t, SimDuration::from_micros(i as u64 * 50))
                    .with_tenant((i % 2) as u32)
            })
            .collect();
        for make in [fixed_cfg, cont_cfg] {
            let mut zero = PrefetchServer::new(
                &db,
                &run_cfg(),
                ServerConfig {
                    tenant_quota: Some(0),
                    ..make(4, QueuePolicy::Fifo)
                },
            );
            let mut one = PrefetchServer::new(
                &db,
                &run_cfg(),
                ServerConfig {
                    tenant_quota: Some(1),
                    ..make(4, QueuePolicy::Fifo)
                },
            );
            let a = zero.serve(&reqs);
            let b = one.serve(&reqs);
            assert_eq!(a.stats, b.stats);
            for (qa, qb) in a.queries.iter().zip(&b.queries) {
                assert_eq!(qa.admitted, qb.admitted);
                assert_eq!(qa.start, qb.start);
                assert_eq!(qa.end, qb.end);
            }
        }
    }

    #[test]
    fn tenant_quota_caps_per_tenant_concurrency_without_starvation() {
        // Four tenant-0 queries and two tenant-1, all arriving together,
        // four slots, quota 1: same-tenant replays serialize, the global
        // occupancy never exceeds the two admissible tenants, and tenant 1
        // is admitted immediately even though four tenant-0 queries sit
        // ahead of it in the queue (the quota-blocked head is skipped).
        let (db, plan) = dummy_db_and_plan();
        let traces: Vec<Trace> = (0..6).map(|i| random_trace(15 + i * 5)).collect();
        let tenants = [0u32, 0, 0, 0, 1, 1];
        let reqs: Vec<ServerRequest<'_>> = traces
            .iter()
            .zip(tenants)
            .map(|(t, tenant)| ServerRequest::new(&plan, t, SimDuration::ZERO).with_tenant(tenant))
            .collect();
        let cfg = ServerConfig {
            tenant_quota: Some(1),
            ..cont_cfg(4, QueuePolicy::Fifo)
        };
        let mut srv = PrefetchServer::new(&db, &run_cfg(), cfg);
        let rep = srv.serve(&reqs);

        let mut by_tenant: HashMap<u32, Vec<&QueryOutcome>> = HashMap::new();
        for q in &rep.queries {
            by_tenant.entry(q.tenant).or_default().push(q);
        }
        for (tenant, mut qs) in by_tenant {
            qs.sort_by_key(|q| q.start);
            for w in qs.windows(2) {
                assert!(
                    w[1].start >= w[0].end,
                    "quota 1 must serialize tenant {tenant}"
                );
            }
        }
        assert!(rep.waves.iter().all(|w| w.occupancy <= 2));
        let first_t1 = rep
            .queries
            .iter()
            .find(|q| q.tenant == 1)
            .expect("tenant 1 served");
        assert_eq!(
            first_t1.admitted,
            SimTime::ZERO,
            "tenant 1 must not wait behind tenant 0's quota-blocked queue"
        );

        // Per-tenant reports partition the global totals (continuous mode
        // attributes every admission interval to one tenant).
        let by = rep.by_tenant();
        assert_eq!(by.len(), 2);
        assert_eq!(by.values().map(|t| t.queries).sum::<usize>(), 6);
        assert_eq!(
            by.values().map(|t| t.admissions).sum::<usize>(),
            rep.waves.len()
        );
        let mut merged = BufferStats::default();
        for t in by.values() {
            merged.merge(&t.stats);
        }
        assert_eq!(merged, rep.stats);
    }

    #[test]
    fn quality_tracker_observes_every_continuous_interval() {
        let (db, plan) = dummy_db_and_plan();
        let traces: Vec<Trace> = (0..6).map(|i| random_trace(20 + i * 5)).collect();
        let reqs: Vec<ServerRequest<'_>> = traces
            .iter()
            .enumerate()
            .map(|(i, t)| {
                ServerRequest::new(&plan, t, SimDuration::from_micros(i as u64 * 50))
                    .with_tenant((i % 2) as u32)
            })
            .collect();
        let tracker = Arc::new(Mutex::new(QualityTracker::default()));
        let mut srv = PrefetchServer::new(&db, &run_cfg(), cont_cfg(2, QueuePolicy::Fifo))
            .with_quality(Arc::clone(&tracker));
        srv.set_recorder(Recorder::enabled());
        let rep = srv.serve(&reqs);

        let rec = srv.recorder();
        assert_eq!(rec.event_count("quality.observe"), rep.waves.len());
        assert_eq!(rec.counter("quality.observations"), rep.waves.len() as u64);
        assert_eq!(rec.event_count("drift.alert"), 0, "stationary mini run");
        let q = tracker.lock().unwrap();
        assert_eq!(q.tenant_ids(), vec![0, 1]);
        assert_eq!(q.total_alerts(), 0);
        // The tracker's lifetime totals partition exactly like the report's
        // per-tenant quality slices: both come from the same interval diffs.
        let mut folded = QualityTotals::default();
        for t in [0u32, 1] {
            folded.merge(&q.tenant_lifetime(t));
        }
        assert_eq!(folded.hits, rep.stats.hits);
        assert_eq!(folded.prefetch_issued, rep.stats.prefetch_issued);
        assert_eq!(folded.outcomes, rep.waves.len() as u64);
        // The report-side slices partition the global quality totals too.
        let global = rep.quality();
        let mut by = QualityTotals::default();
        for t in rep.by_tenant().values() {
            by.merge(&t.quality());
        }
        assert_eq!(by, global);
        assert!(!global.hit_rate().is_nan());
    }

    #[test]
    fn quality_tracking_is_invisible_to_virtual_time() {
        // Enabling the tracker must not perturb admissions, timings or
        // counters — it only reads interval diffs.
        let (db, plan) = dummy_db_and_plan();
        let traces: Vec<Trace> = (0..5).map(|i| random_trace(15 + i * 7)).collect();
        let reqs: Vec<ServerRequest<'_>> = traces
            .iter()
            .enumerate()
            .map(|(i, t)| ServerRequest::new(&plan, t, SimDuration::from_micros(i as u64 * 30)))
            .collect();
        let mut plain = PrefetchServer::new(&db, &run_cfg(), cont_cfg(2, QueuePolicy::Fifo));
        let tracker = Arc::new(Mutex::new(QualityTracker::default()));
        let mut tracked = PrefetchServer::new(&db, &run_cfg(), cont_cfg(2, QueuePolicy::Fifo))
            .with_quality(tracker);
        let a = plain.serve(&reqs);
        let b = tracked.serve(&reqs);
        assert_eq!(a.stats, b.stats);
        for (qa, qb) in a.queries.iter().zip(&b.queries) {
            assert_eq!(qa.admitted, qb.admitted);
            assert_eq!(qa.start, qb.start);
            assert_eq!(qa.end, qb.end);
        }
    }

    #[test]
    fn request_spans_carry_ordinal_ids_and_reconcile_with_the_report() {
        let (db, plan) = dummy_db_and_plan();
        let traces: Vec<Trace> = (0..4).map(|i| random_trace(15 + i * 10)).collect();
        let reqs: Vec<ServerRequest<'_>> = traces
            .iter()
            .enumerate()
            .map(|(i, t)| ServerRequest::new(&plan, t, SimDuration::from_micros(i as u64 * 40)))
            .collect();
        let mut srv = PrefetchServer::new(&db, &run_cfg(), cont_cfg(2, QueuePolicy::Fifo));
        srv.set_recorder(Recorder::enabled());

        // An externally minted id survives the loop untouched.
        let tagged = [ServerRequest::new(&plan, &traces[0], SimDuration::ZERO).with_request(77)];
        let tagged_rep = srv.serve(&tagged);
        assert_eq!(tagged_rep.queries[0].request, 77);

        let rep = srv.serve(&reqs);
        // Zero ids get the deterministic per-call ordinal i + 1.
        for (i, q) in rep.queries.iter().enumerate() {
            assert_eq!(q.request, i as u64 + 1);
        }

        // One span tree per completed request (5 = 1 tagged + 4 ordinal),
        // flow-linked start + finish.
        let rec = srv.recorder();
        for name in [
            "request.queue",
            "request.admission",
            "request.infer",
            "request.replay",
        ] {
            assert_eq!(rec.event_count(name), 5, "{name}");
        }
        assert_eq!(rec.event_count("request.flow"), 10);

        // Breakdowns reconcile with the report's own latency accounting.
        for q in &rep.queries {
            let b = q.breakdown();
            assert_eq!(b.latency_us(), q.latency().as_micros());
            assert_eq!(b.queue_us, q.admission_wait().as_micros());
            assert_eq!(b.infer_us, q.inference.as_micros());
            assert_eq!(
                b.queue_us + b.admission_us + b.replay_us,
                q.latency().as_micros()
            );
        }
        // Top-K slow log is sorted descending and bounded.
        let slow = rep.slow_requests(2);
        assert_eq!(slow.len(), 2);
        assert!(slow[0].latency_us() >= slow[1].latency_us());

        // Per-tenant admission-wait percentile gauges match the report's
        // histogram estimator exactly.
        let mut h = pythia_obs::hist::Histogram::new();
        for q in &rep.queries {
            h.record(q.admission_wait().as_micros());
        }
        assert_eq!(
            rec.labeled(
                "server.admission_wait_us",
                &[("quantile", "0.5"), ("tenant", "0")]
            ),
            h.p50()
        );
        assert_eq!(
            rec.labeled(
                "server.admission_wait_us",
                &[("quantile", "0.99"), ("tenant", "0")]
            ),
            h.p99()
        );
    }

    #[test]
    fn slow_threshold_counts_and_publishes_postmortem_dumps() {
        let (db, plan) = dummy_db_and_plan();
        let t = random_trace(30);
        let reqs = [
            ServerRequest::new(&plan, &t, SimDuration::ZERO),
            ServerRequest::new(&plan, &t, SimDuration::from_micros(5)),
        ];
        let mut srv = PrefetchServer::new(&db, &run_cfg(), cont_cfg(1, QueuePolicy::Fifo));
        srv.set_recorder(Recorder::enabled());
        let shared = pythia_obs::flight::SharedFlight::new();
        srv.recorder_mut().set_flight_publisher(shared.clone());
        srv.set_slow_threshold(Some(SimDuration::ZERO)); // everything is slow
        srv.serve(&reqs);
        assert_eq!(srv.recorder().counter("server.slow_requests"), 2);
        let dump = shared.get().expect("slow completions publish a dump");
        assert_eq!(dump.reason, "slow.request");
        assert!(
            dump.trace_json.contains("request.replay"),
            "dump carries the request span tree"
        );
        assert!(
            dump.trace_json.contains("\"ph\":\"s\""),
            "dump carries flow links"
        );
    }

    #[test]
    fn flight_recorder_captures_requests_even_with_trace_export_off() {
        // The always-on property: a server whose recorder was never enabled
        // still retains the request span tree in the flight ring and dumps
        // it on a slow-request trigger.
        let (db, plan) = dummy_db_and_plan();
        let t = random_trace(25);
        let reqs = [ServerRequest::new(&plan, &t, SimDuration::ZERO)];
        let mut srv = PrefetchServer::new(&db, &run_cfg(), cont_cfg(1, QueuePolicy::Fifo));
        assert!(!srv.recorder().is_enabled());
        let shared = pythia_obs::flight::SharedFlight::new();
        srv.recorder_mut().set_flight_publisher(shared.clone());
        srv.set_slow_threshold(Some(SimDuration::ZERO));
        srv.serve(&reqs);
        let dump = shared.get().expect("always-on ring captured the request");
        assert_eq!(dump.reason, "slow.request");
        assert!(
            dump.trace_json.contains("request.replay"),
            "{}",
            dump.trace_json
        );
        assert!(
            dump.trace_json.contains("request-1"),
            "request track name dumped"
        );
    }

    #[test]
    fn request_tracing_is_invisible_to_virtual_time() {
        // Enabling tracing, the slow threshold and the flight ring must not
        // perturb admissions, timings or counters.
        let (db, plan) = dummy_db_and_plan();
        let traces: Vec<Trace> = (0..5).map(|i| random_trace(10 + i * 8)).collect();
        let reqs: Vec<ServerRequest<'_>> = traces
            .iter()
            .enumerate()
            .map(|(i, t)| ServerRequest::new(&plan, t, SimDuration::from_micros(i as u64 * 25)))
            .collect();
        let mut plain = PrefetchServer::new(&db, &run_cfg(), cont_cfg(2, QueuePolicy::Fifo));
        let mut traced = PrefetchServer::new(&db, &run_cfg(), cont_cfg(2, QueuePolicy::Fifo));
        traced.set_recorder(Recorder::enabled());
        traced.set_slow_threshold(Some(SimDuration::ZERO));
        let a = plain.serve(&reqs);
        let b = traced.serve(&reqs);
        assert_eq!(a.stats, b.stats);
        for (qa, qb) in a.queries.iter().zip(&b.queries) {
            assert_eq!(qa.admitted, qb.admitted);
            assert_eq!(qa.start, qb.start);
            assert_eq!(qa.end, qb.end);
            assert_eq!(qa.request, qb.request);
        }
    }

    #[test]
    fn zero_query_tenant_report_is_nan_free() {
        // The satellite pin: asking for a tenant that issued nothing yields
        // the all-zero report — no panic, no NaN, no division by zero.
        let (db, plan) = dummy_db_and_plan();
        let t = random_trace(20);
        let reqs = [
            ServerRequest::new(&plan, &t, SimDuration::ZERO),
            ServerRequest::new(&plan, &t, SimDuration::from_micros(5)),
        ];
        let cfg = ServerConfig {
            tenant_quota: Some(2),
            ..cont_cfg(2, QueuePolicy::Fifo)
        };
        let mut srv = PrefetchServer::new(&db, &run_cfg(), cfg);
        let rep = srv.serve(&reqs);
        let ghost = rep.tenant_report(9);
        assert_eq!(ghost.queries, 0);
        assert_eq!(ghost.admissions, 0);
        assert_eq!(ghost.mean_admission_wait(), SimDuration::ZERO);
        assert_eq!(ghost.mean_latency(), SimDuration::ZERO);
        assert_eq!(ghost.stats, BufferStats::default());
        let json = ghost.to_json();
        assert!(json.contains("\"queries\":0"), "{json}");
        assert!(!json.contains("NaN"), "{json}");
        // The tenant that did issue queries aggregates them all.
        assert_eq!(rep.tenant_report(0).queries, 2);
    }
}
