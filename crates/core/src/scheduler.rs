//! Prefetch-aware query scheduling — the paper's §7 extension:
//! "It would be fruitful to investigate the contribution Pythia may have in
//! improving the performance of query scheduling algorithms where the goal
//! is to schedule queries to maximize the overlapping reads."
//!
//! Given a batch of queued queries and Pythia's per-query page predictions,
//! [`schedule_by_overlap`] orders the batch so that consecutive queries share
//! as many predicted pages as possible: a query then finds much of its
//! working set already resident from its predecessor, turning disk reads
//! into buffer hits. The algorithm is a greedy nearest-neighbour chain on
//! Jaccard similarity of predicted page sets — O(n²) set comparisons, which
//! is fine for realistic queue depths.

use std::collections::BTreeSet;

use pythia_sim::PageId;

/// Jaccard similarity of two page sets (1.0 when both are empty).
fn jaccard(a: &BTreeSet<PageId>, b: &BTreeSet<PageId>) -> f64 {
    let union = a.union(b).count();
    if union == 0 {
        return 1.0;
    }
    a.intersection(b).count() as f64 / union as f64
}

/// Order the batch to maximize consecutive predicted-page overlap.
///
/// `predictions[i]` is query `i`'s predicted page set. Returns a permutation
/// of `0..n`: start from the query with the largest prediction (the best
/// "seed" for the buffer pool), then repeatedly append the unscheduled query
/// most similar to the last scheduled one.
///
/// Ties break toward the lowest query index (i.e. arrival order), so the
/// permutation is a deterministic function of the prediction sets — the
/// serving loop relies on this to keep replays reproducible. In particular,
/// all-empty prediction sets (every pair has Jaccard 1.0) degrade to FIFO.
pub fn schedule_by_overlap(predictions: &[Vec<PageId>]) -> Vec<usize> {
    let n = predictions.len();
    if n == 0 {
        return Vec::new();
    }
    let sets: Vec<BTreeSet<PageId>> = predictions
        .iter()
        .map(|p| p.iter().copied().collect())
        .collect();

    // `remaining` stays sorted by query index (we use `remove`, never
    // `swap_remove`), so "first maximal element" == "lowest query index".
    let mut remaining: Vec<usize> = (0..n).collect();
    let seed_pos = remaining
        .iter()
        .enumerate()
        .max_by(|(pa, &a), (pb, &b)| sets[a].len().cmp(&sets[b].len()).then(pb.cmp(pa)))
        // `Iterator::max_by` keeps the LAST maximal element; the `.then`
        // position tie-break above inverts that to "first maximal", i.e.
        // lowest index.
        .map(|(pos, _)| pos)
        .expect("non-empty");
    let mut order = vec![remaining.remove(seed_pos)];

    while !remaining.is_empty() {
        let last = *order.last().expect("non-empty order");
        let (pos, _) = remaining
            .iter()
            .enumerate()
            .map(|(pos, &i)| (pos, jaccard(&sets[last], &sets[i])))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN").then(b.0.cmp(&a.0)))
            .expect("non-empty remaining");
        order.push(remaining.remove(pos));
    }
    order
}

/// Pick the single next query to admit: the candidate whose predicted page
/// set is most similar (Jaccard) to `prev`, the prediction of the most
/// recently admitted query — the admit-on-completion counterpart of one
/// [`schedule_by_overlap`] chain step.
///
/// Returns an index into `candidates` (which must be non-empty). Ties break
/// toward the lowest index, i.e. arrival order when the caller keeps its
/// queue FIFO-ordered; with `prev` and all candidates empty every pair ties
/// at Jaccard 1.0, so the pick degrades to FIFO — the same determinism
/// contract as the batch scheduler.
pub fn pick_next_by_overlap(prev: &[PageId], candidates: &[Vec<PageId>]) -> usize {
    pick_next_by_overlap_scored(prev, candidates).0
}

/// [`pick_next_by_overlap`] plus the winning candidate's Jaccard score —
/// the serving loop attaches the score to its `server.admit` trace instant
/// so a postmortem dump shows *how good* each overlap pick was, not just
/// which query won. Same tie-break, so `pick_next_by_overlap(p, c) ==
/// pick_next_by_overlap_scored(p, c).0` always.
pub fn pick_next_by_overlap_scored(prev: &[PageId], candidates: &[Vec<PageId>]) -> (usize, f64) {
    assert!(!candidates.is_empty(), "no candidates to pick from");
    let prev_set: BTreeSet<PageId> = prev.iter().copied().collect();
    candidates
        .iter()
        .enumerate()
        .map(|(i, c)| (i, jaccard(&prev_set, &c.iter().copied().collect())))
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN").then(b.0.cmp(&a.0)))
        .expect("non-empty candidates")
}

/// Total consecutive-pair overlap of an ordering (diagnostics / tests).
pub fn consecutive_overlap(predictions: &[Vec<PageId>], order: &[usize]) -> f64 {
    let sets: Vec<BTreeSet<PageId>> = predictions
        .iter()
        .map(|p| p.iter().copied().collect())
        .collect();
    order
        .windows(2)
        .map(|w| jaccard(&sets[w[0]], &sets[w[1]]))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pythia_sim::FileId;

    fn pages(ps: &[u32]) -> Vec<PageId> {
        ps.iter().map(|&p| PageId::new(FileId(0), p)).collect()
    }

    #[test]
    fn orders_similar_queries_adjacently() {
        // Two "clusters": {0,2} share pages, {1,3} share pages.
        let preds = vec![
            pages(&[1, 2, 3, 4]),
            pages(&[100, 101, 102]),
            pages(&[2, 3, 4, 5]),
            pages(&[101, 102, 103]),
        ];
        let order = schedule_by_overlap(&preds);
        assert_eq!(order.len(), 4);
        // Cluster members must be adjacent.
        let pos: Vec<usize> = (0..4)
            .map(|q| order.iter().position(|&x| x == q).unwrap())
            .collect();
        assert_eq!((pos[0] as i64 - pos[2] as i64).abs(), 1, "{order:?}");
        assert_eq!((pos[1] as i64 - pos[3] as i64).abs(), 1, "{order:?}");
    }

    #[test]
    fn scheduled_overlap_at_least_fifo() {
        // Alternating clusters in FIFO order: scheduling must not be worse.
        let preds = vec![
            pages(&[1, 2, 3]),
            pages(&[50, 51]),
            pages(&[2, 3, 4]),
            pages(&[51, 52]),
            pages(&[3, 4, 5]),
        ];
        let fifo: Vec<usize> = (0..preds.len()).collect();
        let sched = schedule_by_overlap(&preds);
        assert!(
            consecutive_overlap(&preds, &sched) >= consecutive_overlap(&preds, &fifo),
            "greedy chain must beat (or match) arrival order"
        );
    }

    #[test]
    fn is_a_permutation() {
        let preds = vec![pages(&[1]), pages(&[]), pages(&[2, 3]), pages(&[1, 2])];
        let mut order = schedule_by_overlap(&preds);
        order.sort_unstable();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_and_single() {
        assert!(schedule_by_overlap(&[]).is_empty());
        assert_eq!(schedule_by_overlap(&[pages(&[1])]), vec![0]);
    }

    #[test]
    fn ties_break_toward_arrival_order() {
        // Four identical sets: every seed candidate and every chain step is a
        // tie, so the schedule must be exactly FIFO — not whatever internal
        // iteration order `max_by` happens to keep.
        let preds = vec![pages(&[7, 8]); 4];
        assert_eq!(schedule_by_overlap(&preds), vec![0, 1, 2, 3]);

        // Two equally-similar candidates after a distinct seed: lowest index
        // wins the tie.
        let preds = vec![
            pages(&[1, 2]),       // ties with 2 for the chain step
            pages(&[1, 2, 3, 4]), // unique largest set: the seed
            pages(&[3, 4]),       // same Jaccard to the seed as 0
        ];
        assert_eq!(schedule_by_overlap(&preds), vec![1, 0, 2]);
    }

    #[test]
    fn all_empty_sets_degrade_to_fifo() {
        // Empty predictions (e.g. a cold registry) have pairwise Jaccard 1.0
        // everywhere; the schedule must still be deterministic: FIFO.
        let preds = vec![pages(&[]); 5];
        assert_eq!(schedule_by_overlap(&preds), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn pick_next_prefers_highest_overlap() {
        let prev = pages(&[1, 2, 3]);
        let cands = vec![
            pages(&[50, 51]),   // disjoint
            pages(&[2, 3, 4]),  // 2/4 overlap — best
            pages(&[3, 9, 10]), // 1/5 overlap
        ];
        assert_eq!(pick_next_by_overlap(&prev, &cands), 1);
    }

    #[test]
    fn pick_next_ties_break_toward_arrival_order() {
        // Identical candidates: lowest index wins.
        let prev = pages(&[1, 2]);
        let cands = vec![pages(&[1, 2]); 3];
        assert_eq!(pick_next_by_overlap(&prev, &cands), 0);
        // All empty (prev included): everything ties at Jaccard 1.0 → FIFO.
        let cands = vec![pages(&[]); 4];
        assert_eq!(pick_next_by_overlap(&[], &cands), 0);
        // Empty prev vs non-empty candidates: all Jaccard 0 → still FIFO.
        let cands = vec![pages(&[5]), pages(&[6])];
        assert_eq!(pick_next_by_overlap(&[], &cands), 0);
    }

    #[test]
    fn scored_pick_agrees_with_unscored_and_reports_jaccard() {
        let prev = pages(&[1, 2, 3]);
        let cands = vec![
            pages(&[50, 51]),
            pages(&[2, 3, 4]), // 2 shared / 4 union
            pages(&[3, 9, 10]),
        ];
        let (i, score) = pick_next_by_overlap_scored(&prev, &cands);
        assert_eq!(i, pick_next_by_overlap(&prev, &cands));
        assert_eq!(i, 1);
        assert!((score - 0.5).abs() < 1e-12, "score {score}");
        // All-empty degenerate case: FIFO pick at the defined Jaccard 1.0.
        let empty = vec![pages(&[]); 3];
        assert_eq!(pick_next_by_overlap_scored(&[], &empty), (0, 1.0));
    }

    #[test]
    fn pick_next_agrees_with_batch_chain_step() {
        // One chain step of the batch scheduler and the incremental pick must
        // choose the same query given the same "last admitted" set.
        let cands = vec![
            pages(&[11, 12, 13]),
            pages(&[99]),
            pages(&[10, 11, 12]),
            pages(&[12, 40]),
        ];
        // Batch scheduler with prev as element 0 (largest? not necessarily —
        // feed it as the seed by making it strictly largest).
        let mut batch = vec![pages(&[9, 10, 11, 12, 13])];
        batch.extend(cands.clone());
        let order = schedule_by_overlap(&batch);
        assert_eq!(order[0], 0, "seed is the largest set");
        let chain_pick = order[1] - 1; // shift out the seed slot
        let incr_pick = pick_next_by_overlap(&pages(&[9, 10, 11, 12, 13]), &cands);
        assert_eq!(chain_pick, incr_pick);
    }

    #[test]
    fn schedule_is_reproducible() {
        let preds = vec![
            pages(&[1, 2, 3]),
            pages(&[]),
            pages(&[2, 3]),
            pages(&[9]),
            pages(&[1, 9]),
            pages(&[]),
        ];
        let first = schedule_by_overlap(&preds);
        for _ in 0..10 {
            assert_eq!(schedule_by_overlap(&preds), first);
        }
    }
}
