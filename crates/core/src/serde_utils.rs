//! Serde adapters for maps with non-string keys.
//!
//! Trained models are persisted as JSON (`TrainedWorkload::save_json`), but
//! JSON object keys must be strings; these adapters serialize
//! `HashMap`/`BTreeMap` with structured keys as sequences of `(key, value)`
//! pairs instead.

/// `HashMap<K, V>` ⇄ `Vec<(K, V)>`.
pub mod hash_map_pairs {
    use serde::de::{Deserialize, Deserializer};
    use serde::ser::Serializer;
    use serde::Serialize;
    use std::collections::HashMap;
    use std::hash::Hash;

    pub fn serialize<K, V, S>(map: &HashMap<K, V>, s: S) -> Result<S::Ok, S::Error>
    where
        K: Serialize,
        V: Serialize,
        S: Serializer,
    {
        s.collect_seq(map.iter())
    }

    pub fn deserialize<'de, K, V, D>(d: D) -> Result<HashMap<K, V>, D::Error>
    where
        K: Deserialize<'de> + Eq + Hash,
        V: Deserialize<'de>,
        D: Deserializer<'de>,
    {
        let pairs: Vec<(K, V)> = Vec::deserialize(d)?;
        Ok(pairs.into_iter().collect())
    }
}

/// `BTreeMap<K, V>` ⇄ `Vec<(K, V)>`.
pub mod btree_map_pairs {
    use serde::de::{Deserialize, Deserializer};
    use serde::ser::Serializer;
    use serde::Serialize;
    use std::collections::BTreeMap;

    pub fn serialize<K, V, S>(map: &BTreeMap<K, V>, s: S) -> Result<S::Ok, S::Error>
    where
        K: Serialize,
        V: Serialize,
        S: Serializer,
    {
        s.collect_seq(map.iter())
    }

    pub fn deserialize<'de, K, V, D>(d: D) -> Result<BTreeMap<K, V>, D::Error>
    where
        K: Deserialize<'de> + Ord,
        V: Deserialize<'de>,
        D: Deserializer<'de>,
    {
        let pairs: Vec<(K, V)> = Vec::deserialize(d)?;
        Ok(pairs.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use std::collections::{BTreeMap, HashMap};

    #[derive(serde::Serialize, serde::Deserialize, PartialEq, Debug)]
    struct WithMaps {
        #[serde(with = "super::hash_map_pairs")]
        h: HashMap<(u32, usize), i64>,
        #[serde(with = "super::btree_map_pairs")]
        b: BTreeMap<(u8, u8), String>,
    }

    #[test]
    fn tuple_keyed_maps_roundtrip_through_json() {
        let mut h = HashMap::new();
        h.insert((1, 2), -5);
        h.insert((3, 4), 10);
        let mut b = BTreeMap::new();
        b.insert((0, 1), "x".to_owned());
        let v = WithMaps { h, b };
        let json = serde_json::to_string(&v).unwrap();
        let back: WithMaps = serde_json::from_str(&json).unwrap();
        assert_eq!(v, back);
    }
}
