//! Serde adapters for maps with non-string keys, plus the versioned
//! on-disk envelope shared by everything the registry persists.
//!
//! Trained models are persisted as JSON (`TrainedWorkload::save_json`), but
//! JSON object keys must be strings; these adapters serialize
//! `HashMap`/`BTreeMap` with structured keys as sequences of `(key, value)`
//! pairs instead.
//!
//! [`versioned`] wraps any serializable payload in a
//! `{format, kind, body}` header so a reader can refuse a file written by an
//! incompatible build (or for a different payload type) *before* attempting
//! to deserialize the body — the failure is a descriptive I/O error, never a
//! silent mis-parse.

/// `HashMap<K, V>` ⇄ `Vec<(K, V)>`.
pub mod hash_map_pairs {
    use serde::de::{Deserialize, Deserializer};
    use serde::ser::Serializer;
    use serde::Serialize;
    use std::collections::HashMap;
    use std::hash::Hash;

    pub fn serialize<K, V, S>(map: &HashMap<K, V>, s: S) -> Result<S::Ok, S::Error>
    where
        K: Serialize,
        V: Serialize,
        S: Serializer,
    {
        s.collect_seq(map.iter())
    }

    pub fn deserialize<'de, K, V, D>(d: D) -> Result<HashMap<K, V>, D::Error>
    where
        K: Deserialize<'de> + Eq + Hash,
        V: Deserialize<'de>,
        D: Deserializer<'de>,
    {
        let pairs: Vec<(K, V)> = Vec::deserialize(d)?;
        Ok(pairs.into_iter().collect())
    }
}

/// `BTreeMap<K, V>` ⇄ `Vec<(K, V)>`.
pub mod btree_map_pairs {
    use serde::de::{Deserialize, Deserializer};
    use serde::ser::Serializer;
    use serde::Serialize;
    use std::collections::BTreeMap;

    pub fn serialize<K, V, S>(map: &BTreeMap<K, V>, s: S) -> Result<S::Ok, S::Error>
    where
        K: Serialize,
        V: Serialize,
        S: Serializer,
    {
        s.collect_seq(map.iter())
    }

    pub fn deserialize<'de, K, V, D>(d: D) -> Result<BTreeMap<K, V>, D::Error>
    where
        K: Deserialize<'de> + Ord,
        V: Deserialize<'de>,
        D: Deserializer<'de>,
    {
        let pairs: Vec<(K, V)> = Vec::deserialize(d)?;
        Ok(pairs.into_iter().collect())
    }
}

/// Versioned JSON envelope: `{format, kind, body}`.
pub mod versioned {
    use serde::de::DeserializeOwned;
    use serde::{Deserialize, Serialize};
    use std::io;
    use std::path::Path;

    /// Current on-disk format. Bump whenever the serialized shape of any
    /// enveloped payload changes incompatibly; readers refuse other values.
    pub const FORMAT_VERSION: u32 = 1;

    /// The header + payload wrapper every enveloped file round-trips through.
    #[derive(Serialize, Deserialize)]
    pub struct Envelope<T> {
        /// On-disk format version ([`FORMAT_VERSION`] at write time).
        pub format: u32,
        /// Payload discriminator (e.g. `"pythia.model"`), checked on read so
        /// a file of one kind is never deserialized as another.
        pub kind: String,
        pub body: T,
    }

    fn invalid(msg: String) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, msg)
    }

    /// Serialize `body` under a `{format, kind, body}` header.
    pub fn to_json<T: Serialize>(kind: &str, body: &T) -> io::Result<String> {
        serde_json::to_string(&Envelope {
            format: FORMAT_VERSION,
            kind: kind.to_owned(),
            body,
        })
        .map_err(|e| invalid(e.to_string()))
    }

    /// Parse an envelope, failing loudly on a format or kind mismatch.
    pub fn from_json<T: DeserializeOwned>(kind: &str, json: &str) -> io::Result<T> {
        // Peek at the header alone first, so a mismatch reports the actual
        // format/kind instead of whatever body-shape error serde hits first.
        #[derive(Deserialize)]
        struct Header {
            format: u32,
            kind: String,
        }
        let head: Header = serde_json::from_str(json)
            .map_err(|e| invalid(format!("not a versioned envelope: {e}")))?;
        if head.format != FORMAT_VERSION {
            return Err(invalid(format!(
                "envelope format {} is not the supported format {FORMAT_VERSION}",
                head.format
            )));
        }
        if head.kind != kind {
            return Err(invalid(format!(
                "envelope holds a '{}' payload, expected '{kind}'",
                head.kind
            )));
        }
        let env: Envelope<T> = serde_json::from_str(json).map_err(|e| invalid(e.to_string()))?;
        Ok(env.body)
    }

    /// Write `body` to `path` as an enveloped JSON file.
    pub fn save<T: Serialize>(path: impl AsRef<Path>, kind: &str, body: &T) -> io::Result<()> {
        std::fs::write(path, to_json(kind, body)?)
    }

    /// Load an enveloped JSON file written by [`save`].
    pub fn load<T: DeserializeOwned>(path: impl AsRef<Path>, kind: &str) -> io::Result<T> {
        from_json(kind, &std::fs::read_to_string(path)?)
    }
}

#[cfg(test)]
mod tests {
    use std::collections::{BTreeMap, HashMap};

    #[derive(serde::Serialize, serde::Deserialize, PartialEq, Debug)]
    struct WithMaps {
        #[serde(with = "super::hash_map_pairs")]
        h: HashMap<(u32, usize), i64>,
        #[serde(with = "super::btree_map_pairs")]
        b: BTreeMap<(u8, u8), String>,
    }

    #[test]
    fn tuple_keyed_maps_roundtrip_through_json() {
        let mut h = HashMap::new();
        h.insert((1, 2), -5);
        h.insert((3, 4), 10);
        let mut b = BTreeMap::new();
        b.insert((0, 1), "x".to_owned());
        let v = WithMaps { h, b };
        let json = serde_json::to_string(&v).unwrap();
        let back: WithMaps = serde_json::from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn versioned_envelope_roundtrips_and_rejects_mismatches() {
        use super::versioned;

        let json = versioned::to_json("test.pair", &(7u32, "x".to_owned())).unwrap();
        let back: (u32, String) = versioned::from_json("test.pair", &json).unwrap();
        assert_eq!(back, (7, "x".to_owned()));

        // Wrong kind: refused with the offending kind in the message.
        let err = versioned::from_json::<(u32, String)>("test.other", &json).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("test.pair"), "{err}");

        // Wrong format version: refused before touching the body.
        let future = json.replace("\"format\":1", "\"format\":999");
        let err = versioned::from_json::<(u32, String)>("test.pair", &future).unwrap_err();
        assert!(err.to_string().contains("999"), "{err}");

        // Not an envelope at all.
        let err = versioned::from_json::<u32>("test.pair", "{\"body\":3}").unwrap_err();
        assert!(err.to_string().contains("envelope"), "{err}");
    }
}
