//! The sequence-prediction baseline (§5.2, Figure 9).
//!
//! The paper trains Longformer variants that predict the next block given the
//! past K blocks, concluding that "even if transformers are good at
//! predicting page accesses with sequence information intact, they are still
//! impractical to be used for prefetching" — one inference per block.
//!
//! This module reproduces that design point from scratch: block accesses are
//! tokenized (one token per distinct page seen in training, plus `[EOS]`),
//! a transformer encoder over the last K tokens predicts the next token, and
//! generation rolls the model forward one block per step. Both the paper's
//! variants exist: raw traces (with repetitions) and deduplicated traces,
//! each with context windows 32 or 64.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use pythia_db::trace::{Trace, TraceEvent};
use pythia_nn::init::Initializer;
use pythia_nn::layers::{Linear, TransformerEncoder};
use pythia_nn::tape::{bce_with_logits, ParamSet, Tape};
use pythia_nn::{Adam, Tensor};
use pythia_sim::PageId;

/// Configuration of the sequence baseline.
#[derive(Debug, Clone)]
pub struct SeqModelConfig {
    /// Context window K (paper: 32 and 64).
    pub context: usize,
    /// Train on raw traces (with repeats) or deduplicated traces.
    pub dedup: bool,
    pub embed_dim: usize,
    pub heads: usize,
    pub layers: usize,
    pub ff_dim: usize,
    pub epochs: usize,
    pub batch_size: usize,
    pub lr: f32,
    /// Cap on training windows sampled per workload (training cost control;
    /// the paper had 4×V100 GPUs and still took 3.8 hours).
    pub max_windows: usize,
    pub seed: u64,
}

impl Default for SeqModelConfig {
    fn default() -> Self {
        SeqModelConfig {
            context: 32,
            dedup: true,
            embed_dim: 32,
            heads: 4,
            layers: 2,
            ff_dim: 64,
            epochs: 3,
            batch_size: 32,
            lr: 2e-3,
            max_windows: 2_000,
            seed: 5,
        }
    }
}

const BOS: usize = 0; // sequence start / padding
const EOS: usize = 1; // end of trace

/// An autoregressive next-block model.
pub struct SeqModel {
    cfg: SeqModelConfig,
    params: ParamSet,
    encoder: TransformerEncoder,
    head: Linear,
    /// token id -> page (ids 0/1 reserved).
    pages: Vec<PageId>,
    page_to_token: HashMap<PageId, usize>,
    pub train_seconds: f64,
}

fn trace_tokens(trace: &Trace, dedup: bool, page_to_token: &HashMap<PageId, usize>) -> Vec<usize> {
    let mut out = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for e in &trace.events {
        if let TraceEvent::Read { page, kind, .. } = e {
            if kind.is_sequential() {
                continue;
            }
            if dedup && !seen.insert(*page) {
                continue;
            }
            if let Some(&t) = page_to_token.get(page) {
                out.push(t);
            }
        }
    }
    out
}

impl SeqModel {
    /// Train on a workload's traces.
    pub fn train(cfg: &SeqModelConfig, traces: &[Trace]) -> SeqModel {
        let start = std::time::Instant::now();
        // Build the block vocabulary from training traces.
        let mut pages = vec![PageId::new(pythia_sim::FileId(u32::MAX), 0); 2];
        let mut page_to_token = HashMap::new();
        for t in traces {
            for e in &t.events {
                if let TraceEvent::Read { page, kind, .. } = e {
                    if !kind.is_sequential() && !page_to_token.contains_key(page) {
                        page_to_token.insert(*page, pages.len());
                        pages.push(*page);
                    }
                }
            }
        }
        let vocab = pages.len();

        let mut params = ParamSet::new();
        let mut init = Initializer::new(cfg.seed);
        let encoder = TransformerEncoder::new(
            &mut params,
            &mut init,
            "seq",
            vocab,
            cfg.embed_dim,
            cfg.heads,
            cfg.ff_dim,
            cfg.layers,
            cfg.context + 1,
        );
        let head = Linear::new(&mut params, &mut init, "head", cfg.embed_dim, vocab);

        // Sliding windows: (context tokens, next token).
        let mut windows: Vec<(Vec<usize>, usize)> = Vec::new();
        for t in traces {
            let mut toks = trace_tokens(t, cfg.dedup, &page_to_token);
            toks.push(EOS);
            for i in 0..toks.len() {
                let lo = i.saturating_sub(cfg.context);
                let mut ctx: Vec<usize> = toks[lo..i].to_vec();
                if ctx.is_empty() {
                    ctx.push(BOS);
                }
                windows.push((ctx, toks[i]));
            }
        }
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xF00D);
        windows.shuffle(&mut rng);
        windows.truncate(cfg.max_windows);
        assert!(!windows.is_empty(), "no training windows");

        let mut model = SeqModel {
            cfg: cfg.clone(),
            params,
            encoder,
            head,
            pages,
            page_to_token,
            train_seconds: 0.0,
        };

        let mut adam = Adam::new(&model.params, cfg.lr);
        let mut order: Vec<usize> = (0..windows.len()).collect();
        for _epoch in 0..cfg.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(cfg.batch_size) {
                let seqs: Vec<&[usize]> = chunk.iter().map(|&i| windows[i].0.as_slice()).collect();
                let mut targets = Tensor::zeros(chunk.len(), vocab);
                for (r, &i) in chunk.iter().enumerate() {
                    targets.set(r, windows[i].1, 1.0);
                }
                let mut tape = Tape::new();
                let vars = model.params.inject(&mut tape);
                let reps = model.encoder.encode_batch(&mut tape, &vars, &seqs, BOS);
                let logits = model.head.forward(&mut tape, &vars, reps);
                // One-hot BCE: a softmax-free stand-in for cross-entropy that
                // our loss library supports; argmax decoding is unaffected.
                let loss = bce_with_logits(&mut tape, logits, targets, (vocab as f32).sqrt());
                let grads = tape.backward(loss);
                adam.step(&mut model.params, &vars, &grads);
            }
        }
        model.train_seconds = start.elapsed().as_secs_f64();
        model
    }

    /// Vocabulary size (distinct blocks + 2 specials).
    pub fn vocab(&self) -> usize {
        self.pages.len()
    }

    /// One inference step: most likely next token given a context.
    fn next_token(&self, ctx: &[usize]) -> usize {
        let lo = ctx.len().saturating_sub(self.cfg.context);
        let window: Vec<usize> = if ctx[lo..].is_empty() {
            vec![BOS]
        } else {
            ctx[lo..].to_vec()
        };
        let mut tape = Tape::new();
        let vars = self.params.inject(&mut tape);
        let rep = self.encoder.encode(&mut tape, &vars, &window);
        let logits = self.head.forward(&mut tape, &vars, rep);
        let v = tape.value(logits);
        let mut best = 0;
        let mut best_v = f32::NEG_INFINITY;
        for i in 0..v.cols() {
            if v.get(0, i) > best_v {
                best_v = v.get(0, i);
                best = i;
            }
        }
        best
    }

    /// Autoregressive generation of up to `max_blocks` block predictions
    /// (stops at `[EOS]`). Returns the pages and the number of inference
    /// steps performed — each generated block costs one model inference,
    /// which is the impracticality the paper measures.
    pub fn generate(&self, max_blocks: usize) -> (Vec<PageId>, usize) {
        let mut ctx = vec![BOS];
        let mut out = Vec::new();
        let mut steps = 0;
        while out.len() < max_blocks {
            let t = self.next_token(&ctx);
            steps += 1;
            if t == EOS || t == BOS {
                break;
            }
            out.push(self.pages[t]);
            ctx.push(t);
            // Dedup-trained models can loop on their most confident block;
            // cut obvious 2-cycles to keep generation productive.
            let n = ctx.len();
            if n >= 4 && ctx[n - 1] == ctx[n - 3] && ctx[n - 2] == ctx[n - 4] {
                break;
            }
        }
        (out, steps)
    }

    /// Tokens of a trace under this model's vocabulary (for evaluation).
    pub fn tokens_of(&self, trace: &Trace) -> Vec<usize> {
        trace_tokens(trace, self.cfg.dedup, &self.page_to_token)
    }

    /// Teacher-forced next-block accuracy over a trace: for each position,
    /// does the model predict the actual next block from the true prefix?
    /// (The fair accuracy measure for sequence models, independent of
    /// compounding rollout errors.)
    pub fn teacher_forced_accuracy(&self, trace: &Trace, sample_every: usize) -> f64 {
        let toks = self.tokens_of(trace);
        if toks.len() < 2 {
            return 0.0;
        }
        let mut correct = 0usize;
        let mut total = 0usize;
        let mut i = 1;
        while i < toks.len() {
            let pred = self.next_token(&toks[..i]);
            if pred == toks[i] {
                correct += 1;
            }
            total += 1;
            i += sample_every.max(1);
        }
        correct as f64 / total.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pythia_db::catalog::ObjectId;
    use pythia_db::trace::AccessKind;
    use pythia_sim::FileId;

    /// A deterministic cyclic trace: 0 -> 3 -> 6 -> ... (stride walk).
    fn stride_trace(n: u32) -> Trace {
        Trace {
            events: (0..n)
                .map(|i| TraceEvent::Read {
                    obj: ObjectId(0),
                    page: PageId::new(FileId(0), (i * 3) % 30),
                    kind: AccessKind::HeapFetch,
                })
                .collect(),
        }
    }

    fn quick_cfg() -> SeqModelConfig {
        SeqModelConfig {
            epochs: 30,
            context: 8,
            max_windows: 400,
            ..Default::default()
        }
    }

    #[test]
    fn learns_a_deterministic_sequence() {
        let traces: Vec<Trace> = (0..6).map(|_| stride_trace(30)).collect();
        let m = SeqModel::train(&quick_cfg(), &traces);
        assert_eq!(m.vocab(), 12, "10 distinct pages + 2 specials");
        let acc = m.teacher_forced_accuracy(&stride_trace(30), 1);
        assert!(acc > 0.8, "teacher-forced accuracy {acc}");
    }

    #[test]
    fn generation_counts_steps() {
        let traces: Vec<Trace> = (0..6).map(|_| stride_trace(30)).collect();
        let m = SeqModel::train(&quick_cfg(), &traces);
        let (pages, steps) = m.generate(10);
        assert!(steps >= pages.len(), "one inference per block minimum");
        assert!(steps <= 11);
    }

    #[test]
    fn dedup_variant_shrinks_token_stream() {
        let t = stride_trace(30); // each page repeated 3 times
        let cfg_raw = SeqModelConfig {
            dedup: false,
            epochs: 1,
            max_windows: 10,
            ..quick_cfg()
        };
        let cfg_dedup = SeqModelConfig {
            dedup: true,
            epochs: 1,
            max_windows: 10,
            ..quick_cfg()
        };
        let m_raw = SeqModel::train(&cfg_raw, std::slice::from_ref(&t));
        let m_dedup = SeqModel::train(&cfg_dedup, std::slice::from_ref(&t));
        assert_eq!(m_raw.tokens_of(&t).len(), 30);
        assert_eq!(m_dedup.tokens_of(&t).len(), 10);
    }

    #[test]
    fn records_training_time() {
        let traces = vec![stride_trace(20)];
        let cfg = SeqModelConfig {
            epochs: 1,
            max_windows: 20,
            ..quick_cfg()
        };
        let m = SeqModel::train(&cfg, &traces);
        assert!(m.train_seconds > 0.0);
    }
}
