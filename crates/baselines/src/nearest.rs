//! The NN (nearest-neighbour) idealized baseline (§5.2).
//!
//! "For each test query q, we first retrieve the most similar query NN(q)
//! in the training set. We measure similarity using Jaccard similarity
//! between the blocks accessed by the test and the corresponding query.
//! Once the nearest neighbor is obtained, we retrieve the blocks accessed by
//! NN(q) and use the prefetcher of Pythia. NN is an idealized baseline as it
//! requires the output of the test query q and the storage of block accesses
//! of all queries in the training set."

use std::collections::BTreeSet;

use pythia_db::trace::Trace;
use pythia_sim::PageId;

/// Stored block-access sets of the training workload.
pub struct NearestNeighbor {
    train_sets: Vec<BTreeSet<PageId>>,
}

fn nonseq_page_set(trace: &Trace) -> BTreeSet<PageId> {
    use pythia_db::trace::TraceEvent;
    trace
        .events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Read { page, kind, .. } if !kind.is_sequential() => Some(*page),
            _ => None,
        })
        .collect()
}

/// Jaccard similarity of two page sets (1.0 when both empty).
pub fn jaccard(a: &BTreeSet<PageId>, b: &BTreeSet<PageId>) -> f64 {
    let union = a.union(b).count();
    if union == 0 {
        return 1.0;
    }
    a.intersection(b).count() as f64 / union as f64
}

impl NearestNeighbor {
    /// Index the training traces (stores each query's distinct non-sequential
    /// block set).
    pub fn new(train_traces: &[Trace]) -> Self {
        NearestNeighbor {
            train_sets: train_traces.iter().map(nonseq_page_set).collect(),
        }
    }

    /// Number of stored training queries.
    pub fn len(&self) -> usize {
        self.train_sets.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.train_sets.is_empty()
    }

    /// The prefetch list for a test query: the blocks of its most similar
    /// training query, in storage order (Pythia's prefetcher contract).
    /// Also returns the neighbour's index and similarity.
    pub fn prefetch_for(&self, test_trace: &Trace) -> (Vec<PageId>, usize, f64) {
        let test_set = nonseq_page_set(test_trace);
        let (best_idx, best_sim) = self
            .train_sets
            .iter()
            .enumerate()
            .map(|(i, s)| (i, jaccard(&test_set, s)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN"))
            .unwrap_or((0, 0.0));
        let mut pages: Vec<PageId> = self
            .train_sets
            .get(best_idx)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        pages.sort_unstable();
        (pages, best_idx, best_sim)
    }

    /// Average Jaccard similarity of a test query to the whole training
    /// workload — the bucketing statistic of Figures 7/8.
    pub fn mean_similarity(&self, test_trace: &Trace) -> f64 {
        if self.train_sets.is_empty() {
            return 0.0;
        }
        let test_set = nonseq_page_set(test_trace);
        self.train_sets
            .iter()
            .map(|s| jaccard(&test_set, s))
            .sum::<f64>()
            / self.train_sets.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pythia_db::catalog::ObjectId;
    use pythia_db::trace::{AccessKind, TraceEvent};
    use pythia_sim::FileId;

    fn trace_of(pages: &[u32]) -> Trace {
        Trace {
            events: pages
                .iter()
                .map(|&p| TraceEvent::Read {
                    obj: ObjectId(0),
                    page: PageId::new(FileId(0), p),
                    kind: AccessKind::HeapFetch,
                })
                .collect(),
        }
    }

    #[test]
    fn finds_most_similar() {
        let nn = NearestNeighbor::new(&[
            trace_of(&[1, 2, 3]),
            trace_of(&[10, 11, 12]),
            trace_of(&[2, 3, 4]),
        ]);
        let (pages, idx, sim) = nn.prefetch_for(&trace_of(&[2, 3, 4, 5]));
        assert_eq!(idx, 2);
        assert!(sim > 0.5);
        assert_eq!(
            pages.iter().map(|p| p.page_no).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
    }

    #[test]
    fn prefetch_is_storage_ordered() {
        let nn = NearestNeighbor::new(&[trace_of(&[9, 1, 5])]);
        let (pages, _, _) = nn.prefetch_for(&trace_of(&[9, 1]));
        let nos: Vec<u32> = pages.iter().map(|p| p.page_no).collect();
        assert_eq!(nos, vec![1, 5, 9]);
    }

    #[test]
    fn jaccard_properties() {
        let a: BTreeSet<PageId> = [PageId::new(FileId(0), 1)].into_iter().collect();
        let empty = BTreeSet::new();
        assert_eq!(jaccard(&a, &a), 1.0);
        assert_eq!(jaccard(&a, &empty), 0.0);
        assert_eq!(jaccard(&empty, &empty), 1.0);
    }

    #[test]
    fn sequential_reads_are_ignored() {
        let seq_trace = Trace {
            events: vec![TraceEvent::Read {
                obj: ObjectId(0),
                page: PageId::new(FileId(0), 7),
                kind: AccessKind::SeqScan,
            }],
        };
        let nn = NearestNeighbor::new(&[seq_trace.clone()]);
        let (pages, _, _) = nn.prefetch_for(&seq_trace);
        assert!(
            pages.is_empty(),
            "sequential pages are not the prefetch target"
        );
    }

    #[test]
    fn mean_similarity_averages() {
        let nn = NearestNeighbor::new(&[trace_of(&[1, 2]), trace_of(&[3, 4])]);
        let m = nn.mean_similarity(&trace_of(&[1, 2]));
        assert!((m - 0.5).abs() < 1e-9, "{m}");
    }
}
