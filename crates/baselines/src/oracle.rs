//! The ORCL oracle baseline and its Figure 1 scoped variants.

use std::collections::HashSet;

use pythia_db::trace::{Trace, TraceEvent};
use pythia_sim::PageId;

/// Which accesses the oracle prefetches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleScope {
    /// Every page the query reads (the §5.2 ORCL baseline).
    All,
    /// Only sequentially scanned pages (Figure 1 left bars).
    SequentialOnly,
    /// Only non-sequential pages (Figure 1 right bars).
    NonSequentialOnly,
}

/// The oracle's prefetch list: the query's distinct pages in *first-access
/// order* — the oracle knows the exact sequence, so its prefetch order
/// perfectly matches consumption (the best case for the readahead window).
pub fn oracle_prefetch(trace: &Trace, scope: OracleScope) -> Vec<PageId> {
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for e in &trace.events {
        if let TraceEvent::Read { page, kind, .. } = e {
            let keep = match scope {
                OracleScope::All => true,
                OracleScope::SequentialOnly => kind.is_sequential(),
                OracleScope::NonSequentialOnly => !kind.is_sequential(),
            };
            if keep && seen.insert(*page) {
                out.push(*page);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pythia_db::catalog::ObjectId;
    use pythia_db::trace::AccessKind;
    use pythia_sim::FileId;

    fn trace() -> Trace {
        let rd = |f: u32, p: u32, kind| TraceEvent::Read {
            obj: ObjectId(f),
            page: PageId::new(FileId(f), p),
            kind,
        };
        Trace {
            events: vec![
                rd(0, 0, AccessKind::SeqScan),
                rd(1, 9, AccessKind::HeapFetch),
                rd(0, 1, AccessKind::SeqScan),
                rd(1, 9, AccessKind::HeapFetch), // repeat
                rd(1, 4, AccessKind::IndexLeaf),
            ],
        }
    }

    #[test]
    fn all_scope_first_access_order() {
        let p = oracle_prefetch(&trace(), OracleScope::All);
        let pages: Vec<(u32, u32)> = p.iter().map(|x| (x.file.0, x.page_no)).collect();
        assert_eq!(pages, vec![(0, 0), (1, 9), (0, 1), (1, 4)]);
    }

    #[test]
    fn scoped_variants_partition() {
        let s = oracle_prefetch(&trace(), OracleScope::SequentialOnly);
        let n = oracle_prefetch(&trace(), OracleScope::NonSequentialOnly);
        assert_eq!(s.len(), 2);
        assert_eq!(n.len(), 2);
        let all = oracle_prefetch(&trace(), OracleScope::All);
        assert_eq!(all.len(), s.len() + n.len());
    }

    #[test]
    fn empty_trace_empty_prefetch() {
        assert!(oracle_prefetch(&Trace::new(), OracleScope::All).is_empty());
    }
}
