//! # pythia-baselines
//!
//! The baselines Pythia is compared against in §5.2:
//!
//! * **DFLT** — plain default execution, no prefetching (the denominator of
//!   every speedup number). Expressed by replaying a trace with
//!   `QueryRun::default_run`; [`dflt_run`] is the explicit spelling.
//! * **ORCL** ([`oracle`]) — an idealized oracle that knows the exact block
//!   access sequence and feeds it to Pythia's prefetcher. By construction it
//!   has a perfect F1; it upper-bounds any predictor's speedup. Scoped
//!   variants (sequential-only / non-sequential-only) reproduce Figure 1.
//! * **NN** ([`nearest`]) — an idealized non-learning baseline: retrieve the
//!   training query with the highest Jaccard similarity of *accessed blocks*
//!   (it peeks at the test query's true accesses, hence idealized) and
//!   prefetch that neighbour's blocks.
//! * **SEQ** ([`seq`]) — the NLP-style sequence predictor (the paper's
//!   Longformer stand-in): an autoregressive next-block transformer over
//!   block tokens with a bounded context window (32/64), in raw-sequence and
//!   deduplicated variants. Reproduces Figure 9's finding: comparable
//!   accuracy, orders of magnitude more training and inference work because
//!   it emits one block per inference step.

pub mod nearest;
pub mod oracle;
pub mod seq;

pub use nearest::NearestNeighbor;
pub use oracle::{oracle_prefetch, OracleScope};
pub use seq::{SeqModel, SeqModelConfig};

use pythia_db::runtime::QueryRun;
use pythia_db::trace::Trace;

/// The DFLT baseline: replay with no prefetch and no inference overhead.
pub fn dflt_run(trace: &Trace) -> QueryRun<'_> {
    QueryRun::default_run(trace)
}
