//! Workload statistics — reproduces the paper's Table 1.

use std::collections::HashSet;

use pythia_db::exec::execute;
use pythia_db::trace::Trace;

use crate::schema::BenchmarkDb;
use crate::templates::{QueryInstance, Template};

/// The per-workload statistics of Table 1.
#[derive(Debug, Clone)]
pub struct WorkloadStats {
    pub template: Template,
    /// Total sequential page reads across the workload.
    pub sequential_io: u64,
    /// Minimum distinct non-sequential reads of any single query.
    pub min_distinct_nonseq: usize,
    /// Maximum distinct non-sequential reads of any single query.
    pub max_distinct_nonseq: usize,
    /// Distinct plan shapes observed (parameters ignored).
    pub distinct_plans: usize,
    /// Relations joined by the template.
    pub relations_joined: usize,
    /// Of those, how many are index-scanned (in the most common shape).
    pub index_scanned: usize,
}

/// Plan shape fingerprint: node kinds + scanned objects, parameters ignored
/// (Table 1 counts "distinct query plans", which for a templated workload
/// means distinct shapes).
pub fn plan_shape(q: &QueryInstance) -> String {
    let mut s = String::new();
    q.plan.preorder(&mut |n| {
        use pythia_db::plan::PlanNode::*;
        match n {
            SeqScan { table, .. } => s.push_str(&format!("S{},", table.0)),
            IndexScan { index, .. } => s.push_str(&format!("I{},", index.0)),
            IndexNLJoin {
                inner, inner_index, ..
            } => s.push_str(&format!("N{}i{},", inner.0, inner_index.0)),
            HashJoin { .. } => s.push_str("H,"),
            Filter { .. } => s.push_str("F,"),
            Aggregate { .. } => s.push_str("A,"),
            Sort { .. } => s.push_str("O,"),
            Limit { .. } => s.push_str("L,"),
        }
    });
    s
}

/// Compute Table 1 statistics over a workload, given each query's trace.
pub fn workload_stats(
    b: &BenchmarkDb,
    template: Template,
    queries: &[QueryInstance],
    traces: &[Trace],
) -> WorkloadStats {
    assert_eq!(queries.len(), traces.len());
    let mut sequential_io = 0u64;
    let mut min_nonseq = usize::MAX;
    let mut max_nonseq = 0usize;
    let mut shapes = HashSet::new();
    for (q, t) in queries.iter().zip(traces) {
        sequential_io += t.sequential_reads() as u64;
        let d = t.distinct_non_sequential();
        min_nonseq = min_nonseq.min(d);
        max_nonseq = max_nonseq.max(d);
        shapes.insert(plan_shape(q));
    }

    // Relations / index-scans: maximum across plan variants (the paper
    // reports the template's canonical shape; selectivity-driven variants
    // may hash-join a dim that is usually index-probed).
    let mut relations_joined = 0usize;
    let mut index_scanned_max = 0usize;
    for q in queries {
        let mut relations = HashSet::new();
        let mut index_scanned = HashSet::new();
        q.plan.preorder(&mut |n| {
            use pythia_db::plan::PlanNode::*;
            match n {
                SeqScan { table, .. } => {
                    relations.insert(table.0);
                }
                IndexScan { table, .. } => {
                    relations.insert(table.0);
                    index_scanned.insert(table.0);
                }
                IndexNLJoin { inner, .. } => {
                    relations.insert(inner.0);
                    index_scanned.insert(inner.0);
                }
                _ => {}
            }
        });
        relations_joined = relations_joined.max(relations.len());
        index_scanned_max = index_scanned_max.max(index_scanned.len());
    }
    let _ = b;
    WorkloadStats {
        template,
        sequential_io,
        min_distinct_nonseq: if min_nonseq == usize::MAX {
            0
        } else {
            min_nonseq
        },
        max_distinct_nonseq: max_nonseq,
        distinct_plans: shapes.len(),
        relations_joined,
        index_scanned: index_scanned_max,
    }
}

/// Execute every query in a workload and return the traces (helper used by
/// the experiment harness and Table 1).
pub fn collect_traces(b: &BenchmarkDb, queries: &[QueryInstance]) -> Vec<Trace> {
    queries.iter().map(|q| execute(&q.plan, &b.db).1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{build_benchmark, GeneratorConfig};
    use crate::templates::sample_workload;

    #[test]
    fn table1_shape_for_t18() {
        let b = build_benchmark(&GeneratorConfig {
            scale: 0.08,
            seed: 2,
        });
        let w = sample_workload(&b, Template::T18, 12, 4);
        let traces = collect_traces(&b, &w);
        let s = workload_stats(&b, Template::T18, &w, &traces);
        assert_eq!(s.relations_joined, 6, "T18 joins 6 relations");
        assert!(s.index_scanned >= 3, "most dims are index-probed");
        assert!(s.sequential_io > 0);
        assert!(s.min_distinct_nonseq > 0);
        assert!(s.max_distinct_nonseq >= s.min_distinct_nonseq);
        assert!(s.distinct_plans >= 1);
    }

    #[test]
    fn t91_joins_seven_relations() {
        let b = build_benchmark(&GeneratorConfig {
            scale: 0.08,
            seed: 2,
        });
        let w = sample_workload(&b, Template::T91, 6, 5);
        let traces = collect_traces(&b, &w);
        let s = workload_stats(&b, Template::T91, &w, &traces);
        assert_eq!(s.relations_joined, 7);
        assert_eq!(s.index_scanned, 5);
    }

    #[test]
    fn plan_shape_ignores_parameters() {
        let b = build_benchmark(&GeneratorConfig {
            scale: 0.08,
            seed: 2,
        });
        // Two T91 narrow queries share a shape even with different params.
        let w = sample_workload(&b, Template::T91, 30, 6);
        let shapes: HashSet<String> = w.iter().map(plan_shape).collect();
        assert!(
            shapes.len() < w.len(),
            "shapes collapse parameter variation"
        );
        assert!(shapes.len() <= 3, "T91 has few shapes (paper: 2)");
    }
}
