//! # pythia-workloads
//!
//! Benchmark schemas, data generators and parameterized query templates —
//! the stand-in for DSB (a skewed/correlated TPC-DS variant) at scale factor
//! 100 and for the IMDB/CEB workload the paper evaluates on (§5.1).
//!
//! The substitution argument (see `DESIGN.md`): Pythia only ever sees
//! `(serialized plan, page-id set)` pairs, so what must be preserved is the
//! *distribution* of those pairs, not the 100 GB of bytes. The generator
//! keeps the properties that make the paper's prediction problem what it is:
//!
//! * star joins where a sequentially scanned fact drives index probes into
//!   dimension tables (`Seq Scan` + per-row `Index Scan`, §5.1),
//! * data correlations (customers cluster in time, demographics cluster with
//!   customers) so parameter ranges map to *learnable* page subsets,
//! * Zipf-skewed popularity so page accesses are heavy-tailed (the paper:
//!   "less than 2% of the pages from template 18 are retrieved more than 10
//!   times across 1000 query instances"),
//! * several distinct plan shapes per template, chosen by parameter
//!   selectivity (Table 1 "distinct query plans in workload").
//!
//! Everything is scaled down ~25× in page count so a pure-Rust CPU training
//! loop replaces the paper's GPU; [`GeneratorConfig::scale`] sweeps sizes
//! for the Figure 12a experiment.

pub mod datagen;
pub mod drift;
pub mod schema;
pub mod stats;
pub mod templates;

pub use schema::{build_benchmark, BenchmarkDb, GeneratorConfig};
pub use stats::{workload_stats, WorkloadStats};
pub use templates::{QueryInstance, Template};
