//! Random-data primitives: Zipf skew, clustered (correlated) draws.
//!
//! DSB's improvement over TPC-DS is exactly this: skewed distributions and
//! cross-column correlation ("DSB allows more complex data distribution and
//! has extensive support for skewness and correlations", §5.1). These
//! helpers implement both.

use rand::rngs::StdRng;
use rand::Rng;

/// Zipf(θ) sampler over `0..n` using inverse-CDF on precomputed cumulative
/// weights. θ≈0 is uniform; θ≈1 is classic web-like skew.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `0..n` with exponent `theta`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf over empty domain");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 1..=n {
            acc += 1.0 / (i as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Draw a rank in `0..n` (0 = most popular).
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Draw an integer near `center` with standard deviation `sd`, clamped to
/// `[0, n)`, with an `outlier_frac` chance of a uniform draw instead.
///
/// This is the correlation workhorse: e.g. the customer of a sale is drawn
/// near a center that moves with the sale date, so date-range predicates map
/// to (noisy) contiguous customer-page ranges — a *learnable* access pattern,
/// like customers acquired over time in a real warehouse.
pub fn clustered(rng: &mut StdRng, center: f64, sd: f64, n: usize, outlier_frac: f64) -> i64 {
    debug_assert!(n > 0);
    if rng.gen_range(0.0..1.0) < outlier_frac {
        return rng.gen_range(0..n as i64);
    }
    // Box–Muller normal.
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (center + sd * z).round().clamp(0.0, (n - 1) as f64) as i64
}

/// Uniform integer in `[0, n)`.
pub fn uniform(rng: &mut StdRng, n: usize) -> i64 {
    rng.gen_range(0..n as i64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn zipf_is_skewed() {
        let z = Zipf::new(1000, 1.0);
        let mut r = rng();
        let mut counts = vec![0u32; 1000];
        for _ in 0..20_000 {
            counts[z.sample(&mut r)] += 1;
        }
        // Rank 0 much more popular than rank 500.
        assert!(counts[0] > 20 * counts[500].max(1));
        // Head (top 1%) holds a large share.
        let head: u32 = counts[..10].iter().sum();
        assert!(
            head as f64 > 0.25 * 20_000.0 * 0.9,
            "head share too small: {head}"
        );
    }

    #[test]
    fn zipf_theta_zero_is_uniformish() {
        let z = Zipf::new(100, 0.0);
        let mut r = rng();
        let mut counts = vec![0u32; 100];
        for _ in 0..50_000 {
            counts[z.sample(&mut r)] += 1;
        }
        let (mn, mx) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(*mx < 2 * *mn, "min {mn} max {mx}");
    }

    #[test]
    fn zipf_stays_in_range() {
        let z = Zipf::new(5, 1.2);
        let mut r = rng();
        for _ in 0..1000 {
            assert!(z.sample(&mut r) < 5);
        }
    }

    #[test]
    fn clustered_concentrates_near_center() {
        let mut r = rng();
        let mut near = 0;
        for _ in 0..1000 {
            let v = clustered(&mut r, 500.0, 20.0, 1000, 0.0);
            assert!((0..1000).contains(&v));
            if (v - 500).abs() <= 60 {
                near += 1;
            }
        }
        assert!(near > 950, "only {near} within 3 sigma");
    }

    #[test]
    fn clustered_outliers_spread() {
        let mut r = rng();
        let mut far = 0;
        for _ in 0..2000 {
            let v = clustered(&mut r, 500.0, 5.0, 1000, 0.5);
            if (v - 500).abs() > 100 {
                far += 1;
            }
        }
        // ~half the draws are uniform; most of those are far from center.
        assert!(far > 600, "only {far} outliers");
    }

    #[test]
    fn clustered_clamps() {
        let mut r = rng();
        for _ in 0..500 {
            let v = clustered(&mut r, 0.0, 50.0, 100, 0.0);
            assert!((0..100).contains(&v));
        }
    }
}
