//! Parameterized query templates: analogs of DSB templates 18, 19 and 91 and
//! the IMDB/CEB template 1a the paper evaluates (§5.1).
//!
//! Each template is an SPJ+aggregate star join: a sequentially scanned fact
//! filtered by parameterized predicates drives index probes into dimension
//! tables, with at least one dimension hash-joined (sequentially scanned) —
//! exactly the plan shape the paper describes for Postgres on DSB.
//!
//! Parameter values are sampled uniformly (the paper uses DSB's standard
//! uniform generator). Like a real optimizer, the plan *shape* depends on
//! parameter selectivities (e.g. a very wide date range flips a nested-loop
//! probe into a hash join), which yields the several "distinct query plans
//! per workload" of Table 1.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pythia_db::catalog::ObjectId;
use pythia_db::expr::{CmpOp, Pred};
use pythia_db::plan::{AggFunc, PlanNode};

use crate::schema::BenchmarkDb;

/// The four workload templates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Template {
    /// DSB template 18 analog: store_sales ⋈ customer ⋈ customer_demographics
    /// ⋈ household_demographics ⋈ item ⋈ date_dim (6 relations, 4
    /// index-probed).
    T18,
    /// DSB template 19 analog: store_sales ⋈ item ⋈ customer ⋈
    /// customer_address ⋈ store ⋈ date_dim (6 relations, 4 index-probed).
    T19,
    /// DSB template 91 analog: catalog_returns ⋈ customer ⋈
    /// customer_demographics ⋈ household_demographics ⋈ customer_address ⋈
    /// call_center ⋈ date_dim (7 relations, 5 index-probed).
    T91,
    /// IMDB/CEB template 1a analog: title ⋈ cast_info ⋈ movie_companies ⋈
    /// company_type; only `cast_info` is prefetched, as in the paper.
    Imdb1a,
}

impl Template {
    /// All templates, DSB ones first.
    pub const ALL: [Template; 4] = [
        Template::T18,
        Template::T19,
        Template::T91,
        Template::Imdb1a,
    ];

    /// The three DSB templates used in most experiments.
    pub const DSB: [Template; 3] = [Template::T18, Template::T19, Template::T91];

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Template::T18 => "Template 18",
            Template::T19 => "Template 19",
            Template::T91 => "Template 91",
            Template::Imdb1a => "IMDB Template 1a",
        }
    }

    /// Trace span name for replays of this template's queries. Event names
    /// must be `&'static str`, so each template carries its own literal —
    /// Perfetto then groups repeated instances of a template together
    /// instead of scattering them across anonymous query indexes.
    pub fn replay_span(&self) -> &'static str {
        match self {
            Template::T18 => "query.replay.T18",
            Template::T19 => "query.replay.T19",
            Template::T91 => "query.replay.T91",
            Template::Imdb1a => "query.replay.imdb1a",
        }
    }

    /// Objects Pythia should build models for / prefetch on this template.
    /// `None` means every non-sequentially accessed object; the paper limits
    /// IMDB 1a to `cast_info` ("we only prefetch the table cast_info").
    pub fn prefetch_objects(&self, b: &BenchmarkDb) -> Option<Vec<ObjectId>> {
        match self {
            Template::Imdb1a => Some(vec![b.db.table_info(b.cast_info).object, b.idx_cast_movie]),
            _ => None,
        }
    }
}

impl std::fmt::Display for Template {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A sampled query: the template it came from plus its physical plan.
#[derive(Debug, Clone)]
pub struct QueryInstance {
    pub template: Template,
    pub plan: PlanNode,
}

fn pick_distinct(rng: &mut StdRng, n: i64, k: usize) -> Vec<i64> {
    let mut vals: Vec<i64> = Vec::with_capacity(k);
    while vals.len() < k.min(n as usize) {
        let v = rng.gen_range(0..n);
        if !vals.contains(&v) {
            vals.push(v);
        }
    }
    vals.sort_unstable();
    vals
}

fn sample_t18(b: &BenchmarkDb, rng: &mut StdRng) -> PlanNode {
    // Date range confined to one year so the date_dim hash join (on d_year)
    // agrees with the fact range.
    let width = rng.gen_range(40..=300);
    let year_idx = rng.gen_range(0..(b.n_dates / 365));
    let year_start = year_idx * 365;
    let d0 = year_start + rng.gen_range(0..(365 - width.min(364)).max(1));
    let d1 = (d0 + width).min(year_start + 364);
    let year = 2000 + year_idx;
    let q0 = rng.gen_range(0..50);
    let q1 = q0 + 50;
    let months = pick_distinct(rng, 12, 3)
        .iter()
        .map(|m| m + 1)
        .collect::<Vec<_>>();
    let edu = rng.gen_range(0..7);
    let incomes = pick_distinct(rng, 20, 5);
    let n_cats = rng.gen_range(1..=3usize);
    let cats = pick_distinct(rng, 10, n_cats);

    let fact = PlanNode::SeqScan {
        table: b.store_sales,
        pred: Some(Pred::And(vec![
            Pred::Between {
                col: 1,
                lo: d0,
                hi: d1,
            },
            Pred::Between {
                col: 7,
                lo: q0,
                hi: q1,
            },
        ])),
    };

    // Optimizer-style shape decisions.
    let customer_hash = width > 240; // very wide range: hash join the customer dim
    let item_first = n_cats == 1; // very selective item filter: probe it early

    let join_customer = |outer: PlanNode| -> PlanNode {
        let pred = Pred::In {
            col: 4,
            set: months.clone(),
        };
        if customer_hash {
            PlanNode::HashJoin {
                build: Box::new(PlanNode::SeqScan {
                    table: b.customer,
                    pred: Some(pred),
                }),
                probe: Box::new(outer),
                build_key: 0,
                probe_key: 2,
            }
        } else {
            PlanNode::IndexNLJoin {
                outer: Box::new(outer),
                outer_key: 2,
                inner: b.customer,
                inner_index: b.idx_customer,
                inner_pred: Some(pred),
            }
        }
    };
    let join_item = |outer: PlanNode| PlanNode::IndexNLJoin {
        outer: Box::new(outer),
        outer_key: 5,
        inner: b.item,
        inner_index: b.idx_item,
        inner_pred: Some(Pred::In {
            col: 1,
            set: cats.clone(),
        }),
    };
    let join_cdemo = |outer: PlanNode| PlanNode::IndexNLJoin {
        outer: Box::new(outer),
        outer_key: 3,
        inner: b.customer_demographics,
        inner_index: b.idx_cdemo,
        inner_pred: Some(Pred::Cmp {
            col: 3,
            op: CmpOp::Eq,
            lit: edu,
        }),
    };
    let join_hdemo = |outer: PlanNode| PlanNode::IndexNLJoin {
        outer: Box::new(outer),
        outer_key: 4,
        inner: b.household_demographics,
        inner_index: b.idx_hdemo,
        inner_pred: Some(Pred::In {
            col: 1,
            set: incomes.clone(),
        }),
    };

    let joined = if item_first {
        let x = join_item(fact);
        let x = join_customer(x);
        let x = join_cdemo(x);
        join_hdemo(x)
    } else {
        let x = join_customer(fact);
        let x = join_cdemo(x);
        let x = join_hdemo(x);
        join_item(x)
    };

    let hj = PlanNode::HashJoin {
        build: Box::new(PlanNode::SeqScan {
            table: b.date_dim,
            pred: Some(Pred::Cmp {
                col: 1,
                op: CmpOp::Eq,
                lit: year,
            }),
        }),
        probe: Box::new(joined),
        build_key: 0,
        probe_key: 1,
    };
    PlanNode::Aggregate {
        input: Box::new(hj),
        group_col: None,
        agg: AggFunc::CountStar,
    }
}

fn sample_t19(b: &BenchmarkDb, rng: &mut StdRng) -> PlanNode {
    let width = rng.gen_range(40..=250);
    let year_idx = rng.gen_range(0..(b.n_dates / 365));
    let year_start = year_idx * 365;
    let d0 = year_start + rng.gen_range(0..(365 - width.min(364)).max(1));
    let d1 = (d0 + width).min(year_start + 364);
    let year = 2000 + year_idx;
    let price = rng.gen_range(100..600);
    let n_brands = rng.gen_range(2..=6usize);
    let brands = pick_distinct(rng, 100, n_brands);
    let states = pick_distinct(rng, 50, 8);
    let market = rng.gen_range(0..10);

    let fact = PlanNode::SeqScan {
        table: b.store_sales,
        pred: Some(Pred::And(vec![
            Pred::Between {
                col: 1,
                lo: d0,
                hi: d1,
            },
            Pred::Cmp {
                col: 8,
                op: CmpOp::Ge,
                lit: price,
            },
        ])),
    };

    let item_pred = Pred::In {
        col: 2,
        set: brands.clone(),
    };
    let j1 = if n_brands >= 4 {
        // Loose brand filter: hash-join item instead of probing.
        PlanNode::HashJoin {
            build: Box::new(PlanNode::SeqScan {
                table: b.item,
                pred: Some(item_pred),
            }),
            probe: Box::new(fact),
            build_key: 0,
            probe_key: 5,
        }
    } else {
        PlanNode::IndexNLJoin {
            outer: Box::new(fact),
            outer_key: 5,
            inner: b.item,
            inner_index: b.idx_item,
            inner_pred: Some(item_pred),
        }
    };
    // out: fact 0-8, item 9-12
    let j2 = PlanNode::IndexNLJoin {
        outer: Box::new(j1),
        outer_key: 2,
        inner: b.customer,
        inner_index: b.idx_customer,
        inner_pred: None,
    };
    // customer at 13-18; c_addr_sk = col 16
    let j3 = PlanNode::IndexNLJoin {
        outer: Box::new(j2),
        outer_key: 16,
        inner: b.customer_address,
        inner_index: b.idx_caddr,
        inner_pred: Some(Pred::In {
            col: 1,
            set: states,
        }),
    };
    // ca at 19-21
    let j4 = PlanNode::IndexNLJoin {
        outer: Box::new(j3),
        outer_key: 6,
        inner: b.store,
        inner_index: b.idx_store,
        inner_pred: Some(Pred::Cmp {
            col: 2,
            op: CmpOp::Eq,
            lit: market,
        }),
    };
    let hj = PlanNode::HashJoin {
        build: Box::new(PlanNode::SeqScan {
            table: b.date_dim,
            pred: Some(Pred::Cmp {
                col: 1,
                op: CmpOp::Eq,
                lit: year,
            }),
        }),
        probe: Box::new(j4),
        build_key: 0,
        probe_key: 1,
    };
    PlanNode::Aggregate {
        input: Box::new(hj),
        group_col: None,
        agg: AggFunc::Sum(8),
    }
}

fn sample_t91(b: &BenchmarkDb, rng: &mut StdRng) -> PlanNode {
    let width = rng.gen_range(60..=500);
    let d0 = rng.gen_range(0..(b.n_dates - width));
    let d1 = d0 + width;
    let amount = rng.gen_range(50..300);
    let gender = rng.gen_range(0..2);
    let incomes = pick_distinct(rng, 20, 6);
    let states = pick_distinct(rng, 50, 10);
    let class = rng.gen_range(0..3);

    let fact = PlanNode::SeqScan {
        table: b.catalog_returns,
        pred: Some(Pred::And(vec![
            Pred::Between {
                col: 1,
                lo: d0,
                hi: d1,
            },
            Pred::Cmp {
                col: 5,
                op: CmpOp::Ge,
                lit: amount,
            },
        ])),
    };
    let j1 = PlanNode::IndexNLJoin {
        outer: Box::new(fact),
        outer_key: 2,
        inner: b.customer,
        inner_index: b.idx_customer,
        inner_pred: None,
    };
    // customer at 6-11
    let j2 = PlanNode::IndexNLJoin {
        outer: Box::new(j1),
        outer_key: 7, // c_cdemo_sk
        inner: b.customer_demographics,
        inner_index: b.idx_cdemo,
        inner_pred: Some(Pred::Cmp {
            col: 1,
            op: CmpOp::Eq,
            lit: gender,
        }),
    };
    // cd at 12-16
    let j3 = PlanNode::IndexNLJoin {
        outer: Box::new(j2),
        outer_key: 8, // c_hdemo_sk
        inner: b.household_demographics,
        inner_index: b.idx_hdemo,
        inner_pred: Some(Pred::In {
            col: 1,
            set: incomes,
        }),
    };
    // hd at 17-20
    let ca_pred = Pred::In {
        col: 1,
        set: states,
    };
    let j4 = if width > 200 {
        PlanNode::HashJoin {
            build: Box::new(PlanNode::SeqScan {
                table: b.customer_address,
                pred: Some(ca_pred),
            }),
            probe: Box::new(j3),
            build_key: 0,
            probe_key: 9, // c_addr_sk
        }
    } else {
        PlanNode::IndexNLJoin {
            outer: Box::new(j3),
            outer_key: 9,
            inner: b.customer_address,
            inner_index: b.idx_caddr,
            inner_pred: Some(ca_pred),
        }
    };
    // ca at 21-23
    let j5 = PlanNode::IndexNLJoin {
        outer: Box::new(j4),
        outer_key: 3, // cr_call_center_sk
        inner: b.call_center,
        inner_index: b.idx_cc,
        inner_pred: Some(Pred::Cmp {
            col: 1,
            op: CmpOp::Eq,
            lit: class,
        }),
    };
    let hj = PlanNode::HashJoin {
        build: Box::new(PlanNode::SeqScan {
            table: b.date_dim,
            pred: None,
        }),
        probe: Box::new(j5),
        build_key: 0,
        probe_key: 1,
    };
    PlanNode::Aggregate {
        input: Box::new(hj),
        group_col: None,
        agg: AggFunc::Sum(5),
    }
}

fn sample_imdb1a(b: &BenchmarkDb, rng: &mut StdRng) -> PlanNode {
    let width = rng.gen_range(2..=20);
    let y0 = 1920 + rng.gen_range(0..(100 - width));
    let y1 = y0 + width;
    let n_kinds = rng.gen_range(1..=3usize);
    let kinds = pick_distinct(rng, 7, n_kinds);
    let role = rng.gen_range(0..11);
    let ct_kind = rng.gen_range(0..4);

    let title = PlanNode::SeqScan {
        table: b.title,
        pred: Some(Pred::And(vec![
            Pred::Between {
                col: 1,
                lo: y0,
                hi: y1,
            },
            Pred::In { col: 2, set: kinds },
        ])),
    };
    let j1 = PlanNode::IndexNLJoin {
        outer: Box::new(title),
        outer_key: 0,
        inner: b.cast_info,
        inner_index: b.idx_cast_movie,
        inner_pred: Some(Pred::Cmp {
            col: 3,
            op: CmpOp::Eq,
            lit: role,
        }),
    };
    // cast_info at 3-6
    let j2 = if width > 12 {
        PlanNode::HashJoin {
            build: Box::new(PlanNode::SeqScan {
                table: b.movie_companies,
                pred: None,
            }),
            probe: Box::new(j1),
            build_key: 1,
            probe_key: 0,
        }
    } else {
        PlanNode::IndexNLJoin {
            outer: Box::new(j1),
            outer_key: 0,
            inner: b.movie_companies,
            inner_index: b.idx_mc_movie,
            inner_pred: None,
        }
    };
    // movie_companies at 7-10
    let ct_pred = Pred::Cmp {
        col: 1,
        op: CmpOp::Eq,
        lit: ct_kind,
    };
    let j3 = if n_kinds == 1 {
        PlanNode::HashJoin {
            build: Box::new(PlanNode::SeqScan {
                table: b.company_type,
                pred: Some(ct_pred),
            }),
            probe: Box::new(j2),
            build_key: 0,
            probe_key: 10, // mc_company_type_id
        }
    } else {
        PlanNode::IndexNLJoin {
            outer: Box::new(j2),
            outer_key: 10,
            inner: b.company_type,
            inner_index: b.idx_ct,
            inner_pred: Some(ct_pred),
        }
    };
    PlanNode::Aggregate {
        input: Box::new(j3),
        group_col: None,
        agg: AggFunc::CountStar,
    }
}

/// Sample one query instance from `template`.
pub fn sample_query(b: &BenchmarkDb, template: Template, rng: &mut StdRng) -> QueryInstance {
    let plan = match template {
        Template::T18 => sample_t18(b, rng),
        Template::T19 => sample_t19(b, rng),
        Template::T91 => sample_t91(b, rng),
        Template::Imdb1a => sample_imdb1a(b, rng),
    };
    QueryInstance { template, plan }
}

/// Sample a whole workload (the paper's "workload" = many instances of one
/// template).
pub fn sample_workload(
    b: &BenchmarkDb,
    template: Template,
    n: usize,
    seed: u64,
) -> Vec<QueryInstance> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| sample_query(b, template, &mut rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{build_benchmark, GeneratorConfig};
    use pythia_db::exec::execute;
    use pythia_db::trace::AccessKind;
    use pythia_db::trace::TraceEvent;

    fn bench() -> BenchmarkDb {
        build_benchmark(&GeneratorConfig {
            scale: 0.08,
            seed: 2,
        })
    }

    #[test]
    fn every_template_executes() {
        let b = bench();
        let mut rng = StdRng::seed_from_u64(5);
        for t in Template::ALL {
            let q = sample_query(&b, t, &mut rng);
            let (rows, trace) = execute(&q.plan, &b.db);
            assert!(!rows.is_empty(), "{t}: aggregate always returns one row");
            assert!(trace.read_count() > 0, "{t}: no page reads");
        }
    }

    #[test]
    fn dsb_templates_mix_seq_and_nonseq() {
        let b = bench();
        let mut rng = StdRng::seed_from_u64(6);
        for t in Template::DSB {
            let q = sample_query(&b, t, &mut rng);
            let (_, trace) = execute(&q.plan, &b.db);
            assert!(trace.sequential_reads() > 0, "{t}: fact scan missing");
            assert!(
                trace.read_count() > trace.sequential_reads(),
                "{t}: no non-sequential reads"
            );
            assert!(
                trace.distinct_non_sequential() > 10,
                "{t}: too few distinct non-seq pages"
            );
        }
    }

    #[test]
    fn workload_is_deterministic() {
        let b = bench();
        let w1 = sample_workload(&b, Template::T18, 5, 9);
        let w2 = sample_workload(&b, Template::T18, 5, 9);
        for (a, c) in w1.iter().zip(&w2) {
            assert_eq!(a.plan, c.plan);
        }
    }

    #[test]
    fn workload_has_varied_params() {
        let b = bench();
        let w = sample_workload(&b, Template::T18, 10, 11);
        let distinct: std::collections::HashSet<String> =
            w.iter().map(|q| format!("{:?}", q.plan)).collect();
        assert!(
            distinct.len() >= 9,
            "parameters should differ across instances"
        );
    }

    #[test]
    fn templates_produce_multiple_plan_shapes() {
        let b = bench();
        let w = sample_workload(&b, Template::T18, 60, 3);
        let shapes: std::collections::HashSet<String> =
            w.iter().map(crate::stats::plan_shape).collect();
        assert!(
            shapes.len() >= 2,
            "expected multiple plan shapes, got {}",
            shapes.len()
        );
    }

    #[test]
    fn imdb_nonseq_concentrates_on_cast_info() {
        let b = bench();
        let mut rng = StdRng::seed_from_u64(8);
        let q = sample_query(&b, Template::Imdb1a, &mut rng);
        let (_, trace) = execute(&q.plan, &b.db);
        let sets = trace.non_sequential_sets();
        let cast_obj = b.db.table_info(b.cast_info).object;
        let cast_pages = sets.get(&cast_obj).map(Vec::len).unwrap_or(0);
        assert!(
            cast_pages > 5,
            "cast_info should dominate non-seq reads: {cast_pages}"
        );
        let objs = Template::Imdb1a.prefetch_objects(&b).unwrap();
        assert!(objs.contains(&cast_obj));
    }

    #[test]
    fn narrow_date_ranges_select_clustered_customers() {
        // The learnability property: two queries with close date ranges
        // should touch overlapping customer pages; far ranges should not.
        let b = bench();
        let mk = |d0: i64, d1: i64| {
            let fact = PlanNode::SeqScan {
                table: b.store_sales,
                pred: Some(Pred::Between {
                    col: 1,
                    lo: d0,
                    hi: d1,
                }),
            };
            let j = PlanNode::IndexNLJoin {
                outer: Box::new(fact),
                outer_key: 2,
                inner: b.customer,
                inner_index: b.idx_customer,
                inner_pred: None,
            };
            let (_, trace) = execute(&j, &b.db);
            let sets = trace.non_sequential_sets();
            let cust_obj = b.db.table_info(b.customer).object;
            sets.get(&cust_obj).cloned().unwrap_or_default()
        };
        let a: std::collections::HashSet<u32> = mk(100, 160).into_iter().collect();
        let near: std::collections::HashSet<u32> = mk(110, 170).into_iter().collect();
        let far: std::collections::HashSet<u32> = mk(1800, 1860).into_iter().collect();
        let j_near = a.intersection(&near).count() as f64 / a.union(&near).count().max(1) as f64;
        let j_far = a.intersection(&far).count() as f64 / a.union(&far).count().max(1) as f64;
        assert!(
            j_near > 0.4,
            "near ranges should overlap heavily: {j_near:.2}"
        );
        assert!(j_far < 0.35, "far ranges should barely overlap: {j_far:.2}");
        assert!(j_near > 1.5 * j_far.max(0.01));
    }

    #[test]
    fn trace_events_include_cpu_work() {
        let b = bench();
        let mut rng = StdRng::seed_from_u64(10);
        let q = sample_query(&b, Template::T18, &mut rng);
        let (_, trace) = execute(&q.plan, &b.db);
        assert!(trace
            .events
            .iter()
            .any(|e| matches!(e, TraceEvent::Cpu { .. })));
        assert!(trace.events.iter().any(
            |e| matches!(e, TraceEvent::Read { kind, .. } if *kind == AccessKind::IndexInternal)
        ));
    }
}
