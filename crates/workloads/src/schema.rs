//! Schema definition and data population for the DSB-like and IMDB-like
//! benchmarks.
//!
//! Row counts below are the `scale = 1.0` defaults; `scale` multiplies them
//! (Figure 12a sweeps 0.25 / 0.5 / 1.0 as the analog of SF 25/50/100).

use rand::rngs::StdRng;
use rand::SeedableRng;

use pythia_db::catalog::{Database, ObjectId, TableId};
use pythia_db::types::Schema;

use crate::datagen::{clustered, uniform, Zipf};

/// Knobs for the generator.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Scale factor: multiplies every row count (1.0 ≈ the paper's SF100,
    /// scaled to laptop size).
    pub scale: f64,
    /// RNG seed (all data is deterministic given the seed).
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            scale: 1.0,
            seed: 0xDB,
        }
    }
}

/// Handles to every table/index the templates need.
#[derive(Debug)]
pub struct BenchmarkDb {
    pub db: Database,
    // --- DSB-like star schema ---
    pub store_sales: TableId,
    pub catalog_returns: TableId,
    pub customer: TableId,
    pub customer_demographics: TableId,
    pub household_demographics: TableId,
    pub customer_address: TableId,
    pub date_dim: TableId,
    pub item: TableId,
    pub store: TableId,
    pub call_center: TableId,
    pub idx_customer: ObjectId,
    pub idx_cdemo: ObjectId,
    pub idx_hdemo: ObjectId,
    pub idx_caddr: ObjectId,
    pub idx_item: ObjectId,
    pub idx_store: ObjectId,
    pub idx_cc: ObjectId,
    pub idx_date: ObjectId,
    // --- IMDB/CEB-like ---
    pub title: TableId,
    pub cast_info: TableId,
    pub movie_companies: TableId,
    pub company_type: TableId,
    pub idx_cast_movie: ObjectId,
    pub idx_mc_movie: ObjectId,
    pub idx_ct: ObjectId,
    // --- domain sizes the templates sample parameters from ---
    pub n_dates: i64,
    pub n_customers: i64,
    pub n_cdemo: i64,
    pub n_hdemo: i64,
    pub n_caddr: i64,
    pub n_items: i64,
    pub n_stores: i64,
    pub n_cc: i64,
    pub n_titles: i64,
    pub n_sales: i64,
    pub n_returns: i64,
    pub n_cast: i64,
}

fn scaled(base: usize, scale: f64) -> usize {
    ((base as f64 * scale).round() as usize).max(8)
}

/// Build and populate the full benchmark database.
///
/// Correlation summary (what makes access patterns *learnable*):
/// * a sale's customer is drawn near `date/ndates * ncustomers` (clustered,
///   8% uniform outliers) — date-range predicates select near-contiguous
///   customer key ranges;
/// * a customer's demographics / household / address keys are near-linear in
///   the customer key — probes cascade through correlated dimensions;
/// * items are Zipf(1.0)-popular — heavy-tailed page popularity;
/// * IMDB titles are chronological and `cast_info` is grouped by movie —
///   production-year ranges select contiguous `cast_info` page ranges.
pub fn build_benchmark(cfg: &GeneratorConfig) -> BenchmarkDb {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut db = Database::new();
    let s = cfg.scale;

    // Row counts mirror the paper's DSB shape: the sequentially scanned fact
    // is *smaller in pages* than the dimension space reached through index
    // probes (Table 1: per query, distinct non-sequential reads rival or
    // exceed sequential reads), so queries are non-sequential-I/O-bound.
    let n_dates = scaled(2190, 1.0) as i64; // 6 years of days, fixed
    let n_customers = scaled(48_000, s) as i64;
    let n_cdemo = scaled(38_400, s) as i64;
    let n_hdemo = scaled(14_400, s) as i64;
    let n_caddr = scaled(24_000, s) as i64;
    let n_items = scaled(24_000, s) as i64;
    let n_stores = scaled(240, s) as i64;
    let n_cc = scaled(30, 1.0) as i64;
    let n_sales = scaled(60_000, s) as i64;
    let n_returns = scaled(10_000, s) as i64;
    let n_titles = scaled(40_000, s) as i64;
    let n_cast = scaled(240_000, s) as i64;

    // --- dimensions ---
    let date_dim = db.create_table(
        "date_dim",
        Schema::ints(&["d_date_sk", "d_year", "d_moy", "d_qoy"]),
    );
    for d in 0..n_dates {
        let year = 2000 + d / 365;
        let doy = d % 365;
        db.insert(
            date_dim,
            Database::row(&[d, year, doy / 30 + 1, doy / 91 + 1]),
        );
    }

    let customer = db.create_table(
        "customer",
        Schema::ints(&[
            "c_customer_sk",
            "c_cdemo_sk",
            "c_hdemo_sk",
            "c_addr_sk",
            "c_birth_month",
            "c_birth_year",
        ]),
    );
    for c in 0..n_customers {
        // Demographics keys near-linear in the customer key (clustered).
        let cdemo = clustered(
            &mut rng,
            c as f64 / n_customers as f64 * n_cdemo as f64,
            n_cdemo as f64 * 0.01,
            n_cdemo as usize,
            0.05,
        );
        let hdemo = clustered(
            &mut rng,
            c as f64 / n_customers as f64 * n_hdemo as f64,
            n_hdemo as f64 * 0.02,
            n_hdemo as usize,
            0.05,
        );
        let addr = clustered(
            &mut rng,
            c as f64 / n_customers as f64 * n_caddr as f64,
            n_caddr as f64 * 0.015,
            n_caddr as usize,
            0.05,
        );
        let birth_month = 1 + uniform(&mut rng, 12);
        let birth_year = 1940 + uniform(&mut rng, 60);
        db.insert(
            customer,
            Database::row(&[c, cdemo, hdemo, addr, birth_month, birth_year]),
        );
    }

    let customer_demographics = db.create_table(
        "customer_demographics",
        Schema::ints(&[
            "cd_demo_sk",
            "cd_gender",
            "cd_marital",
            "cd_education",
            "cd_dep_count",
        ]),
    );
    for d in 0..n_cdemo {
        db.insert(
            customer_demographics,
            Database::row(&[
                d,
                d % 2,
                uniform(&mut rng, 5),
                uniform(&mut rng, 7),
                uniform(&mut rng, 6),
            ]),
        );
    }

    let household_demographics = db.create_table(
        "household_demographics",
        Schema::ints(&["hd_demo_sk", "hd_income_band", "hd_dep_count", "hd_vehicle"]),
    );
    for d in 0..n_hdemo {
        db.insert(
            household_demographics,
            Database::row(&[
                d,
                uniform(&mut rng, 20),
                uniform(&mut rng, 8),
                uniform(&mut rng, 4),
            ]),
        );
    }

    let customer_address = db.create_table(
        "customer_address",
        Schema::ints(&["ca_address_sk", "ca_state", "ca_gmt"]),
    );
    for a in 0..n_caddr {
        db.insert(
            customer_address,
            Database::row(&[a, uniform(&mut rng, 50), -uniform(&mut rng, 12)]),
        );
    }

    let item = db.create_table(
        "item",
        Schema::ints(&["i_item_sk", "i_category", "i_brand", "i_price_band"]),
    );
    for i in 0..n_items {
        // Category correlates with the item key (catalog sections).
        let cat = (i * 10 / n_items).min(9);
        db.insert(
            item,
            Database::row(&[i, cat, uniform(&mut rng, 100), uniform(&mut rng, 20)]),
        );
    }

    let store = db.create_table(
        "store",
        Schema::ints(&["s_store_sk", "s_state", "s_market"]),
    );
    for st in 0..n_stores {
        db.insert(
            store,
            Database::row(&[st, uniform(&mut rng, 50), uniform(&mut rng, 10)]),
        );
    }

    let call_center = db.create_table(
        "call_center",
        Schema::ints(&["cc_call_center_sk", "cc_class"]),
    );
    for c in 0..n_cc {
        db.insert(call_center, Database::row(&[c, uniform(&mut rng, 3)]));
    }

    // --- facts ---
    let item_zipf = Zipf::new(n_items as usize, 1.0);
    let store_sales = db.create_table(
        "store_sales",
        Schema::ints(&[
            "ss_id",
            "ss_sold_date_sk",
            "ss_customer_sk",
            "ss_cdemo_sk",
            "ss_hdemo_sk",
            "ss_item_sk",
            "ss_store_sk",
            "ss_quantity",
            "ss_price",
        ]),
    );
    for i in 0..n_sales {
        // Sales are appended chronologically (like a real warehouse).
        let date = i * n_dates / n_sales;
        let cust = clustered(
            &mut rng,
            date as f64 / n_dates as f64 * n_customers as f64,
            n_customers as f64 * 0.03,
            n_customers as usize,
            0.08,
        );
        // Read the customer's demo keys back? Too slow — regenerate with the
        // same distribution shape: sale-level demo keys cluster with the
        // customer key like the customer's own.
        let cdemo = clustered(
            &mut rng,
            cust as f64 / n_customers as f64 * n_cdemo as f64,
            n_cdemo as f64 * 0.01,
            n_cdemo as usize,
            0.05,
        );
        let hdemo = clustered(
            &mut rng,
            cust as f64 / n_customers as f64 * n_hdemo as f64,
            n_hdemo as f64 * 0.02,
            n_hdemo as usize,
            0.05,
        );
        let it = item_zipf.sample(&mut rng) as i64;
        let st = uniform(&mut rng, n_stores as usize);
        let qty = 1 + uniform(&mut rng, 100);
        let price = 1 + uniform(&mut rng, 1000);
        db.insert(
            store_sales,
            Database::row(&[i, date, cust, cdemo, hdemo, it, st, qty, price]),
        );
    }

    let catalog_returns = db.create_table(
        "catalog_returns",
        Schema::ints(&[
            "cr_id",
            "cr_returned_date_sk",
            "cr_customer_sk",
            "cr_call_center_sk",
            "cr_item_sk",
            "cr_amount",
        ]),
    );
    for i in 0..n_returns {
        let date = i * n_dates / n_returns;
        let cust = clustered(
            &mut rng,
            date as f64 / n_dates as f64 * n_customers as f64,
            n_customers as f64 * 0.03,
            n_customers as usize,
            0.08,
        );
        let cc = uniform(&mut rng, n_cc as usize);
        let it = item_zipf.sample(&mut rng) as i64;
        let amount = 1 + uniform(&mut rng, 500);
        db.insert(
            catalog_returns,
            Database::row(&[i, date, cust, cc, it, amount]),
        );
    }

    // --- IMDB-like ---
    let title = db.create_table(
        "title",
        Schema::ints(&["t_id", "t_production_year", "t_kind_id"]),
    );
    {
        // Titles are chronological (id maps to year 1920..2020) but stored in
        // shuffled order, like a real dump: a year-range scan therefore
        // probes cast_info in scattered order (defeating OS readahead) while
        // the probed *page set* stays clustered (movies of adjacent years
        // share cast_info pages) — exactly the paper's prefetchable pattern.
        let mut ids: Vec<i64> = (0..n_titles).collect();
        for i in (1..ids.len()).rev() {
            let j = uniform(&mut rng, i + 1) as usize;
            ids.swap(i, j);
        }
        for t in ids {
            let year = 1920 + t * 100 / n_titles;
            db.insert(title, Database::row(&[t, year, uniform(&mut rng, 7)]));
        }
    }

    let cast_info = db.create_table(
        "cast_info",
        Schema::ints(&["ci_id", "ci_movie_id", "ci_person_id", "ci_role_id"]),
    );
    {
        // cast_info grouped by movie (as in the real IMDB dump): movie t gets
        // a variable number of cast rows.
        let mut ci = 0i64;
        let per_movie = (n_cast / n_titles).max(1);
        for t in 0..n_titles {
            let k = 1 + uniform(&mut rng, (2 * per_movie) as usize);
            for _ in 0..k {
                if ci >= n_cast {
                    break;
                }
                db.insert(
                    cast_info,
                    Database::row(&[ci, t, uniform(&mut rng, 100_000), uniform(&mut rng, 11)]),
                );
                ci += 1;
            }
        }
    }

    let movie_companies = db.create_table(
        "movie_companies",
        Schema::ints(&[
            "mc_id",
            "mc_movie_id",
            "mc_company_id",
            "mc_company_type_id",
        ]),
    );
    {
        let n_mc = scaled(60_000, s) as i64;
        for m in 0..n_mc {
            let movie = m * n_titles / n_mc;
            db.insert(
                movie_companies,
                Database::row(&[m, movie, uniform(&mut rng, 5_000), uniform(&mut rng, 4)]),
            );
        }
    }

    let company_type = db.create_table("company_type", Schema::ints(&["ct_id", "ct_kind"]));
    for c in 0..4 {
        db.insert(company_type, Database::row(&[c, c]));
    }

    // --- indexes (all on the probe keys the templates use) ---
    let idx_customer = db.create_index("customer_pk", customer, 0);
    let idx_cdemo = db.create_index("customer_demographics_pk", customer_demographics, 0);
    let idx_hdemo = db.create_index("household_demographics_pk", household_demographics, 0);
    let idx_caddr = db.create_index("customer_address_pk", customer_address, 0);
    let idx_item = db.create_index("item_pk", item, 0);
    let idx_store = db.create_index("store_pk", store, 0);
    let idx_cc = db.create_index("call_center_pk", call_center, 0);
    let idx_date = db.create_index("date_dim_pk", date_dim, 0);
    let idx_cast_movie = db.create_index("cast_info_movie_id", cast_info, 1);
    let idx_mc_movie = db.create_index("movie_companies_movie_id", movie_companies, 1);
    let idx_ct = db.create_index("company_type_pk", company_type, 0);

    BenchmarkDb {
        db,
        store_sales,
        catalog_returns,
        customer,
        customer_demographics,
        household_demographics,
        customer_address,
        date_dim,
        item,
        store,
        call_center,
        idx_customer,
        idx_cdemo,
        idx_hdemo,
        idx_caddr,
        idx_item,
        idx_store,
        idx_cc,
        idx_date,
        title,
        cast_info,
        movie_companies,
        company_type,
        idx_cast_movie,
        idx_mc_movie,
        idx_ct,
        n_dates,
        n_customers,
        n_cdemo,
        n_hdemo,
        n_caddr,
        n_items,
        n_stores,
        n_cc,
        n_titles,
        n_sales,
        n_returns,
        n_cast,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BenchmarkDb {
        build_benchmark(&GeneratorConfig {
            scale: 0.05,
            seed: 1,
        })
    }

    #[test]
    fn all_tables_populated() {
        let b = tiny();
        for t in [
            b.store_sales,
            b.catalog_returns,
            b.customer,
            b.customer_demographics,
            b.household_demographics,
            b.customer_address,
            b.date_dim,
            b.item,
            b.store,
            b.call_center,
            b.title,
            b.cast_info,
            b.movie_companies,
            b.company_type,
        ] {
            assert!(
                b.db.table_info(t).heap.tuple_count() > 0,
                "{} empty",
                b.db.table_info(t).name
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = build_benchmark(&GeneratorConfig {
            scale: 0.05,
            seed: 7,
        });
        let b = build_benchmark(&GeneratorConfig {
            scale: 0.05,
            seed: 7,
        });
        assert_eq!(a.db.disk.total_pages(), b.db.disk.total_pages());
        // Spot-check a row.
        let ra = a.db.table_info(a.store_sales).heap.read_page(&a.db.disk, 0);
        let rb = b.db.table_info(b.store_sales).heap.read_page(&b.db.disk, 0);
        assert_eq!(ra, rb);
    }

    #[test]
    fn scale_changes_size() {
        let small = build_benchmark(&GeneratorConfig {
            scale: 0.05,
            seed: 1,
        });
        let big = build_benchmark(&GeneratorConfig {
            scale: 0.1,
            seed: 1,
        });
        assert!(big.db.disk.total_pages() > small.db.disk.total_pages());
    }

    #[test]
    fn sales_customer_correlates_with_date() {
        let b = tiny();
        // For sales in the first 10% of dates, customers should mostly be in
        // the low customer-key range.
        let info = b.db.table_info(b.store_sales);
        let mut low_date_low_cust = 0;
        let mut low_date_total = 0;
        for (_, row) in info.heap.scan(&b.db.disk) {
            let date = row[1].as_int().unwrap();
            let cust = row[2].as_int().unwrap();
            if date < b.n_dates / 10 {
                low_date_total += 1;
                if cust < b.n_customers / 5 {
                    low_date_low_cust += 1;
                }
            }
        }
        assert!(low_date_total > 0);
        assert!(
            low_date_low_cust as f64 > 0.7 * low_date_total as f64,
            "correlation too weak: {low_date_low_cust}/{low_date_total}"
        );
    }

    #[test]
    fn item_popularity_is_skewed() {
        let b = tiny();
        let info = b.db.table_info(b.store_sales);
        let mut counts = std::collections::HashMap::new();
        for (_, row) in info.heap.scan(&b.db.disk) {
            *counts.entry(row[5].as_int().unwrap()).or_insert(0u32) += 1;
        }
        let max = counts.values().max().copied().unwrap();
        let distinct = counts.len();
        // Heavy head: most popular item appears far more than average.
        let avg = b.n_sales as f64 / distinct as f64;
        assert!(max as f64 > 8.0 * avg, "max {max}, avg {avg:.1}");
    }

    #[test]
    fn cast_info_grouped_by_movie() {
        let b = tiny();
        let info = b.db.table_info(b.cast_info);
        let movies: Vec<i64> = info
            .heap
            .scan(&b.db.disk)
            .map(|(_, r)| r[1].as_int().unwrap())
            .collect();
        // Non-decreasing movie ids (grouped storage).
        assert!(movies.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn indexes_resolve_probes() {
        let b = tiny();
        let idx = b.db.index_info(b.idx_customer);
        let hits = idx.btree.search(&b.db.disk, 5, &mut |_, _| {});
        assert_eq!(hits.len(), 1, "customer_sk is unique");
        let ci = b.db.index_info(b.idx_cast_movie);
        let hits = ci.btree.search(&b.db.disk, 3, &mut |_, _| {});
        assert!(!hits.is_empty(), "every movie has cast");
    }
}
