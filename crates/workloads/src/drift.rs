//! Drift-scenario generators: deterministic query streams whose statistics
//! shift at a known point, used to exercise the streaming drift detectors in
//! `pythia_obs::quality` (and, as the stationary control, to pin that they
//! stay silent when nothing changes).
//!
//! All generators return the stream in arrival order. Three shift shapes:
//!
//! * [`mix_rotation`] — the template mix rotates to a disjoint set at the
//!   shift point (the tenant's traffic changes *kind*). The template-mix
//!   divergence detector sees total-variation distance 1.0 once its recent
//!   window has rolled over.
//! * [`template_appearance`] — a template the stream has never contained
//!   starts interleaving at the shift point (a new query type deployed
//!   mid-stream).
//! * [`parameter_shift`] — templates stay fixed but parameters jump to a
//!   different selectivity regime, flipping the optimizer-style plan shape
//!   (T18's customer dimension moves from index probes to a hash join).
//!   Template-mix divergence stays 0; only *quality* detectors can see it.
//!
//! [`stationary_mix`] is the control: a fixed cyclic rotation over all four
//! templates. The cycle length (4) divides the quality tracker's default
//! recent (8) and baseline (32) mix windows, so once both windows fill, the
//! recent and baseline distributions are *exactly* equal and the divergence
//! score is identically zero — a stationary run must raise zero alerts.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::schema::BenchmarkDb;
use crate::stats::plan_shape;
use crate::templates::{sample_query, QueryInstance, Template};

/// Stationary control stream: cycle all four templates in a fixed order.
pub fn stationary_mix(b: &BenchmarkDb, n: usize, seed: u64) -> Vec<QueryInstance> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| sample_query(b, Template::ALL[i % Template::ALL.len()], &mut rng))
        .collect()
}

/// Template-mix rotation: cycle `[T18, T19]` for the first `shift_at`
/// queries, then cycle the disjoint `[T91, Imdb1a]` for the rest. The two
/// mixes share no templates, so the post-shift recent window diverges from
/// the trailing baseline with total-variation distance 1.0.
pub fn mix_rotation(b: &BenchmarkDb, n: usize, shift_at: usize, seed: u64) -> Vec<QueryInstance> {
    const BEFORE: [Template; 2] = [Template::T18, Template::T19];
    const AFTER: [Template; 2] = [Template::T91, Template::Imdb1a];
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let t = if i < shift_at {
                BEFORE[i % BEFORE.len()]
            } else {
                AFTER[(i - shift_at) % AFTER.len()]
            };
            sample_query(b, t, &mut rng)
        })
        .collect()
}

/// Template appearance: pure T18 until `appear_at`, then Imdb1a interleaves
/// on every other arrival — a query type the stream (and any model trained
/// on its prefix) has never seen.
pub fn template_appearance(
    b: &BenchmarkDb,
    n: usize,
    appear_at: usize,
    seed: u64,
) -> Vec<QueryInstance> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let t = if i >= appear_at && (i - appear_at) % 2 == 0 {
                Template::Imdb1a
            } else {
                Template::T18
            };
            sample_query(b, t, &mut rng)
        })
        .collect()
}

/// Number of hash joins in the instance's plan shape (each renders as an
/// `H,` token in [`plan_shape`]).
fn hash_joins(q: &QueryInstance) -> usize {
    plan_shape(q).matches("H,").count()
}

/// Parameter shift within one template: every query is T18, but the first
/// `shift_at` instances are resampled until their parameters fall in the
/// narrow-selectivity regime (customer dimension index-probed — exactly the
/// one date_dim hash join) and the rest until they fall in the wide regime
/// (customer hash-joined — two hash joins). The template mix never changes;
/// only the plan shape and its page-access pattern do.
pub fn parameter_shift(
    b: &BenchmarkDb,
    n: usize,
    shift_at: usize,
    seed: u64,
) -> Vec<QueryInstance> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let want_wide = i >= shift_at;
            // T18's width parameter is uniform in 40..=300 with the hash
            // threshold at 240, so both regimes have ample mass; a few
            // rejection rounds suffice. Cap the loop for safety and keep
            // the last sample if the cap is ever hit.
            let mut q = sample_query(b, Template::T18, &mut rng);
            for _ in 0..64 {
                if (hash_joins(&q) >= 2) == want_wide {
                    break;
                }
                q = sample_query(b, Template::T18, &mut rng);
            }
            q
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{build_benchmark, GeneratorConfig};
    use std::collections::HashSet;

    fn bench() -> BenchmarkDb {
        build_benchmark(&GeneratorConfig {
            scale: 0.08,
            seed: 2,
        })
    }

    #[test]
    fn stationary_mix_cycles_all_templates() {
        let b = bench();
        let w = stationary_mix(&b, 9, 3);
        let templates: Vec<Template> = w.iter().map(|q| q.template).collect();
        assert_eq!(&templates[..4], &Template::ALL);
        assert_eq!(templates[4], Template::T18, "cycle wraps");
        // Deterministic for a fixed seed.
        let w2 = stationary_mix(&b, 9, 3);
        for (a, c) in w.iter().zip(&w2) {
            assert_eq!(a.plan, c.plan);
        }
    }

    #[test]
    fn mix_rotation_switches_to_a_disjoint_mix() {
        let b = bench();
        let w = mix_rotation(&b, 12, 6, 4);
        let before: HashSet<Template> = w[..6].iter().map(|q| q.template).collect();
        let after: HashSet<Template> = w[6..].iter().map(|q| q.template).collect();
        assert_eq!(
            before,
            HashSet::from([Template::T18, Template::T19]),
            "{before:?}"
        );
        assert_eq!(
            after,
            HashSet::from([Template::T91, Template::Imdb1a]),
            "{after:?}"
        );
        assert!(before.is_disjoint(&after));
    }

    #[test]
    fn template_appearance_introduces_imdb_mid_stream() {
        let b = bench();
        let w = template_appearance(&b, 10, 4, 5);
        assert!(w[..4].iter().all(|q| q.template == Template::T18));
        let appeared: Vec<Template> = w[4..].iter().map(|q| q.template).collect();
        assert_eq!(appeared[0], Template::Imdb1a, "appears at the shift point");
        assert!(appeared.contains(&Template::T18), "T18 keeps interleaving");
    }

    #[test]
    fn parameter_shift_flips_the_plan_shape_not_the_template() {
        let b = bench();
        let w = parameter_shift(&b, 10, 5, 6);
        assert!(w.iter().all(|q| q.template == Template::T18));
        for q in &w[..5] {
            assert_eq!(hash_joins(q), 1, "narrow regime: date_dim hash only");
        }
        for q in &w[5..] {
            assert!(hash_joins(q) >= 2, "wide regime: customer hash-joined");
        }
    }
}
