//! # pythia-buffer
//!
//! The RDBMS buffer manager the Pythia reproduction runs against — the
//! analogue of Postgres' buffer pool plus the AIO prefetch structure from
//! Andres Freund's development branch that the paper builds on (§4).
//!
//! * [`BufferPool`] — fixed number of frames, a page table, pin counts and a
//!   pluggable [`ReplacementPolicy`] (Clock — Postgres' policy — plus the LRU
//!   and MRU policies the paper adds for Figure 12e).
//! * [`AioPrefetcher`] — the asynchronous prefetch engine: a producer queue
//!   of pages to fetch, a readahead window of at most `R` pinned in-flight /
//!   ready pages, and the "dummy request" mechanism that advances the window
//!   at the query's read rate (paper §4, "Decoupling AIO from Postgres read
//!   call").
//! * [`BufferStats`] — hit/miss/prefetch accounting used by every experiment.
//!
//! All timing flows through `pythia-sim`'s virtual clock: the pool itself is
//! time-free; the [`AioPrefetcher`] and callers thread `SimTime` through.

pub mod aio;
pub mod frame;
pub mod policy;
pub mod pool;
pub mod stats;

pub use aio::AioPrefetcher;
pub use frame::{Frame, FrameId};
pub use policy::{
    ClockPolicy, LruPolicy, MruPolicy, PolicyKind, PrefetchAwareClock, ReplacementPolicy,
};
pub use pool::BufferPool;
pub use stats::BufferStats;
