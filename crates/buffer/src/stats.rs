//! Buffer-manager accounting used by the experiment harness.

/// Counters for one run of a query (or a batch of concurrent queries).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Reads served from the buffer pool (including prefetched pages that had
    /// already arrived).
    pub hits: u64,
    /// Reads that missed the pool but hit the OS page cache (memory copy).
    pub os_copies: u64,
    /// Reads that went all the way to disk.
    pub disk_reads: u64,
    /// Reads of prefetched pages that had to wait for in-flight I/O.
    pub prefetch_waits: u64,
    /// Pages the prefetcher issued I/O for.
    pub prefetch_issued: u64,
    /// Pages the prefetcher skipped because they were already resident.
    pub prefetch_already_resident: u64,
    /// Prefetched pages later referenced by a query (useful prefetches).
    pub prefetch_useful: u64,
    /// Prefetched pages evicted without ever being referenced.
    pub prefetch_wasted: u64,
    /// Evictions performed to make room.
    pub evictions: u64,
    /// Subset of the misses above that could not be cached afterwards
    /// because every frame was pinned (served pass-through).
    pub pass_through: u64,
}

impl BufferStats {
    /// Total page reads observed. (`pass_through` is a sub-classification of
    /// `os_copies`/`disk_reads`, not a separate class.)
    pub fn total_reads(&self) -> u64 {
        self.hits + self.os_copies + self.disk_reads
    }

    /// Pool hit rate in [0, 1]; zero when no reads happened.
    pub fn hit_rate(&self) -> f64 {
        let t = self.total_reads();
        if t == 0 {
            0.0
        } else {
            self.hits as f64 / t as f64
        }
    }

    /// Fraction of issued prefetches that were referenced; zero when none
    /// were issued.
    pub fn prefetch_precision(&self) -> f64 {
        if self.prefetch_issued == 0 {
            0.0
        } else {
            self.prefetch_useful as f64 / self.prefetch_issued as f64
        }
    }

    /// Fraction of prefetchable demand traffic that was actually served by
    /// a prefetch: `useful / (useful + os_copies + disk_reads)`. The
    /// denominator counts every demand read that *left* the pool (each one a
    /// missed prefetch opportunity) plus the ones a prefetch saved; zero
    /// when there were none.
    pub fn prefetch_recall(&self) -> f64 {
        let den = self.prefetch_useful + self.os_copies + self.disk_reads;
        if den == 0 {
            0.0
        } else {
            self.prefetch_useful as f64 / den as f64
        }
    }

    /// Counters accumulated since an earlier snapshot `before`.
    /// The serving loop uses this to attribute the shared pool's cumulative
    /// counters to individual admission waves.
    ///
    /// Counters are monotone, so every field of `self` must be ≥ the
    /// corresponding field of `before`; passing snapshots in the wrong order
    /// is a caller bug. Debug builds assert on it; release builds saturate
    /// to zero rather than wrapping into garbage statistics.
    pub fn diff(&self, before: &BufferStats) -> BufferStats {
        fn sub(after: u64, before: u64, field: &str) -> u64 {
            debug_assert!(
                after >= before,
                "BufferStats::diff: snapshots in wrong order ({field}: {after} < {before})"
            );
            after.saturating_sub(before)
        }
        BufferStats {
            hits: sub(self.hits, before.hits, "hits"),
            os_copies: sub(self.os_copies, before.os_copies, "os_copies"),
            disk_reads: sub(self.disk_reads, before.disk_reads, "disk_reads"),
            prefetch_waits: sub(self.prefetch_waits, before.prefetch_waits, "prefetch_waits"),
            prefetch_issued: sub(
                self.prefetch_issued,
                before.prefetch_issued,
                "prefetch_issued",
            ),
            prefetch_already_resident: sub(
                self.prefetch_already_resident,
                before.prefetch_already_resident,
                "prefetch_already_resident",
            ),
            prefetch_useful: sub(
                self.prefetch_useful,
                before.prefetch_useful,
                "prefetch_useful",
            ),
            prefetch_wasted: sub(
                self.prefetch_wasted,
                before.prefetch_wasted,
                "prefetch_wasted",
            ),
            evictions: sub(self.evictions, before.evictions, "evictions"),
            pass_through: sub(self.pass_through, before.pass_through, "pass_through"),
        }
    }

    /// Merge counters from another run (for concurrent-query aggregation).
    pub fn merge(&mut self, other: &BufferStats) {
        self.hits += other.hits;
        self.os_copies += other.os_copies;
        self.disk_reads += other.disk_reads;
        self.prefetch_waits += other.prefetch_waits;
        self.prefetch_issued += other.prefetch_issued;
        self.prefetch_already_resident += other.prefetch_already_resident;
        self.prefetch_useful += other.prefetch_useful;
        self.prefetch_wasted += other.prefetch_wasted;
        self.evictions += other.evictions;
        self.pass_through += other.pass_through;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_rates() {
        let s = BufferStats {
            hits: 3,
            os_copies: 1,
            disk_reads: 1,
            pass_through: 1,
            ..Default::default()
        };
        assert_eq!(s.total_reads(), 5, "pass_through is not an extra class");
        assert!((s.hit_rate() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_rates_are_zero() {
        let s = BufferStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.prefetch_precision(), 0.0);
        assert_eq!(s.prefetch_recall(), 0.0);
    }

    #[test]
    fn prefetch_recall_counts_missed_opportunities() {
        let s = BufferStats {
            prefetch_useful: 6,
            os_copies: 3,
            disk_reads: 1,
            hits: 50, // pool hits outside prefetch do not dilute recall
            ..Default::default()
        };
        assert!((s.prefetch_recall() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn prefetch_precision() {
        let s = BufferStats {
            prefetch_issued: 10,
            prefetch_useful: 7,
            ..Default::default()
        };
        assert!((s.prefetch_precision() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn diff_undoes_merge() {
        let before = BufferStats {
            hits: 2,
            disk_reads: 1,
            evictions: 4,
            ..Default::default()
        };
        let wave = BufferStats {
            hits: 3,
            os_copies: 5,
            prefetch_issued: 7,
            ..Default::default()
        };
        let mut after = before;
        after.merge(&wave);
        assert_eq!(after.diff(&before), wave);
        assert_eq!(after.diff(&after), BufferStats::default());
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "wrong order"))]
    fn diff_in_wrong_order_asserts_in_debug() {
        let before = BufferStats {
            hits: 2,
            ..Default::default()
        };
        let after = BufferStats {
            hits: 5,
            ..Default::default()
        };
        // Arguments swapped: `before.diff(&after)` asks for counters
        // accumulated "since" a later snapshot. Debug builds panic; release
        // builds saturate to zero instead of wrapping around.
        let d = before.diff(&after);
        assert_eq!(d.hits, 0, "release builds saturate");
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = BufferStats {
            hits: 1,
            evictions: 2,
            ..Default::default()
        };
        let b = BufferStats {
            hits: 4,
            disk_reads: 3,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.hits, 5);
        assert_eq!(a.disk_reads, 3);
        assert_eq!(a.evictions, 2);
    }
}
