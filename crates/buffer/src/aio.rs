//! The asynchronous prefetch engine (AIO structure).
//!
//! Models the paper's Postgres integration (§4):
//!
//! * a **producer queue** of pages to prefetch, already arranged in file
//!   storage order (ascending offsets — this cooperates with OS readahead);
//! * a **readahead window**: at most `R` prefetched pages are kept pinned in
//!   the buffer pool at a time (the paper's default is `R = 1024`,
//!   Figure 12g sweeps it);
//! * **dummy requests**: the query never reads *from* the AIO structure; each
//!   ordinary buffer read sends a dummy advance so the engine tracks the
//!   query's read rate, unpins the oldest completed prefetch, and issues the
//!   next one;
//! * pages already resident in the pool are skipped — "nothing happens except
//!   increasing its use count" (§3.3 "Ignoring query history").
//!
//! I/O is issued through the [`IoWorkerPool`]; a prefetched page becomes
//! readable at its scheduled completion instant. Reads that arrive earlier
//! wait for the in-flight I/O — the database runtime (`pythia-db`'s
//! `runtime` module) accounts those stalls as `prefetch_waits` when it
//! serves the read; the prefetcher itself keeps no wait counters.

use std::collections::VecDeque;

use pythia_obs::{tid, Track};
use pythia_sim::{CostModel, IoWorkerPool, OsPageCache, PageId, SimTime, StreamId};

use crate::frame::FrameId;
use crate::pool::BufferPool;

#[derive(Debug, Clone, Copy)]
struct InFlight {
    frame: FrameId,
    arrival: SimTime,
}

/// Asynchronous prefetcher with a bounded pinned readahead window.
#[derive(Debug)]
pub struct AioPrefetcher {
    queue: VecDeque<PageId>,
    window: VecDeque<InFlight>,
    window_size: usize,
    /// `file_lens[f]` = page count of file `f` (for OS readahead EOF
    /// clamping on the prefetcher's own reads). Missing entries are treated
    /// as unbounded.
    file_lens: Vec<u32>,
    /// The OS-cache stream (open-fd analogue) the prefetcher's own reads run
    /// under. Distinct from the query's demand stream, so the prefetcher's
    /// storage-order reads and the query's interleaved demand reads each keep
    /// their own kernel-readahead run alive.
    stream: StreamId,
}

impl AioPrefetcher {
    /// An idle prefetcher with readahead window `R` (pages pinned at once),
    /// reading under OS-cache stream 0 (unit-test convenience; real callers
    /// should allocate a distinct stream via [`Self::with_file_lens`]).
    ///
    /// # Panics
    /// Panics if `window_size == 0`.
    pub fn new(window_size: usize) -> Self {
        Self::with_file_lens(window_size, Vec::new(), StreamId(0))
    }

    /// Like [`Self::new`] but with the per-file page counts used to clamp
    /// the OS readahead the prefetcher's sequential reads trigger, and the
    /// OS-cache stream identity those reads run under.
    pub fn with_file_lens(window_size: usize, file_lens: Vec<u32>, stream: StreamId) -> Self {
        assert!(window_size > 0, "readahead window must be >= 1");
        AioPrefetcher {
            queue: VecDeque::new(),
            window: VecDeque::new(),
            window_size,
            file_lens,
            stream,
        }
    }

    fn file_len(&self, pid: PageId) -> u32 {
        self.file_lens
            .get(pid.file.0 as usize)
            .copied()
            .unwrap_or(u32::MAX)
    }

    /// The OS-cache stream the prefetcher reads under (so the owner can
    /// retire it when the query finishes).
    pub fn stream(&self) -> StreamId {
        self.stream
    }

    /// Readahead window size `R`.
    pub fn window_size(&self) -> usize {
        self.window_size
    }

    /// Pages still waiting in the producer queue.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Pages currently pinned in the window (in flight or arrived).
    pub fn in_window(&self) -> usize {
        self.window.len()
    }

    /// Whether all prefetch work has been issued and the window drained.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.window.is_empty()
    }

    /// Begin prefetching `pages` (must be in ascending storage order for the
    /// OS-readahead cooperation the paper describes; this is the prefetcher
    /// contract, not enforced). Immediately fills the window.
    pub fn start(
        &mut self,
        pages: impl IntoIterator<Item = PageId>,
        pool: &mut BufferPool,
        os: &mut OsPageCache,
        io: &mut IoWorkerPool,
        cost: &CostModel,
        now: SimTime,
    ) {
        self.queue.extend(pages);
        self.pump(pool, os, io, cost, now);
    }

    /// Issue I/O until the window is full or the queue is empty.
    fn pump(
        &mut self,
        pool: &mut BufferPool,
        os: &mut OsPageCache,
        io: &mut IoWorkerPool,
        cost: &CostModel,
        now: SimTime,
    ) {
        while self.window.len() < self.window_size {
            let Some(pid) = self.queue.pop_front() else {
                break;
            };
            if let Some(fid) = pool.lookup(pid) {
                // Already in the buffer: just bump its use count.
                pool.touch(fid);
                pool.stats_mut().prefetch_already_resident += 1;
                pool.recorder_mut().add("prefetch.already_resident", 1);
                continue;
            }
            // Reserve a frame *before* touching the OS cache or the I/O
            // workers: when every frame is pinned the page must go back on
            // the queue with zero side effects, otherwise the failed attempt
            // burns a worker slot and skews OS-cache stats — and the retry
            // double-counts both.
            let Some(fid) = pool.load(pid, true, now) else {
                // Every frame pinned: put the page back and stop — the
                // window will advance as the query consumes pages.
                self.queue.push_front(pid);
                break;
            };
            // The prefetcher's own reads go through the OS cache — and,
            // because the queue is in file storage order, they benefit from
            // kernel readahead just like Postgres' I/O workers do (§3.3
            // "This also helps the prefetcher with the OS readahead").
            let outcome = os.read(self.stream, pid, self.file_len(pid));
            let latency = if outcome.cache_hit {
                cost.os_cache_copy
            } else {
                cost.disk_read
            };
            let sched = io.schedule_detailed(now, latency);
            let arrival = sched.completes;
            pool.set_available_at(fid, arrival);
            pool.pin(fid);
            pool.stats_mut().prefetch_issued += 1;
            let stream_id = self.stream.0;
            let rec = pool.recorder_mut();
            rec.add("prefetch.issued", 1);
            if rec.is_enabled() {
                let stream_track = Track::virt(tid::PREFETCH_BASE + stream_id as u32);
                let lane_track = Track::virt(tid::IO_BASE + sched.lane as u32);
                rec.declare_track(stream_track, || format!("prefetch-stream-{stream_id}"));
                rec.declare_track(lane_track, || format!("io-lane-{}", sched.lane));
                // Issue → arrival on the stream's track; lane occupancy on
                // the worker's track (the two differ when the fetch queues
                // behind earlier I/O).
                rec.span(
                    stream_track,
                    "prefetch",
                    "prefetch.io",
                    now.as_micros(),
                    arrival.as_micros(),
                    &[
                        ("page", pid.trace_key()),
                        ("lane", sched.lane as u64),
                        ("os_hit", outcome.cache_hit as u64),
                    ],
                );
                rec.span(
                    lane_track,
                    "io",
                    "io.read",
                    sched.start.as_micros(),
                    arrival.as_micros(),
                    &[("page", pid.trace_key()), ("prefetch", 1)],
                );
                rec.observe("prefetch.io_latency_us", arrival.since(now).as_micros());
            }
            self.window.push_back(InFlight {
                frame: fid,
                arrival,
            });
        }
    }

    /// Dummy request: called once per ordinary query page read. Every
    /// already-completed entry at the front of the window is released (the
    /// pages stay in the buffer, subject to normal replacement) and the freed
    /// slots are refilled. Draining *all* arrived front entries — not just
    /// one — matters with ≥ 2 I/O workers: completions land out of order, so
    /// a single-entry advance would leave arrived pages pinned behind the
    /// consumption rate and stall the window.
    pub fn on_query_read(
        &mut self,
        pool: &mut BufferPool,
        os: &mut OsPageCache,
        io: &mut IoWorkerPool,
        cost: &CostModel,
        now: SimTime,
    ) {
        let mut advanced = false;
        while let Some(front) = self.window.front() {
            if front.arrival > now {
                break;
            }
            let fl = self.window.pop_front().expect("front exists");
            pool.unpin(fl.frame);
            // How long the arrived page sat pinned before the query's read
            // rate released it — the window-sizing signal (Fig 12g).
            pool.recorder_mut()
                .observe("prefetch.window_hold_us", now.since(fl.arrival).as_micros());
            advanced = true;
        }
        if advanced {
            self.pump(pool, os, io, cost, now);
        }
    }

    /// Release all window pins and drop remaining queued pages (query done).
    pub fn finish(&mut self, pool: &mut BufferPool) {
        for fl in self.window.drain(..) {
            pool.unpin(fl.frame);
        }
        self.queue.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;
    use pythia_sim::oscache::OsCacheStats;
    use pythia_sim::{FileId, SimDuration};

    fn pid(p: u32) -> PageId {
        PageId::new(FileId(0), p)
    }

    fn setup(
        frames: usize,
        window: usize,
    ) -> (
        BufferPool,
        OsPageCache,
        IoWorkerPool,
        CostModel,
        AioPrefetcher,
    ) {
        let cost = CostModel {
            disk_read: SimDuration::from_micros(500),
            ..CostModel::default()
        };
        (
            BufferPool::new(frames, PolicyKind::Clock),
            OsPageCache::new(1024, 32),
            IoWorkerPool::new(2),
            cost,
            AioPrefetcher::new(window),
        )
    }

    #[test]
    fn start_fills_window_and_pins() {
        let (mut pool, mut os, mut io, cost, mut aio) = setup(16, 4);
        aio.start(
            (0..10).map(pid),
            &mut pool,
            &mut os,
            &mut io,
            &cost,
            SimTime::ZERO,
        );
        assert_eq!(aio.in_window(), 4);
        assert_eq!(aio.pending(), 6);
        assert_eq!(pool.stats().prefetch_issued, 4);
        // All four window pages are pinned.
        let pinned = (0..4)
            .filter(|&p| {
                pool.lookup(pid(p))
                    .map(|f| pool.frame(f).pin_count > 0)
                    .unwrap_or(false)
            })
            .count();
        assert_eq!(pinned, 4);
    }

    #[test]
    fn arrival_times_respect_io_parallelism() {
        let (mut pool, mut os, mut io, cost, mut aio) = setup(16, 4);
        aio.start(
            (0..4).map(pid),
            &mut pool,
            &mut os,
            &mut io,
            &cost,
            SimTime::ZERO,
        );
        // 2 workers, disk_read=500us. Pages 0 and 1 are cold disk reads; the
        // prefetcher's own sequential pattern triggers OS readahead, so
        // pages 2 and 3 are OS-cache copies (50us) queued behind them.
        let arrivals: Vec<u64> = (0..4)
            .map(|p| {
                pool.frame(pool.lookup(pid(p)).unwrap())
                    .available_at
                    .as_micros()
            })
            .collect();
        assert_eq!(arrivals, vec![500, 500, 550, 550]);
    }

    #[test]
    fn resident_pages_are_skipped() {
        let (mut pool, mut os, mut io, cost, mut aio) = setup(16, 4);
        pool.load(pid(1), false, SimTime::ZERO).unwrap();
        aio.start(
            [pid(0), pid(1), pid(2)],
            &mut pool,
            &mut os,
            &mut io,
            &cost,
            SimTime::ZERO,
        );
        assert_eq!(pool.stats().prefetch_already_resident, 1);
        assert_eq!(pool.stats().prefetch_issued, 2);
        assert_eq!(aio.in_window(), 2);
    }

    #[test]
    fn dummy_request_advances_window() {
        let (mut pool, mut os, mut io, cost, mut aio) = setup(16, 2);
        aio.start(
            (0..5).map(pid),
            &mut pool,
            &mut os,
            &mut io,
            &cost,
            SimTime::ZERO,
        );
        assert_eq!(aio.in_window(), 2);
        // Before arrival: no advance.
        aio.on_query_read(
            &mut pool,
            &mut os,
            &mut io,
            &cost,
            SimTime::from_micros(100),
        );
        assert_eq!(aio.in_window(), 2);
        // After both in-flight pages arrive (500us each on 2 workers), one
        // dummy request drains them both and refills the window.
        aio.on_query_read(
            &mut pool,
            &mut os,
            &mut io,
            &cost,
            SimTime::from_micros(600),
        );
        assert_eq!(aio.in_window(), 2);
        assert_eq!(aio.pending(), 1);
        for p in 0..2 {
            let f = pool.lookup(pid(p)).unwrap();
            assert_eq!(pool.frame(f).pin_count, 0, "consumed window slot unpinned");
        }
        assert!(pool.lookup(pid(0)).is_some(), "page stays resident");
    }

    #[test]
    fn full_pool_of_pins_stalls_gracefully() {
        let (mut pool, mut os, mut io, cost, mut aio) = setup(2, 8);
        aio.start(
            (0..6).map(pid),
            &mut pool,
            &mut os,
            &mut io,
            &cost,
            SimTime::ZERO,
        );
        // Only 2 frames: window holds 2, rest stay queued.
        assert_eq!(aio.in_window(), 2);
        assert_eq!(aio.pending(), 4);
        // Advancing after arrival frees both pins and refills both frames.
        aio.on_query_read(
            &mut pool,
            &mut os,
            &mut io,
            &cost,
            SimTime::from_micros(1_000_000),
        );
        assert_eq!(aio.in_window(), 2);
        assert_eq!(aio.pending(), 2);
    }

    #[test]
    fn failed_load_leaves_os_and_io_untouched() {
        // Regression: `pump` used to issue the OS read and burn an I/O worker
        // slot *before* discovering every frame was pinned, so the pushed-back
        // page skewed OS-cache miss/readahead stats and the worker timeline —
        // and was double-counted when retried.
        let (mut pool, mut os, mut io, cost, mut aio) = setup(2, 8);
        for p in 0..2 {
            let f = pool.load(pid(100 + p), false, SimTime::ZERO).unwrap();
            pool.pin(f);
        }
        aio.start(
            [pid(0), pid(1)],
            &mut pool,
            &mut os,
            &mut io,
            &cost,
            SimTime::ZERO,
        );
        assert_eq!(aio.in_window(), 0);
        assert_eq!(aio.pending(), 2, "pages stay queued for retry");
        assert_eq!(
            os.stats(),
            OsCacheStats::default(),
            "no OS-cache traffic on failed load"
        );
        assert_eq!(io.issued(), 0, "no I/O worker slot consumed");
        assert_eq!(
            io.earliest_free(),
            SimTime::ZERO,
            "worker timeline untouched"
        );
        assert_eq!(io.drained_at(), SimTime::ZERO);
        assert_eq!(pool.stats().prefetch_issued, 0);
        // After the pins release, the retry accounts each page exactly once.
        for p in 0..2 {
            let f = pool.lookup(pid(100 + p)).unwrap();
            pool.unpin(f);
        }
        aio.start(
            std::iter::empty(),
            &mut pool,
            &mut os,
            &mut io,
            &cost,
            SimTime::ZERO,
        );
        assert_eq!(aio.in_window(), 2);
        assert_eq!(aio.pending(), 0);
        assert_eq!(
            os.stats().hits + os.stats().misses,
            2,
            "one OS read per page"
        );
        assert_eq!(io.issued(), 2, "one worker slot per page");
        assert_eq!(pool.stats().prefetch_issued, 2);
    }

    #[test]
    fn out_of_order_arrivals_do_not_stall_window() {
        // Regression: with 2 I/O workers a cold 500us disk read at the front
        // of the window completes *after* the 50us OS-cache copies queued
        // behind it. A single dummy request once all three have arrived must
        // release every arrived entry; the old single-entry advance left the
        // later arrivals pinned, stalling the window behind the consumption
        // rate.
        let (mut pool, mut os, mut io, cost, mut aio) = setup(16, 3);
        os.insert(pid(1));
        os.insert(pid(2));
        aio.start(
            (0..5).map(pid),
            &mut pool,
            &mut os,
            &mut io,
            &cost,
            SimTime::ZERO,
        );
        // Arrivals: page 0 -> 500us (cold, worker 0); page 1 -> 50us (cache
        // copy, worker 1); page 2 -> 100us (cache copy, queued on worker 1).
        let arrivals: Vec<u64> = (0..3)
            .map(|p| {
                pool.frame(pool.lookup(pid(p)).unwrap())
                    .available_at
                    .as_micros()
            })
            .collect();
        assert_eq!(arrivals, vec![500, 50, 100], "later entries arrive first");
        aio.on_query_read(
            &mut pool,
            &mut os,
            &mut io,
            &cost,
            SimTime::from_micros(600),
        );
        for p in 0..3 {
            let f = pool.lookup(pid(p)).unwrap();
            assert_eq!(
                pool.frame(f).pin_count,
                0,
                "arrived page {p} must be released"
            );
        }
        assert_eq!(aio.in_window(), 2, "freed slots refilled from the queue");
        assert_eq!(aio.pending(), 0);
    }

    #[test]
    fn os_cached_pages_prefetch_faster() {
        let (mut pool, mut os, mut io, cost, mut aio) = setup(16, 2);
        os.insert(pid(0));
        aio.start([pid(0)], &mut pool, &mut os, &mut io, &cost, SimTime::ZERO);
        let f = pool.lookup(pid(0)).unwrap();
        assert_eq!(
            pool.frame(f).available_at.as_micros(),
            cost.os_cache_copy.as_micros(),
            "OS-cache hit costs a memcpy, not a disk read"
        );
    }

    #[test]
    fn finish_releases_everything() {
        let (mut pool, mut os, mut io, cost, mut aio) = setup(16, 4);
        aio.start(
            (0..10).map(pid),
            &mut pool,
            &mut os,
            &mut io,
            &cost,
            SimTime::ZERO,
        );
        aio.finish(&mut pool);
        assert!(aio.is_idle());
        for p in 0..4 {
            let f = pool.lookup(pid(p)).unwrap();
            assert_eq!(pool.frame(f).pin_count, 0);
        }
    }

    #[test]
    fn duration_sanity() {
        // The default cost model is disk-bound: random reads dwarf copies.
        assert!(
            CostModel::default().disk_read > CostModel::default().os_cache_copy.saturating_mul(10)
        );
        assert_eq!(SimDuration::from_micros(500), SimDuration::from_micros(500));
    }
}
