//! The buffer pool: frames, page table, pinning, eviction.

use std::collections::HashMap;

use pythia_obs::{tid, Recorder, Track};
use pythia_sim::{PageId, SimTime};

use crate::frame::{Frame, FrameId};
use crate::policy::{PolicyKind, ReplacementPolicy};
use crate::stats::BufferStats;

/// A fixed-capacity pool of buffer frames with a pluggable replacement
/// policy.
///
/// Mirrors Postgres shared buffers: a page table maps [`PageId`] → frame,
/// pinned frames are immune to eviction, and every reference bumps the
/// frame's usage count (consumed by the Clock policy).
#[derive(Debug)]
pub struct BufferPool {
    frames: Vec<Frame>,
    page_table: HashMap<PageId, FrameId>,
    free: Vec<FrameId>,
    policy: Box<dyn ReplacementPolicy>,
    stats: BufferStats,
    /// Trace/metrics sink. Lives here because every layer that stamps
    /// virtual-time events (the replay runtime, the AIO prefetcher, the
    /// serving loop) already holds a `&mut` path to the pool; disabled by
    /// default so the hot read path pays a single branch.
    recorder: Recorder,
}

impl BufferPool {
    /// A pool with `capacity` frames using `policy`.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize, policy: PolicyKind) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        BufferPool {
            frames: vec![Frame::empty(); capacity],
            page_table: HashMap::with_capacity(capacity),
            free: (0..capacity as u32).rev().map(FrameId).collect(),
            policy: policy.build(capacity),
            stats: BufferStats::default(),
            recorder: Recorder::disabled(),
        }
    }

    /// Install a trace/metrics recorder (replacing the previous one).
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// The recorder (disabled by default).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Mutable access for layers that stamp events through the pool.
    pub fn recorder_mut(&mut self) -> &mut Recorder {
        &mut self.recorder
    }

    /// Remove and return the recorder, leaving a disabled one behind.
    pub fn take_recorder(&mut self) -> Recorder {
        std::mem::take(&mut self.recorder)
    }

    /// Number of frames.
    pub fn capacity(&self) -> usize {
        self.frames.len()
    }

    /// Number of frames currently holding a page.
    pub fn resident_count(&self) -> usize {
        self.page_table.len()
    }

    /// Which replacement policy this pool uses.
    pub fn policy_kind(&self) -> PolicyKind {
        self.policy.kind()
    }

    /// Frame holding `pid`, if resident.
    pub fn lookup(&self, pid: PageId) -> Option<FrameId> {
        self.page_table.get(&pid).copied()
    }

    /// Immutable view of a frame.
    pub fn frame(&self, fid: FrameId) -> &Frame {
        &self.frames[fid.0 as usize]
    }

    /// Record a reference to a resident page: bumps usage, notifies the
    /// policy, and marks prefetched frames as useful on first reference.
    pub fn touch(&mut self, fid: FrameId) {
        let f = &mut self.frames[fid.0 as usize];
        f.usage_count = (f.usage_count + 1).min(Frame::MAX_USAGE);
        if f.prefetched && !f.referenced {
            self.stats.prefetch_useful += 1;
            self.recorder.add("prefetch.useful", 1);
        }
        f.referenced = true;
        self.policy.on_access(fid);
    }

    /// Pin a frame (prevents eviction). Pins nest.
    pub fn pin(&mut self, fid: FrameId) {
        self.frames[fid.0 as usize].pin_count += 1;
    }

    /// Release one pin.
    ///
    /// # Panics
    /// Panics if the frame is not pinned — an unbalanced unpin is a bug.
    pub fn unpin(&mut self, fid: FrameId) {
        let f = &mut self.frames[fid.0 as usize];
        assert!(f.pin_count > 0, "unpin of unpinned frame {fid:?}");
        f.pin_count -= 1;
    }

    /// Bring `pid` into the pool, evicting if necessary.
    ///
    /// `prefetched` marks the load as prefetcher-initiated (for accounting);
    /// `available_at` is when the page's I/O completes (readers before that
    /// instant must wait). Returns `None` when every frame is pinned, in
    /// which case the caller serves the read pass-through.
    pub fn load(
        &mut self,
        pid: PageId,
        prefetched: bool,
        available_at: SimTime,
    ) -> Option<FrameId> {
        self.load_with(pid, prefetched, available_at, false)
    }

    /// [`Self::load`] with a `transient` flag: transient loads model bulk
    /// sequential reads through a buffer ring (Postgres `BAS_BULKREAD`) —
    /// the page is resident but first in line for eviction, so a large
    /// sequential scan does not wash the working set (or prefetched pages)
    /// out of the pool.
    pub fn load_with(
        &mut self,
        pid: PageId,
        prefetched: bool,
        available_at: SimTime,
        transient: bool,
    ) -> Option<FrameId> {
        debug_assert!(
            self.lookup(pid).is_none(),
            "load of already-resident page {pid}"
        );
        let fid = match self.free.pop() {
            Some(fid) => fid,
            None => {
                let victim = self.policy.pick_victim(&self.frames)?;
                self.evict(victim, available_at);
                victim
            }
        };
        let f = &mut self.frames[fid.0 as usize];
        f.page = Some(pid);
        f.pin_count = 0;
        f.usage_count = if transient { 0 } else { 1 };
        f.available_at = available_at;
        f.prefetched = prefetched;
        f.referenced = false;
        self.page_table.insert(pid, fid);
        if transient {
            self.policy.on_load_transient(fid);
        } else {
            self.policy.on_load(fid);
        }
        Some(fid)
    }

    fn evict(&mut self, fid: FrameId, at: SimTime) {
        let f = &mut self.frames[fid.0 as usize];
        debug_assert_eq!(f.pin_count, 0, "evicting pinned frame");
        if let Some(pid) = f.page.take() {
            self.page_table.remove(&pid);
            self.stats.evictions += 1;
            self.recorder.add("buffer.evictions", 1);
            if f.prefetched && !f.referenced {
                self.stats.prefetch_wasted += 1;
                if self.recorder.is_enabled() {
                    self.recorder.add("prefetch.evicted_unused", 1);
                    self.recorder
                        .declare_track(Track::virt(tid::BUFFER), || "buffer-manager".to_owned());
                    self.recorder.instant(
                        Track::virt(tid::BUFFER),
                        "prefetch",
                        "prefetch.evicted_unused",
                        at.as_micros(),
                        &[("page", pid.trace_key())],
                    );
                }
            }
        }
        f.usage_count = 0;
        f.prefetched = false;
        f.referenced = false;
    }

    /// Update a resident frame's I/O completion instant. The AIO prefetcher
    /// reserves a frame first — so a pin-saturated pool causes no OS-cache or
    /// I/O-worker side effects — and only then schedules the I/O that
    /// determines the real arrival time.
    pub fn set_available_at(&mut self, fid: FrameId, at: SimTime) {
        self.frames[fid.0 as usize].available_at = at;
    }

    /// Account still-resident never-referenced prefetched pages as wasted.
    /// Call once at end of a run before reading [`Self::stats`].
    pub fn finish_accounting(&mut self) {
        for f in &self.frames {
            if f.page.is_some() && f.prefetched && !f.referenced {
                self.stats.prefetch_wasted += 1;
            }
        }
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &BufferStats {
        &self.stats
    }

    /// Mutable counters (the replay engine updates hit/miss classes here).
    pub fn stats_mut(&mut self) -> &mut BufferStats {
        &mut self.stats
    }

    /// Drop every page and all statistics — a cold restart.
    pub fn reset(&mut self) {
        for f in &mut self.frames {
            *f = Frame::empty();
        }
        self.page_table.clear();
        self.free = (0..self.frames.len() as u32).rev().map(FrameId).collect();
        self.policy.reset();
        self.stats = BufferStats::default();
    }

    /// Iterate over resident pages (diagnostics, tests).
    pub fn resident_pages(&self) -> impl Iterator<Item = PageId> + '_ {
        self.page_table.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pythia_sim::FileId;

    fn pid(p: u32) -> PageId {
        PageId::new(FileId(0), p)
    }

    fn pool(cap: usize) -> BufferPool {
        BufferPool::new(cap, PolicyKind::Lru)
    }

    #[test]
    fn load_and_lookup() {
        let mut b = pool(4);
        let f = b.load(pid(7), false, SimTime::ZERO).unwrap();
        assert_eq!(b.lookup(pid(7)), Some(f));
        assert_eq!(b.resident_count(), 1);
    }

    #[test]
    fn eviction_when_full() {
        let mut b = pool(2);
        b.load(pid(1), false, SimTime::ZERO).unwrap();
        let f2 = b.load(pid(2), false, SimTime::ZERO).unwrap();
        b.touch(f2);
        b.load(pid(3), false, SimTime::ZERO).unwrap();
        // LRU: page 1 was least recently used.
        assert!(b.lookup(pid(1)).is_none());
        assert!(b.lookup(pid(2)).is_some());
        assert!(b.lookup(pid(3)).is_some());
        assert_eq!(b.stats().evictions, 1);
    }

    #[test]
    fn pinned_pages_survive() {
        let mut b = pool(2);
        let f1 = b.load(pid(1), false, SimTime::ZERO).unwrap();
        b.pin(f1);
        b.load(pid(2), false, SimTime::ZERO).unwrap();
        b.load(pid(3), false, SimTime::ZERO).unwrap(); // must evict page 2
        assert!(b.lookup(pid(1)).is_some());
        assert!(b.lookup(pid(2)).is_none());
    }

    #[test]
    fn all_pinned_returns_none() {
        let mut b = pool(2);
        for p in 1..=2 {
            let f = b.load(pid(p), false, SimTime::ZERO).unwrap();
            b.pin(f);
        }
        assert!(b.load(pid(3), false, SimTime::ZERO).is_none());
    }

    #[test]
    #[should_panic]
    fn unbalanced_unpin_panics() {
        let mut b = pool(1);
        let f = b.load(pid(1), false, SimTime::ZERO).unwrap();
        b.unpin(f);
    }

    #[test]
    fn prefetch_accounting_useful() {
        let mut b = pool(2);
        let f = b.load(pid(1), true, SimTime::ZERO).unwrap();
        b.touch(f);
        b.touch(f); // only first reference counts
        assert_eq!(b.stats().prefetch_useful, 1);
    }

    #[test]
    fn prefetch_accounting_wasted_on_evict() {
        let mut b = pool(1);
        b.load(pid(1), true, SimTime::ZERO).unwrap();
        b.load(pid(2), false, SimTime::ZERO).unwrap(); // evicts unreferenced prefetch
        assert_eq!(b.stats().prefetch_wasted, 1);
    }

    #[test]
    fn prefetch_accounting_wasted_at_finish() {
        let mut b = pool(4);
        b.load(pid(1), true, SimTime::ZERO).unwrap();
        let f2 = b.load(pid(2), true, SimTime::ZERO).unwrap();
        b.touch(f2);
        b.finish_accounting();
        assert_eq!(b.stats().prefetch_wasted, 1);
        assert_eq!(b.stats().prefetch_useful, 1);
    }

    #[test]
    fn reset_restores_cold_state() {
        let mut b = pool(2);
        b.load(pid(1), false, SimTime::ZERO).unwrap();
        b.reset();
        assert_eq!(b.resident_count(), 0);
        assert_eq!(b.stats(), &BufferStats::default());
        // All frames usable again.
        assert!(b.load(pid(5), false, SimTime::ZERO).is_some());
        assert!(b.load(pid(6), false, SimTime::ZERO).is_some());
    }

    #[test]
    fn clock_policy_end_to_end() {
        let mut b = BufferPool::new(3, PolicyKind::Clock);
        for p in 0..3 {
            b.load(pid(p), false, SimTime::ZERO).unwrap();
        }
        // Heavily reference page 0 and 1 so clock evicts page 2.
        for _ in 0..5 {
            let f0 = b.lookup(pid(0)).unwrap();
            b.touch(f0);
            let f1 = b.lookup(pid(1)).unwrap();
            b.touch(f1);
        }
        b.load(pid(9), false, SimTime::ZERO).unwrap();
        assert!(
            b.lookup(pid(2)).is_none(),
            "unreferenced page evicted first"
        );
    }
}
