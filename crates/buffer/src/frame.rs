//! Buffer frames: the slots of the buffer pool.

use pythia_sim::{PageId, SimTime};

/// Index of a frame within the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FrameId(pub u32);

/// One buffer slot.
///
/// Frames do not hold page bytes: in the discrete-event simulation the actual
/// bytes always live on the [`pythia_sim::SimDisk`]; what the buffer pool
/// tracks is *residency* and *pinning*, which is all the timing model needs.
/// (The mini-RDBMS reads bytes from the disk directly during the untimed
/// trace-collection phase; see `pythia-db`.)
#[derive(Debug, Clone, Copy)]
pub struct Frame {
    /// The page resident in this frame, if any.
    pub page: Option<PageId>,
    /// Number of active pins; pinned frames can never be evicted.
    pub pin_count: u32,
    /// Clock-sweep usage counter (capped at [`Frame::MAX_USAGE`], like
    /// Postgres' `BM_MAX_USAGE_COUNT`).
    pub usage_count: u32,
    /// If the page was loaded by the prefetcher, the virtual time at which
    /// its asynchronous I/O completes; reads before this must wait.
    pub available_at: SimTime,
    /// Whether this frame was populated by the prefetcher (for accounting
    /// of useful vs wasted prefetches).
    pub prefetched: bool,
    /// Whether a prefetched frame has been referenced by a query since load.
    pub referenced: bool,
}

impl Frame {
    /// Cap on the clock usage counter (Postgres uses 5).
    pub const MAX_USAGE: u32 = 5;

    /// An empty frame.
    pub fn empty() -> Self {
        Frame {
            page: None,
            pin_count: 0,
            usage_count: 0,
            available_at: SimTime::ZERO,
            prefetched: false,
            referenced: false,
        }
    }

    /// Whether the frame holds no page.
    pub fn is_free(&self) -> bool {
        self.page.is_none()
    }

    /// Whether the frame may be chosen as an eviction victim.
    pub fn is_evictable(&self) -> bool {
        self.page.is_some() && self.pin_count == 0
    }
}

impl Default for Frame {
    fn default() -> Self {
        Frame::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pythia_sim::FileId;

    #[test]
    fn empty_frame_is_free_not_evictable() {
        let f = Frame::empty();
        assert!(f.is_free());
        assert!(!f.is_evictable());
    }

    #[test]
    fn pinned_frame_not_evictable() {
        let mut f = Frame::empty();
        f.page = Some(PageId::new(FileId(0), 1));
        f.pin_count = 1;
        assert!(!f.is_evictable());
        f.pin_count = 0;
        assert!(f.is_evictable());
    }
}
