//! Buffer replacement policies.
//!
//! Postgres ships only the Clock sweep; the paper adds LRU and MRU to show
//! Pythia helps regardless of the replacement policy (Figure 12e). All three
//! are implemented behind one trait so the experiment harness can swap them.

use crate::frame::{Frame, FrameId};

/// Which policy to instantiate (handy for experiment configs and display).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    Clock,
    Lru,
    Mru,
    /// Clock that protects prefetched-but-not-yet-referenced frames — the
    /// paper's §7 extension ("improve the coordination between the
    /// prefetcher of Pythia and the buffer manager"). Not part of
    /// [`PolicyKind::ALL`], which matches the paper's Figure 12e set.
    PrefetchAwareClock,
}

impl PolicyKind {
    /// Instantiate the policy for a pool of `frames` frames.
    pub fn build(self, frames: usize) -> Box<dyn ReplacementPolicy> {
        match self {
            PolicyKind::Clock => Box::new(ClockPolicy::new(frames)),
            PolicyKind::Lru => Box::new(LruPolicy::new(frames)),
            PolicyKind::Mru => Box::new(MruPolicy::new(frames)),
            PolicyKind::PrefetchAwareClock => Box::new(PrefetchAwareClock::new(frames)),
        }
    }

    /// The paper's policies, in the order Figure 12e reports them.
    pub const ALL: [PolicyKind; 3] = [PolicyKind::Clock, PolicyKind::Lru, PolicyKind::Mru];
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PolicyKind::Clock => "Clock",
            PolicyKind::Lru => "LRU",
            PolicyKind::Mru => "MRU",
            PolicyKind::PrefetchAwareClock => "PrefetchAwareClock",
        };
        f.write_str(s)
    }
}

/// A buffer replacement policy.
///
/// The pool owns the frames; the policy owns only its bookkeeping and is
/// consulted for victims. Victims must be evictable (`pin_count == 0`): the
/// pool passes the frame table so policies can check.
pub trait ReplacementPolicy: std::fmt::Debug + Send {
    /// Human-readable name for reports.
    fn kind(&self) -> PolicyKind;

    /// Called on every reference to a resident page.
    fn on_access(&mut self, frame: FrameId);

    /// Called when a page is newly loaded into `frame`.
    fn on_load(&mut self, frame: FrameId);

    /// Called when a page is loaded *transiently* — a bulk sequential read
    /// that should be evicted before the working set, like Postgres' buffer
    /// ring (`BAS_BULKREAD`). Default: treated like a normal load.
    fn on_load_transient(&mut self, frame: FrameId) {
        self.on_load(frame);
    }

    /// Choose an eviction victim among evictable frames, or `None` if every
    /// frame is pinned or free-frame bookkeeping says nothing is resident.
    fn pick_victim(&mut self, frames: &[Frame]) -> Option<FrameId>;

    /// Forget all state (pool reset between cold runs).
    fn reset(&mut self);
}

/// Postgres' clock sweep: a circular scan decrementing per-frame usage
/// counters; the first evictable frame found with `usage_count == 0` is the
/// victim. Usage counters live in the [`Frame`]s themselves (the pool bumps
/// them on access); the policy only keeps the hand.
#[derive(Debug)]
pub struct ClockPolicy {
    hand: usize,
    n: usize,
    /// Shadow of usage counts, decremented during sweeps. The authoritative
    /// increment happens in `on_access`.
    usage: Vec<u32>,
}

impl ClockPolicy {
    pub fn new(frames: usize) -> Self {
        ClockPolicy {
            hand: 0,
            n: frames,
            usage: vec![0; frames],
        }
    }
}

impl ReplacementPolicy for ClockPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Clock
    }

    fn on_access(&mut self, frame: FrameId) {
        let u = &mut self.usage[frame.0 as usize];
        *u = (*u + 1).min(Frame::MAX_USAGE);
    }

    fn on_load(&mut self, frame: FrameId) {
        self.usage[frame.0 as usize] = 1;
    }

    fn on_load_transient(&mut self, frame: FrameId) {
        // Zero usage: the very next sweep may evict it.
        self.usage[frame.0 as usize] = 0;
    }

    fn pick_victim(&mut self, frames: &[Frame]) -> Option<FrameId> {
        // At most MAX_USAGE+1 full sweeps are needed before some counter
        // reaches zero, unless everything is pinned.
        let max_steps = self.n * (Frame::MAX_USAGE as usize + 2);
        for _ in 0..max_steps {
            let idx = self.hand;
            self.hand = (self.hand + 1) % self.n;
            let f = &frames[idx];
            if !f.is_evictable() {
                continue;
            }
            if self.usage[idx] == 0 {
                return Some(FrameId(idx as u32));
            }
            self.usage[idx] -= 1;
        }
        None
    }

    fn reset(&mut self) {
        self.hand = 0;
        self.usage.fill(0);
    }
}

/// Exact least-recently-used via logical timestamps.
#[derive(Debug)]
pub struct LruPolicy {
    stamp: Vec<u64>,
    tick: u64,
}

impl LruPolicy {
    pub fn new(frames: usize) -> Self {
        LruPolicy {
            stamp: vec![0; frames],
            tick: 0,
        }
    }

    fn touch(&mut self, frame: FrameId) {
        self.tick += 1;
        self.stamp[frame.0 as usize] = self.tick;
    }
}

impl ReplacementPolicy for LruPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Lru
    }

    fn on_access(&mut self, frame: FrameId) {
        self.touch(frame);
    }

    fn on_load(&mut self, frame: FrameId) {
        self.touch(frame);
    }

    fn on_load_transient(&mut self, frame: FrameId) {
        // Oldest possible stamp: first in line for eviction.
        self.stamp[frame.0 as usize] = 0;
    }

    fn pick_victim(&mut self, frames: &[Frame]) -> Option<FrameId> {
        frames
            .iter()
            .enumerate()
            .filter(|(_, f)| f.is_evictable())
            .min_by_key(|(i, _)| self.stamp[*i])
            .map(|(i, _)| FrameId(i as u32))
    }

    fn reset(&mut self) {
        self.stamp.fill(0);
        self.tick = 0;
    }
}

/// Most-recently-used: evicts the newest unpinned page. The paper notes MRU
/// performs worst with Pythia because it tends to evict just-prefetched pages
/// the moment their window pin is released.
#[derive(Debug)]
pub struct MruPolicy {
    stamp: Vec<u64>,
    tick: u64,
}

impl MruPolicy {
    pub fn new(frames: usize) -> Self {
        MruPolicy {
            stamp: vec![0; frames],
            tick: 0,
        }
    }

    fn touch(&mut self, frame: FrameId) {
        self.tick += 1;
        self.stamp[frame.0 as usize] = self.tick;
    }
}

impl ReplacementPolicy for MruPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Mru
    }

    fn on_access(&mut self, frame: FrameId) {
        self.touch(frame);
    }

    fn on_load(&mut self, frame: FrameId) {
        self.touch(frame);
    }

    fn pick_victim(&mut self, frames: &[Frame]) -> Option<FrameId> {
        frames
            .iter()
            .enumerate()
            .filter(|(_, f)| f.is_evictable())
            .max_by_key(|(i, _)| self.stamp[*i])
            .map(|(i, _)| FrameId(i as u32))
    }

    fn reset(&mut self) {
        self.stamp.fill(0);
        self.tick = 0;
    }
}

/// Clock sweep that refuses to evict prefetched pages that have not yet been
/// referenced, falling back to plain Clock when every evictable frame is a
/// protected prefetch (so it can never deadlock). This implements the
/// prefetcher/replacement coordination the paper leaves as future work (§7):
/// with plain Clock, a concurrent query's demand reads can wash out another
/// query's just-unpinned prefetched pages before they are used.
#[derive(Debug)]
pub struct PrefetchAwareClock {
    inner: ClockPolicy,
}

impl PrefetchAwareClock {
    pub fn new(frames: usize) -> Self {
        PrefetchAwareClock {
            inner: ClockPolicy::new(frames),
        }
    }
}

impl ReplacementPolicy for PrefetchAwareClock {
    fn kind(&self) -> PolicyKind {
        PolicyKind::PrefetchAwareClock
    }

    fn on_access(&mut self, frame: FrameId) {
        self.inner.on_access(frame);
    }

    fn on_load(&mut self, frame: FrameId) {
        self.inner.on_load(frame);
    }

    fn on_load_transient(&mut self, frame: FrameId) {
        self.inner.on_load_transient(frame);
    }

    fn pick_victim(&mut self, frames: &[Frame]) -> Option<FrameId> {
        // First pass: sweep like Clock but treat protected prefetches as
        // unevictable.
        let max_steps = self.inner.n * (Frame::MAX_USAGE as usize + 2);
        for _ in 0..max_steps {
            let idx = self.inner.hand;
            self.inner.hand = (self.inner.hand + 1) % self.inner.n;
            let f = &frames[idx];
            if !f.is_evictable() || (f.prefetched && !f.referenced) {
                continue;
            }
            if self.inner.usage[idx] == 0 {
                return Some(FrameId(idx as u32));
            }
            self.inner.usage[idx] -= 1;
        }
        // Everything unprotected is pinned: fall back to plain Clock so the
        // pool can still make progress.
        self.inner.pick_victim(frames)
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pythia_sim::{FileId, PageId};

    fn resident(frames: &mut [Frame], idx: usize, page_no: u32) {
        frames[idx].page = Some(PageId::new(FileId(0), page_no));
        frames[idx].pin_count = 0;
    }

    #[test]
    fn clock_sweeps_to_unreferenced() {
        let mut frames = vec![Frame::empty(); 3];
        let mut p = ClockPolicy::new(3);
        for i in 0..3 {
            resident(&mut frames, i, i as u32);
            p.on_load(FrameId(i as u32));
        }
        // Access frame 0 repeatedly — it should survive the first sweep.
        for _ in 0..5 {
            p.on_access(FrameId(0));
        }
        let victim = p.pick_victim(&frames).unwrap();
        assert_ne!(victim, FrameId(0));
    }

    #[test]
    fn clock_skips_pinned() {
        let mut frames = vec![Frame::empty(); 2];
        let mut p = ClockPolicy::new(2);
        resident(&mut frames, 0, 0);
        resident(&mut frames, 1, 1);
        p.on_load(FrameId(0));
        p.on_load(FrameId(1));
        frames[0].pin_count = 1;
        assert_eq!(p.pick_victim(&frames), Some(FrameId(1)));
    }

    #[test]
    fn clock_all_pinned_returns_none() {
        let mut frames = vec![Frame::empty(); 2];
        let mut p = ClockPolicy::new(2);
        for i in 0..2 {
            resident(&mut frames, i, i as u32);
            frames[i].pin_count = 1;
            p.on_load(FrameId(i as u32));
        }
        assert_eq!(p.pick_victim(&frames), None);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut frames = vec![Frame::empty(); 3];
        let mut p = LruPolicy::new(3);
        for i in 0..3 {
            resident(&mut frames, i, i as u32);
            p.on_load(FrameId(i as u32));
        }
        p.on_access(FrameId(0)); // order now: 1 (oldest), 2, 0
        assert_eq!(p.pick_victim(&frames), Some(FrameId(1)));
    }

    #[test]
    fn mru_evicts_most_recent() {
        let mut frames = vec![Frame::empty(); 3];
        let mut p = MruPolicy::new(3);
        for i in 0..3 {
            resident(&mut frames, i, i as u32);
            p.on_load(FrameId(i as u32));
        }
        p.on_access(FrameId(0));
        assert_eq!(p.pick_victim(&frames), Some(FrameId(0)));
    }

    #[test]
    fn lru_mru_skip_pinned_and_free() {
        let mut frames = vec![Frame::empty(); 3];
        let mut lru = LruPolicy::new(3);
        let mut mru = MruPolicy::new(3);
        resident(&mut frames, 1, 1);
        frames[1].pin_count = 1;
        // Frame 0 and 2 are free; frame 1 pinned -> no victim.
        assert_eq!(lru.pick_victim(&frames), None);
        assert_eq!(mru.pick_victim(&frames), None);
    }

    #[test]
    fn build_constructs_right_kind() {
        for k in PolicyKind::ALL {
            assert_eq!(k.build(4).kind(), k);
        }
        assert_eq!(
            PolicyKind::PrefetchAwareClock.build(4).kind(),
            PolicyKind::PrefetchAwareClock
        );
    }

    #[test]
    fn prefetch_aware_clock_protects_unread_prefetches() {
        let mut frames = vec![Frame::empty(); 3];
        let mut p = PrefetchAwareClock::new(3);
        for i in 0..3 {
            resident(&mut frames, i, i as u32);
            p.on_load(FrameId(i as u32));
        }
        // Frame 1 is a prefetched page nobody has read yet.
        frames[1].prefetched = true;
        frames[1].referenced = false;
        // Frame 0 and 2 get referenced heavily... no: leave usage low so
        // Clock would normally pick any of them; the protected one must be
        // skipped regardless.
        let victim = p.pick_victim(&frames).unwrap();
        assert_ne!(victim, FrameId(1), "unread prefetch must survive");
    }

    #[test]
    fn prefetch_aware_clock_falls_back_when_all_protected() {
        let mut frames = vec![Frame::empty(); 2];
        let mut p = PrefetchAwareClock::new(2);
        for i in 0..2 {
            resident(&mut frames, i, i as u32);
            p.on_load(FrameId(i as u32));
            frames[i].prefetched = true;
            frames[i].referenced = false;
        }
        assert!(p.pick_victim(&frames).is_some(), "must not deadlock");
    }

    #[test]
    fn prefetch_aware_clock_evicts_referenced_prefetches_normally() {
        let mut frames = vec![Frame::empty(); 2];
        let mut p = PrefetchAwareClock::new(2);
        for i in 0..2 {
            resident(&mut frames, i, i as u32);
            p.on_load(FrameId(i as u32));
        }
        frames[0].prefetched = true;
        frames[0].referenced = true; // consumed: fair game
        assert!(p.pick_victim(&frames).is_some());
    }

    #[test]
    fn reset_clears_recency() {
        let mut frames = vec![Frame::empty(); 2];
        let mut p = LruPolicy::new(2);
        resident(&mut frames, 0, 0);
        resident(&mut frames, 1, 1);
        p.on_load(FrameId(0));
        p.on_load(FrameId(1));
        p.reset();
        // After reset both stamps are equal; min_by_key picks frame 0.
        assert_eq!(p.pick_victim(&frames), Some(FrameId(0)));
    }
}
