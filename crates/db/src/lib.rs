//! # pythia-db
//!
//! The relational substrate the paper runs Pythia against. Postgres (plus the
//! AIO development branch) is replaced by a from-scratch mini-RDBMS with the
//! same moving parts that matter for page-access prediction:
//!
//! * slotted heap pages and per-relation files ([`page`], [`heap`]),
//! * B+Tree secondary indexes whose root-to-leaf probe paths generate the
//!   repetitive non-sequential access patterns the paper trains on
//!   ([`btree`]),
//! * a catalog of tables and indexes ([`catalog`]),
//! * physical query plans and a Volcano executor that records a page-access
//!   trace while it runs — the paper's "lightweight instrumentation module
//!   that intercepts and logs the page requests from the buffer manager"
//!   ([`plan`], [`exec`], [`trace`]),
//! * a timed replay runtime combining the buffer pool, OS page cache, async
//!   I/O workers and optional prefetch plan into a virtual-clock execution —
//!   the analogue of the paper's Postgres integration (§4) ([`runtime`]).
//!
//! The split into an *untimed* executor (trace collection) and a *timed*
//! replay is sound because the database is static and read-only (as in the
//! paper): the page-access sequence of a query depends only on its plan,
//! never on buffer state.

pub mod btree;
pub mod catalog;
pub mod exec;
pub mod expr;
pub mod heap;
pub mod page;
pub mod plan;
pub mod runtime;
pub mod trace;
pub mod tuple;
pub mod types;

pub use catalog::{Database, ObjectId, ObjectKind, TableId};
pub use exec::{execute, ExecContext};
pub use expr::{CmpOp, Pred};
pub use plan::{AggFunc, PlanNode};
pub use runtime::{
    QueryRun, QueryTiming, ReplaySession, RunConfig, RunResult, Runtime, SessionCompletion,
};
pub use trace::{AccessKind, Trace, TraceEvent};
pub use tuple::Tuple;
pub use types::{Datum, Schema};
