//! Physical query plans.
//!
//! A plan is the tree the optimizer would hand to the executor. The workload
//! generator builds these directly (there is no SQL parser — the paper's
//! model never sees SQL either: "We focus on serializing the query execution
//! plan since it contains information that is sufficiently predictive of
//! eventual access patterns", §3.3).

use crate::catalog::{Database, ObjectId, TableId};
use crate::expr::Pred;

/// Aggregate functions (enough for DSB's SPJ+agg templates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    CountStar,
    Sum(usize),
    Min(usize),
    Max(usize),
}

/// A physical plan node.
///
/// Join outputs concatenate the streaming side's columns first:
/// `IndexNLJoin` emits `outer ++ inner`, `HashJoin` emits `probe ++ build`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PlanNode {
    /// Full sequential scan of a table with an optional filter.
    SeqScan { table: TableId, pred: Option<Pred> },
    /// Range scan `lo <= key <= hi` through an index, with heap fetches and
    /// an optional residual filter on the heap tuple.
    IndexScan {
        table: TableId,
        index: ObjectId,
        lo: i64,
        hi: i64,
        residual: Option<Pred>,
    },
    /// Nested-loop join probing `inner_index` with the outer tuple's
    /// `outer_key` column — Postgres' "index scan on the smaller dimension
    /// tables for each qualifying fact row" pattern.
    IndexNLJoin {
        outer: Box<PlanNode>,
        outer_key: usize,
        inner: TableId,
        inner_index: ObjectId,
        /// Filter applied to the *inner* tuple (column indices relative to
        /// the inner table).
        inner_pred: Option<Pred>,
    },
    /// Hash join: `build` side is materialized into a hash table, `probe`
    /// side streams. Keys are integer columns.
    HashJoin {
        build: Box<PlanNode>,
        probe: Box<PlanNode>,
        build_key: usize,
        probe_key: usize,
    },
    /// Row filter.
    Filter { input: Box<PlanNode>, pred: Pred },
    /// Hash aggregation (optionally grouped by one column).
    Aggregate {
        input: Box<PlanNode>,
        group_col: Option<usize>,
        agg: AggFunc,
    },
    /// Full sort on one column (blocking).
    Sort { input: Box<PlanNode>, col: usize },
    /// First `n` rows.
    Limit { input: Box<PlanNode>, n: usize },
}

impl PlanNode {
    /// Children of this node, outer/probe side first where relevant.
    pub fn children(&self) -> Vec<&PlanNode> {
        match self {
            PlanNode::SeqScan { .. } | PlanNode::IndexScan { .. } => vec![],
            PlanNode::IndexNLJoin { outer, .. } => vec![outer],
            PlanNode::HashJoin { build, probe, .. } => vec![probe, build],
            PlanNode::Filter { input, .. }
            | PlanNode::Aggregate { input, .. }
            | PlanNode::Sort { input, .. }
            | PlanNode::Limit { input, .. } => vec![input],
        }
    }

    /// Preorder traversal of the plan tree.
    pub fn preorder<'a>(&'a self, visit: &mut impl FnMut(&'a PlanNode)) {
        visit(self);
        for c in self.children() {
            c.preorder(visit);
        }
    }

    /// All tables and indexes this plan touches, in preorder.
    pub fn objects(&self, db: &Database) -> Vec<ObjectId> {
        let mut out = Vec::new();
        self.preorder(&mut |n| match n {
            PlanNode::SeqScan { table, .. } => out.push(db.table_info(*table).object),
            PlanNode::IndexScan { table, index, .. } => {
                out.push(db.table_info(*table).object);
                out.push(*index);
            }
            PlanNode::IndexNLJoin {
                inner, inner_index, ..
            } => {
                out.push(db.table_info(*inner).object);
                out.push(*inner_index);
            }
            _ => {}
        });
        out.sort_unstable();
        out.dedup();
        out
    }

    /// EXPLAIN-style rendering.
    pub fn explain(&self, db: &Database) -> String {
        let mut s = String::new();
        self.explain_into(db, 0, &mut s);
        s
    }

    fn explain_into(&self, db: &Database, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        let line = match self {
            PlanNode::SeqScan { table, pred } => format!(
                "Seq Scan on {}{}",
                db.table_info(*table).name,
                pred.as_ref()
                    .map(|p| format!(" filter={p:?}"))
                    .unwrap_or_default()
            ),
            PlanNode::IndexScan {
                table,
                index,
                lo,
                hi,
                ..
            } => format!(
                "Index Scan using {} on {} key in [{lo},{hi}]",
                db.index_info(*index).name,
                db.table_info(*table).name
            ),
            PlanNode::IndexNLJoin {
                inner, inner_index, ..
            } => format!(
                "Nested Loop (index probe {} on {})",
                db.index_info(*inner_index).name,
                db.table_info(*inner).name
            ),
            PlanNode::HashJoin { .. } => "Hash Join".to_owned(),
            PlanNode::Filter { pred, .. } => format!("Filter {pred:?}"),
            PlanNode::Aggregate { agg, group_col, .. } => {
                format!("Aggregate {agg:?} group={group_col:?}")
            }
            PlanNode::Sort { col, .. } => format!("Sort by col {col}"),
            PlanNode::Limit { n, .. } => format!("Limit {n}"),
        };
        out.push_str(&pad);
        out.push_str(&line);
        out.push('\n');
        for c in self.children() {
            c.explain_into(db, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Schema;

    fn db_with_two_tables() -> (Database, TableId, TableId, ObjectId) {
        let mut db = Database::new();
        let fact = db.create_table("fact", Schema::ints(&["k", "d"]));
        let dim = db.create_table("dim", Schema::ints(&["id", "v"]));
        for i in 0..200 {
            db.insert(fact, Database::row(&[i, i % 20]));
            db.insert(dim, Database::row(&[i, i * 2]));
        }
        let idx = db.create_index("dim_id", dim, 0);
        (db, fact, dim, idx)
    }

    #[test]
    fn preorder_and_children() {
        let (db, fact, dim, idx) = db_with_two_tables();
        let plan = PlanNode::Aggregate {
            input: Box::new(PlanNode::IndexNLJoin {
                outer: Box::new(PlanNode::SeqScan {
                    table: fact,
                    pred: None,
                }),
                outer_key: 1,
                inner: dim,
                inner_index: idx,
                inner_pred: None,
            }),
            group_col: None,
            agg: AggFunc::CountStar,
        };
        let mut kinds = Vec::new();
        plan.preorder(&mut |n| {
            kinds.push(std::mem::discriminant(n));
        });
        assert_eq!(kinds.len(), 3);
        let objs = plan.objects(&db);
        // fact table, dim table, dim index.
        assert_eq!(objs.len(), 3);
        let _ = db.table_info(fact);
    }

    #[test]
    fn explain_contains_names() {
        let (db, fact, dim, idx) = db_with_two_tables();
        let plan = PlanNode::IndexNLJoin {
            outer: Box::new(PlanNode::SeqScan {
                table: fact,
                pred: None,
            }),
            outer_key: 1,
            inner: dim,
            inner_index: idx,
            inner_pred: None,
        };
        let text = plan.explain(&db);
        assert!(text.contains("Nested Loop"));
        assert!(text.contains("Seq Scan on fact"));
        assert!(text.contains("dim_id"));
    }

    #[test]
    fn hash_join_children_probe_first() {
        let (_db, fact, dim, _idx) = db_with_two_tables();
        let build = PlanNode::SeqScan {
            table: dim,
            pred: None,
        };
        let probe = PlanNode::SeqScan {
            table: fact,
            pred: None,
        };
        let plan = PlanNode::HashJoin {
            build: Box::new(build.clone()),
            probe: Box::new(probe.clone()),
            build_key: 0,
            probe_key: 1,
        };
        let ch = plan.children();
        assert_eq!(ch[0], &probe);
        assert_eq!(ch[1], &build);
    }
}
