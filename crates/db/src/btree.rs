//! Page-backed B+Tree secondary indexes on `i64` keys.
//!
//! Indexes are bulk-loaded once over static data (the paper assumes a static
//! database; incremental maintenance is future work there too). Duplicates
//! are supported. Every traversal reports the pages it touches through a
//! visitor, which is how the executor's instrumentation captures the
//! root-to-leaf access patterns the paper highlights ("two sibling leaf nodes
//! share the same path from the root node and hence this path sequence will
//! be repeated in the trace").
//!
//! Node layout (within one [`PAGE_SIZE`] page):
//!
//! * byte 0: node kind (0 = leaf, 1 = internal)
//! * bytes 1..3: `u16` number of keys
//! * leaf: bytes 4..8: `u32` next-leaf page (`u32::MAX` = none); entries from
//!   byte 8: `i64` key, `u32` heap page, `u16` slot (14 bytes each)
//! * internal: keys (`i64`) from byte 8; children (`u32` page numbers) from a
//!   fixed offset past the maximum key area
//!
//! Separator `keys[i]` of an internal node is the first key of
//! `children[i+1]`. Because a duplicate run may straddle a boundary, descents
//! use `partition_point(< key)` (leftmost child that could contain the key)
//! and rely on the next-leaf chain to walk right — never missing duplicates
//! at the cost of occasionally reading one extra leaf.

use pythia_sim::{FileId, PageId, SimDisk, PAGE_SIZE};

use crate::heap::RecordId;

/// Kind of index node visited during a traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    Internal,
    Leaf,
}

const LEAF_HDR: usize = 8;
const LEAF_ENTRY: usize = 14;
/// Max entries per leaf.
pub const LEAF_CAP: usize = (PAGE_SIZE - LEAF_HDR) / LEAF_ENTRY; // 145

const INT_HDR: usize = 8;
/// Max keys per internal node (children = keys + 1).
pub const INT_CAP: usize = 169;
const INT_CHILD_OFF: usize = INT_HDR + INT_CAP * 8; // 1360
const NO_LEAF: u32 = u32::MAX;

// Bulk-load fill factors: leave some slack like a freshly built Postgres
// index (default fillfactor 90).
const LEAF_FILL: usize = LEAF_CAP * 9 / 10;
const INT_FILL: usize = INT_CAP * 9 / 10;

/// A bulk-loaded B+Tree over one heap column.
#[derive(Debug, Clone)]
pub struct BTree {
    pub file: FileId,
    root: u32,
    height: u32,
    entry_count: u64,
}

fn put_u16(buf: &mut [u8], off: usize, v: u16) {
    buf[off..off + 2].copy_from_slice(&v.to_le_bytes());
}
fn put_u32(buf: &mut [u8], off: usize, v: u32) {
    buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
}
fn put_i64(buf: &mut [u8], off: usize, v: i64) {
    buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
}
fn get_u16(buf: &[u8], off: usize) -> u16 {
    u16::from_le_bytes([buf[off], buf[off + 1]])
}
fn get_u32(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(buf[off..off + 4].try_into().expect("4 bytes"))
}
fn get_i64(buf: &[u8], off: usize) -> i64 {
    i64::from_le_bytes(buf[off..off + 8].try_into().expect("8 bytes"))
}

fn is_leaf(buf: &[u8; PAGE_SIZE]) -> bool {
    buf[0] == 0
}
fn nkeys(buf: &[u8; PAGE_SIZE]) -> usize {
    get_u16(buf, 1) as usize
}

fn leaf_key(buf: &[u8; PAGE_SIZE], i: usize) -> i64 {
    get_i64(buf, LEAF_HDR + i * LEAF_ENTRY)
}
fn leaf_rid(buf: &[u8; PAGE_SIZE], i: usize) -> RecordId {
    RecordId {
        page_no: get_u32(buf, LEAF_HDR + i * LEAF_ENTRY + 8),
        slot: get_u16(buf, LEAF_HDR + i * LEAF_ENTRY + 12),
    }
}
fn int_key(buf: &[u8; PAGE_SIZE], i: usize) -> i64 {
    get_i64(buf, INT_HDR + i * 8)
}
fn int_child(buf: &[u8; PAGE_SIZE], i: usize) -> u32 {
    get_u32(buf, INT_CHILD_OFF + i * 4)
}

impl BTree {
    /// Bulk-load a tree from `(key, rid)` pairs (sorted internally).
    ///
    /// Leaf pages are allocated contiguously first, then each internal level,
    /// with the root last — matching the page locality of a freshly built
    /// index.
    pub fn bulk_build(disk: &mut SimDisk, mut entries: Vec<(i64, RecordId)>) -> BTree {
        entries.sort_unstable_by_key(|(k, rid)| (*k, rid.page_no, rid.slot));
        let file = disk.create_file();
        let n = entries.len() as u64;

        // Empty index: a single empty leaf as root.
        if entries.is_empty() {
            let pid = disk.allocate_page(file);
            let buf = disk.write(pid);
            buf[0] = 0;
            put_u16(buf, 1, 0);
            put_u32(buf, 4, NO_LEAF);
            return BTree {
                file,
                root: pid.page_no,
                height: 1,
                entry_count: 0,
            };
        }

        // Level 0: leaves.
        let mut level: Vec<(u32, i64)> = Vec::new(); // (page_no, min key)
        {
            let chunks: Vec<&[(i64, RecordId)]> = entries.chunks(LEAF_FILL).collect();
            let first_page = disk.file_len(file);
            for (ci, chunk) in chunks.iter().enumerate() {
                let pid = disk.allocate_page(file);
                let buf = disk.write(pid);
                buf[0] = 0;
                put_u16(buf, 1, chunk.len() as u16);
                let next = if ci + 1 < chunks.len() {
                    first_page + ci as u32 + 1
                } else {
                    NO_LEAF
                };
                put_u32(buf, 4, next);
                for (i, (k, rid)) in chunk.iter().enumerate() {
                    let off = LEAF_HDR + i * LEAF_ENTRY;
                    put_i64(buf, off, *k);
                    put_u32(buf, off + 8, rid.page_no);
                    put_u16(buf, off + 12, rid.slot);
                }
                level.push((pid.page_no, chunk[0].0));
            }
        }

        // Upper levels until a single root remains.
        let mut height = 1;
        while level.len() > 1 {
            height += 1;
            let mut next_level = Vec::new();
            for group in level.chunks(INT_FILL + 1) {
                let pid = disk.allocate_page(file);
                let buf = disk.write(pid);
                buf[0] = 1;
                put_u16(buf, 1, (group.len() - 1) as u16);
                for (i, (child, min_key)) in group.iter().enumerate() {
                    put_u32(buf, INT_CHILD_OFF + i * 4, *child);
                    if i > 0 {
                        put_i64(buf, INT_HDR + (i - 1) * 8, *min_key);
                    }
                }
                next_level.push((pid.page_no, group[0].1));
            }
            level = next_level;
        }

        BTree {
            file,
            root: level[0].0,
            height,
            entry_count: n,
        }
    }

    /// Root page number.
    pub fn root(&self) -> u32 {
        self.root
    }

    /// Tree height in levels (1 = root is a leaf).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of indexed entries.
    pub fn entry_count(&self) -> u64 {
        self.entry_count
    }

    /// Pages in the index file.
    pub fn page_count(&self, disk: &SimDisk) -> u32 {
        disk.file_len(self.file)
    }

    /// Descend to the leftmost leaf that could contain `key`, reporting every
    /// node visited. Returns the leaf page number.
    fn descend(&self, disk: &SimDisk, key: i64, visit: &mut impl FnMut(PageId, NodeKind)) -> u32 {
        let mut page_no = self.root;
        loop {
            let pid = PageId::new(self.file, page_no);
            let buf = disk.read(pid);
            if is_leaf(buf) {
                visit(pid, NodeKind::Leaf);
                return page_no;
            }
            visit(pid, NodeKind::Internal);
            let n = nkeys(buf);
            // partition_point over separators: leftmost child that could
            // contain `key` (see module docs for duplicate handling).
            let mut lo = 0usize;
            let mut hi = n;
            while lo < hi {
                let mid = (lo + hi) / 2;
                if int_key(buf, mid) < key {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            page_no = int_child(buf, lo);
        }
    }

    /// All record ids with key in `[lo, hi]`, together with their keys,
    /// reporting every index page visited.
    pub fn range(
        &self,
        disk: &SimDisk,
        lo: i64,
        hi: i64,
        visit: &mut impl FnMut(PageId, NodeKind),
    ) -> Vec<(i64, RecordId)> {
        let mut out = Vec::new();
        if lo > hi {
            return out;
        }
        let mut page_no = self.descend(disk, lo, visit);
        loop {
            let pid = PageId::new(self.file, page_no);
            let buf = disk.read(pid);
            let n = nkeys(buf);
            for i in 0..n {
                let k = leaf_key(buf, i);
                if k > hi {
                    return out;
                }
                if k >= lo {
                    out.push((k, leaf_rid(buf, i)));
                }
            }
            let next = get_u32(buf, 4);
            if next == NO_LEAF {
                return out;
            }
            page_no = next;
            visit(PageId::new(self.file, page_no), NodeKind::Leaf);
        }
    }

    /// All record ids with exactly `key`.
    pub fn search(
        &self,
        disk: &SimDisk,
        key: i64,
        visit: &mut impl FnMut(PageId, NodeKind),
    ) -> Vec<RecordId> {
        self.range(disk, key, key, visit)
            .into_iter()
            .map(|(_, rid)| rid)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(n: u32) -> RecordId {
        RecordId {
            page_no: n,
            slot: (n % 7) as u16,
        }
    }

    fn build(keys: impl IntoIterator<Item = i64>) -> (SimDisk, BTree) {
        let mut disk = SimDisk::new();
        let entries: Vec<_> = keys
            .into_iter()
            .enumerate()
            .map(|(i, k)| (k, rid(i as u32)))
            .collect();
        let t = BTree::bulk_build(&mut disk, entries);
        (disk, t)
    }

    fn nop(_: PageId, _: NodeKind) {}

    #[test]
    fn empty_tree() {
        let (disk, t) = build([]);
        assert_eq!(t.height(), 1);
        assert!(t.search(&disk, 5, &mut nop).is_empty());
        assert!(t.range(&disk, i64::MIN, i64::MAX, &mut nop).is_empty());
    }

    #[test]
    fn single_leaf_lookup() {
        let (disk, t) = build(0..100);
        assert_eq!(t.height(), 1);
        for k in [0i64, 50, 99] {
            assert_eq!(t.search(&disk, k, &mut nop).len(), 1);
        }
        assert!(t.search(&disk, 100, &mut nop).is_empty());
        assert!(t.search(&disk, -1, &mut nop).is_empty());
    }

    #[test]
    fn multi_level_lookup() {
        let n = 100_000i64;
        let (disk, t) = build(0..n);
        assert!(t.height() >= 3, "height {} for {n} keys", t.height());
        for k in [0, 1, 12_345, n / 2, n - 1] {
            let hits = t.search(&disk, k, &mut nop);
            assert_eq!(hits.len(), 1, "key {k}");
            assert_eq!(hits[0], rid(k as u32));
        }
        assert!(t.search(&disk, n, &mut nop).is_empty());
    }

    #[test]
    fn range_scan_exact() {
        let (disk, t) = build((0..10_000).map(|i| i * 2)); // even keys
        let got = t.range(&disk, 101, 201, &mut nop);
        let keys: Vec<i64> = got.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, (51..=100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn duplicates_all_found() {
        // 50 distinct keys, 500 copies each: runs straddle leaf boundaries.
        let keys = (0..50i64).flat_map(|k| std::iter::repeat(k).take(500));
        let (disk, t) = build(keys);
        for k in [0i64, 7, 49] {
            assert_eq!(t.search(&disk, k, &mut nop).len(), 500, "key {k}");
        }
        assert_eq!(t.range(&disk, 10, 12, &mut nop).len(), 1500);
    }

    #[test]
    fn visitor_sees_root_to_leaf_path() {
        let (disk, t) = build(0..100_000);
        let mut path = Vec::new();
        t.search(&disk, 55_555, &mut |pid, kind| path.push((pid, kind)));
        assert!(path.len() >= t.height() as usize);
        assert_eq!(path[0].0.page_no, t.root());
        assert_eq!(path[0].1, NodeKind::Internal);
        assert_eq!(path.last().unwrap().1, NodeKind::Leaf);
        // Internal prefix then leaves.
        let first_leaf = path.iter().position(|(_, k)| *k == NodeKind::Leaf).unwrap();
        assert!(path[..first_leaf]
            .iter()
            .all(|(_, k)| *k == NodeKind::Internal));
        assert!(path[first_leaf..].iter().all(|(_, k)| *k == NodeKind::Leaf));
    }

    #[test]
    fn sibling_probes_share_path_prefix() {
        let (disk, t) = build(0..100_000);
        let mut p1 = Vec::new();
        let mut p2 = Vec::new();
        t.search(&disk, 40_000, &mut |pid, _| p1.push(pid));
        t.search(&disk, 40_001, &mut |pid, _| p2.push(pid));
        // Root is certainly shared; most likely the whole internal path.
        assert_eq!(p1[0], p2[0]);
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let mut disk = SimDisk::new();
        let entries = vec![(5, rid(0)), (1, rid(1)), (3, rid(2))];
        let t = BTree::bulk_build(&mut disk, entries);
        let all = t.range(&disk, i64::MIN, i64::MAX, &mut nop);
        let keys: Vec<i64> = all.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![1, 3, 5]);
    }

    #[test]
    fn full_range_returns_everything() {
        let (disk, t) = build(0..50_000);
        assert_eq!(t.range(&disk, i64::MIN, i64::MAX, &mut nop).len(), 50_000);
        assert_eq!(t.entry_count(), 50_000);
    }

    #[test]
    fn negative_keys() {
        let (disk, t) = build(-1000..1000);
        assert_eq!(t.search(&disk, -500, &mut nop).len(), 1);
        assert_eq!(t.range(&disk, -10, 10, &mut nop).len(), 21);
    }

    #[test]
    fn leaf_pages_are_contiguous_prefix() {
        let (disk, t) = build(0..100_000);
        // Leaves were allocated first: pages 0..n_leaves are all leaves.
        let total = t.page_count(&disk);
        let mut seen_internal = false;
        for p in 0..total {
            let leaf = is_leaf(disk.read(PageId::new(t.file, p)));
            if !leaf {
                seen_internal = true;
            }
            assert!(!(leaf && seen_internal), "leaf after internal at page {p}");
        }
        assert_eq!(t.root(), total - 1, "root allocated last");
    }
}
