//! The catalog: tables, indexes, and the database handle.
//!
//! Pythia trains one model per *database object* (base table or index), so
//! every object gets a stable [`ObjectId`] that the trace, the training data
//! and the model registry all key on.

use std::collections::HashMap;

use pythia_sim::{FileId, SimDisk};

use crate::btree::BTree;
use crate::heap::HeapFile;
use crate::tuple::Tuple;
use crate::types::{Datum, Schema};

/// Identifier of a database object (base table or index).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct ObjectId(pub u32);

/// Identifier of a table (indexes into the table list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TableId(pub u32);

/// What an object is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectKind {
    Table,
    Index,
}

/// Catalog entry for an index.
#[derive(Debug, Clone)]
pub struct IndexInfo {
    pub object: ObjectId,
    pub name: String,
    pub table: TableId,
    /// Column of the base table the index is built on.
    pub key_col: usize,
    pub btree: BTree,
}

/// Catalog entry for a table.
#[derive(Debug, Clone)]
pub struct TableInfo {
    pub object: ObjectId,
    pub name: String,
    pub schema: Schema,
    pub heap: HeapFile,
    /// Indexes on this table, in creation order.
    pub indexes: Vec<usize>,
}

#[derive(Debug, Clone)]
struct ObjectMeta {
    name: String,
    kind: ObjectKind,
    file: FileId,
}

/// A static, read-only database: the simulated disk plus the catalog.
#[derive(Debug)]
pub struct Database {
    pub disk: SimDisk,
    objects: Vec<ObjectMeta>,
    tables: Vec<TableInfo>,
    indexes: Vec<IndexInfo>,
    by_name: HashMap<String, TableId>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database {
            disk: SimDisk::new(),
            objects: Vec::new(),
            tables: Vec::new(),
            indexes: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    fn register_object(&mut self, name: String, kind: ObjectKind, file: FileId) -> ObjectId {
        let id = ObjectId(self.objects.len() as u32);
        self.objects.push(ObjectMeta { name, kind, file });
        id
    }

    /// Create an empty table.
    ///
    /// # Panics
    /// Panics if the name is already taken.
    pub fn create_table(&mut self, name: &str, schema: Schema) -> TableId {
        assert!(
            !self.by_name.contains_key(name),
            "table {name} already exists"
        );
        let heap = HeapFile::create(&mut self.disk);
        let object = self.register_object(name.to_owned(), ObjectKind::Table, heap.file);
        let tid = TableId(self.tables.len() as u32);
        self.tables.push(TableInfo {
            object,
            name: name.to_owned(),
            schema,
            heap,
            indexes: Vec::new(),
        });
        self.by_name.insert(name.to_owned(), tid);
        tid
    }

    /// Insert a row into `table`.
    pub fn insert(&mut self, table: TableId, row: Tuple) {
        let t = &mut self.tables[table.0 as usize];
        debug_assert_eq!(
            row.len(),
            t.schema.arity(),
            "arity mismatch inserting into {}",
            t.name
        );
        t.heap.insert(&mut self.disk, &row);
    }

    /// Bulk-build a B+Tree index on an integer column of `table`.
    ///
    /// # Panics
    /// Panics if the column contains non-integer datums.
    pub fn create_index(&mut self, name: &str, table: TableId, key_col: usize) -> ObjectId {
        let (entries, heap_file) = {
            let t = &self.tables[table.0 as usize];
            let entries: Vec<_> = t
                .heap
                .scan(&self.disk)
                .map(|(rid, row)| {
                    let k = row[key_col]
                        .as_int()
                        .unwrap_or_else(|| panic!("index {name}: column {key_col} not Int"));
                    (k, rid)
                })
                .collect();
            (entries, t.heap.file)
        };
        let _ = heap_file;
        let btree = BTree::bulk_build(&mut self.disk, entries);
        let object = self.register_object(name.to_owned(), ObjectKind::Index, btree.file);
        let idx_no = self.indexes.len();
        self.indexes.push(IndexInfo {
            object,
            name: name.to_owned(),
            table,
            key_col,
            btree,
        });
        self.tables[table.0 as usize].indexes.push(idx_no);
        object
    }

    /// Table handle by name.
    pub fn table(&self, name: &str) -> Option<TableId> {
        self.by_name.get(name).copied()
    }

    /// Catalog info for a table.
    pub fn table_info(&self, id: TableId) -> &TableInfo {
        &self.tables[id.0 as usize]
    }

    /// All tables.
    pub fn tables(&self) -> &[TableInfo] {
        &self.tables
    }

    /// Catalog info for an index, by the *object* id returned from
    /// [`Self::create_index`].
    pub fn index_info(&self, object: ObjectId) -> &IndexInfo {
        self.indexes
            .iter()
            .find(|i| i.object == object)
            .unwrap_or_else(|| panic!("object {object:?} is not an index"))
    }

    /// The index on `table`.`key_col`, if one exists.
    pub fn index_on(&self, table: TableId, key_col: usize) -> Option<&IndexInfo> {
        self.tables[table.0 as usize]
            .indexes
            .iter()
            .map(|&i| &self.indexes[i])
            .find(|i| i.key_col == key_col)
    }

    /// Number of catalogued objects (tables + indexes).
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// All object ids.
    pub fn object_ids(&self) -> impl Iterator<Item = ObjectId> {
        (0..self.objects.len() as u32).map(ObjectId)
    }

    /// Name of an object.
    pub fn object_name(&self, id: ObjectId) -> &str {
        &self.objects[id.0 as usize].name
    }

    /// Kind of an object.
    pub fn object_kind(&self, id: ObjectId) -> ObjectKind {
        self.objects[id.0 as usize].kind
    }

    /// File backing an object.
    pub fn object_file(&self, id: ObjectId) -> FileId {
        self.objects[id.0 as usize].file
    }

    /// Pages in an object's file.
    pub fn object_pages(&self, id: ObjectId) -> u32 {
        self.disk.file_len(self.objects[id.0 as usize].file)
    }

    /// File lengths indexed by [`FileId`] — the replay runtime needs them for
    /// OS readahead EOF clamping.
    pub fn file_lengths(&self) -> Vec<u32> {
        (0..self.disk.file_count() as u32)
            .map(|f| self.disk.file_len(FileId(f)))
            .collect()
    }

    /// Convenience: build a row of integer datums.
    pub fn row(vals: &[i64]) -> Tuple {
        vals.iter().map(|&v| Datum::Int(v)).collect()
    }
}

impl Default for Database {
    fn default() -> Self {
        Database::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_db() -> (Database, TableId) {
        let mut db = Database::new();
        let t = db.create_table("t", Schema::ints(&["id", "val"]));
        for i in 0..1000 {
            db.insert(t, Database::row(&[i, i % 10]));
        }
        (db, t)
    }

    #[test]
    fn create_and_lookup() {
        let (db, t) = small_db();
        assert_eq!(db.table("t"), Some(t));
        assert_eq!(db.table("nope"), None);
        assert_eq!(db.table_info(t).heap.tuple_count(), 1000);
        assert_eq!(db.object_kind(db.table_info(t).object), ObjectKind::Table);
    }

    #[test]
    #[should_panic]
    fn duplicate_table_panics() {
        let mut db = Database::new();
        db.create_table("t", Schema::ints(&["a"]));
        db.create_table("t", Schema::ints(&["a"]));
    }

    #[test]
    fn index_build_and_lookup() {
        let (mut db, t) = small_db();
        let idx = db.create_index("t_val", t, 1);
        assert_eq!(db.object_kind(idx), ObjectKind::Index);
        let info = db.index_info(idx);
        assert_eq!(info.key_col, 1);
        assert_eq!(info.btree.entry_count(), 1000);
        // 100 rows have val == 3.
        let rids = info.btree.search(&db.disk, 3, &mut |_, _| {});
        assert_eq!(rids.len(), 100);
        // Every rid resolves to a matching row.
        let heap = &db.table_info(t).heap;
        for rid in rids {
            let row = heap.read_tuple(&db.disk, rid);
            assert_eq!(row[1], Datum::Int(3));
        }
    }

    #[test]
    fn index_on_finds_by_column() {
        let (mut db, t) = small_db();
        db.create_index("t_val", t, 1);
        assert!(db.index_on(t, 1).is_some());
        assert!(db.index_on(t, 0).is_none());
    }

    #[test]
    fn object_ids_cover_tables_and_indexes() {
        let (mut db, t) = small_db();
        db.create_index("t_val", t, 1);
        assert_eq!(db.object_count(), 2);
        let names: Vec<&str> = db.object_ids().map(|o| db.object_name(o)).collect();
        assert_eq!(names, vec!["t", "t_val"]);
    }

    #[test]
    fn file_lengths_match_disk() {
        let (mut db, t) = small_db();
        db.create_index("t_val", t, 1);
        let lens = db.file_lengths();
        assert_eq!(lens.len(), db.disk.file_count());
        let tbl_obj = db.table_info(t).object;
        assert_eq!(
            lens[db.object_file(tbl_obj).0 as usize],
            db.object_pages(tbl_obj)
        );
    }
}
