//! Timed replay of query traces through the buffer manager — the analogue of
//! the paper's Postgres integration (§4).
//!
//! A query's page-request sequence depends only on its plan (the database is
//! static and read-only), so execution is split in two phases: the untimed
//! executor ([`crate::exec`]) records a [`Trace`], and this runtime *replays*
//! traces against the buffer pool / OS page cache / async-I/O stack under the
//! virtual clock, optionally with a prefetch plan per query.
//!
//! Replay supports multiple concurrent queries: each query owns a timeline
//! and its own AIO prefetch structure (as in the paper's modified Postgres,
//! where the AIO structure lives in the executor and is per-query), while the
//! buffer pool, OS cache and I/O workers are shared. Events across queries
//! are processed in global time order, which models the resource contention
//! the paper's §5.4 experiments measure.

use pythia_buffer::{AioPrefetcher, BufferPool, BufferStats, PolicyKind};
use pythia_obs::{tid, Recorder, Track};
use pythia_sim::{CostModel, IoWorkerPool, OsPageCache, PageId, SimDuration, SimTime, StreamId};

use crate::trace::{Trace, TraceEvent};

/// Configuration of the replay stack.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Buffer pool size in frames (Postgres `shared_buffers`; the paper uses
    /// 1 GiB ≈ 1% of the database — size proportionally to your workload).
    pub pool_frames: usize,
    /// Replacement policy (paper default: Clock).
    pub policy: PolicyKind,
    /// Latency model.
    pub cost: CostModel,
    /// OS page cache size in pages (the machine's free RAM).
    pub os_cache_pages: usize,
    /// AIO readahead window `R`: prefetched pages kept pinned at once
    /// (paper default 1024, swept in Figure 12g).
    pub readahead_window: usize,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            pool_frames: 1024,
            policy: PolicyKind::Clock,
            cost: CostModel::default(),
            os_cache_pages: 8192,
            readahead_window: 1024,
        }
    }
}

/// One query to replay.
#[derive(Debug, Clone)]
pub struct QueryRun<'a> {
    /// The recorded trace to replay.
    pub trace: &'a Trace,
    /// Pages to prefetch (ascending storage order), or `None` for the
    /// default (no-prefetch) path.
    pub prefetch: Option<Vec<PageId>>,
    /// When the query arrives, as an offset from the start of the batch
    /// (i.e. from the stack's clock when [`Runtime::run`] is called). A
    /// duration — not an instant — so arrivals cannot be double-shifted when
    /// warm batches are chained and the stack's clock is already nonzero.
    pub arrival: SimDuration,
    /// Serialized-plan encoding + model inference latency charged before
    /// execution starts (zero for DFLT/ORCL/NN baselines).
    pub inference_latency: SimDuration,
    /// Trace span name for this query's replay. Must be `'static` (trace
    /// event names never allocate); callers that know the query's template
    /// pass `Template::replay_span()` so Perfetto groups repeated templates.
    pub span_name: &'static str,
}

/// Span name for replays whose template is unknown.
pub const DEFAULT_REPLAY_SPAN: &str = "query.replay";

impl<'a> QueryRun<'a> {
    /// A query with no prefetching arriving at batch start.
    pub fn default_run(trace: &'a Trace) -> Self {
        QueryRun {
            trace,
            prefetch: None,
            arrival: SimDuration::ZERO,
            inference_latency: SimDuration::ZERO,
            span_name: DEFAULT_REPLAY_SPAN,
        }
    }

    /// A query with a prefetch plan arriving at batch start.
    pub fn with_prefetch(trace: &'a Trace, pages: Vec<PageId>, inference: SimDuration) -> Self {
        QueryRun {
            trace,
            prefetch: Some(pages),
            arrival: SimDuration::ZERO,
            inference_latency: inference,
            span_name: DEFAULT_REPLAY_SPAN,
        }
    }
}

/// Timing of one replayed query.
#[derive(Debug, Clone, Copy)]
pub struct QueryTiming {
    pub arrival: SimTime,
    pub start: SimTime,
    pub end: SimTime,
}

impl QueryTiming {
    /// Total latency including inference overhead.
    pub fn elapsed(&self) -> SimDuration {
        self.end.since(self.arrival)
    }
}

/// Result of a replay batch.
#[derive(Debug, Clone)]
pub struct RunResult {
    pub timings: Vec<QueryTiming>,
    pub stats: BufferStats,
}

impl RunResult {
    /// Wall time from first arrival to last completion.
    pub fn makespan(&self) -> SimDuration {
        let first = self
            .timings
            .iter()
            .map(|t| t.arrival)
            .min()
            .unwrap_or(SimTime::ZERO);
        let last = self
            .timings
            .iter()
            .map(|t| t.end)
            .max()
            .unwrap_or(SimTime::ZERO);
        last.since(first)
    }

    /// Sum of per-query latencies.
    pub fn total_latency(&self) -> SimDuration {
        self.timings
            .iter()
            .fold(SimDuration::ZERO, |acc, t| acc + t.elapsed())
    }

    /// EXPLAIN ANALYZE-style report: per-query timings plus the buffer
    /// manager's read-class breakdown and prefetch effectiveness.
    pub fn report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "Replay report ({} queries)", self.timings.len());
        for (i, t) in self.timings.iter().enumerate() {
            let _ = writeln!(
                out,
                "  query {i}: arrival {} start {} end {}  elapsed {}",
                t.arrival,
                t.start,
                t.end,
                t.elapsed()
            );
        }
        let s = &self.stats;
        let _ = writeln!(out, "  makespan: {}", self.makespan());
        let _ = writeln!(
            out,
            "  reads: {} total = {} buffer hits ({:.1}%) + {} OS-cache copies + {} disk reads ({} pass-through)",
            s.total_reads(),
            s.hits,
            s.hit_rate() * 100.0,
            s.os_copies,
            s.disk_reads,
            s.pass_through
        );
        let _ = writeln!(
            out,
            "  prefetch: {} issued, {} useful ({:.1}% precision), {} wasted, {} waits, {} already resident",
            s.prefetch_issued,
            s.prefetch_useful,
            s.prefetch_precision() * 100.0,
            s.prefetch_wasted,
            s.prefetch_waits,
            s.prefetch_already_resident
        );
        let _ = writeln!(out, "  evictions: {}", s.evictions);
        out
    }
}

struct QState<'a> {
    run: QueryRun<'a>,
    arrival: SimTime,
    cursor: usize,
    t: SimTime,
    started_prefetch: bool,
    aio: Option<AioPrefetcher>,
    done: bool,
    start: SimTime,
    /// OS-cache stream (open-fd analogue) the query's demand reads run
    /// under; its AIO prefetcher gets a second, distinct stream.
    stream: StreamId,
    /// Trace track for this query's replay timeline (`tid::QUERY_BASE + id`,
    /// allocated from the runtime's monotone query counter).
    track: Track,
}

/// The replay stack: shared buffer pool, OS cache and I/O workers.
pub struct Runtime {
    pool: BufferPool,
    os: OsPageCache,
    io: IoWorkerPool,
    cost: CostModel,
    window: usize,
    file_lens: Vec<u32>,
    /// The stack's continuing clock: each `run` batch starts here, so warm
    /// state (frame availability, I/O lanes) stays consistent across batches.
    now: SimTime,
    /// Next OS-cache stream id to hand out. Every query backend and every
    /// AIO prefetcher gets its own stream, so concurrent sequential scans of
    /// one file keep independent kernel-readahead runs (per-fd semantics).
    next_stream: u64,
    /// Monotone query counter: each replayed query gets its own trace track.
    next_query: u64,
}

impl Runtime {
    /// Build a cold stack. `file_lens[f]` is the page count of file `f`
    /// (see [`crate::catalog::Database::file_lengths`]).
    pub fn new(config: &RunConfig, file_lens: Vec<u32>) -> Self {
        config.cost.validate().expect("invalid cost model");
        Runtime {
            pool: BufferPool::new(config.pool_frames, config.policy),
            os: OsPageCache::new(config.os_cache_pages, config.cost.os_readahead_window),
            io: IoWorkerPool::new(config.cost.io_workers),
            cost: config.cost.clone(),
            window: config.readahead_window,
            file_lens,
            now: SimTime::ZERO,
            next_stream: 0,
            next_query: 0,
        }
    }

    /// Cold restart: drop buffer pool, OS cache and in-flight I/O — the
    /// paper's "Postgres is restarted between every different query execution
    /// along with cleaning OS page cache". The recorder (and its accumulated
    /// trace) survives, so a traced experiment can span restarts.
    pub fn reset(&mut self) {
        self.pool.reset();
        self.os.reset();
        self.io.reset();
        self.now = SimTime::ZERO;
        self.next_stream = 0;
        self.next_query = 0;
    }

    /// Install a trace/metrics recorder on the stack (it lives inside the
    /// buffer pool, where the replay loop, the AIO prefetchers and the
    /// serving loop all reach it through existing borrows).
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.pool.set_recorder(recorder);
    }

    /// The stack's recorder (disabled by default).
    pub fn recorder(&self) -> &Recorder {
        self.pool.recorder()
    }

    /// Mutable access to the stack's recorder.
    pub fn recorder_mut(&mut self) -> &mut Recorder {
        self.pool.recorder_mut()
    }

    /// Remove and return the recorder, leaving a disabled one behind.
    pub fn take_recorder(&mut self) -> Recorder {
        self.pool.take_recorder()
    }

    /// Buffer pool capacity in frames.
    pub fn pool_frames(&self) -> usize {
        self.pool.capacity()
    }

    /// The stack's continuing clock (the instant the next `run` batch would
    /// start at). Serving loops use this to translate absolute arrival times
    /// into per-batch offsets.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advance the stack's clock to `t` (no-op if `t` is in the past): idle
    /// time between admission waves when the queue has drained but the next
    /// query has not arrived yet.
    pub fn advance_to(&mut self, t: SimTime) {
        self.now = self.now.max(t);
    }

    /// Snapshot of the shared pool's cumulative counters (what the next
    /// [`Self::run`] result's `stats` will have accumulated on top of).
    pub fn stats(&self) -> BufferStats {
        *self.pool.stats()
    }

    /// Allocate a fresh OS-cache stream (open-fd analogue).
    fn alloc_stream(&mut self) -> StreamId {
        let s = StreamId(self.next_stream);
        self.next_stream += 1;
        s
    }

    /// Allocate (and name) the trace track for the next replayed query.
    fn alloc_query_track(&mut self) -> Track {
        let qid = self.next_query;
        self.next_query += 1;
        let track = Track::virt(tid::QUERY_BASE + qid as u32);
        self.pool
            .recorder_mut()
            .declare_track(track, || format!("query-{qid}"));
        track
    }

    /// Replay a batch of queries (possibly overlapping in time).
    /// State (buffer contents) carries over from previous `run` calls unless
    /// [`Self::reset`] is called — that is how the warm-cache multi-query
    /// experiments (§5.4) are expressed.
    ///
    /// This is the one-shot form of [`ReplaySession`]: every query is
    /// injected up front (arrivals are offsets within the batch, shifted onto
    /// the stack's continuing clock), then the session is stepped dry and
    /// finished. A serving loop that wants to *add* queries while others are
    /// mid-replay drives the session directly instead.
    pub fn run(&mut self, queries: &[QueryRun<'_>]) -> RunResult {
        let base = self.now;
        let mut session = ReplaySession::new();
        for q in queries {
            session.inject(self, q.clone(), base + q.arrival);
        }
        while session.live() > 0 {
            session.step(self);
        }
        let timings = session.finish(self);
        RunResult {
            timings,
            stats: *self.pool.stats(),
        }
    }

    fn step(&mut self, states: &mut [QState<'_>], qi: usize) {
        // Start the prefetcher the first time this query's timeline runs.
        // (Two-phase so `alloc_stream` doesn't overlap the `states` borrow.)
        if !states[qi].started_prefetch {
            states[qi].started_prefetch = true;
            if let Some(pages) = states[qi].run.prefetch.clone() {
                let stream = self.alloc_stream();
                let mut aio =
                    AioPrefetcher::with_file_lens(self.window, self.file_lens.clone(), stream);
                let t = states[qi].t;
                aio.start(
                    pages,
                    &mut self.pool,
                    &mut self.os,
                    &mut self.io,
                    &self.cost,
                    t,
                );
                states[qi].aio = Some(aio);
            }
        }

        let s = &mut states[qi];
        match s.run.trace.events[s.cursor] {
            TraceEvent::Cpu { units } => {
                s.t += self.cost.cpu_per_tuple.saturating_mul(units as u64);
            }
            TraceEvent::Read { page, kind, .. } => {
                self.serve_read(s, page, kind.is_sequential());
            }
        }
        let s = &mut states[qi];
        s.cursor += 1;
        if s.cursor >= s.run.trace.events.len() {
            s.done = true;
            if let Some(aio) = s.aio.as_mut() {
                aio.finish(&mut self.pool);
                self.os.retire_stream(aio.stream());
            }
            // Close the query's own "fd" too: detector state must not
            // accumulate over the lifetime of a long-running serving stack.
            self.os.retire_stream(s.stream);
        }
    }

    fn serve_read(&mut self, s: &mut QState<'_>, page: PageId, sequential: bool) {
        let t0 = s.t;
        if let Some(fid) = self.pool.lookup(page) {
            let avail = self.pool.frame(fid).available_at;
            let mut waited = 0u64;
            if avail > s.t {
                // Prefetch still in flight: wait for it (still cheaper than
                // issuing a fresh synchronous read in almost all cases).
                self.pool.stats_mut().prefetch_waits += 1;
                waited = avail.since(s.t).as_micros();
                s.t = avail;
            }
            s.t += self.cost.buffer_hit;
            self.pool.stats_mut().hits += 1;
            self.pool.touch(fid);
            let rec = self.pool.recorder_mut();
            if rec.is_enabled() {
                rec.add("reads.hit", 1);
                if waited > 0 {
                    rec.add("reads.prefetch_wait", 1);
                    rec.observe("read.prefetch_wait_us", waited);
                }
                rec.instant(
                    s.track,
                    "read",
                    "read.hit",
                    t0.as_micros(),
                    &[("page", page.trace_key()), ("wait_us", waited)],
                );
            }
        } else {
            let file_len = self
                .file_lens
                .get(page.file.0 as usize)
                .copied()
                .unwrap_or(u32::MAX);
            let outcome = self.os.read(s.stream, page, file_len);
            let name = if outcome.cache_hit {
                s.t += self.cost.os_cache_copy;
                self.pool.stats_mut().os_copies += 1;
                "read.os_copy"
            } else {
                s.t += self.cost.disk_read;
                self.pool.stats_mut().disk_reads += 1;
                "read.disk"
            };
            // Sequential-scan pages go through the buffer-ring path
            // (Postgres BAS_BULKREAD): resident but evicted first, so bulk
            // scans don't wash out the working set or prefetched pages.
            let passed_through = self.pool.load_with(page, false, s.t, sequential).is_none();
            if passed_through {
                self.pool.stats_mut().pass_through += 1;
            }
            let rec = self.pool.recorder_mut();
            if rec.is_enabled() {
                rec.add(
                    if outcome.cache_hit {
                        "reads.os_copy"
                    } else {
                        "reads.disk"
                    },
                    1,
                );
                if passed_through {
                    rec.add("reads.pass_through", 1);
                }
                if outcome.readahead_pages > 0 {
                    rec.add("os.readahead_pages", outcome.readahead_pages as u64);
                    rec.instant(
                        s.track,
                        "os",
                        "os.readahead",
                        t0.as_micros(),
                        &[("pages", outcome.readahead_pages as u64)],
                    );
                }
                rec.instant(
                    s.track,
                    "read",
                    name,
                    t0.as_micros(),
                    &[("page", page.trace_key())],
                );
            }
        }
        self.pool
            .recorder_mut()
            .observe("read.service_us", s.t.since(t0).as_micros());
        // Dummy request: the AIO structure tracks the query's read rate.
        if let Some(aio) = s.aio.as_mut() {
            aio.on_query_read(&mut self.pool, &mut self.os, &mut self.io, &self.cost, s.t);
        }
    }
}

/// A query's completion, as reported by [`ReplaySession::step`] (or by
/// [`ReplaySession::inject`] for an empty-trace query that finishes the
/// instant it is admitted).
#[derive(Debug, Clone, Copy)]
pub struct SessionCompletion {
    /// Slot index assigned at injection (0-based injection order).
    pub slot: usize,
    /// The completed query's timing.
    pub timing: QueryTiming,
}

/// Incremental replay: the engine behind [`Runtime::run`] and the serving
/// loop's admit-on-completion path.
///
/// A session owns the per-query timelines while the shared stack (buffer
/// pool / OS cache / I/O lanes) stays in the [`Runtime`]. Unlike `run`,
/// queries can be [injected](Self::inject) while earlier ones are mid-replay:
/// an admission at virtual time `t` is causally sound as long as `t` is no
/// later than the session's next pending event
/// ([`Self::next_event_time`]) — exactly the invariant an event-ordered
/// serving loop maintains by processing arrivals and completions in global
/// virtual-time order.
///
/// Lifecycle: any interleaving of `inject` / `step` until nothing is live,
/// then one [`finish`](Self::finish), which settles prefetch-waste
/// accounting, advances the stack clock past the last completion, and emits
/// the per-query replay spans in injection order (matching `run`'s trace
/// layout byte for byte).
#[derive(Default)]
pub struct ReplaySession<'a> {
    states: Vec<QState<'a>>,
    live: usize,
}

impl<'a> ReplaySession<'a> {
    /// An empty session.
    pub fn new() -> Self {
        ReplaySession::default()
    }

    /// Number of injected queries still replaying.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Total number of queries injected so far (completed ones included).
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True if no query was ever injected.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The earliest pending event instant across live queries, or `None`
    /// when nothing is live. A serving loop admits an arrival at time `a`
    /// directly iff `a <= next_event_time()` (or nothing is live).
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.states.iter().filter(|s| !s.done).map(|s| s.t).min()
    }

    /// Admit one query at absolute virtual time `arrival` (the `run.arrival`
    /// *offset* field is ignored here — sessions deal in instants). Allocates
    /// the query's OS-cache stream and trace track, charges its inference
    /// latency, and returns the assigned slot plus an immediate completion if
    /// the trace is empty.
    pub fn inject(
        &mut self,
        rt: &mut Runtime,
        run: QueryRun<'a>,
        arrival: SimTime,
    ) -> (usize, Option<SessionCompletion>) {
        let start = arrival + run.inference_latency;
        let done = run.trace.events.is_empty();
        let state = QState {
            run,
            arrival,
            cursor: 0,
            t: start,
            started_prefetch: false,
            aio: None,
            done,
            start,
            stream: rt.alloc_stream(),
            track: rt.alloc_query_track(),
        };
        let slot = self.states.len();
        self.states.push(state);
        if done {
            (
                slot,
                Some(SessionCompletion {
                    slot,
                    timing: QueryTiming {
                        arrival,
                        start,
                        end: start,
                    },
                }),
            )
        } else {
            self.live += 1;
            (slot, None)
        }
    }

    /// Advance the live query with the smallest current time by one trace
    /// event (first-minimal tie-break, same as `run`). Returns the completion
    /// if that event finished the query. Must not be called with
    /// `live() == 0` (returns `None` without advancing anything).
    pub fn step(&mut self, rt: &mut Runtime) -> Option<SessionCompletion> {
        let qi = self
            .states
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.done)
            .min_by_key(|(_, s)| s.t)
            .map(|(i, _)| i)?;
        rt.step(&mut self.states, qi);
        let s = &self.states[qi];
        if s.done {
            self.live -= 1;
            Some(SessionCompletion {
                slot: qi,
                timing: QueryTiming {
                    arrival: s.arrival,
                    start: s.start,
                    end: s.t,
                },
            })
        } else {
            None
        }
    }

    /// Close the session: settle end-of-run prefetch-waste accounting,
    /// advance the stack clock to the last completion, emit per-query replay
    /// spans (injection order), and return all timings in slot order.
    pub fn finish(self, rt: &mut Runtime) -> Vec<QueryTiming> {
        debug_assert!(self.live == 0, "finish() with {} queries live", self.live);
        rt.pool.finish_accounting();
        if let Some(end) = self.states.iter().map(|s| s.t).max() {
            rt.now = rt.now.max(end);
        }
        if rt.pool.recorder().is_enabled() {
            let rec = rt.pool.recorder_mut();
            for s in &self.states {
                rec.add("queries.replayed", 1);
                if s.start > s.arrival {
                    rec.span(
                        s.track,
                        "query",
                        "query.infer_charge",
                        s.arrival.as_micros(),
                        s.start.as_micros(),
                        &[],
                    );
                }
                // The span end (`ts + dur`) is the query's completion time —
                // exactly the `end` in the returned timings.
                rec.span(
                    s.track,
                    "query",
                    s.run.span_name,
                    s.start.as_micros(),
                    s.t.as_micros(),
                    &[("reads", s.run.trace.read_count() as u64)],
                );
                rec.observe("query.latency_us", s.t.since(s.arrival).as_micros());
            }
        }
        self.states
            .iter()
            .map(|s| QueryTiming {
                arrival: s.arrival,
                start: s.start,
                end: s.t,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::ObjectId;
    use crate::trace::AccessKind;
    use pythia_sim::FileId;

    fn pid(p: u32) -> PageId {
        PageId::new(FileId(0), p)
    }

    fn read_ev(p: u32, kind: AccessKind) -> TraceEvent {
        TraceEvent::Read {
            obj: ObjectId(0),
            page: pid(p),
            kind,
        }
    }

    /// A trace of `n` random (non-sequential) heap reads with CPU work
    /// between them.
    fn random_trace(n: u32, cpu_between: u32) -> Trace {
        let mut events = Vec::new();
        for i in 0..n {
            // Stride walk that defeats sequential detection.
            events.push(read_ev((i * 37) % 10_000, AccessKind::HeapFetch));
            events.push(TraceEvent::Cpu { units: cpu_between });
        }
        Trace { events }
    }

    fn sequential_trace(n: u32) -> Trace {
        let mut events = Vec::new();
        for i in 0..n {
            events.push(read_ev(i, AccessKind::SeqScan));
            events.push(TraceEvent::Cpu { units: 2 });
        }
        Trace { events }
    }

    fn config() -> RunConfig {
        RunConfig {
            pool_frames: 2048,
            os_cache_pages: 16384,
            ..Default::default()
        }
    }

    fn single(cfg: &RunConfig, run: QueryRun<'_>) -> (SimDuration, BufferStats) {
        let mut rt = Runtime::new(cfg, vec![20_000]);
        let res = rt.run(&[run]);
        (res.timings[0].elapsed(), res.stats)
    }

    #[test]
    fn sequential_scan_benefits_from_os_readahead() {
        let cfg = config();
        let t = sequential_trace(500);
        let (elapsed, stats) = single(&cfg, QueryRun::default_run(&t));
        // First two reads miss; after that readahead keeps ahead.
        assert!(stats.os_copies > 450, "os_copies={}", stats.os_copies);
        assert!(stats.disk_reads < 50, "disk_reads={}", stats.disk_reads);
        // Far cheaper than 500 disk reads.
        assert!(elapsed.as_micros() < 500 * cfg.cost.disk_read.as_micros() / 3);
    }

    #[test]
    fn random_reads_pay_disk_cost_without_prefetch() {
        let cfg = config();
        let t = random_trace(300, 2);
        let (elapsed, stats) = single(&cfg, QueryRun::default_run(&t));
        assert_eq!(stats.disk_reads, 300);
        assert!(elapsed.as_micros() >= 300 * cfg.cost.disk_read.as_micros());
    }

    #[test]
    fn oracle_prefetch_speeds_up_random_reads() {
        let cfg = config();
        let t = random_trace(300, 2);
        let (base, _) = single(&cfg, QueryRun::default_run(&t));

        // Prefetch exactly the pages the query reads, in storage order.
        let mut pages = t.page_sequence();
        pages.sort_unstable();
        pages.dedup();
        let (pref, stats) = single(&cfg, QueryRun::with_prefetch(&t, pages, SimDuration::ZERO));

        assert!(stats.prefetch_issued > 0);
        assert!(stats.hits > 250, "most reads served from prefetched pages");
        let speedup = base.as_micros() as f64 / pref.as_micros() as f64;
        assert!(speedup > 2.0, "speedup was {speedup:.2}");
    }

    #[test]
    fn wrong_prefetch_does_not_slow_down_much() {
        let cfg = config();
        let t = random_trace(200, 2);
        let (base, _) = single(&cfg, QueryRun::default_run(&t));
        // Prefetch 200 pages the query never touches.
        let junk: Vec<PageId> = (11_000..11_200).map(pid).collect();
        let (pref, stats) = single(&cfg, QueryRun::with_prefetch(&t, junk, SimDuration::ZERO));
        assert_eq!(stats.prefetch_useful, 0);
        // Paper: "even if PYTHIA does not predict any page correctly, we can
        // expect the regression to be within the margin of error".
        let ratio = pref.as_micros() as f64 / base.as_micros() as f64;
        assert!(ratio < 1.05, "regression ratio {ratio:.3}");
    }

    #[test]
    fn inference_latency_is_charged() {
        let cfg = config();
        let t = random_trace(50, 2);
        let (base, _) = single(&cfg, QueryRun::default_run(&t));
        let inf = SimDuration::from_millis(100);
        let (with_inf, _) = single(
            &cfg,
            QueryRun {
                inference_latency: inf,
                ..QueryRun::default_run(&t)
            },
        );
        assert_eq!(with_inf.as_micros(), base.as_micros() + inf.as_micros());
    }

    #[test]
    fn warm_cache_second_run_is_fast() {
        let cfg = config();
        let t = random_trace(200, 2);
        let mut rt = Runtime::new(&cfg, vec![20_000]);
        let first = rt.run(&[QueryRun::default_run(&t)]);
        // No reset: buffer retains the pages.
        let second = rt.run(&[QueryRun::default_run(&t)]);
        let t1 = first.timings[0].elapsed();
        let t2 = second.timings[0].end.since(second.timings[0].arrival);
        assert!(
            t2.as_micros() * 10 < t1.as_micros(),
            "warm run {t2} vs cold {t1}"
        );
    }

    #[test]
    fn reset_restores_cold_behaviour() {
        let cfg = config();
        let t = random_trace(200, 2);
        let mut rt = Runtime::new(&cfg, vec![20_000]);
        let first = rt.run(&[QueryRun::default_run(&t)]);
        rt.reset();
        let again = rt.run(&[QueryRun::default_run(&t)]);
        assert_eq!(
            first.timings[0].elapsed().as_micros(),
            again.timings[0].elapsed().as_micros()
        );
    }

    #[test]
    fn concurrent_queries_share_the_pool() {
        let cfg = config();
        let t = random_trace(300, 2);
        // Two identical queries at once: the second benefits from pages the
        // first pulled in.
        let mut rt = Runtime::new(&cfg, vec![20_000]);
        let res = rt.run(&[QueryRun::default_run(&t), QueryRun::default_run(&t)]);
        assert!(res.stats.hits > 0, "overlapping queries share pages");
        assert_eq!(res.timings.len(), 2);
        // Makespan below two serial cold executions.
        let serial_estimate = 2 * 300 * cfg.cost.disk_read.as_micros();
        assert!(res.makespan().as_micros() < serial_estimate);
    }

    #[test]
    fn staggered_arrivals_are_respected() {
        let cfg = config();
        let t = random_trace(50, 2);
        let mut rt = Runtime::new(&cfg, vec![20_000]);
        let late = SimDuration::from_micros(1_000_000);
        let res = rt.run(&[
            QueryRun::default_run(&t),
            QueryRun {
                arrival: late,
                ..QueryRun::default_run(&t)
            },
        ]);
        assert!(res.timings[1].start >= SimTime::ZERO + late);
        assert!(res.timings[1].end > res.timings[0].end);
    }

    #[test]
    fn arrivals_are_offsets_from_the_warm_clock() {
        // `QueryRun::arrival` is a duration relative to the batch start, so
        // chaining warm batches cannot double-shift it: the second batch's
        // offset lands exactly `gap` after wherever the clock is.
        let cfg = config();
        let t = random_trace(20, 2);
        let mut rt = Runtime::new(&cfg, vec![20_000]);
        let first = rt.run(&[QueryRun::default_run(&t)]);
        let clock = first.timings[0].end;
        let gap = SimDuration::from_micros(777);
        let second = rt.run(&[QueryRun {
            arrival: gap,
            ..QueryRun::default_run(&t)
        }]);
        assert_eq!(second.timings[0].arrival, clock + gap);
    }

    #[test]
    fn interleaved_sequential_scans_keep_readahead() {
        // Regression: two concurrent sequential scans over disjoint ranges of
        // one file. The OS readahead detector is keyed per (stream, file) —
        // per open fd, like the kernel — so each scan's run survives the
        // other's interleaved reads and nearly all reads become OS-cache
        // copies. The old per-file detector saw an alternating page sequence,
        // never fired, and every read went to disk.
        fn scan(start: u32, n: u32) -> Trace {
            let mut events = Vec::new();
            for i in 0..n {
                events.push(read_ev(start + i, AccessKind::SeqScan));
                events.push(TraceEvent::Cpu { units: 2 });
            }
            Trace { events }
        }
        let cfg = config();
        let a = scan(0, 300);
        let b = scan(5_000, 300);
        let mut rt = Runtime::new(&cfg, vec![20_000]);
        let res = rt.run(&[QueryRun::default_run(&a), QueryRun::default_run(&b)]);
        assert!(
            res.stats.os_copies > 550,
            "interleaved scans must both get readahead: os_copies={}",
            res.stats.os_copies
        );
        assert!(
            res.stats.disk_reads < 50,
            "disk_reads={}",
            res.stats.disk_reads
        );
    }

    #[test]
    fn runtime_clock_hooks() {
        let cfg = config();
        let t = random_trace(10, 1);
        let mut rt = Runtime::new(&cfg, vec![20_000]);
        assert_eq!(rt.now(), SimTime::ZERO);
        rt.advance_to(SimTime::from_micros(500));
        assert_eq!(rt.now(), SimTime::from_micros(500));
        rt.advance_to(SimTime::from_micros(100)); // no going backwards
        assert_eq!(rt.now(), SimTime::from_micros(500));
        let res = rt.run(&[QueryRun::default_run(&t)]);
        assert_eq!(res.timings[0].arrival, SimTime::from_micros(500));
        assert!(rt.now() >= res.timings[0].end);
        assert_eq!(
            rt.stats(),
            res.stats,
            "stats snapshot matches the last result"
        );
    }

    #[test]
    fn fully_pinned_pool_serves_pass_through() {
        // Pool so small the prefetch window pins every frame: demand reads of
        // other pages cannot be cached and are served pass-through.
        let cfg = RunConfig {
            pool_frames: 8,
            readahead_window: 8,
            os_cache_pages: 1024,
            ..Default::default()
        };
        let t = random_trace(50, 1);
        let mut rt = Runtime::new(&cfg, vec![20_000]);
        // Prefetch pages the query never reads, so the window stays pinned.
        let junk: Vec<PageId> = (15_000..15_100).map(pid).collect();
        let res = rt.run(&[QueryRun::with_prefetch(&t, junk, SimDuration::ZERO)]);
        assert!(res.stats.pass_through > 0, "{:?}", res.stats);
        // Every read still happened exactly once.
        assert_eq!(res.stats.total_reads() as usize, t.read_count());
    }

    #[test]
    fn prefetch_wait_accounting() {
        // A query that reads its first prefetched page immediately must wait
        // for the in-flight I/O.
        let cfg = RunConfig {
            pool_frames: 64,
            os_cache_pages: 256,
            ..Default::default()
        };
        let t = Trace {
            events: vec![read_ev(7, AccessKind::HeapFetch)],
        };
        let mut rt = Runtime::new(&cfg, vec![20_000]);
        let res = rt.run(&[QueryRun::with_prefetch(&t, vec![pid(7)], SimDuration::ZERO)]);
        assert_eq!(res.stats.prefetch_waits, 1);
        assert_eq!(res.stats.hits, 1);
        // Waiting for the async read costs about one disk read.
        let elapsed = res.timings[0].elapsed();
        assert!(elapsed.as_micros() >= cfg.cost.disk_read.as_micros());
    }

    #[test]
    fn report_mentions_every_section() {
        let cfg = config();
        let t = random_trace(30, 1);
        let mut rt = Runtime::new(&cfg, vec![20_000]);
        let pages = t.page_sequence();
        let res = rt.run(&[QueryRun::with_prefetch(&t, pages, SimDuration::ZERO)]);
        let rpt = res.report();
        for needle in [
            "Replay report",
            "query 0",
            "makespan",
            "buffer hits",
            "prefetch",
            "evictions",
        ] {
            assert!(rpt.contains(needle), "missing '{needle}' in:\n{rpt}");
        }
    }

    #[test]
    fn empty_trace_completes_instantly() {
        let cfg = config();
        let t = Trace::new();
        let mut rt = Runtime::new(&cfg, vec![20_000]);
        let res = rt.run(&[QueryRun::default_run(&t)]);
        assert_eq!(res.timings[0].elapsed(), SimDuration::ZERO);
    }

    #[test]
    fn session_batch_injection_is_bit_identical_to_run() {
        // `run` is a thin wrapper over ReplaySession; driving the session by
        // hand with the same up-front injections must reproduce it exactly.
        let cfg = config();
        let a = random_trace(100, 2);
        let b = random_trace(60, 3);
        let gap = SimDuration::from_micros(500);

        let mut rt1 = Runtime::new(&cfg, vec![20_000]);
        let res = rt1.run(&[
            QueryRun::default_run(&a),
            QueryRun {
                arrival: gap,
                ..QueryRun::default_run(&b)
            },
        ]);

        let mut rt2 = Runtime::new(&cfg, vec![20_000]);
        let mut sess = ReplaySession::new();
        let (s0, c0) = sess.inject(&mut rt2, QueryRun::default_run(&a), SimTime::ZERO);
        let (s1, c1) = sess.inject(&mut rt2, QueryRun::default_run(&b), SimTime::ZERO + gap);
        assert_eq!((s0, s1), (0, 1));
        assert!(c0.is_none() && c1.is_none());
        let mut completions = Vec::new();
        while sess.live() > 0 {
            if let Some(c) = sess.step(&mut rt2) {
                completions.push(c);
            }
        }
        let timings = sess.finish(&mut rt2);

        assert_eq!(completions.len(), 2, "each query completes exactly once");
        assert_eq!(timings.len(), res.timings.len());
        for (got, want) in timings.iter().zip(res.timings.iter()) {
            assert_eq!(got.arrival, want.arrival);
            assert_eq!(got.start, want.start);
            assert_eq!(got.end, want.end);
        }
        assert_eq!(rt2.stats(), res.stats);
        assert_eq!(rt2.now(), rt1.now());
    }

    #[test]
    fn session_late_injection_matches_chained_runs() {
        // Admit-on-completion at concurrency 1: injecting the second query at
        // the first one's completion instant must equal two chained `run`
        // batches (which is how the serial comparator in the serving
        // proptests is phrased).
        let cfg = config();
        let a = random_trace(80, 2);
        let b = random_trace(40, 2);

        let mut rt1 = Runtime::new(&cfg, vec![20_000]);
        let first = rt1.run(&[QueryRun::default_run(&a)]);
        let second = rt1.run(&[QueryRun::default_run(&b)]);

        let mut rt2 = Runtime::new(&cfg, vec![20_000]);
        let mut sess = ReplaySession::new();
        sess.inject(&mut rt2, QueryRun::default_run(&a), SimTime::ZERO);
        let done = loop {
            if let Some(c) = sess.step(&mut rt2) {
                break c;
            }
        };
        assert_eq!(done.slot, 0);
        assert_eq!(done.timing.end, first.timings[0].end);
        // The slot freed: admit the next query at the completion instant.
        sess.inject(&mut rt2, QueryRun::default_run(&b), done.timing.end);
        while sess.live() > 0 {
            sess.step(&mut rt2);
        }
        let timings = sess.finish(&mut rt2);
        assert_eq!(timings[1].arrival, second.timings[0].arrival);
        assert_eq!(timings[1].start, second.timings[0].start);
        assert_eq!(timings[1].end, second.timings[0].end);
        assert_eq!(rt2.stats(), rt1.stats());
        assert_eq!(rt2.now(), rt1.now());
    }

    #[test]
    fn session_empty_trace_completes_at_injection() {
        let cfg = config();
        let t = Trace::new();
        let mut rt = Runtime::new(&cfg, vec![20_000]);
        let mut sess = ReplaySession::new();
        let at = SimTime::from_micros(123);
        let (slot, done) = sess.inject(&mut rt, QueryRun::default_run(&t), at);
        let done = done.expect("empty trace completes instantly");
        assert_eq!((slot, done.slot), (0, 0));
        assert_eq!(done.timing.start, at);
        assert_eq!(done.timing.end, at);
        assert_eq!(sess.live(), 0);
        assert!(sess.step(&mut rt).is_none(), "nothing live to step");
        let timings = sess.finish(&mut rt);
        assert_eq!(timings.len(), 1);
        assert_eq!(rt.now(), at);
    }
}
