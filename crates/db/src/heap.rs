//! Heap files: one file of slotted pages per relation.

use pythia_sim::{FileId, PageId, SimDisk};

use crate::page::SlottedPage;
use crate::tuple::{self, Tuple};
use crate::types::Datum;

/// Physical address of a tuple: page number within the heap file plus slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RecordId {
    pub page_no: u32,
    pub slot: u16,
}

/// A heap relation: an append-only sequence of slotted pages.
#[derive(Debug, Clone)]
pub struct HeapFile {
    pub file: FileId,
    tuple_count: u64,
}

impl HeapFile {
    /// Create an empty heap in a fresh file.
    pub fn create(disk: &mut SimDisk) -> Self {
        HeapFile {
            file: disk.create_file(),
            tuple_count: 0,
        }
    }

    /// Number of tuples inserted.
    pub fn tuple_count(&self) -> u64 {
        self.tuple_count
    }

    /// Number of pages in the heap.
    pub fn page_count(&self, disk: &SimDisk) -> u32 {
        disk.file_len(self.file)
    }

    /// Append `row`, returning where it landed. A new page is allocated when
    /// the current last page is full.
    pub fn insert(&mut self, disk: &mut SimDisk, row: &[Datum]) -> RecordId {
        let len = tuple::encoded_len(row);
        let mut buf = Vec::with_capacity(len);
        tuple::encode(row, &mut buf);

        let n_pages = disk.file_len(self.file);
        let target = if n_pages > 0 {
            let last = PageId::new(self.file, n_pages - 1);
            if SlottedPage::fits(disk.read(last), buf.len()) {
                Some(last)
            } else {
                None
            }
        } else {
            None
        };
        let pid = target.unwrap_or_else(|| {
            let pid = disk.allocate_page(self.file);
            SlottedPage::init(disk.write(pid));
            pid
        });
        let slot = SlottedPage::insert(disk.write(pid), &buf);
        self.tuple_count += 1;
        RecordId {
            page_no: pid.page_no,
            slot,
        }
    }

    /// Fetch the tuple at `rid`.
    pub fn read_tuple(&self, disk: &SimDisk, rid: RecordId) -> Tuple {
        let page = disk.read(PageId::new(self.file, rid.page_no));
        tuple::decode(SlottedPage::record(page, rid.slot))
    }

    /// Number of tuples on page `page_no`.
    pub fn tuples_on_page(&self, disk: &SimDisk, page_no: u32) -> u16 {
        SlottedPage::slot_count(disk.read(PageId::new(self.file, page_no)))
    }

    /// Decode every tuple on page `page_no` (in slot order).
    pub fn read_page(&self, disk: &SimDisk, page_no: u32) -> Vec<(RecordId, Tuple)> {
        let page = disk.read(PageId::new(self.file, page_no));
        let n = SlottedPage::slot_count(page);
        (0..n)
            .map(|slot| {
                (
                    RecordId { page_no, slot },
                    tuple::decode(SlottedPage::record(page, slot)),
                )
            })
            .collect()
    }

    /// Full scan in storage order (used for index builds and tests; the
    /// executor's SeqScan does its own paging so it can record the trace).
    pub fn scan<'a>(&'a self, disk: &'a SimDisk) -> impl Iterator<Item = (RecordId, Tuple)> + 'a {
        let pages = self.page_count(disk);
        (0..pages).flat_map(move |p| self.read_page(disk, p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(v: i64) -> Vec<Datum> {
        vec![Datum::Int(v), Datum::Int(v * 10)]
    }

    #[test]
    fn insert_and_fetch() {
        let mut disk = SimDisk::new();
        let mut h = HeapFile::create(&mut disk);
        let rid = h.insert(&mut disk, &row(7));
        assert_eq!(h.read_tuple(&disk, rid), row(7));
        assert_eq!(h.tuple_count(), 1);
    }

    #[test]
    fn spills_to_new_pages() {
        let mut disk = SimDisk::new();
        let mut h = HeapFile::create(&mut disk);
        for i in 0..1000 {
            h.insert(&mut disk, &row(i));
        }
        assert!(h.page_count(&disk) > 1, "1000 rows cannot fit one 2KB page");
        // Rows per page: 2 ints = 2+9+9=20 bytes + 4 slot = 24 -> ~85/page.
        let per_page = h.tuples_on_page(&disk, 0);
        assert!(per_page >= 80 && per_page <= 90, "got {per_page}");
    }

    #[test]
    fn scan_returns_all_in_order() {
        let mut disk = SimDisk::new();
        let mut h = HeapFile::create(&mut disk);
        for i in 0..500 {
            h.insert(&mut disk, &row(i));
        }
        let vals: Vec<i64> = h.scan(&disk).map(|(_, t)| t[0].as_int().unwrap()).collect();
        assert_eq!(vals, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn rids_are_dense_and_addressable() {
        let mut disk = SimDisk::new();
        let mut h = HeapFile::create(&mut disk);
        let rids: Vec<RecordId> = (0..300).map(|i| h.insert(&mut disk, &row(i))).collect();
        for (i, rid) in rids.iter().enumerate() {
            assert_eq!(h.read_tuple(&disk, *rid)[0], Datum::Int(i as i64));
        }
    }

    #[test]
    fn variable_width_rows() {
        let mut disk = SimDisk::new();
        let mut h = HeapFile::create(&mut disk);
        let wide = vec![Datum::Str("x".repeat(500))];
        let rids: Vec<_> = (0..10).map(|_| h.insert(&mut disk, &wide)).collect();
        assert!(h.page_count(&disk) >= 3);
        for rid in rids {
            assert_eq!(h.read_tuple(&disk, rid), wide);
        }
    }
}
