//! Slotted heap pages.
//!
//! Layout within a [`PAGE_SIZE`]-byte page:
//!
//! ```text
//! +-------------------+------------------------+--------------------+
//! | header (4 bytes)  | slot array (4 B each)  |  ...free...  data  |
//! +-------------------+------------------------+--------------------+
//!   u16 slot_count      per slot: u16 offset,      records grow from
//!   u16 free_end        u16 length                 the page tail
//! ```
//!
//! Records are never deleted or updated (the database is static, as in the
//! paper), so there is no compaction path.

use pythia_sim::PAGE_SIZE;

const HEADER: usize = 4;
const SLOT: usize = 4;

/// Read-only and append-only access to one slotted page.
pub struct SlottedPage;

impl SlottedPage {
    /// Initialize an empty slotted page in `buf`.
    pub fn init(buf: &mut [u8; PAGE_SIZE]) {
        buf[0..2].copy_from_slice(&0u16.to_le_bytes());
        buf[2..4].copy_from_slice(&(PAGE_SIZE as u16).to_le_bytes());
    }

    /// Number of records on the page.
    pub fn slot_count(buf: &[u8; PAGE_SIZE]) -> u16 {
        u16::from_le_bytes([buf[0], buf[1]])
    }

    fn free_end(buf: &[u8; PAGE_SIZE]) -> u16 {
        u16::from_le_bytes([buf[2], buf[3]])
    }

    /// Free bytes remaining (accounting for the slot the record would need).
    pub fn free_space(buf: &[u8; PAGE_SIZE]) -> usize {
        let slots_end = HEADER + Self::slot_count(buf) as usize * SLOT;
        (Self::free_end(buf) as usize).saturating_sub(slots_end)
    }

    /// Whether a record of `len` bytes fits.
    pub fn fits(buf: &[u8; PAGE_SIZE], len: usize) -> bool {
        Self::free_space(buf) >= len + SLOT
    }

    /// Append a record; returns its slot number.
    ///
    /// # Panics
    /// Panics if the record does not fit — callers must check [`Self::fits`].
    pub fn insert(buf: &mut [u8; PAGE_SIZE], record: &[u8]) -> u16 {
        assert!(Self::fits(buf, record.len()), "record does not fit in page");
        let n = Self::slot_count(buf);
        let end = Self::free_end(buf) as usize;
        let start = end - record.len();
        buf[start..end].copy_from_slice(record);
        let slot_off = HEADER + n as usize * SLOT;
        buf[slot_off..slot_off + 2].copy_from_slice(&(start as u16).to_le_bytes());
        buf[slot_off + 2..slot_off + 4].copy_from_slice(&(record.len() as u16).to_le_bytes());
        buf[0..2].copy_from_slice(&(n + 1).to_le_bytes());
        buf[2..4].copy_from_slice(&(start as u16).to_le_bytes());
        n
    }

    /// The bytes of record `slot`.
    ///
    /// # Panics
    /// Panics if `slot` is out of range.
    pub fn record(buf: &[u8; PAGE_SIZE], slot: u16) -> &[u8] {
        let n = Self::slot_count(buf);
        assert!(slot < n, "slot {slot} out of range ({n} slots)");
        let slot_off = HEADER + slot as usize * SLOT;
        let start = u16::from_le_bytes([buf[slot_off], buf[slot_off + 1]]) as usize;
        let len = u16::from_le_bytes([buf[slot_off + 2], buf[slot_off + 3]]) as usize;
        &buf[start..start + len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty() -> Box<[u8; PAGE_SIZE]> {
        let mut b = Box::new([0u8; PAGE_SIZE]);
        SlottedPage::init(&mut b);
        b
    }

    #[test]
    fn init_is_empty() {
        let b = empty();
        assert_eq!(SlottedPage::slot_count(&b), 0);
        assert_eq!(SlottedPage::free_space(&b), PAGE_SIZE - HEADER);
    }

    #[test]
    fn insert_and_read_back() {
        let mut b = empty();
        let s0 = SlottedPage::insert(&mut b, b"hello");
        let s1 = SlottedPage::insert(&mut b, b"world!");
        assert_eq!(s0, 0);
        assert_eq!(s1, 1);
        assert_eq!(SlottedPage::record(&b, 0), b"hello");
        assert_eq!(SlottedPage::record(&b, 1), b"world!");
        assert_eq!(SlottedPage::slot_count(&b), 2);
    }

    #[test]
    fn fills_until_capacity() {
        let mut b = empty();
        let rec = [7u8; 100];
        let mut n = 0;
        while SlottedPage::fits(&b, rec.len()) {
            SlottedPage::insert(&mut b, &rec);
            n += 1;
        }
        // 104 bytes per record (100 data + 4 slot) within 2044 usable.
        assert_eq!(n, (PAGE_SIZE - HEADER) / (100 + SLOT));
        // Everything still readable.
        for s in 0..n {
            assert_eq!(SlottedPage::record(&b, s as u16), &rec);
        }
    }

    #[test]
    fn zero_length_records() {
        let mut b = empty();
        let s = SlottedPage::insert(&mut b, b"");
        assert_eq!(SlottedPage::record(&b, s), b"");
    }

    #[test]
    #[should_panic]
    fn oversized_insert_panics() {
        let mut b = empty();
        SlottedPage::insert(&mut b, &vec![0u8; PAGE_SIZE]);
    }

    #[test]
    #[should_panic]
    fn bad_slot_panics() {
        let b = empty();
        SlottedPage::record(&b, 0);
    }
}
