//! Scan and filter predicates.
//!
//! DSB's SPJ templates use conjunctions of comparisons, BETWEEN ranges and IN
//! lists over integer columns — that is exactly the predicate language here.
//! Predicates reference columns by position in the operator's input tuple.

use crate::tuple::Tuple;
use crate::types::Datum;

/// Comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// SQL spelling (used by the plan serializer's `[PRED] col op val`
    /// tokens).
    pub fn sql(&self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    fn eval(&self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

/// A predicate over a tuple.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Pred {
    /// `col <op> literal` on an integer column. NULLs compare false.
    Cmp { col: usize, op: CmpOp, lit: i64 },
    /// `col IN (set)`.
    In { col: usize, set: Vec<i64> },
    /// `col BETWEEN lo AND hi` (inclusive).
    Between { col: usize, lo: i64, hi: i64 },
    /// Conjunction.
    And(Vec<Pred>),
}

impl Pred {
    /// Evaluate against `row`.
    pub fn eval(&self, row: &Tuple) -> bool {
        match self {
            Pred::Cmp { col, op, lit } => match &row[*col] {
                Datum::Int(v) => op.eval(*v, *lit),
                _ => false,
            },
            Pred::In { col, set } => match &row[*col] {
                Datum::Int(v) => set.contains(v),
                _ => false,
            },
            Pred::Between { col, lo, hi } => match &row[*col] {
                Datum::Int(v) => *v >= *lo && *v <= *hi,
                _ => false,
            },
            Pred::And(ps) => ps.iter().all(|p| p.eval(row)),
        }
    }

    /// Shift every column reference by `offset` (used when a predicate
    /// written against one side of a join is evaluated over the concatenated
    /// join output).
    pub fn shift_cols(&self, offset: usize) -> Pred {
        match self {
            Pred::Cmp { col, op, lit } => Pred::Cmp {
                col: col + offset,
                op: *op,
                lit: *lit,
            },
            Pred::In { col, set } => Pred::In {
                col: col + offset,
                set: set.clone(),
            },
            Pred::Between { col, lo, hi } => Pred::Between {
                col: col + offset,
                lo: *lo,
                hi: *hi,
            },
            Pred::And(ps) => Pred::And(ps.iter().map(|p| p.shift_cols(offset)).collect()),
        }
    }

    /// The atomic `(col, op-string, value-string)` triples in this predicate,
    /// flattened in order — the plan serializer turns each into
    /// `[PRED] colName opName valName` tokens (Algorithm 2).
    pub fn atoms(&self) -> Vec<(usize, String, String)> {
        let mut out = Vec::new();
        self.collect_atoms(&mut out);
        out
    }

    fn collect_atoms(&self, out: &mut Vec<(usize, String, String)>) {
        match self {
            Pred::Cmp { col, op, lit } => out.push((*col, op.sql().to_owned(), lit.to_string())),
            Pred::In { col, set } => {
                let vals = set
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(",");
                out.push((*col, "IN".to_owned(), vals));
            }
            Pred::Between { col, lo, hi } => {
                out.push((*col, ">=".to_owned(), lo.to_string()));
                out.push((*col, "<=".to_owned(), hi.to_string()));
            }
            Pred::And(ps) => {
                for p in ps {
                    p.collect_atoms(out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(vals: &[i64]) -> Tuple {
        vals.iter().map(|&v| Datum::Int(v)).collect()
    }

    #[test]
    fn cmp_ops() {
        let r = row(&[5]);
        for (op, expect) in [
            (CmpOp::Eq, true),
            (CmpOp::Ne, false),
            (CmpOp::Lt, false),
            (CmpOp::Le, true),
            (CmpOp::Gt, false),
            (CmpOp::Ge, true),
        ] {
            assert_eq!(Pred::Cmp { col: 0, op, lit: 5 }.eval(&r), expect, "{op:?}");
        }
    }

    #[test]
    fn in_and_between() {
        let r = row(&[5, 10]);
        assert!(Pred::In {
            col: 0,
            set: vec![1, 5, 9]
        }
        .eval(&r));
        assert!(!Pred::In {
            col: 0,
            set: vec![1, 9]
        }
        .eval(&r));
        assert!(Pred::Between {
            col: 1,
            lo: 10,
            hi: 20
        }
        .eval(&r));
        assert!(!Pred::Between {
            col: 1,
            lo: 11,
            hi: 20
        }
        .eval(&r));
    }

    #[test]
    fn and_conjunction() {
        let r = row(&[5, 10]);
        let p = Pred::And(vec![
            Pred::Cmp {
                col: 0,
                op: CmpOp::Eq,
                lit: 5,
            },
            Pred::Cmp {
                col: 1,
                op: CmpOp::Ge,
                lit: 10,
            },
        ]);
        assert!(p.eval(&r));
        let p2 = Pred::And(vec![
            Pred::Cmp {
                col: 0,
                op: CmpOp::Eq,
                lit: 5,
            },
            Pred::Cmp {
                col: 1,
                op: CmpOp::Gt,
                lit: 10,
            },
        ]);
        assert!(!p2.eval(&r));
    }

    #[test]
    fn null_compares_false() {
        let r = vec![Datum::Null];
        assert!(!Pred::Cmp {
            col: 0,
            op: CmpOp::Eq,
            lit: 0
        }
        .eval(&r));
        assert!(!Pred::In {
            col: 0,
            set: vec![0]
        }
        .eval(&r));
    }

    #[test]
    fn shift_cols_moves_references() {
        let p = Pred::And(vec![
            Pred::Cmp {
                col: 1,
                op: CmpOp::Eq,
                lit: 3,
            },
            Pred::Between {
                col: 0,
                lo: 1,
                hi: 2,
            },
        ]);
        let shifted = p.shift_cols(4);
        assert!(shifted.eval(&row(&[9, 9, 9, 9, 1, 3])));
    }

    #[test]
    fn atoms_flatten_in_order() {
        let p = Pred::And(vec![
            Pred::Cmp {
                col: 2,
                op: CmpOp::Ge,
                lit: 7,
            },
            Pred::In {
                col: 0,
                set: vec![1, 2],
            },
            Pred::Between {
                col: 1,
                lo: 5,
                hi: 6,
            },
        ]);
        let atoms = p.atoms();
        assert_eq!(atoms.len(), 4); // Between expands to two
        assert_eq!(atoms[0], (2, ">=".into(), "7".into()));
        assert_eq!(atoms[1], (0, "IN".into(), "1,2".into()));
        assert_eq!(atoms[2].1, ">=");
        assert_eq!(atoms[3].1, "<=");
    }
}
