//! Page-access traces.
//!
//! The paper's "lightweight instrumentation module that intercepts and logs
//! the page requests from the buffer manager" (§3.3, Trace Construction).
//! The executor emits one [`TraceEvent::Read`] per page request — including
//! the redundant repeated requests for index paths and hot heap pages — plus
//! [`TraceEvent::Cpu`] markers recording tuple-processing work between reads
//! (the replay runtime charges CPU time there, which is what asynchronous
//! prefetch I/O overlaps with).

use std::collections::BTreeMap;

use pythia_sim::PageId;

use crate::catalog::ObjectId;

/// How a page was accessed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Page read by a sequential scan (the OS readahead path).
    SeqScan,
    /// Internal B+Tree node on a probe path.
    IndexInternal,
    /// B+Tree leaf node.
    IndexLeaf,
    /// Heap page fetched through an index (non-sequential).
    HeapFetch,
}

impl AccessKind {
    /// Whether this access is part of a sequential pattern. Pythia's training
    /// pipeline removes sequential accesses (Algorithm 1 line 8) because OS
    /// readahead already covers them.
    pub fn is_sequential(&self) -> bool {
        matches!(self, AccessKind::SeqScan)
    }
}

/// One event in a query's execution trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A page request to the buffer manager.
    Read {
        obj: ObjectId,
        page: PageId,
        kind: AccessKind,
    },
    /// `units` tuples' worth of CPU work since the previous event.
    Cpu { units: u32 },
}

/// A query's full page-request trace, in execution order.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Number of page-read events (sequential + non-sequential, with
    /// repetitions).
    pub fn read_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Read { .. }))
            .count()
    }

    /// Number of sequential page reads.
    pub fn sequential_reads(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Read { kind, .. } if kind.is_sequential()))
            .count()
    }

    /// Total CPU units recorded.
    pub fn cpu_units(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e {
                TraceEvent::Cpu { units } => *units as u64,
                _ => 0,
            })
            .sum()
    }

    /// The paper's trace post-processing (Algorithm 1 lines 8–12): drop
    /// sequential accesses, deduplicate, group by database object, and sort
    /// each group by page offset. Returns `object -> sorted distinct page
    /// numbers`.
    pub fn non_sequential_sets(&self) -> BTreeMap<ObjectId, Vec<u32>> {
        let mut sets: BTreeMap<ObjectId, Vec<u32>> = BTreeMap::new();
        for e in &self.events {
            if let TraceEvent::Read { obj, page, kind } = e {
                if !kind.is_sequential() {
                    sets.entry(*obj).or_default().push(page.page_no);
                }
            }
        }
        for pages in sets.values_mut() {
            pages.sort_unstable();
            pages.dedup();
        }
        sets
    }

    /// Distinct non-sequential pages across all objects (the paper's
    /// "distinct non-sequential IO" statistic in Table 1).
    pub fn distinct_non_sequential(&self) -> usize {
        self.non_sequential_sets().values().map(Vec::len).sum()
    }

    /// The exact ordered page-request sequence (what the ORCL oracle
    /// baseline prefetches).
    pub fn page_sequence(&self) -> Vec<PageId> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Read { page, .. } => Some(*page),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pythia_sim::FileId;

    fn read(obj: u32, file: u32, page: u32, kind: AccessKind) -> TraceEvent {
        TraceEvent::Read {
            obj: ObjectId(obj),
            page: PageId::new(FileId(file), page),
            kind,
        }
    }

    fn sample() -> Trace {
        Trace {
            events: vec![
                read(0, 0, 0, AccessKind::SeqScan),
                TraceEvent::Cpu { units: 10 },
                read(1, 1, 5, AccessKind::IndexInternal),
                read(1, 1, 2, AccessKind::IndexLeaf),
                read(2, 2, 9, AccessKind::HeapFetch),
                read(0, 0, 1, AccessKind::SeqScan),
                TraceEvent::Cpu { units: 3 },
                read(1, 1, 5, AccessKind::IndexInternal), // repeated path
                read(1, 1, 3, AccessKind::IndexLeaf),
                read(2, 2, 9, AccessKind::HeapFetch), // repeated heap page
            ],
        }
    }

    #[test]
    fn counts() {
        let t = sample();
        assert_eq!(t.read_count(), 8);
        assert_eq!(t.sequential_reads(), 2);
        assert_eq!(t.cpu_units(), 13);
    }

    #[test]
    fn non_sequential_sets_dedup_and_sort() {
        let t = sample();
        let sets = t.non_sequential_sets();
        assert_eq!(sets.len(), 2);
        assert_eq!(sets[&ObjectId(1)], vec![2, 3, 5]);
        assert_eq!(sets[&ObjectId(2)], vec![9]);
        assert!(
            !sets.contains_key(&ObjectId(0)),
            "sequential-only object excluded"
        );
        assert_eq!(t.distinct_non_sequential(), 4);
    }

    #[test]
    fn page_sequence_preserves_order_and_repeats() {
        let t = sample();
        let seq = t.page_sequence();
        assert_eq!(seq.len(), 8);
        assert_eq!(seq[0].page_no, 0);
        assert_eq!(seq[1], seq[5], "repeated index root preserved");
        assert_eq!(seq[3], seq[7], "repeated heap page preserved");
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new();
        assert_eq!(t.read_count(), 0);
        assert!(t.non_sequential_sets().is_empty());
        assert_eq!(t.distinct_non_sequential(), 0);
    }
}
