//! Volcano executor with page-access instrumentation.
//!
//! Operators pull tuples from their children; every page the executor touches
//! is reported to the [`ExecContext`]'s trace, including repeated requests
//! (index paths, hot heap pages) — deduplication happens later in Pythia's
//! training pipeline, exactly as in the paper (Algorithm 1).
//!
//! Execution here is *untimed*: it computes results and the trace. Timing is
//! done by replaying the trace through the buffer manager in [`crate::runtime`].

use std::collections::HashMap;
use std::collections::VecDeque;

use pythia_sim::PageId;

use crate::btree::NodeKind;
use crate::catalog::{Database, ObjectId, TableId};
use crate::expr::Pred;
use crate::plan::{AggFunc, PlanNode};
use crate::trace::{AccessKind, Trace, TraceEvent};
use crate::tuple::Tuple;
use crate::types::Datum;

/// Execution context: the database plus the trace being recorded.
pub struct ExecContext<'a> {
    pub db: &'a Database,
    trace: Trace,
    cpu_pending: u32,
}

impl<'a> ExecContext<'a> {
    /// Fresh context over `db`.
    pub fn new(db: &'a Database) -> Self {
        ExecContext {
            db,
            trace: Trace::new(),
            cpu_pending: 0,
        }
    }

    /// Record a page request (flushes pending CPU work first so the trace
    /// interleaves CPU and I/O in execution order).
    pub fn record_read(&mut self, obj: ObjectId, page: PageId, kind: AccessKind) {
        if self.cpu_pending > 0 {
            self.trace.events.push(TraceEvent::Cpu {
                units: self.cpu_pending,
            });
            self.cpu_pending = 0;
        }
        self.trace.events.push(TraceEvent::Read { obj, page, kind });
    }

    /// Charge `units` tuples of CPU work.
    pub fn charge_cpu(&mut self, units: u32) {
        self.cpu_pending += units;
    }

    /// Finish and take the trace.
    pub fn into_trace(mut self) -> Trace {
        if self.cpu_pending > 0 {
            self.trace.events.push(TraceEvent::Cpu {
                units: self.cpu_pending,
            });
        }
        self.trace
    }
}

/// A Volcano operator.
trait Op {
    fn next(&mut self, ctx: &mut ExecContext<'_>) -> Option<Tuple>;
}

struct SeqScanOp {
    table: TableId,
    pred: Option<Pred>,
    page: u32,
    total_pages: u32,
    buffer: VecDeque<Tuple>,
}

impl Op for SeqScanOp {
    fn next(&mut self, ctx: &mut ExecContext<'_>) -> Option<Tuple> {
        loop {
            if let Some(row) = self.buffer.pop_front() {
                ctx.charge_cpu(1);
                match &self.pred {
                    Some(p) if !p.eval(&row) => continue,
                    _ => return Some(row),
                }
            }
            if self.page >= self.total_pages {
                return None;
            }
            let info = ctx.db.table_info(self.table);
            let pid = PageId::new(info.heap.file, self.page);
            ctx.record_read(info.object, pid, AccessKind::SeqScan);
            self.buffer.extend(
                info.heap
                    .read_page(&ctx.db.disk, self.page)
                    .into_iter()
                    .map(|(_, t)| t),
            );
            self.page += 1;
        }
    }
}

struct IndexScanOp {
    table: TableId,
    index: ObjectId,
    lo: i64,
    hi: i64,
    residual: Option<Pred>,
    started: bool,
    rids: VecDeque<crate::heap::RecordId>,
}

impl Op for IndexScanOp {
    fn next(&mut self, ctx: &mut ExecContext<'_>) -> Option<Tuple> {
        if !self.started {
            self.started = true;
            let idx = ctx.db.index_info(self.index);
            let obj = idx.object;
            let disk = &ctx.db.disk;
            // Collect visits, then record (can't borrow ctx mutably inside).
            let mut visits: Vec<(PageId, NodeKind)> = Vec::new();
            let matches = idx.btree.range(disk, self.lo, self.hi, &mut |pid, kind| {
                visits.push((pid, kind));
            });
            for (pid, kind) in visits {
                let ak = match kind {
                    NodeKind::Internal => AccessKind::IndexInternal,
                    NodeKind::Leaf => AccessKind::IndexLeaf,
                };
                ctx.record_read(obj, pid, ak);
            }
            self.rids.extend(matches.into_iter().map(|(_, rid)| rid));
        }
        loop {
            let rid = self.rids.pop_front()?;
            let info = ctx.db.table_info(self.table);
            let pid = PageId::new(info.heap.file, rid.page_no);
            ctx.record_read(info.object, pid, AccessKind::HeapFetch);
            let row = info.heap.read_tuple(&ctx.db.disk, rid);
            ctx.charge_cpu(1);
            match &self.residual {
                Some(p) if !p.eval(&row) => continue,
                _ => return Some(row),
            }
        }
    }
}

struct IndexNLJoinOp {
    outer: Box<dyn Op>,
    outer_key: usize,
    inner: TableId,
    inner_index: ObjectId,
    inner_pred: Option<Pred>,
    current_outer: Option<Tuple>,
    pending: VecDeque<crate::heap::RecordId>,
}

impl Op for IndexNLJoinOp {
    fn next(&mut self, ctx: &mut ExecContext<'_>) -> Option<Tuple> {
        loop {
            if let Some(rid) = self.pending.pop_front() {
                let info = ctx.db.table_info(self.inner);
                let pid = PageId::new(info.heap.file, rid.page_no);
                ctx.record_read(info.object, pid, AccessKind::HeapFetch);
                let inner_row = info.heap.read_tuple(&ctx.db.disk, rid);
                ctx.charge_cpu(1);
                if let Some(p) = &self.inner_pred {
                    if !p.eval(&inner_row) {
                        continue;
                    }
                }
                let mut out = self.current_outer.clone().expect("outer row present");
                out.extend(inner_row);
                return Some(out);
            }
            // Advance the outer side and probe.
            let outer_row = self.outer.next(ctx)?;
            let Some(key) = outer_row[self.outer_key].as_int() else {
                continue;
            };
            let idx = ctx.db.index_info(self.inner_index);
            let obj = idx.object;
            let mut visits: Vec<(PageId, NodeKind)> = Vec::new();
            let rids = idx.btree.search(&ctx.db.disk, key, &mut |pid, kind| {
                visits.push((pid, kind));
            });
            for (pid, kind) in visits {
                let ak = match kind {
                    NodeKind::Internal => AccessKind::IndexInternal,
                    NodeKind::Leaf => AccessKind::IndexLeaf,
                };
                ctx.record_read(obj, pid, ak);
            }
            ctx.charge_cpu(1);
            self.pending.extend(rids);
            self.current_outer = Some(outer_row);
        }
    }
}

struct HashJoinOp {
    build: Box<dyn Op>,
    probe: Box<dyn Op>,
    build_key: usize,
    probe_key: usize,
    table: Option<HashMap<i64, Vec<Tuple>>>,
    pending: VecDeque<Tuple>,
}

impl Op for HashJoinOp {
    fn next(&mut self, ctx: &mut ExecContext<'_>) -> Option<Tuple> {
        if self.table.is_none() {
            let mut table: HashMap<i64, Vec<Tuple>> = HashMap::new();
            while let Some(row) = self.build.next(ctx) {
                if let Some(k) = row[self.build_key].as_int() {
                    table.entry(k).or_default().push(row);
                }
                ctx.charge_cpu(1);
            }
            self.table = Some(table);
        }
        loop {
            if let Some(row) = self.pending.pop_front() {
                return Some(row);
            }
            let probe_row = self.probe.next(ctx)?;
            ctx.charge_cpu(1);
            let Some(k) = probe_row[self.probe_key].as_int() else {
                continue;
            };
            if let Some(matches) = self.table.as_ref().expect("built").get(&k) {
                for m in matches {
                    let mut out = probe_row.clone();
                    out.extend(m.iter().cloned());
                    self.pending.push_back(out);
                }
            }
        }
    }
}

struct FilterOp {
    input: Box<dyn Op>,
    pred: Pred,
}

impl Op for FilterOp {
    fn next(&mut self, ctx: &mut ExecContext<'_>) -> Option<Tuple> {
        loop {
            let row = self.input.next(ctx)?;
            ctx.charge_cpu(1);
            if self.pred.eval(&row) {
                return Some(row);
            }
        }
    }
}

struct AggregateOp {
    input: Box<dyn Op>,
    group_col: Option<usize>,
    agg: AggFunc,
    done: bool,
    output: VecDeque<Tuple>,
}

impl AggregateOp {
    fn fold(agg: AggFunc, acc: &mut i64, row: &Tuple) {
        match agg {
            AggFunc::CountStar => *acc += 1,
            AggFunc::Sum(c) => *acc += row[c].as_int().unwrap_or(0),
            AggFunc::Min(c) => {
                if let Some(v) = row[c].as_int() {
                    *acc = (*acc).min(v);
                }
            }
            AggFunc::Max(c) => {
                if let Some(v) = row[c].as_int() {
                    *acc = (*acc).max(v);
                }
            }
        }
    }

    fn init(agg: AggFunc) -> i64 {
        match agg {
            AggFunc::CountStar | AggFunc::Sum(_) => 0,
            AggFunc::Min(_) => i64::MAX,
            AggFunc::Max(_) => i64::MIN,
        }
    }
}

impl Op for AggregateOp {
    fn next(&mut self, ctx: &mut ExecContext<'_>) -> Option<Tuple> {
        if !self.done {
            self.done = true;
            match self.group_col {
                None => {
                    let mut acc = Self::init(self.agg);
                    let mut any = false;
                    while let Some(row) = self.input.next(ctx) {
                        any = true;
                        Self::fold(self.agg, &mut acc, &row);
                        ctx.charge_cpu(1);
                    }
                    // SQL: a non-grouped aggregate always yields one row;
                    // MIN/MAX/SUM of the empty set are NULL, COUNT is 0.
                    let out = if any || matches!(self.agg, AggFunc::CountStar) {
                        Datum::Int(acc)
                    } else {
                        Datum::Null
                    };
                    self.output.push_back(vec![out]);
                }
                Some(g) => {
                    let mut groups: HashMap<i64, i64> = HashMap::new();
                    while let Some(row) = self.input.next(ctx) {
                        let k = row[g].as_int().unwrap_or(i64::MIN);
                        let acc = groups.entry(k).or_insert_with(|| Self::init(self.agg));
                        Self::fold(self.agg, acc, &row);
                        ctx.charge_cpu(1);
                    }
                    let mut pairs: Vec<_> = groups.into_iter().collect();
                    pairs.sort_unstable();
                    for (k, v) in pairs {
                        self.output.push_back(vec![Datum::Int(k), Datum::Int(v)]);
                    }
                }
            }
        }
        self.output.pop_front()
    }
}

struct SortOp {
    input: Box<dyn Op>,
    col: usize,
    done: bool,
    output: VecDeque<Tuple>,
}

impl Op for SortOp {
    fn next(&mut self, ctx: &mut ExecContext<'_>) -> Option<Tuple> {
        if !self.done {
            self.done = true;
            let mut rows = Vec::new();
            while let Some(r) = self.input.next(ctx) {
                ctx.charge_cpu(1);
                rows.push(r);
            }
            let col = self.col;
            rows.sort_by(|a, b| a[col].cmp(&b[col]));
            self.output.extend(rows);
        }
        self.output.pop_front()
    }
}

struct LimitOp {
    input: Box<dyn Op>,
    remaining: usize,
}

impl Op for LimitOp {
    fn next(&mut self, ctx: &mut ExecContext<'_>) -> Option<Tuple> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.input.next(ctx)
    }
}

fn build_op(plan: &PlanNode, db: &Database) -> Box<dyn Op> {
    match plan {
        PlanNode::SeqScan { table, pred } => Box::new(SeqScanOp {
            table: *table,
            pred: pred.clone(),
            page: 0,
            total_pages: db.table_info(*table).heap.page_count(&db.disk),
            buffer: VecDeque::new(),
        }),
        PlanNode::IndexScan {
            table,
            index,
            lo,
            hi,
            residual,
        } => Box::new(IndexScanOp {
            table: *table,
            index: *index,
            lo: *lo,
            hi: *hi,
            residual: residual.clone(),
            started: false,
            rids: VecDeque::new(),
        }),
        PlanNode::IndexNLJoin {
            outer,
            outer_key,
            inner,
            inner_index,
            inner_pred,
        } => Box::new(IndexNLJoinOp {
            outer: build_op(outer, db),
            outer_key: *outer_key,
            inner: *inner,
            inner_index: *inner_index,
            inner_pred: inner_pred.clone(),
            current_outer: None,
            pending: VecDeque::new(),
        }),
        PlanNode::HashJoin {
            build,
            probe,
            build_key,
            probe_key,
        } => Box::new(HashJoinOp {
            build: build_op(build, db),
            probe: build_op(probe, db),
            build_key: *build_key,
            probe_key: *probe_key,
            table: None,
            pending: VecDeque::new(),
        }),
        PlanNode::Filter { input, pred } => Box::new(FilterOp {
            input: build_op(input, db),
            pred: pred.clone(),
        }),
        PlanNode::Aggregate {
            input,
            group_col,
            agg,
        } => Box::new(AggregateOp {
            input: build_op(input, db),
            group_col: *group_col,
            agg: *agg,
            done: false,
            output: VecDeque::new(),
        }),
        PlanNode::Sort { input, col } => Box::new(SortOp {
            input: build_op(input, db),
            col: *col,
            done: false,
            output: VecDeque::new(),
        }),
        PlanNode::Limit { input, n } => Box::new(LimitOp {
            input: build_op(input, db),
            remaining: *n,
        }),
    }
}

/// Execute `plan` against `db`, returning the result rows and the recorded
/// page-access trace.
pub fn execute(plan: &PlanNode, db: &Database) -> (Vec<Tuple>, Trace) {
    let mut ctx = ExecContext::new(db);
    let mut op = build_op(plan, db);
    let mut rows = Vec::new();
    while let Some(r) = op.next(&mut ctx) {
        rows.push(r);
    }
    (rows, ctx.into_trace())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use crate::types::Schema;

    /// fact(k, dkey): 2000 rows, dkey = k % 100.
    /// dim(id, attr): 100 rows, attr = id * 3, indexed on id.
    fn star_db() -> (Database, TableId, TableId, ObjectId) {
        let mut db = Database::new();
        let fact = db.create_table("fact", Schema::ints(&["k", "dkey"]));
        let dim = db.create_table("dim", Schema::ints(&["id", "attr"]));
        for i in 0..2000 {
            db.insert(fact, Database::row(&[i, i % 100]));
        }
        for i in 0..100 {
            db.insert(dim, Database::row(&[i, i * 3]));
        }
        let idx = db.create_index("dim_id", dim, 0);
        (db, fact, dim, idx)
    }

    #[test]
    fn seq_scan_returns_all_rows() {
        let (db, fact, _, _) = star_db();
        let (rows, trace) = execute(
            &PlanNode::SeqScan {
                table: fact,
                pred: None,
            },
            &db,
        );
        assert_eq!(rows.len(), 2000);
        let pages = db.table_info(fact).heap.page_count(&db.disk);
        assert_eq!(trace.read_count(), pages as usize);
        assert_eq!(trace.sequential_reads(), pages as usize);
    }

    #[test]
    fn seq_scan_filter() {
        let (db, fact, _, _) = star_db();
        let plan = PlanNode::SeqScan {
            table: fact,
            pred: Some(Pred::Cmp {
                col: 1,
                op: CmpOp::Eq,
                lit: 7,
            }),
        };
        let (rows, _) = execute(&plan, &db);
        assert_eq!(rows.len(), 20); // 2000/100
        assert!(rows.iter().all(|r| r[1] == Datum::Int(7)));
    }

    #[test]
    fn index_scan_range() {
        let (db, dim, _, _) = {
            let (db, _f, d, i) = star_db();
            (db, d, d, i)
        };
        let idx = db.index_on(dim, 0).unwrap().object;
        let plan = PlanNode::IndexScan {
            table: dim,
            index: idx,
            lo: 10,
            hi: 19,
            residual: None,
        };
        let (rows, trace) = execute(&plan, &db);
        assert_eq!(rows.len(), 10);
        // Index pages + heap fetches, all non-sequential.
        assert_eq!(trace.sequential_reads(), 0);
        assert!(trace.read_count() >= 11);
    }

    #[test]
    fn index_nl_join_matches_hash_join() {
        let (db, fact, dim, idx) = star_db();
        let nlj = PlanNode::IndexNLJoin {
            outer: Box::new(PlanNode::SeqScan {
                table: fact,
                pred: Some(Pred::Cmp {
                    col: 0,
                    op: CmpOp::Lt,
                    lit: 500,
                }),
            }),
            outer_key: 1,
            inner: dim,
            inner_index: idx,
            inner_pred: None,
        };
        let hj = PlanNode::HashJoin {
            build: Box::new(PlanNode::SeqScan {
                table: dim,
                pred: None,
            }),
            probe: Box::new(PlanNode::SeqScan {
                table: fact,
                pred: Some(Pred::Cmp {
                    col: 0,
                    op: CmpOp::Lt,
                    lit: 500,
                }),
            }),
            build_key: 0,
            probe_key: 1,
        };
        let (mut r1, t1) = execute(&nlj, &db);
        let (mut r2, _) = execute(&hj, &db);
        r1.sort();
        r2.sort();
        assert_eq!(r1.len(), 500);
        assert_eq!(r1, r2, "both joins emit outer/probe ++ inner/build");
        // NLJ probes are non-sequential; the fact scan is sequential.
        assert!(t1.sequential_reads() > 0);
        assert!(t1.read_count() > t1.sequential_reads());
    }

    #[test]
    fn nl_join_trace_interleaves_seq_and_probes() {
        let (db, fact, dim, idx) = star_db();
        let plan = PlanNode::IndexNLJoin {
            outer: Box::new(PlanNode::SeqScan {
                table: fact,
                pred: None,
            }),
            outer_key: 1,
            inner: dim,
            inner_index: idx,
            inner_pred: None,
        };
        let (_, trace) = execute(&plan, &db);
        // Find a SeqScan read that appears *after* some index read: proves
        // pipelined interleaving rather than phase-by-phase execution.
        let mut seen_index = false;
        let mut interleaved = false;
        for e in &trace.events {
            if let TraceEvent::Read { kind, .. } = e {
                match kind {
                    AccessKind::IndexInternal | AccessKind::IndexLeaf => seen_index = true,
                    AccessKind::SeqScan if seen_index => {
                        interleaved = true;
                        break;
                    }
                    _ => {}
                }
            }
        }
        assert!(interleaved, "fact pages must interleave with dim probes");
    }

    #[test]
    fn aggregate_count() {
        let (db, fact, _, _) = star_db();
        let plan = PlanNode::Aggregate {
            input: Box::new(PlanNode::SeqScan {
                table: fact,
                pred: None,
            }),
            group_col: None,
            agg: AggFunc::CountStar,
        };
        let (rows, _) = execute(&plan, &db);
        assert_eq!(rows, vec![vec![Datum::Int(2000)]]);
    }

    #[test]
    fn aggregate_grouped_sum() {
        let (db, fact, _, _) = star_db();
        let plan = PlanNode::Aggregate {
            input: Box::new(PlanNode::SeqScan {
                table: fact,
                pred: Some(Pred::Cmp {
                    col: 1,
                    op: CmpOp::Lt,
                    lit: 2,
                }),
            }),
            group_col: Some(1),
            agg: AggFunc::CountStar,
        };
        let (rows, _) = execute(&plan, &db);
        assert_eq!(
            rows,
            vec![
                vec![Datum::Int(0), Datum::Int(20)],
                vec![Datum::Int(1), Datum::Int(20)]
            ]
        );
    }

    #[test]
    fn sort_and_limit() {
        let (db, fact, _, _) = star_db();
        let plan = PlanNode::Limit {
            input: Box::new(PlanNode::Sort {
                input: Box::new(PlanNode::SeqScan {
                    table: fact,
                    pred: None,
                }),
                col: 1,
            }),
            n: 5,
        };
        let (rows, _) = execute(&plan, &db);
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().all(|r| r[1] == Datum::Int(0)));
    }

    #[test]
    fn min_max_aggregates() {
        let (db, fact, _, _) = star_db();
        for (agg, expect) in [(AggFunc::Min(0), 0i64), (AggFunc::Max(0), 1999)] {
            let plan = PlanNode::Aggregate {
                input: Box::new(PlanNode::SeqScan {
                    table: fact,
                    pred: None,
                }),
                group_col: None,
                agg,
            };
            let (rows, _) = execute(&plan, &db);
            assert_eq!(rows, vec![vec![Datum::Int(expect)]]);
        }
    }

    #[test]
    fn filter_node() {
        let (db, fact, _, _) = star_db();
        let plan = PlanNode::Filter {
            input: Box::new(PlanNode::SeqScan {
                table: fact,
                pred: None,
            }),
            pred: Pred::Between {
                col: 0,
                lo: 100,
                hi: 109,
            },
        };
        let (rows, _) = execute(&plan, &db);
        assert_eq!(rows.len(), 10);
    }

    #[test]
    fn index_scan_residual_filter() {
        let (db, _, dim, idx) = star_db();
        let plan = PlanNode::IndexScan {
            table: dim,
            index: idx,
            lo: 0,
            hi: 49,
            residual: Some(Pred::Cmp {
                col: 1,
                op: CmpOp::Ge,
                lit: 90,
            }),
        };
        let (rows, trace) = execute(&plan, &db);
        // dim attr = id*3; ids 0..=49 with attr >= 90 -> ids 30..=49.
        assert_eq!(rows.len(), 20);
        assert!(rows.iter().all(|r| r[1].as_int().unwrap() >= 90));
        // Heap pages for *all* 50 ids were still fetched (residual applies
        // after the read) — the paper's point that predicates don't reduce
        // heap I/O for index scans.
        let heap_fetches = trace
            .events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    TraceEvent::Read {
                        kind: AccessKind::HeapFetch,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(heap_fetches, 50);
    }

    #[test]
    fn limit_stops_scanning_early() {
        let (db, fact, _, _) = star_db();
        let full = execute(
            &PlanNode::SeqScan {
                table: fact,
                pred: None,
            },
            &db,
        )
        .1;
        let limited = execute(
            &PlanNode::Limit {
                input: Box::new(PlanNode::SeqScan {
                    table: fact,
                    pred: None,
                }),
                n: 5,
            },
            &db,
        )
        .1;
        assert!(
            limited.read_count() < full.read_count(),
            "LIMIT must not scan the whole table"
        );
        assert_eq!(limited.read_count(), 1, "5 rows fit in the first page");
    }

    #[test]
    fn empty_index_range_reads_only_index_pages() {
        let (db, _, dim, idx) = star_db();
        let plan = PlanNode::IndexScan {
            table: dim,
            index: idx,
            lo: 1000,
            hi: 2000,
            residual: None,
        };
        let (rows, trace) = execute(&plan, &db);
        assert!(rows.is_empty());
        assert!(trace.events.iter().all(|e| !matches!(
            e,
            TraceEvent::Read {
                kind: AccessKind::HeapFetch,
                ..
            }
        )));
    }

    #[test]
    fn trace_has_cpu_events() {
        let (db, fact, _, _) = star_db();
        let (_, trace) = execute(
            &PlanNode::SeqScan {
                table: fact,
                pred: None,
            },
            &db,
        );
        assert!(trace.cpu_units() >= 2000, "at least one unit per tuple");
    }
}
