//! Datums and schemas.
//!
//! The workload generator only needs integer and short-string columns (DSB's
//! join keys, surrogate keys and categorical attributes are all integers or
//! fixed-length codes), so the type system is deliberately small.

use std::fmt;

/// A single column value.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Datum {
    Int(i64),
    Str(String),
    Null,
}

impl Datum {
    /// The integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Datum::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Datum::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Datum::Null)
    }
}

impl fmt::Display for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datum::Int(v) => write!(f, "{v}"),
            Datum::Str(s) => write!(f, "'{s}'"),
            Datum::Null => write!(f, "NULL"),
        }
    }
}

impl From<i64> for Datum {
    fn from(v: i64) -> Self {
        Datum::Int(v)
    }
}

impl From<&str> for Datum {
    fn from(v: &str) -> Self {
        Datum::Str(v.to_owned())
    }
}

/// Declared type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataType {
    Int,
    Str,
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    pub name: String,
    pub ty: DataType,
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    pub columns: Vec<Column>,
}

impl Schema {
    /// Build a schema of integer columns from names (the common case).
    pub fn ints<S: AsRef<str>>(names: &[S]) -> Schema {
        Schema {
            columns: names
                .iter()
                .map(|n| Column {
                    name: n.as_ref().to_owned(),
                    ty: DataType::Int,
                })
                .collect(),
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of the column named `name`.
    pub fn col(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Column name at `idx` (for EXPLAIN output).
    pub fn name(&self, idx: usize) -> &str {
        &self.columns[idx].name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datum_accessors() {
        assert_eq!(Datum::Int(5).as_int(), Some(5));
        assert_eq!(Datum::Str("x".into()).as_int(), None);
        assert_eq!(Datum::Str("x".into()).as_str(), Some("x"));
        assert!(Datum::Null.is_null());
    }

    #[test]
    fn datum_ordering_within_ints() {
        assert!(Datum::Int(1) < Datum::Int(2));
    }

    #[test]
    fn schema_lookup() {
        let s = Schema::ints(&["a", "b", "c"]);
        assert_eq!(s.arity(), 3);
        assert_eq!(s.col("b"), Some(1));
        assert_eq!(s.col("z"), None);
        assert_eq!(s.name(2), "c");
    }

    #[test]
    fn datum_display() {
        assert_eq!(Datum::Int(7).to_string(), "7");
        assert_eq!(Datum::Str("hi".into()).to_string(), "'hi'");
        assert_eq!(Datum::Null.to_string(), "NULL");
    }

    #[test]
    fn conversions() {
        assert_eq!(Datum::from(3i64), Datum::Int(3));
        assert_eq!(Datum::from("s"), Datum::Str("s".into()));
    }
}
