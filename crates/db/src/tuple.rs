//! Tuples and their on-page byte encoding.
//!
//! Encoding (little-endian throughout):
//! `u16 arity`, then per datum a 1-byte tag (`0`=Int, `1`=Str, `2`=Null)
//! followed by the payload (`i64` for Int, `u16 len` + UTF-8 bytes for Str,
//! nothing for Null).

use crate::types::Datum;

/// A row: an ordered list of datums.
pub type Tuple = Vec<Datum>;

const TAG_INT: u8 = 0;
const TAG_STR: u8 = 1;
const TAG_NULL: u8 = 2;

/// Serialized size of `tuple` in bytes.
pub fn encoded_len(tuple: &[Datum]) -> usize {
    2 + tuple
        .iter()
        .map(|d| match d {
            Datum::Int(_) => 1 + 8,
            Datum::Str(s) => 1 + 2 + s.len(),
            Datum::Null => 1,
        })
        .sum::<usize>()
}

/// Append the encoding of `tuple` to `out`.
pub fn encode(tuple: &[Datum], out: &mut Vec<u8>) {
    out.extend_from_slice(&(tuple.len() as u16).to_le_bytes());
    for d in tuple {
        match d {
            Datum::Int(v) => {
                out.push(TAG_INT);
                out.extend_from_slice(&v.to_le_bytes());
            }
            Datum::Str(s) => {
                assert!(s.len() <= u16::MAX as usize, "string too long to encode");
                out.push(TAG_STR);
                out.extend_from_slice(&(s.len() as u16).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Datum::Null => out.push(TAG_NULL),
        }
    }
}

/// Decode one tuple from `bytes`.
///
/// # Panics
/// Panics on malformed input — page bytes are written only by [`encode`], so
/// corruption is an internal invariant violation, not a user error.
pub fn decode(bytes: &[u8]) -> Tuple {
    let arity = u16::from_le_bytes([bytes[0], bytes[1]]) as usize;
    let mut off = 2;
    let mut out = Vec::with_capacity(arity);
    for _ in 0..arity {
        let tag = bytes[off];
        off += 1;
        match tag {
            TAG_INT => {
                let v = i64::from_le_bytes(bytes[off..off + 8].try_into().expect("8 bytes"));
                off += 8;
                out.push(Datum::Int(v));
            }
            TAG_STR => {
                let len = u16::from_le_bytes([bytes[off], bytes[off + 1]]) as usize;
                off += 2;
                let s = std::str::from_utf8(&bytes[off..off + len]).expect("valid UTF-8");
                off += len;
                out.push(Datum::Str(s.to_owned()));
            }
            TAG_NULL => out.push(Datum::Null),
            other => panic!("corrupt tuple encoding: tag {other}"),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(t: &[Datum]) {
        let mut buf = Vec::new();
        encode(t, &mut buf);
        assert_eq!(buf.len(), encoded_len(t));
        assert_eq!(decode(&buf), t);
    }

    #[test]
    fn roundtrip_ints() {
        roundtrip(&[Datum::Int(0), Datum::Int(-1), Datum::Int(i64::MAX)]);
    }

    #[test]
    fn roundtrip_mixed() {
        roundtrip(&[Datum::Int(42), Datum::Str("hello".into()), Datum::Null]);
    }

    #[test]
    fn roundtrip_empty() {
        roundtrip(&[]);
    }

    #[test]
    fn roundtrip_empty_string() {
        roundtrip(&[Datum::Str(String::new())]);
    }

    #[test]
    fn encoded_len_matches() {
        let t = vec![Datum::Int(1), Datum::Str("abc".into())];
        assert_eq!(encoded_len(&t), 2 + 9 + 1 + 2 + 3);
    }
}
