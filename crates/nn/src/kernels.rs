//! Cache-blocked, register-tiled f32 GEMM microkernels with runtime ISA
//! dispatch — the floor the whole NN stack stands on.
//!
//! Three band-level entry points mirror the three matmul variants on
//! [`Tensor`](crate::Tensor): [`matmul_band`] (`C += A·B`), [`at_b_band`]
//! (`C += Aᵀ·B`) and [`a_bt_band`] (`C += A·Bᵀ`). Each computes a horizontal
//! band of output rows, which is exactly the unit the threaded paths in
//! `tensor.rs` hand to one worker — so the same kernels serve the serial and
//! banded-parallel paths.
//!
//! # Dispatch ladder
//!
//! At first use the module resolves one [`Isa`]:
//!
//! 1. `PYTHIA_SIMD=off|scalar` (or a runtime [`set_simd_override`]) forces
//!    the portable scalar kernels — for testing, bisection, and as the
//!    reference the SIMD paths are pinned against.
//! 2. On `x86_64`, `is_x86_feature_detected!("avx2")` selects the 8-lane
//!    AVX2 kernels (`fma` availability is detected and reported, but fused
//!    multiply-add is deliberately **not** used — see below).
//! 3. On `aarch64`, NEON (always present, still verified via
//!    `is_aarch64_feature_detected!`) selects the 4-lane kernels.
//! 4. Everywhere else: the scalar kernels.
//!
//! # Accumulation-order contract
//!
//! Every kernel produces **bit-identical** output to the canonical scalar
//! loops, across ISA, thread count, and band split. This holds because:
//!
//! * each output element is accumulated by exactly one thread, one product
//!   at a time, in ascending reduction-index order — blocking over the
//!   reduction dimension walks blocks in ascending order, and SIMD lanes are
//!   independent output *columns*, never partial sums of one element;
//! * every accumulation step is `round(acc + round(a*b))`, the same two
//!   roundings as the scalar `*o += a * bv`. FMA would contract this to one
//!   rounding and change bits, so the kernels use explicit mul-then-add even
//!   when `fma` is available;
//! * packing the `B` panel (and the `A` panel in [`at_b_band`]) is a pure
//!   copy; the transpose-pack in [`a_bt_band`] turns the scalar path's
//!   sequential dot product into the same ascending-index
//!   multiply-accumulate sequence, starting from the same `0.0`.
//!
//! `tests/proptest_kernels.rs` pins dispatched == forced-scalar on the full
//! bit pattern (NaN payloads included) across shapes and thread counts.
//!
//! # Blocking scheme
//!
//! `KC × NC` panels of `B` are packed once per block and reused across every
//! row of the band (`KC*NC*4 = 128 KiB`, sized for L2; the `MR × NR`
//! register tile streams it from there). The microkernel holds an
//! `MR=4`-row by `NR=16`-column accumulator tile in registers for the whole
//! `KC` pass — 8 YMM accumulators on AVX2, 16 q-registers on NEON — cutting
//! `C` traffic by `4·KC×` versus the naive axpy loop. [`at_b_band`]
//! additionally packs the strided `A`-column tile (`MC` rows at a time) so
//! its broadcast loads are contiguous.

#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
use std::sync::atomic::{AtomicU8, Ordering};
#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
use std::sync::OnceLock;

/// Register-tile height (output rows held in registers).
const MR: usize = 4;
/// Register-tile width in f32 columns (2×8 lanes on AVX2, 4×4 on NEON).
const NR: usize = 16;
/// Reduction-dimension block: the packed B panel covers `KC` steps.
const KC: usize = 256;
/// Output-column block: panel is `KC × NC` = 128 KiB of f32, sized for L2.
const NC: usize = 128;
/// Output-row block for the packed A tile in `at_b` (strided-source side).
const MC: usize = 64;
/// Below this many multiply-accumulates a band skips blocking/packing and
/// runs the plain scalar loops (identical bits, less setup).
const BLOCK_THRESHOLD: usize = 4096;

/// Instruction set a band call dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Isa {
    /// Portable scalar loops — the canonical accumulation order.
    Scalar,
    /// 8-lane AVX2 kernels (x86_64).
    Avx2,
    /// 4-lane NEON kernels (aarch64).
    Neon,
}

/// Runtime dispatch override, taking precedence over `PYTHIA_SIMD`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdOverride {
    /// No override: honour `PYTHIA_SIMD`, else auto-detect.
    Env,
    /// Force the scalar fallback (the bit-identity reference).
    ForceScalar,
    /// Auto-detect even if `PYTHIA_SIMD=off` — benches/tests compare both
    /// arms in one process regardless of the environment.
    ForceDetect,
}

#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Force or clear the dispatch mode at runtime (mirrors
/// [`pool::set_thread_override`](crate::pool::set_thread_override)). Safe to
/// flip mid-process: every kernel produces identical bits regardless, so a
/// concurrent reader only ever changes speed, never values.
pub fn set_simd_override(mode: SimdOverride) {
    #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
    OVERRIDE.store(
        match mode {
            SimdOverride::Env => 0,
            SimdOverride::ForceScalar => 1,
            SimdOverride::ForceDetect => 2,
        },
        Ordering::SeqCst,
    );
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    let _ = mode; // no SIMD arm exists; dispatch is always scalar
}

/// `PYTHIA_SIMD` parsed once: `true` = forced off.
#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
fn env_forces_scalar() -> bool {
    static ENV_OFF: OnceLock<bool> = OnceLock::new();
    *ENV_OFF.get_or_init(|| {
        matches!(
            std::env::var("PYTHIA_SIMD").as_deref().map(str::trim),
            Ok("off") | Ok("scalar") | Ok("0")
        )
    })
}

/// CPU-feature detection, cached after the first call.
#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
fn detected_isa() -> Isa {
    static DETECTED: OnceLock<Isa> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            return Isa::Avx2;
        }
        #[cfg(target_arch = "aarch64")]
        if std::arch::is_aarch64_feature_detected!("neon") {
            return Isa::Neon;
        }
        Isa::Scalar
    })
}

/// The ISA the next band call will dispatch to: runtime override, then
/// `PYTHIA_SIMD`, then CPU-feature detection.
pub fn active_isa() -> Isa {
    #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
    {
        match OVERRIDE.load(Ordering::SeqCst) {
            1 => Isa::Scalar,
            2 => detected_isa(),
            _ if env_forces_scalar() => Isa::Scalar,
            _ => detected_isa(),
        }
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    Isa::Scalar
}

/// Human-readable label of the *detected* hardware arm (ignoring overrides),
/// for perf snapshots: `"avx2+fma"`, `"avx2"`, `"neon"`, or `"scalar"`.
pub fn detected_isa_label() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        return if std::arch::is_x86_feature_detected!("fma") {
            "avx2+fma"
        } else {
            "avx2"
        };
    }
    #[cfg(target_arch = "aarch64")]
    if std::arch::is_aarch64_feature_detected!("neon") {
        return "neon";
    }
    "scalar"
}

// ---------------------------------------------------------------------------
// Band entry points (called by `Tensor`'s serial and banded-parallel paths)
// ---------------------------------------------------------------------------

/// Accumulate rows `[start, start+rows_here)` of `A×B` into `out_band`
/// (`A: [?,k]` row-major, `B: [k,n]`; `out_band` holds exactly those rows).
/// Per element: `out[i,j] += Σ_kk a[i,kk]·b[kk,j]`, `kk` ascending.
pub fn matmul_band(
    a: &[f32],
    b: &[f32],
    out_band: &mut [f32],
    k: usize,
    n: usize,
    start: usize,
    rows_here: usize,
) {
    let isa = active_isa();
    if isa == Isa::Scalar || n < lanes(isa) || rows_here * k * n < BLOCK_THRESHOLD {
        return matmul_band_scalar(a, b, out_band, k, n, start, rows_here);
    }
    let mut pack = vec![0.0f32; KC.min(k) * NC.min(n)];
    let mut jb = 0;
    while jb < n {
        let nb = NC.min(n - jb);
        let mut kb = 0;
        while kb < k {
            let kc = KC.min(k - kb);
            // Pack B[kb..kb+kc, jb..jb+nb] row-major into the panel.
            for c in 0..kc {
                pack[c * nb..(c + 1) * nb].copy_from_slice(&b[(kb + c) * n + jb..][..nb]);
            }
            // Reuse the packed panel across every row tile of the band.
            let mut i = 0;
            while i < rows_here {
                let mr = MR.min(rows_here - i);
                // SAFETY: alpha points at A row `start+i`, offset `kb`, and
                // the tile reads `mr` rows (stride k) × `kc` steps (stride
                // 1), all within `a`; `out` points at band row `i`, column
                // `jb`, and the tile writes `mr` rows (stride n) × `nb`
                // columns, all within `out_band`; the panel holds `kc*nb`
                // packed floats.
                unsafe {
                    tile(
                        isa,
                        Panel {
                            alpha: a.as_ptr().add((start + i) * k + kb),
                            a_rs: k,
                            a_cs: 1,
                            out: out_band.as_mut_ptr().add(i * n + jb),
                            out_rs: n,
                        },
                        pack.as_ptr(),
                        kc,
                        nb,
                        mr,
                    );
                }
                i += mr;
            }
            kb += kc;
        }
        jb += nb;
    }
}

/// Accumulate out rows `[start, start+rows_here)` of `AᵀB` into `out_band`
/// (`A: [m,k]`, `B: [m,n]`). Per element: `out[r,j] += Σ_i a[i,start+r]·b[i,j]`,
/// `i` ascending — the same order as `A.transpose().matmul(B)`.
#[allow(clippy::too_many_arguments)] // band geometry: two operands + split
pub fn at_b_band(
    a: &[f32],
    b: &[f32],
    out_band: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    start: usize,
    rows_here: usize,
) {
    let isa = active_isa();
    if isa == Isa::Scalar || n < lanes(isa) || rows_here * m * n < BLOCK_THRESHOLD {
        return at_b_band_scalar(a, b, out_band, m, k, n, start, rows_here);
    }
    let mut pack = vec![0.0f32; KC.min(m) * NC.min(n)];
    let mut apack = vec![0.0f32; KC.min(m) * MC.min(rows_here)];
    let mut jb = 0;
    while jb < n {
        let nb = NC.min(n - jb);
        let mut ib = 0;
        // The reduction dimension is `m`; blocks must ascend so every output
        // element still sums `i` in ascending order.
        while ib < m {
            let kc = KC.min(m - ib);
            for c in 0..kc {
                pack[c * nb..(c + 1) * nb].copy_from_slice(&b[(ib + c) * n + jb..][..nb]);
            }
            let mut rb = 0;
            while rb < rows_here {
                let mc = MC.min(rows_here - rb);
                // Pack the strided A columns [start+rb, start+rb+mc) over
                // reduction rows [ib, ib+kc) so broadcasts are contiguous.
                for c in 0..kc {
                    apack[c * mc..(c + 1) * mc]
                        .copy_from_slice(&a[(ib + c) * k + start + rb..][..mc]);
                }
                let mut i = 0;
                while i < mc {
                    let mr = MR.min(mc - i);
                    // SAFETY: alpha points into the packed A tile (row
                    // stride 1, step stride `mc`, `mr`×`kc` reads in
                    // bounds); `out` points at band row `rb+i`, column `jb`
                    // (`mr` rows stride n × `nb` cols in bounds); the B
                    // panel holds `kc*nb` floats.
                    unsafe {
                        tile(
                            isa,
                            Panel {
                                alpha: apack.as_ptr().add(i),
                                a_rs: 1,
                                a_cs: mc,
                                out: out_band.as_mut_ptr().add((rb + i) * n + jb),
                                out_rs: n,
                            },
                            pack.as_ptr(),
                            kc,
                            nb,
                            mr,
                        );
                    }
                    i += mr;
                }
                rb += mc;
            }
            ib += kc;
        }
        jb += nb;
    }
}

/// Accumulate rows `[start, start+rows_here)` of `ABᵀ` into `out_band`
/// (`A: [?,k]`, `B: [n,k]`). Per element: `out[i,j] += Σ_c a[i,c]·b[j,c]`,
/// `c` ascending from a zero accumulator — the same order as the scalar dot
/// product and as `A.matmul(&B.transpose())`.
pub fn a_bt_band(
    a: &[f32],
    b: &[f32],
    out_band: &mut [f32],
    k: usize,
    n: usize,
    start: usize,
    rows_here: usize,
) {
    let isa = active_isa();
    if isa == Isa::Scalar || n < lanes(isa) || rows_here * k * n < BLOCK_THRESHOLD {
        return a_bt_band_scalar(a, b, out_band, k, n, start, rows_here);
    }
    let mut pack = vec![0.0f32; KC.min(k) * NC.min(n)];
    let mut jb = 0;
    while jb < n {
        let nb = NC.min(n - jb);
        let mut kb = 0;
        while kb < k {
            let kc = KC.min(k - kb);
            // Transpose-pack Bᵀ[kb..kb+kc, jb..jb+nb]: after this the
            // microkernel sees the same `[kc, nb]` layout as plain matmul.
            for (j, col) in (jb..jb + nb).enumerate() {
                let brow = &b[col * k + kb..][..kc];
                for (c, &v) in brow.iter().enumerate() {
                    pack[c * nb + j] = v;
                }
            }
            let mut i = 0;
            while i < rows_here {
                let mr = MR.min(rows_here - i);
                // SAFETY: same bounds argument as `matmul_band` — alpha
                // walks A rows `start+i..start+i+mr` over steps `kb..kb+kc`,
                // out covers band rows `i..i+mr`, columns `jb..jb+nb`, and
                // the panel holds `kc*nb` packed floats.
                unsafe {
                    tile(
                        isa,
                        Panel {
                            alpha: a.as_ptr().add((start + i) * k + kb),
                            a_rs: k,
                            a_cs: 1,
                            out: out_band.as_mut_ptr().add(i * n + jb),
                            out_rs: n,
                        },
                        pack.as_ptr(),
                        kc,
                        nb,
                        mr,
                    );
                }
                i += mr;
            }
            kb += kc;
        }
        jb += nb;
    }
}

/// Vector width (in f32) of the ISA's narrowest useful tile.
fn lanes(isa: Isa) -> usize {
    match isa {
        Isa::Scalar => usize::MAX,
        Isa::Avx2 => 8,
        Isa::Neon => 4,
    }
}

// ---------------------------------------------------------------------------
// Canonical scalar kernels — the accumulation-order reference
// ---------------------------------------------------------------------------
//
// These define the exact floating-point behaviour every SIMD kernel must
// reproduce. Note there is deliberately *no* `a == 0.0` skip: skipping a
// zero multiplier would drop `0.0 * inf = NaN` / `0.0 * NaN` propagation
// (and can flip signed zeros), silently breaking the "bit-identical to
// naive" contract when an operand holds non-finite values.

fn matmul_band_scalar(
    a: &[f32],
    b: &[f32],
    out_band: &mut [f32],
    k: usize,
    n: usize,
    start: usize,
    rows_here: usize,
) {
    for i in 0..rows_here {
        let a_row = &a[(start + i) * k..(start + i + 1) * k];
        let out_row = &mut out_band[i * n..(i + 1) * n];
        // Unroll the reduction by 2: each element still receives its two
        // products as separate sequential adds, preserving the order.
        let mut kk = 0;
        while kk + 2 <= k {
            let (a0, a1) = (a_row[kk], a_row[kk + 1]);
            let b0 = &b[kk * n..(kk + 1) * n];
            let b1 = &b[(kk + 1) * n..(kk + 2) * n];
            for ((o, &v0), &v1) in out_row.iter_mut().zip(b0).zip(b1) {
                *o += a0 * v0;
                *o += a1 * v1;
            }
            kk += 2;
        }
        if kk < k {
            let a0 = a_row[kk];
            let b0 = &b[kk * n..(kk + 1) * n];
            for (o, &v0) in out_row.iter_mut().zip(b0) {
                *o += a0 * v0;
            }
        }
    }
}

#[allow(clippy::too_many_arguments)] // band geometry: two operands + split
fn at_b_band_scalar(
    a: &[f32],
    b: &[f32],
    out_band: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    start: usize,
    rows_here: usize,
) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let b_row = &b[i * n..(i + 1) * n];
        for r in 0..rows_here {
            let v = a_row[start + r];
            let out_row = &mut out_band[r * n..(r + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += v * bv;
            }
        }
    }
}

fn a_bt_band_scalar(
    a: &[f32],
    b: &[f32],
    out_band: &mut [f32],
    k: usize,
    n: usize,
    start: usize,
    rows_here: usize,
) {
    for i in 0..rows_here {
        let a_row = &a[(start + i) * k..(start + i + 1) * k];
        let out_row = &mut out_band[i * n..(i + 1) * n];
        for (j, o) in out_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            // Single sequential accumulator: the same order the packed SIMD
            // path replays column-wise.
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            *o += acc;
        }
    }
}

// ---------------------------------------------------------------------------
// Register-tile microkernels
// ---------------------------------------------------------------------------

/// One register tile's view of the operands: a broadcast source (`alpha`,
/// strided by output row `a_rs` and reduction step `a_cs`) and an output
/// tile (`out`, row stride `out_rs`). Raw pointers because the tiles
/// overlap slice borrows across calls; each call's bounds are argued at the
/// call site.
#[derive(Clone, Copy)]
struct Panel {
    alpha: *const f32,
    a_rs: usize,
    a_cs: usize,
    out: *mut f32,
    out_rs: usize,
}

/// Dispatch one `mr × nb` tile over the packed panel to the ISA kernel.
///
/// # Safety
/// `p.alpha` must be readable at `r*a_rs + c*a_cs` and `p.out`
/// readable+writable at `r*out_rs + j` for all `r < mr`, `c < kc`, `j < nb`;
/// `bp` must hold `kc * nb` floats; the selected ISA must be supported by
/// the running CPU (guaranteed by [`active_isa`]'s feature detection).
unsafe fn tile(isa: Isa, p: Panel, bp: *const f32, kc: usize, nb: usize, mr: usize) {
    match isa {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => {
            if mr == MR {
                mk4_avx2(p, bp, kc, nb);
            } else {
                for r in 0..mr {
                    mk1_avx2(row_panel(p, r), bp, kc, nb);
                }
            }
        }
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => {
            if mr == MR {
                mk4_neon(p, bp, kc, nb);
            } else {
                for r in 0..mr {
                    mk1_neon(row_panel(p, r), bp, kc, nb);
                }
            }
        }
        _ => {
            let _ = (p, bp, kc, nb, mr); // arch without a SIMD arm
            unreachable!("scalar dispatch never reaches the blocked driver")
        }
    }
}

/// `p` shifted down to its `r`-th output row (a 1-row panel).
///
/// # Safety
/// Row `r < mr` must be in bounds for both the alpha and out views.
#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
unsafe fn row_panel(p: Panel, r: usize) -> Panel {
    Panel {
        alpha: p.alpha.add(r * p.a_rs),
        out: p.out.add(r * p.out_rs),
        ..p
    }
}

/// Scalar remainder columns `[j0, nb)` of an `rows`-row tile: per element,
/// ascending reduction order — identical to the canonical scalar kernels.
///
/// # Safety
/// Same bounds contract as [`tile`], restricted to columns `[j0, nb)`.
#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
#[inline(always)]
unsafe fn tail_cols(p: Panel, bp: *const f32, kc: usize, nb: usize, rows: usize, j0: usize) {
    for r in 0..rows {
        for j in j0..nb {
            let o = p.out.add(r * p.out_rs + j);
            let mut v = *o;
            for c in 0..kc {
                v += *p.alpha.add(r * p.a_rs + c * p.a_cs) * *bp.add(c * nb + j);
            }
            *o = v;
        }
    }
}

/// Generates the AVX2 microkernels for a fixed register-tile height `$R`.
///
/// The accumulators stay in YMM registers for the whole `kc` pass; each
/// lane is one output element, updated as `acc = add(acc, mul(alpha, b))` —
/// explicitly *not* `fmadd`, to keep the two-rounding scalar semantics.
#[cfg(target_arch = "x86_64")]
macro_rules! avx2_microkernel {
    ($name:ident, $R:literal) => {
        /// # Safety
        /// Caller guarantees AVX2 is available and the [`tile`] bounds
        /// contract with `mr == $R`.
        #[target_feature(enable = "avx2")]
        unsafe fn $name(p: Panel, bp: *const f32, kc: usize, nb: usize) {
            use std::arch::x86_64::*;
            let mut j = 0usize;
            // 16-wide tiles: 2 vectors × $R rows of accumulators.
            while j + 2 * 8 <= nb {
                let mut acc = [[_mm256_setzero_ps(); 2]; $R];
                for r in 0..$R {
                    acc[r][0] = _mm256_loadu_ps(p.out.add(r * p.out_rs + j));
                    acc[r][1] = _mm256_loadu_ps(p.out.add(r * p.out_rs + j + 8));
                }
                for c in 0..kc {
                    let b0 = _mm256_loadu_ps(bp.add(c * nb + j));
                    let b1 = _mm256_loadu_ps(bp.add(c * nb + j + 8));
                    for r in 0..$R {
                        let al = _mm256_set1_ps(*p.alpha.add(r * p.a_rs + c * p.a_cs));
                        acc[r][0] = _mm256_add_ps(acc[r][0], _mm256_mul_ps(al, b0));
                        acc[r][1] = _mm256_add_ps(acc[r][1], _mm256_mul_ps(al, b1));
                    }
                }
                for r in 0..$R {
                    _mm256_storeu_ps(p.out.add(r * p.out_rs + j), acc[r][0]);
                    _mm256_storeu_ps(p.out.add(r * p.out_rs + j + 8), acc[r][1]);
                }
                j += 2 * 8;
            }
            // One remaining 8-wide tile.
            if j + 8 <= nb {
                let mut acc = [_mm256_setzero_ps(); $R];
                for r in 0..$R {
                    acc[r] = _mm256_loadu_ps(p.out.add(r * p.out_rs + j));
                }
                for c in 0..kc {
                    let b0 = _mm256_loadu_ps(bp.add(c * nb + j));
                    for r in 0..$R {
                        let al = _mm256_set1_ps(*p.alpha.add(r * p.a_rs + c * p.a_cs));
                        acc[r] = _mm256_add_ps(acc[r], _mm256_mul_ps(al, b0));
                    }
                }
                for r in 0..$R {
                    _mm256_storeu_ps(p.out.add(r * p.out_rs + j), acc[r]);
                }
                j += 8;
            }
            if j < nb {
                // SAFETY: narrows the caller's bounds contract to the tail.
                tail_cols(p, bp, kc, nb, $R, j);
            }
        }
    };
}

#[cfg(target_arch = "x86_64")]
avx2_microkernel!(mk4_avx2, 4);
#[cfg(target_arch = "x86_64")]
avx2_microkernel!(mk1_avx2, 1);

/// Generates the NEON microkernels for a fixed register-tile height `$R`.
///
/// Same structure as the AVX2 kernels with 4-lane vectors; `vaddq`/`vmulq`
/// rather than `vmlaq`/`vfmaq` — FMLA would fuse the rounding and break bit
/// identity with the scalar reference.
#[cfg(target_arch = "aarch64")]
macro_rules! neon_microkernel {
    ($name:ident, $R:literal) => {
        /// # Safety
        /// Caller guarantees NEON is available and the [`tile`] bounds
        /// contract with `mr == $R`.
        #[target_feature(enable = "neon")]
        unsafe fn $name(p: Panel, bp: *const f32, kc: usize, nb: usize) {
            use std::arch::aarch64::*;
            let mut j = 0usize;
            // 16-wide tiles: 4 vectors × $R rows of accumulators.
            while j + 4 * 4 <= nb {
                let mut acc = [[vdupq_n_f32(0.0); 4]; $R];
                for r in 0..$R {
                    for v in 0..4 {
                        acc[r][v] = vld1q_f32(p.out.add(r * p.out_rs + j + 4 * v));
                    }
                }
                for c in 0..kc {
                    let mut bv = [vdupq_n_f32(0.0); 4];
                    for (v, bvv) in bv.iter_mut().enumerate() {
                        *bvv = vld1q_f32(bp.add(c * nb + j + 4 * v));
                    }
                    for r in 0..$R {
                        let al = vdupq_n_f32(*p.alpha.add(r * p.a_rs + c * p.a_cs));
                        for v in 0..4 {
                            acc[r][v] = vaddq_f32(acc[r][v], vmulq_f32(al, bv[v]));
                        }
                    }
                }
                for r in 0..$R {
                    for v in 0..4 {
                        vst1q_f32(p.out.add(r * p.out_rs + j + 4 * v), acc[r][v]);
                    }
                }
                j += 4 * 4;
            }
            // Remaining 4-wide tiles.
            while j + 4 <= nb {
                let mut acc = [vdupq_n_f32(0.0); $R];
                for r in 0..$R {
                    acc[r] = vld1q_f32(p.out.add(r * p.out_rs + j));
                }
                for c in 0..kc {
                    let b0 = vld1q_f32(bp.add(c * nb + j));
                    for r in 0..$R {
                        let al = vdupq_n_f32(*p.alpha.add(r * p.a_rs + c * p.a_cs));
                        acc[r] = vaddq_f32(acc[r], vmulq_f32(al, b0));
                    }
                }
                for r in 0..$R {
                    vst1q_f32(p.out.add(r * p.out_rs + j), acc[r]);
                }
                j += 4;
            }
            if j < nb {
                // SAFETY: narrows the caller's bounds contract to the tail.
                tail_cols(p, bp, kc, nb, $R, j);
            }
        }
    };
}

#[cfg(target_arch = "aarch64")]
neon_microkernel!(mk4_neon, 4);
#[cfg(target_arch = "aarch64")]
neon_microkernel!(mk1_neon, 1);

#[cfg(test)]
mod tests {
    use super::*;

    /// Run `f` with dispatch forced to `mode`, restoring `Env` even on
    /// panic (tests in one process share the override).
    fn with_override<T>(mode: SimdOverride, f: impl FnOnce() -> T) -> T {
        struct Restore;
        impl Drop for Restore {
            fn drop(&mut self) {
                set_simd_override(SimdOverride::Env);
            }
        }
        let _g = Restore;
        set_simd_override(mode);
        f()
    }

    fn fill(len: usize, seed: u64) -> Vec<f32> {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        (0..len)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let v = ((s >> 40) as i32 % 1000) as f32 / 97.0 - 4.0;
                // Sprinkle exact zeros to exercise the no-skip contract.
                if s.is_multiple_of(11) {
                    0.0
                } else {
                    v
                }
            })
            .collect()
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    /// All three variants, dispatched vs forced-scalar, over shapes chosen
    /// to hit every blocking boundary: lane tails (NR±1), panel edges
    /// (NC±1, KC±1), row-tile remainders (MR±1, MC±1), and degenerate 1×N /
    /// N×1 bands.
    #[test]
    fn dispatched_matches_scalar_on_blocking_boundaries() {
        let shapes: &[(usize, usize, usize)] = &[
            (1, 1, 1),
            (1, 300, 1),
            (1, 1, 300),
            (3, 7, 15),
            (4, 16, 16),
            (5, 17, 17),
            (2, 255, 127),
            (2, 256, 128),
            (2, 257, 129),
            (63, 31, 24),
            (64, 32, 25),
            (65, 33, 26),
            (7, 130, 140),
        ];
        for &(m, k, n) in shapes {
            let a = fill(m * k, (m * 31 + k * 7 + n) as u64);
            let b = fill(k * n, (m + k * 13 + n * 3) as u64);
            let bt = fill(n * k, (m * 5 + k + n * 11) as u64); // B for a_bt: [n,k]
            let b2 = fill(m * n, (m * 17 + k * 3 + n * 7) as u64); // B for at_b: [m,n]

            let run = |mode| {
                with_override(mode, || {
                    let mut mm = vec![0.0f32; m * n];
                    matmul_band(&a, &b, &mut mm, k, n, 0, m);
                    let mut ab = vec![0.0f32; m * n];
                    a_bt_band(&a, &bt, &mut ab, k, n, 0, m);
                    let mut atb = vec![0.0f32; k * n];
                    at_b_band(&a, &b2, &mut atb, m, k, n, 0, k);
                    (mm, ab, atb)
                })
            };
            let scalar = run(SimdOverride::ForceScalar);
            let simd = run(SimdOverride::ForceDetect);
            assert_eq!(bits(&scalar.0), bits(&simd.0), "matmul {m}x{k}x{n}");
            assert_eq!(bits(&scalar.1), bits(&simd.1), "a_bt {m}x{k}x{n}");
            assert_eq!(bits(&scalar.2), bits(&simd.2), "at_b {m}x{k}x{n}");
        }
    }

    /// Band splits (the threaded path's unit) must agree with the full-band
    /// call bit for bit under SIMD dispatch.
    #[test]
    fn band_splits_match_full_band() {
        let (m, k, n) = (37, 65, 47);
        let a = fill(m * k, 5);
        let b = fill(k * n, 6);
        with_override(SimdOverride::ForceDetect, || {
            let mut full = vec![0.0f32; m * n];
            matmul_band(&a, &b, &mut full, k, n, 0, m);
            let mut banded = vec![0.0f32; m * n];
            let mut start = 0;
            for band in [5usize, 13, 19] {
                matmul_band(
                    &a,
                    &b,
                    &mut banded[start * n..(start + band) * n],
                    k,
                    n,
                    start,
                    band,
                );
                start += band;
            }
            assert_eq!(bits(&full), bits(&banded));
        });
    }

    /// A zero multiplier against inf/NaN must propagate NaN (no zero-skip)
    /// in both dispatch arms.
    #[test]
    fn zero_times_nonfinite_propagates() {
        for mode in [SimdOverride::ForceScalar, SimdOverride::ForceDetect] {
            with_override(mode, || {
                // out = [0, 1] × [inf; 2] → 0*inf + 1*2 = NaN.
                let mut out = vec![0.0f32; 1];
                matmul_band(&[0.0, 1.0], &[f32::INFINITY, 2.0], &mut out, 2, 1, 0, 1);
                assert!(out[0].is_nan(), "matmul dropped 0*inf ({mode:?})");

                let mut out = vec![0.0f32; 1];
                a_bt_band(&[0.0, 1.0], &[f32::NAN, 2.0], &mut out, 2, 1, 0, 1);
                assert!(out[0].is_nan(), "a_bt dropped 0*NaN ({mode:?})");

                // Aᵀ: a = [0; 1] (column), b rows [inf], [2].
                let mut out = vec![0.0f32; 1];
                at_b_band(&[0.0, 1.0], &[f32::INFINITY, 2.0], &mut out, 2, 1, 1, 0, 1);
                assert!(out[0].is_nan(), "at_b dropped 0*inf ({mode:?})");
            });
        }
    }

    #[test]
    fn override_forces_scalar() {
        with_override(SimdOverride::ForceScalar, || {
            assert_eq!(active_isa(), Isa::Scalar);
        });
    }

    #[test]
    fn detected_label_matches_isa() {
        let label = detected_isa_label();
        with_override(SimdOverride::ForceDetect, || match active_isa() {
            Isa::Scalar => assert_eq!(label, "scalar"),
            Isa::Avx2 => assert!(label.starts_with("avx2")),
            Isa::Neon => assert_eq!(label, "neon"),
        });
    }
}
