//! # pythia-nn
//!
//! A from-scratch neural-network library sufficient to reproduce the paper's
//! model on CPU: the paper trains, in PyTorch, an embedding layer, a 2-layer
//! multi-head-self-attention transformer encoder and a feed-forward
//! multi-label decoder with `BCEWithLogitsLoss` and Adam (§5.1 "Pythia
//! Model"). This crate provides exactly those pieces:
//!
//! * [`Tensor`] — dense row-major `f32` matrices with a threaded matmul.
//! * [`kernels`] — cache-blocked, register-tiled GEMM microkernels with
//!   runtime ISA dispatch (AVX2 / NEON / portable scalar, `PYTHIA_SIMD`
//!   override); every path accumulates in the same fixed order so outputs
//!   are bit-identical across ISA and thread count.
//! * [`Tape`] / [`Var`] — eager tape-based reverse-mode autograd.
//! * [`layers`] — `Linear`, `Embedding`, `LayerNorm`, multi-head
//!   self-attention, transformer encoder layers, positional encodings.
//! * [`Adam`] — the Adam optimizer; [`bce_with_logits`] — the multi-label
//!   objective (with optional positive-class weighting for the extremely
//!   sparse page labels).
//!
//! Design: parameters live in a [`ParamSet`] of plain tensors. Every training
//! step *injects* them into a fresh [`Tape`] as leaves, builds the forward
//! graph eagerly, calls [`Tape::backward`], and hands gradients to the
//! optimizer. No graph caching, no aliasing — simple and easy to verify
//! against finite differences (see the property tests).

//!
//! Parallelism: [`pool`] owns the workspace-wide thread-count policy
//! (`PYTHIA_THREADS`, runtime-overridable) and a deterministic scoped
//! map used by both the matmul row bands here and the per-object model
//! fleet in `pythia-core`.

pub mod init;
pub mod kernels;
pub mod layers;
pub mod optim;
pub mod pool;
pub mod tape;
pub mod tensor;

pub use optim::{grad_l2_norm, Adam, Sgd};
pub use tape::{bce_with_logits, ParamSet, Tape, Var};
pub use tensor::Tensor;
