//! Neural layers: each registers its parameters in a [`ParamSet`] at
//! construction and, given the injected parameter vars, builds its forward
//! graph on a [`Tape`].
//!
//! The shapes mirror the paper's model (§5.1): token embedding to 100 dims,
//! sinusoidal position information, two transformer encoder layers with 10
//! attention heads, and a feed-forward decoder with one 800-unit hidden
//! layer.

use crate::init::{positional_encoding, Initializer};
use crate::tape::{ParamId, ParamSet, Tape, Var};
use crate::tensor::Tensor;

/// Fully connected layer `y = xW + b`.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Linear {
    w: ParamId,
    b: ParamId,
    pub in_dim: usize,
    pub out_dim: usize,
}

impl Linear {
    /// Register a `[in_dim, out_dim]` linear layer.
    pub fn new(
        params: &mut ParamSet,
        init: &mut Initializer,
        name: &str,
        in_dim: usize,
        out_dim: usize,
    ) -> Self {
        let w = params.add(&format!("{name}.w"), init.xavier(in_dim, out_dim));
        let b = params.add(&format!("{name}.b"), Tensor::zeros(1, out_dim));
        Linear {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Forward `[m, in_dim] -> [m, out_dim]` via the fused matmul+bias op
    /// (one tape node, transpose-free backward).
    pub fn forward(&self, tape: &mut Tape, vars: &[Var], x: Var) -> Var {
        tape.linear(x, vars[self.w.0], vars[self.b.0])
    }
}

/// Learned token embedding plus fixed sinusoidal positional encoding.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Embedding {
    table: ParamId,
    pe: Tensor,
    pub vocab: usize,
    pub dim: usize,
}

impl Embedding {
    /// Register an embedding for `vocab` tokens of `dim` dims; positions up
    /// to `max_len` get sinusoidal encodings added.
    pub fn new(
        params: &mut ParamSet,
        init: &mut Initializer,
        name: &str,
        vocab: usize,
        dim: usize,
        max_len: usize,
    ) -> Self {
        let table = params.add(&format!("{name}.table"), init.normal(vocab, dim, 0.02));
        Embedding {
            table,
            pe: positional_encoding(max_len, dim),
            vocab,
            dim,
        }
    }

    /// Embed a token sequence: `[len] -> [len, dim]` (with positions added).
    ///
    /// # Panics
    /// Panics if the sequence is longer than `max_len` or an id exceeds the
    /// vocabulary.
    pub fn forward(&self, tape: &mut Tape, vars: &[Var], ids: &[usize]) -> Var {
        assert!(ids.len() <= self.pe.rows(), "sequence longer than max_len");
        let emb = tape.embed(vars[self.table.0], ids);
        let pe_slice = Tensor::from_fn(ids.len(), self.dim, |r, c| self.pe.get(r, c));
        tape.add_const(emb, &pe_slice)
    }

    /// Embed a packed batch of `batch` sequences of equal `seq_len`
    /// (`ids.len() == batch * seq_len`); positions restart per sequence.
    pub fn forward_packed(
        &self,
        tape: &mut Tape,
        vars: &[Var],
        ids: &[usize],
        seq_len: usize,
    ) -> Var {
        assert!(seq_len <= self.pe.rows(), "sequence longer than max_len");
        assert_eq!(
            ids.len() % seq_len,
            0,
            "packed batch not a multiple of seq_len"
        );
        let emb = tape.embed(vars[self.table.0], ids);
        let pe_tiled = Tensor::from_fn(ids.len(), self.dim, |r, c| self.pe.get(r % seq_len, c));
        tape.add_const(emb, &pe_tiled)
    }
}

/// Learned layer-norm gain/bias.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct LayerNorm {
    gain: ParamId,
    bias: ParamId,
}

impl LayerNorm {
    pub fn new(params: &mut ParamSet, name: &str, dim: usize) -> Self {
        let gain = params.add(&format!("{name}.gain"), Tensor::full(1, dim, 1.0));
        let bias = params.add(&format!("{name}.bias"), Tensor::zeros(1, dim));
        LayerNorm { gain, bias }
    }

    pub fn forward(&self, tape: &mut Tape, vars: &[Var], x: Var) -> Var {
        tape.layer_norm(x, vars[self.gain.0], vars[self.bias.0])
    }
}

/// Multi-head self-attention (no masking: the serialized plan is fully
/// visible, as in an encoder).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct MultiHeadSelfAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    pub heads: usize,
    pub dim: usize,
}

impl MultiHeadSelfAttention {
    /// `dim` must be divisible by `heads`.
    pub fn new(
        params: &mut ParamSet,
        init: &mut Initializer,
        name: &str,
        dim: usize,
        heads: usize,
    ) -> Self {
        assert_eq!(dim % heads, 0, "dim {dim} not divisible by heads {heads}");
        MultiHeadSelfAttention {
            wq: Linear::new(params, init, &format!("{name}.wq"), dim, dim),
            wk: Linear::new(params, init, &format!("{name}.wk"), dim, dim),
            wv: Linear::new(params, init, &format!("{name}.wv"), dim, dim),
            wo: Linear::new(params, init, &format!("{name}.wo"), dim, dim),
            heads,
            dim,
        }
    }

    /// `[len, dim] -> [len, dim]`.
    pub fn forward(&self, tape: &mut Tape, vars: &[Var], x: Var) -> Var {
        let dh = self.dim / self.heads;
        let q = self.wq.forward(tape, vars, x);
        let k = self.wk.forward(tape, vars, x);
        let v = self.wv.forward(tape, vars, x);
        let scale = 1.0 / (dh as f32).sqrt();
        let mut head_outs = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let qh = tape.slice_cols(q, h * dh, dh);
            let kh = tape.slice_cols(k, h * dh, dh);
            let vh = tape.slice_cols(v, h * dh, dh);
            let kt = tape.transpose(kh);
            let scores = tape.matmul(qh, kt);
            let scaled = tape.scale(scores, scale);
            let attn = tape.softmax_rows(scaled);
            head_outs.push(tape.matmul(attn, vh));
        }
        let merged = tape.concat_cols(&head_outs);
        self.wo.forward(tape, vars, merged)
    }

    /// Batched attention over a packed `[batch*seq_len, dim]` input. The QKV
    /// and output projections run as single large matmuls (the CPU-speed
    /// trick); only the `[seq_len × seq_len]` attention itself is
    /// per-sample. `lens[b]` is the real (un-padded) length of sequence `b`;
    /// padded key positions are masked out of the softmax.
    pub fn forward_packed(
        &self,
        tape: &mut Tape,
        vars: &[Var],
        x: Var,
        seq_len: usize,
        lens: &[usize],
    ) -> Var {
        let batch = lens.len();
        assert_eq!(
            tape.value(x).rows(),
            batch * seq_len,
            "packed shape mismatch"
        );
        let dh = self.dim / self.heads;
        let q = self.wq.forward(tape, vars, x);
        let k = self.wk.forward(tape, vars, x);
        let v = self.wv.forward(tape, vars, x);
        let scale = 1.0 / (dh as f32).sqrt();
        let mut sample_outs = Vec::with_capacity(batch);
        for (b, &blen) in lens.iter().enumerate() {
            let qb = tape.slice_rows(q, b * seq_len, seq_len);
            let kb = tape.slice_rows(k, b * seq_len, seq_len);
            let vb = tape.slice_rows(v, b * seq_len, seq_len);
            // Mask: -1e9 on key columns past the sample's real length.
            let real = blen.min(seq_len).max(1);
            let mask = Tensor::from_fn(seq_len, seq_len, |_, c| if c < real { 0.0 } else { -1e9 });
            let mut head_outs = Vec::with_capacity(self.heads);
            for h in 0..self.heads {
                let qh = tape.slice_cols(qb, h * dh, dh);
                let kh = tape.slice_cols(kb, h * dh, dh);
                let vh = tape.slice_cols(vb, h * dh, dh);
                let kt = tape.transpose(kh);
                let scores = tape.matmul(qh, kt);
                let scaled = tape.scale(scores, scale);
                let masked = tape.add_const(scaled, &mask);
                let attn = tape.softmax_rows(masked);
                head_outs.push(tape.matmul(attn, vh));
            }
            sample_outs.push(tape.concat_cols(&head_outs));
        }
        let merged = tape.concat_rows(&sample_outs);
        self.wo.forward(tape, vars, merged)
    }
}

/// One post-norm transformer encoder layer:
/// `x = LN(x + MHA(x)); x = LN(x + FF(x))` — PyTorch's default
/// `nn.TransformerEncoderLayer` structure with ReLU activation.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct TransformerEncoderLayer {
    attn: MultiHeadSelfAttention,
    ln1: LayerNorm,
    ff1: Linear,
    ff2: Linear,
    ln2: LayerNorm,
}

impl TransformerEncoderLayer {
    pub fn new(
        params: &mut ParamSet,
        init: &mut Initializer,
        name: &str,
        dim: usize,
        heads: usize,
        ff_dim: usize,
    ) -> Self {
        TransformerEncoderLayer {
            attn: MultiHeadSelfAttention::new(params, init, &format!("{name}.attn"), dim, heads),
            ln1: LayerNorm::new(params, &format!("{name}.ln1"), dim),
            ff1: Linear::new(params, init, &format!("{name}.ff1"), dim, ff_dim),
            ff2: Linear::new(params, init, &format!("{name}.ff2"), ff_dim, dim),
            ln2: LayerNorm::new(params, &format!("{name}.ln2"), dim),
        }
    }

    pub fn forward(&self, tape: &mut Tape, vars: &[Var], x: Var) -> Var {
        let a = self.attn.forward(tape, vars, x);
        self.finish(tape, vars, x, a)
    }

    /// Batched variant over a packed `[batch*seq_len, dim]` input.
    pub fn forward_packed(
        &self,
        tape: &mut Tape,
        vars: &[Var],
        x: Var,
        seq_len: usize,
        lens: &[usize],
    ) -> Var {
        let a = self.attn.forward_packed(tape, vars, x, seq_len, lens);
        self.finish(tape, vars, x, a)
    }

    /// Residual + LN + feed-forward + residual + LN (shape-agnostic).
    fn finish(&self, tape: &mut Tape, vars: &[Var], x: Var, attn_out: Var) -> Var {
        let res1 = tape.add(x, attn_out);
        let x = self.ln1.forward(tape, vars, res1);
        let h = self.ff1.forward(tape, vars, x);
        let h = tape.relu(h);
        let h = self.ff2.forward(tape, vars, h);
        let res2 = tape.add(x, h);
        self.ln2.forward(tape, vars, res2)
    }
}

/// A stack of encoder layers over an embedded sequence; the final query
/// representation is the *last token's* embedding, as in the paper ("we use
/// ... the last token's embedding as the final query representation").
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct TransformerEncoder {
    pub embedding: Embedding,
    layers: Vec<TransformerEncoderLayer>,
    pub dim: usize,
}

impl TransformerEncoder {
    #[allow(clippy::too_many_arguments)] // mirrors the paper's hyperparameter list
    pub fn new(
        params: &mut ParamSet,
        init: &mut Initializer,
        name: &str,
        vocab: usize,
        dim: usize,
        heads: usize,
        ff_dim: usize,
        n_layers: usize,
        max_len: usize,
    ) -> Self {
        let embedding = Embedding::new(params, init, &format!("{name}.emb"), vocab, dim, max_len);
        let layers = (0..n_layers)
            .map(|l| {
                TransformerEncoderLayer::new(
                    params,
                    init,
                    &format!("{name}.layer{l}"),
                    dim,
                    heads,
                    ff_dim,
                )
            })
            .collect();
        TransformerEncoder {
            embedding,
            layers,
            dim,
        }
    }

    /// Encode a token sequence to its `[len, dim]` contextual embeddings.
    pub fn forward_sequence(&self, tape: &mut Tape, vars: &[Var], ids: &[usize]) -> Var {
        let mut x = self.embedding.forward(tape, vars, ids);
        for layer in &self.layers {
            x = layer.forward(tape, vars, x);
        }
        x
    }

    /// Encode and return the last token's `[1, dim]` representation.
    pub fn encode(&self, tape: &mut Tape, vars: &[Var], ids: &[usize]) -> Var {
        let seq = self.forward_sequence(tape, vars, ids);
        let len = ids.len();
        tape.gather_rows(seq, &[len - 1])
    }

    /// Encode a whole batch of sequences at once, padding to the longest with
    /// `pad_id`; returns the `[batch, dim]` matrix of last-real-token
    /// representations. All projection matmuls run batched, which is what
    /// makes CPU training practical.
    pub fn encode_batch(
        &self,
        tape: &mut Tape,
        vars: &[Var],
        seqs: &[&[usize]],
        pad_id: usize,
    ) -> Var {
        assert!(!seqs.is_empty());
        let seq_len = seqs
            .iter()
            .map(|s| s.len())
            .max()
            .expect("non-empty")
            .max(1);
        let lens: Vec<usize> = seqs.iter().map(|s| s.len().max(1)).collect();
        let mut packed = Vec::with_capacity(seqs.len() * seq_len);
        for s in seqs {
            packed.extend_from_slice(s);
            packed.extend(std::iter::repeat_n(pad_id, seq_len - s.len()));
        }
        let mut x = self.embedding.forward_packed(tape, vars, &packed, seq_len);
        for layer in &self.layers {
            x = layer.forward_packed(tape, vars, x, seq_len, &lens);
        }
        let last_idxs: Vec<usize> = lens
            .iter()
            .enumerate()
            .map(|(b, &l)| b * seq_len + l - 1)
            .collect();
        tape.gather_rows(x, &last_idxs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::bce_with_logits;

    fn setup() -> (ParamSet, Initializer) {
        (ParamSet::new(), Initializer::new(42))
    }

    #[test]
    fn linear_shapes_and_bias() {
        let (mut p, mut init) = setup();
        let lin = Linear::new(&mut p, &mut init, "l", 4, 3);
        // Force a recognizable bias.
        *p.get_mut(lin.b) = Tensor::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        *p.get_mut(lin.w) = Tensor::zeros(4, 3);
        let mut tape = Tape::new();
        let vars = p.inject(&mut tape);
        let x = tape.leaf(Tensor::full(2, 4, 1.0));
        let y = lin.forward(&mut tape, &vars, x);
        assert_eq!(tape.value(y).shape(), (2, 3));
        assert_eq!(tape.value(y).row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(tape.value(y).row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn embedding_adds_positions() {
        let (mut p, mut init) = setup();
        let emb = Embedding::new(&mut p, &mut init, "e", 10, 6, 16);
        let mut tape = Tape::new();
        let vars = p.inject(&mut tape);
        // Same token at two positions must differ (positional encoding).
        let y = emb.forward(&mut tape, &vars, &[3, 3]);
        let v = tape.value(y);
        assert_eq!(v.shape(), (2, 6));
        assert_ne!(v.row(0), v.row(1));
    }

    #[test]
    #[should_panic]
    fn embedding_rejects_long_sequences() {
        let (mut p, mut init) = setup();
        let emb = Embedding::new(&mut p, &mut init, "e", 10, 6, 2);
        let mut tape = Tape::new();
        let vars = p.inject(&mut tape);
        emb.forward(&mut tape, &vars, &[1, 2, 3]);
    }

    #[test]
    fn attention_output_shape_and_grads() {
        let (mut p, mut init) = setup();
        let mha = MultiHeadSelfAttention::new(&mut p, &mut init, "a", 8, 2);
        let mut tape = Tape::new();
        let vars = p.inject(&mut tape);
        let x = tape.leaf(Initializer::new(1).uniform(5, 8, 1.0));
        let y = mha.forward(&mut tape, &vars, x);
        assert_eq!(tape.value(y).shape(), (5, 8));
        // All attention params receive gradients.
        let targets = Tensor::zeros(5, 8);
        let loss = bce_with_logits(&mut tape, y, targets, 1.0);
        let grads = tape.backward(loss);
        for v in &vars {
            assert!(grads.try_get(*v).is_some(), "param without grad");
        }
    }

    #[test]
    fn encoder_layer_preserves_shape() {
        let (mut p, mut init) = setup();
        let layer = TransformerEncoderLayer::new(&mut p, &mut init, "t", 8, 2, 16);
        let mut tape = Tape::new();
        let vars = p.inject(&mut tape);
        let x = tape.leaf(Initializer::new(2).uniform(7, 8, 1.0));
        let y = layer.forward(&mut tape, &vars, x);
        assert_eq!(tape.value(y).shape(), (7, 8));
    }

    #[test]
    fn encoder_last_token_representation() {
        let (mut p, mut init) = setup();
        let enc = TransformerEncoder::new(&mut p, &mut init, "enc", 20, 8, 2, 16, 2, 32);
        let mut tape = Tape::new();
        let vars = p.inject(&mut tape);
        let q = enc.encode(&mut tape, &vars, &[1, 5, 7, 2]);
        assert_eq!(tape.value(q).shape(), (1, 8));
        // Different sequences produce different representations.
        let q2 = enc.encode(&mut tape, &vars, &[1, 5, 7, 3]);
        assert!(tape.value(q).max_abs_diff(tape.value(q2)) > 1e-6);
    }

    #[test]
    fn encoder_is_order_sensitive() {
        // Positional encodings + attention: token order must matter.
        let (mut p, mut init) = setup();
        let enc = TransformerEncoder::new(&mut p, &mut init, "enc", 20, 8, 2, 16, 1, 32);
        let mut tape = Tape::new();
        let vars = p.inject(&mut tape);
        let a = enc.encode(&mut tape, &vars, &[4, 9, 9, 4]);
        let b = enc.encode(&mut tape, &vars, &[9, 4, 4, 9]);
        assert!(tape.value(a).max_abs_diff(tape.value(b)) > 1e-6);
    }

    #[test]
    fn encode_batch_matches_single_encode() {
        // Batched (packed, masked) encoding must agree with the per-sample
        // path for every sequence, including ones shorter than the pad width.
        let (mut p, mut init) = setup();
        let enc = TransformerEncoder::new(&mut p, &mut init, "enc", 20, 8, 2, 16, 2, 32);
        let mut tape = Tape::new();
        let vars = p.inject(&mut tape);
        let seqs: Vec<Vec<usize>> = vec![vec![1, 5, 7, 2, 9], vec![4, 4], vec![3, 1, 2]];
        let refs: Vec<&[usize]> = seqs.iter().map(|s| s.as_slice()).collect();
        let batch = enc.encode_batch(&mut tape, &vars, &refs, 0);
        for (b, s) in seqs.iter().enumerate() {
            let single = enc.encode(&mut tape, &vars, s);
            let bv = tape.value(batch).row(b).to_vec();
            let sv = tape.value(single).row(0).to_vec();
            let diff = bv
                .iter()
                .zip(&sv)
                .map(|(a, c)| (a - c).abs())
                .fold(0.0f32, f32::max);
            assert!(diff < 1e-4, "sample {b}: batched vs single diff {diff}");
        }
    }

    #[test]
    fn whole_encoder_trains_end_to_end() {
        // Overfit two sequences to opposite single-logit labels.
        let (mut p, mut init) = setup();
        let enc = TransformerEncoder::new(&mut p, &mut init, "enc", 10, 8, 2, 16, 1, 16);
        let head = Linear::new(&mut p, &mut init, "head", 8, 1);
        let mut adam = crate::optim::Adam::new(&p, 0.01);
        let data = [(vec![1usize, 2, 3], 1.0f32), (vec![3usize, 2, 1], 0.0)];
        let mut last_loss = f32::INFINITY;
        for epoch in 0..120 {
            let mut tape = Tape::new();
            let vars = p.inject(&mut tape);
            let reps: Vec<Var> = data
                .iter()
                .map(|(ids, _)| enc.encode(&mut tape, &vars, ids))
                .collect();
            let batch = tape.stack_rows(&reps);
            let logits = head.forward(&mut tape, &vars, batch);
            let targets = Tensor::from_vec(2, 1, data.iter().map(|(_, t)| *t).collect());
            let loss = bce_with_logits(&mut tape, logits, targets, 1.0);
            last_loss = tape.value(loss).get(0, 0);
            let grads = tape.backward(loss);
            adam.step(&mut p, &vars, &grads);
            if epoch == 0 {
                assert!(last_loss > 0.1);
            }
        }
        assert!(last_loss < 0.05, "did not overfit: loss {last_loss}");
    }
}
