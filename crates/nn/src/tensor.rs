//! Dense row-major `f32` matrices.
//!
//! Everything the Pythia model needs is rank-2 (sequences are `[len, dim]`,
//! batches are `[batch, dim]`), so this is deliberately a matrix type rather
//! than a general tensor. The hot operations are [`Tensor::matmul`] and the
//! transpose-free variants: each splits its output into row bands,
//! parallelized with scoped threads once the work is large enough to
//! amortize spawning, and every band is computed by the cache-blocked,
//! runtime-dispatched SIMD microkernels in [`crate::kernels`] — bit-identical
//! to the scalar reference at any ISA, thread count, or band split.

use crate::kernels::{a_bt_band, at_b_band, matmul_band};
use std::fmt;

/// A dense row-major matrix of `f32`.
#[derive(Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Tensor {
    data: Vec<f32>,
    rows: usize,
    cols: usize,
}

/// Work threshold (multiply-accumulate count) above which matmul fans out to
/// threads.
const PAR_THRESHOLD: usize = 1 << 20;

impl Tensor {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Tensor {
        Tensor {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// A matrix filled with `v`.
    pub fn full(rows: usize, cols: usize, v: f32) -> Tensor {
        Tensor {
            data: vec![v; rows * cols],
            rows,
            cols,
        }
    }

    /// Build from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Tensor {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Tensor { data, rows, cols }
    }

    /// Take the flat row-major buffer (tape buffer recycling).
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Build by evaluating `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Tensor {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Tensor { data, rows, cols }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Set element at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat row-major view.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable view.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Elementwise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&v| f(v)).collect(),
            rows: self.rows,
            cols: self.cols,
        }
    }

    /// Elementwise addition.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "add shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Tensor {
            data,
            rows: self.rows,
            cols: self.cols,
        }
    }

    /// In-place `self += scale * other`.
    pub fn add_scaled(&mut self, other: &Tensor, scale: f32) {
        assert_eq!(self.shape(), other.shape(), "add_scaled shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Scalar multiply.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|v| v * s)
    }

    /// Transpose.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Matrix product `self × other`.
    ///
    /// # Panics
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols,
            other.rows,
            "matmul shape mismatch: {:?} x {:?}",
            self.shape(),
            other.shape()
        );
        let mut out = Tensor::zeros(self.rows, other.cols);
        let work = self.rows * self.cols * other.cols;
        if work < PAR_THRESHOLD || self.rows < 2 {
            matmul_band(
                &self.data,
                &other.data,
                &mut out.data,
                self.cols,
                other.cols,
                0,
                self.rows,
            );
        } else {
            let threads = crate::pool::configured_threads();
            let band = self.rows.div_ceil(threads);
            let a = &self.data;
            let b = &other.data;
            let k = self.cols;
            let n = other.cols;
            let chunks: Vec<(usize, &mut [f32])> = out
                .data
                .chunks_mut(band * n)
                .enumerate()
                .map(|(i, c)| (i * band, c))
                .collect();
            std::thread::scope(|scope| {
                for (start_row, chunk) in chunks {
                    let rows_here = chunk.len() / n;
                    scope.spawn(move || {
                        matmul_band(a, b, chunk, k, n, start_row, rows_here);
                    });
                }
            });
        }
        out
    }

    /// `selfᵀ × other` without materializing the transpose — the backward
    /// pass's `gW = xᵀ·g`. `self: [m,k]`, `other: [m,n]` → `[k,n]`, summed in
    /// the same order as `self.transpose().matmul(other)` (bit-identical).
    ///
    /// # Panics
    /// Panics if the row counts disagree.
    pub fn matmul_at_b(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.rows,
            other.rows,
            "matmul_at_b shape mismatch: {:?}ᵀ x {:?}",
            self.shape(),
            other.shape()
        );
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Tensor::zeros(k, n);
        let work = m * k * n;
        if work < PAR_THRESHOLD || k < 2 {
            at_b_band(&self.data, &other.data, &mut out.data, m, k, n, 0, k);
        } else {
            let threads = crate::pool::configured_threads();
            let band = k.div_ceil(threads);
            let a = &self.data;
            let b = &other.data;
            let chunks: Vec<(usize, &mut [f32])> = out
                .data
                .chunks_mut(band * n)
                .enumerate()
                .map(|(i, c)| (i * band, c))
                .collect();
            std::thread::scope(|scope| {
                for (start, chunk) in chunks {
                    let rows_here = chunk.len() / n;
                    scope.spawn(move || {
                        at_b_band(a, b, chunk, m, k, n, start, rows_here);
                    });
                }
            });
        }
        out
    }

    /// `self × otherᵀ` without materializing the transpose — the backward
    /// pass's `gx = g·Wᵀ`. `self: [m,k]`, `other: [n,k]` → `[m,n]`, summed in
    /// the same order as `self.matmul(&other.transpose())` (bit-identical).
    ///
    /// # Panics
    /// Panics if the column counts disagree.
    pub fn matmul_a_bt(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols,
            other.cols,
            "matmul_a_bt shape mismatch: {:?} x {:?}ᵀ",
            self.shape(),
            other.shape()
        );
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = Tensor::zeros(m, n);
        let work = m * k * n;
        if work < PAR_THRESHOLD || m < 2 {
            a_bt_band(&self.data, &other.data, &mut out.data, k, n, 0, m);
        } else {
            let threads = crate::pool::configured_threads();
            let band = m.div_ceil(threads);
            let a = &self.data;
            let b = &other.data;
            let chunks: Vec<(usize, &mut [f32])> = out
                .data
                .chunks_mut(band * n)
                .enumerate()
                .map(|(i, c)| (i * band, c))
                .collect();
            std::thread::scope(|scope| {
                for (start, chunk) in chunks {
                    let rows_here = chunk.len() / n;
                    scope.spawn(move || {
                        a_bt_band(a, b, chunk, k, n, start, rows_here);
                    });
                }
            });
        }
        out
    }

    /// Fused `self × w + bias` (`bias: [1,n]`, broadcast over rows) — the
    /// Linear layer forward as one call. The matmul runs through the
    /// dispatched kernels; the bias lands *after* the full accumulation, so
    /// the result is bit-identical to `matmul` followed by a row add.
    ///
    /// # Panics
    /// Panics if inner dimensions disagree or `bias` is not `[1, w.cols]`.
    pub fn matmul_bias(&self, w: &Tensor, bias: &Tensor) -> Tensor {
        assert_eq!(bias.shape(), (1, w.cols), "matmul_bias bias shape mismatch");
        let mut out = self.matmul(w);
        let b = bias.row(0);
        for r in 0..out.rows {
            for (o, &bv) in out.row_mut(r).iter_mut().zip(b) {
                *o += bv;
            }
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Column-wise sums as a `[1, cols]` tensor.
    pub fn col_sums(&self) -> Tensor {
        let mut out = Tensor::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Fill with zeros.
    pub fn zero_(&mut self) {
        self.data.fill(0.0);
    }

    /// Maximum absolute difference to another tensor (test helper).
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape(), other.shape());
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor[{}x{}]", self.rows, self.cols)?;
        if self.len() <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut t = Tensor::zeros(2, 3);
        t.set(1, 2, 5.0);
        assert_eq!(t.get(1, 2), 5.0);
        assert_eq!(t.shape(), (2, 3));
        assert_eq!(t.row(1), &[0.0, 0.0, 5.0]);
    }

    #[test]
    fn from_fn_layout() {
        let t = Tensor::from_fn(2, 2, |r, c| (r * 10 + c) as f32);
        assert_eq!(t.as_slice(), &[0.0, 1.0, 10.0, 11.0]);
    }

    #[test]
    fn matmul_small() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
        let i = Tensor::from_fn(4, 4, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_parallel_matches_serial() {
        // Big enough to cross PAR_THRESHOLD.
        let a = Tensor::from_fn(128, 96, |r, c| ((r * 31 + c * 17) % 13) as f32 - 6.0);
        let b = Tensor::from_fn(96, 128, |r, c| ((r * 7 + c * 3) % 11) as f32 - 5.0);
        let big = a.matmul(&b);
        // Serial reference.
        let mut reference = Tensor::zeros(128, 128);
        for i in 0..128 {
            for k in 0..96 {
                for j in 0..128 {
                    let v = reference.get(i, j) + a.get(i, k) * b.get(k, j);
                    reference.set(i, j, v);
                }
            }
        }
        assert!(big.max_abs_diff(&reference) < 1e-3);
    }

    #[test]
    fn at_b_matches_explicit_transpose() {
        let a = Tensor::from_fn(5, 3, |r, c| ((r * 7 + c * 3) % 11) as f32 - 4.0);
        let b = Tensor::from_fn(5, 4, |r, c| ((r * 5 + c) % 9) as f32 - 3.0);
        assert_eq!(a.matmul_at_b(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        let a = Tensor::from_fn(4, 6, |r, c| ((r * 3 + c * 5) % 13) as f32 - 5.0);
        let b = Tensor::from_fn(3, 6, |r, c| ((r * 11 + c * 2) % 7) as f32 - 2.0);
        assert_eq!(a.matmul_a_bt(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn fused_kernels_parallel_match_serial() {
        // Large enough to cross PAR_THRESHOLD so the banded paths run.
        let a = Tensor::from_fn(128, 96, |r, c| ((r * 31 + c * 17) % 13) as f32 - 6.0);
        let b = Tensor::from_fn(128, 96, |r, c| ((r * 7 + c * 3) % 11) as f32 - 5.0);
        crate::pool::set_thread_override(1);
        let at_b_serial = a.matmul_at_b(&b);
        let a_bt_serial = a.matmul_a_bt(&b);
        crate::pool::set_thread_override(6);
        let at_b_par = a.matmul_at_b(&b);
        let a_bt_par = a.matmul_a_bt(&b);
        crate::pool::set_thread_override(0);
        assert_eq!(at_b_serial, at_b_par);
        assert_eq!(a_bt_serial, a_bt_par);
        assert_eq!(at_b_par, a.transpose().matmul(&b));
        assert_eq!(a_bt_par, a.matmul(&b.transpose()));
    }

    #[test]
    #[should_panic]
    fn at_b_shape_mismatch_panics() {
        Tensor::zeros(2, 3).matmul_at_b(&Tensor::zeros(3, 2));
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(4, 2), a.get(2, 4));
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(1, 3, vec![1., -2., 3.]);
        let b = Tensor::from_vec(1, 3, vec![10., 20., 30.]);
        assert_eq!(a.add(&b).as_slice(), &[11., 18., 33.]);
        assert_eq!(a.scale(2.0).as_slice(), &[2., -4., 6.]);
        assert_eq!(a.map(f32::abs).as_slice(), &[1., 2., 3.]);
        let mut c = a.clone();
        c.add_scaled(&b, 0.1);
        assert_eq!(c.as_slice(), &[2., 0., 6.]);
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_vec(2, 2, vec![1., 2., 3., 4.]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.col_sums().as_slice(), &[4., 6.]);
        assert!((a.norm() - 30.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn matmul_bias_matches_matmul_plus_row_add() {
        let x = Tensor::from_fn(5, 3, |r, c| ((r * 7 + c * 3) % 11) as f32 - 4.0);
        let w = Tensor::from_fn(3, 4, |r, c| ((r * 5 + c) % 9) as f32 - 3.0);
        let b = Tensor::from_vec(1, 4, vec![0.5, -1.5, 2.0, 0.0]);
        let fused = x.matmul_bias(&w, &b);
        let mut reference = x.matmul(&w);
        for r in 0..reference.rows() {
            for c in 0..reference.cols() {
                let v = reference.get(r, c) + b.get(0, c);
                reference.set(r, c, v);
            }
        }
        assert_eq!(fused, reference);
    }

    #[test]
    #[should_panic]
    fn matmul_bias_shape_mismatch_panics() {
        Tensor::zeros(2, 3).matmul_bias(&Tensor::zeros(3, 4), &Tensor::zeros(1, 3));
    }

    /// Regression: the band kernels used to skip zero multipliers, which
    /// dropped `0.0 * inf = NaN` / `0.0 * NaN` propagation. All three
    /// variants must now propagate non-finite operands like the naive
    /// triple loop.
    #[test]
    fn zero_times_nonfinite_propagates_nan() {
        // matmul: [0, 1] × [inf; 2] → 0·inf + 1·2 = NaN.
        let a = Tensor::from_vec(1, 2, vec![0.0, 1.0]);
        let b = Tensor::from_vec(2, 1, vec![f32::INFINITY, 2.0]);
        assert!(a.matmul(&b).get(0, 0).is_nan(), "matmul dropped 0*inf");

        // at_b: A = [0; 1] (a [2,1] column), B rows [NaN], [2].
        let a = Tensor::from_vec(2, 1, vec![0.0, 1.0]);
        let b = Tensor::from_vec(2, 1, vec![f32::NAN, 2.0]);
        assert!(a.matmul_at_b(&b).get(0, 0).is_nan(), "at_b dropped 0*NaN");
        assert!(
            a.transpose().matmul(&b).get(0, 0).is_nan(),
            "transpose reference disagrees"
        );

        // a_bt: [0, 1] × [inf, 2]ᵀ → NaN.
        let a = Tensor::from_vec(1, 2, vec![0.0, 1.0]);
        let b = Tensor::from_vec(1, 2, vec![f32::INFINITY, 2.0]);
        assert!(a.matmul_a_bt(&b).get(0, 0).is_nan(), "a_bt dropped 0*inf");
    }

    #[test]
    #[should_panic]
    fn matmul_shape_mismatch_panics() {
        Tensor::zeros(2, 3).matmul(&Tensor::zeros(2, 3));
    }

    #[test]
    #[should_panic]
    fn add_shape_mismatch_panics() {
        let _ = Tensor::zeros(2, 3).add(&Tensor::zeros(3, 2));
    }
}
